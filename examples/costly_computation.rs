//! Costly computation: the three machine-game examples of Section 3.
//!
//! ```text
//! cargo run --release -p bne-examples --bin costly_computation
//! ```

use bne_core::machine::frpd::{analyze_tit_for_tat, equilibrium_threshold, MemoryCostModel};
use bne_core::machine::primality::{primality_bayesian, primality_machine_game, ChallengePool};
use bne_core::machine::roshambo;

fn main() {
    // Example 3.1 — the primality game: once VM steps cost money, playing
    // safe beats computing for long inputs.
    println!("-- Example 3.1: primality guessing --");
    for bits in [8u32, 16, 26] {
        let pool = ChallengePool::new(bits, 8);
        let game = primality_bayesian(&pool);
        let machine_game = primality_machine_game(&game, &pool, 0.002);
        let equilibria: Vec<String> = machine_game
            .find_equilibria()
            .into_iter()
            .flat_map(|e| e.machine_names)
            .collect();
        println!(
            "  {bits:>2}-bit challenges: compute pays {:>7.3}, safe pays {:>6.3}, equilibrium = {equilibria:?}",
            machine_game.evaluate(&[0]).utilities[0],
            machine_game.evaluate(&[3]).utilities[0],
        );
    }

    // Example 3.2 — finitely repeated prisoner's dilemma with a memory
    // charge: tit-for-tat becomes an equilibrium for long enough games.
    println!("\n-- Example 3.2: FRPD with costly memory --");
    let cost = MemoryCostModel::default();
    let threshold = equilibrium_threshold(0.9, cost, 500).expect("threshold exists");
    println!("  δ = 0.9, memory cost 0.1/cell → (TFT, TFT) is an equilibrium once N ≥ {threshold}");
    for n in [threshold - 5, threshold + 5] {
        let a = analyze_tit_for_tat(n, 0.9, cost);
        println!(
            "  N = {n:>3}: TFT value {:>7.3}, best deviation {:>7.3}, equilibrium = {}",
            a.tft_value, a.best_deviation_value, a.tft_is_equilibrium
        );
    }

    // Example 3.3 — computational roshambo: charging for randomization
    // destroys equilibrium existence.
    println!("\n-- Example 3.3: computational roshambo --");
    let game = roshambo::roshambo_bayesian();
    let classical = roshambo::classical_roshambo(&game);
    let computational = roshambo::computational_roshambo(&game);
    println!(
        "  free computation: uniform randomization is an equilibrium: {}",
        classical.is_equilibrium(&[3, 3])
    );
    println!(
        "  deterministic costs 1, randomized costs 2: equilibria found = {}",
        computational.find_equilibria().len()
    );
    let cycle = roshambo::best_response_cycle(&computational, [0, 0]);
    println!(
        "  best-response dynamics visit {} profiles before repeating",
        cycle.len()
    );
}
