//! Unaware players: the Figure 1–3 example of Section 4.
//!
//! ```text
//! cargo run -p bne-examples --bin unaware_players
//! ```

use bne_core::awareness::analyze_figure1;
use bne_core::awareness::figures::{figure1_awareness_game, virtual_move_game};
use bne_core::awareness::generalized::find_generalized_equilibria;
use bne_core::games::classic;

fn main() {
    // The objective game and its classical equilibrium.
    let objective = classic::figure1_game();
    let (strategy, values) = objective.backward_induction().expect("perfect information");
    println!(
        "objective game backward induction: A plays {}, B plays {}, payoffs {:?}",
        if strategy.get(0) == Some(1) {
            "acrossA"
        } else {
            "downA"
        },
        if strategy.get(1) == Some(0) {
            "downB"
        } else {
            "acrossB"
        },
        values
    );

    // Now let A believe that with probability p, B is unaware of downB.
    println!("\np (B unaware of downB) → behaviour of A in the generalized Nash equilibrium");
    for p in [0.0, 0.25, 0.49, 0.51, 0.75, 1.0] {
        let analysis = analyze_figure1(p);
        let behaviour = match (
            analysis.across_equilibrium_exists,
            analysis.down_equilibrium_exists,
        ) {
            (true, true) => "acrossA or downA (both survive)",
            (true, false) => "acrossA",
            (false, true) => "downA only",
            (false, false) => "no pure equilibrium",
        };
        println!(
            "  p = {p:>4}: {behaviour}   ({} generalized equilibria)",
            analysis.num_equilibria
        );
    }

    // The underlying structure: three augmented games and the F mapping.
    let gwa = figure1_awareness_game(0.6);
    println!(
        "\nawareness structure: {} augmented games, {} (player, believed game) strategy slots",
        gwa.games().len(),
        gwa.strategy_domain().len()
    );
    println!(
        "generalized equilibria at p = 0.6: {}",
        find_generalized_equilibria(&gwa).len()
    );

    // Awareness of unawareness: A knows B has a move she cannot conceive of
    // and reasons with an estimated payoff, like a chess program evaluating
    // a truncated tree.
    println!("\nawareness of unawareness (virtual move):");
    for estimate in [0.2, 1.5] {
        let subjective = virtual_move_game(estimate);
        let (strategy, values) = subjective
            .backward_induction()
            .expect("perfect information");
        println!(
            "  A's estimate of the unknown move's payoff = {estimate}: A plays {}, expects {:?}",
            if strategy.get(0) == Some(1) {
                "acrossA"
            } else {
                "downA"
            },
            values[0]
        );
    }
}
