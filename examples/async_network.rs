//! Walkthrough of the `bne-net` async discrete-event runtime: the same
//! phase-king processes, four networks.
//!
//! ```text
//! cargo run --release -p bne-examples --bin async_network
//! ```
//!
//! The paper's protocols assume synchrony ("all the results ... depend on
//! the system being synchronous"). This example runs the *unchanged*
//! phase-king implementation on: (1) the lockstep `SyncNetwork`, (2) the
//! async runtime configured to be bit-identical to it, (3) a lossy
//! jittered network, and (4) a rushing adversarial scheduler — and shows
//! where the guarantees stop. It then switches to the **event-driven**
//! layer: Bracha reliable broadcast with no rounds at all, killed by a
//! partition covering its quorum pipeline, and revived by wrapping every
//! process in a `RetryAdapter` (loss becomes latency).

use bne_core::byzantine::adversary::{FaultyBehavior, FaultyProcess};
use bne_core::byzantine::bracha::BrachaMsg;
use bne_core::byzantine::network::{Process, SyncNetwork};
use bne_core::byzantine::phase_king::PhaseKingProcess;
use bne_core::byzantine::Value;
use bne_core::net::{
    run_round_protocol, AsyncProcess, BrachaProcess, EventNet, LatencyModel, LinkFaults, NetConfig,
    Partition, QueueImpl, RetryAdapter, RetryMsg, RetryPolicy, SchedulerPolicy,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

const N: usize = 6;
const T: usize = 1;

fn processes(seed: u64) -> Vec<Box<dyn Process<Msg = Value>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut procs: Vec<Box<dyn Process<Msg = Value>>> = (0..N - T)
        .map(|_| {
            Box::new(PhaseKingProcess::new(rng.random_range(0..2u64), T))
                as Box<dyn Process<Msg = Value>>
        })
        .collect();
    procs.push(Box::new(FaultyProcess::new(FaultyBehavior::RandomNoise {
        seed: seed ^ 0xAD,
    })));
    procs
}

fn agreement(decisions: &[Option<u64>]) -> bool {
    let honest: Vec<u64> = decisions[..N - T].iter().filter_map(|d| *d).collect();
    honest.len() == N - T && honest.windows(2).all(|w| w[0] == w[1])
}

fn main() {
    let seed = 2024;
    let rounds = PhaseKingProcess::rounds_needed(T);

    // 1. the lockstep baseline
    let mut sync = SyncNetwork::new(processes(seed));
    sync.run(rounds);
    println!(
        "sync lockstep        decisions {:?}  messages {}",
        sync.decisions(),
        sync.stats().messages_sent
    );

    // 2. the async runtime in its lockstep configuration: bit-identical
    let lockstep = run_round_protocol(processes(seed), rounds, NetConfig::lockstep(seed));
    assert_eq!(sync.decisions(), lockstep.decisions);
    assert_eq!(sync.stats(), lockstep.round_stats());
    println!(
        "async (FIFO, 0 lat)  decisions {:?}  messages {}   <- bit-identical",
        lockstep.decisions, lockstep.stats.messages_sent
    );

    // 3. a lossy, jittered network with a partition that heals mid-run
    let rough = NetConfig {
        seed,
        latency: LatencyModel::UniformJitter { min: 0, max: 3 },
        scheduler: SchedulerPolicy::Fifo,
        faults: LinkFaults {
            drop_prob: 0.15,
            partition: Some(Partition::until([0usize, 1].into_iter().collect(), 8)),
        }
        .into(),
        round_ticks: 4,
        record_trace: false,
        queue: QueueImpl::Wheel,
    };
    let rough_out = run_round_protocol(processes(seed), rounds, rough);
    println!(
        "async (loss+cut)     decisions {:?}  dropped {}  agreement {}",
        rough_out.decisions,
        rough_out.stats.messages_dropped,
        agreement(&rough_out.decisions)
    );

    // 4. the rushing adversary: honest traffic two ticks late, Byzantine
    //    noise instantaneous
    let rushed = NetConfig {
        seed,
        latency: LatencyModel::Constant(0),
        scheduler: SchedulerPolicy::AdversarialRush {
            byzantine: [N - 1].into_iter().collect(),
            honest_delay: 2,
        },
        faults: LinkFaults::none().into(),
        round_ticks: 1,
        record_trace: false,
        queue: QueueImpl::Wheel,
    };
    let rushed_out = run_round_protocol(processes(seed), rounds, rushed);
    println!(
        "async (rushing adv)  decisions {:?}  agreement {}",
        rushed_out.decisions,
        agreement(&rushed_out.decisions)
    );

    println!();
    println!("The protocol is untouched across all four runs — only the network changed.");
    println!("Sweeps over latency x loss x scheduler grids: `experiments -- e17 e18`.");

    // 5. the event-driven layer: Bracha reliable broadcast has no rounds
    //    at all — init, echo and ready waves ripple through the event
    //    queue at whatever pace the latency model allows. A partition
    //    covering that whole pipeline kills the bare protocol...
    let cut = |seed| NetConfig {
        seed,
        latency: LatencyModel::Constant(1),
        scheduler: SchedulerPolicy::Fifo,
        faults: LinkFaults {
            drop_prob: 0.0,
            partition: Some(Partition::window((0..N / 2).collect(), 0, 6)),
        }
        .into(),
        round_ticks: 1,
        record_trace: false,
        queue: QueueImpl::Wheel,
    };
    let bare = {
        let procs: Vec<Box<dyn AsyncProcess<Msg = BrachaMsg>>> = (0..N)
            .map(|_| Box::new(BrachaProcess::new(T, 0, 1)) as _)
            .collect();
        let mut net = EventNet::new(procs, cut(seed));
        assert!(net.run(1_000_000));
        net
    };
    println!();
    println!(
        "bracha, cut [0,6)    delivered {:?}   <- echo quorums need both halves; nobody delivers",
        bare.decisions()
    );

    //    ...and retransmission revives it: every process wrapped in a
    //    RetryAdapter (acks + exponential backoff), the same partition
    //    becomes nothing but latency.
    let retried = {
        let procs: Vec<Box<dyn AsyncProcess<Msg = RetryMsg<BrachaMsg>>>> = (0..N)
            .map(|_| {
                Box::new(RetryAdapter::new(
                    BrachaProcess::new(T, 0, 1),
                    RetryPolicy::exponential(2),
                )) as _
            })
            .collect();
        let mut net = EventNet::new(procs, cut(seed));
        assert!(net.run(1_000_000));
        net
    };
    println!(
        "bracha + retry       delivered {:?}  latest delivery at tick {}",
        retried.decisions(),
        retried
            .decision_times()
            .iter()
            .filter_map(|t| *t)
            .max()
            .unwrap_or(0)
    );
    assert!(retried.decisions().iter().all(|d| d.is_some()));
    println!("Loss became latency, not lost correctness: `experiments -- e20 e21`.");
}
