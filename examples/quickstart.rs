//! Quickstart: build a game, find its Nash equilibria, and see why the paper
//! says Nash equilibrium is not enough.
//!
//! ```text
//! cargo run -p bne-examples --bin quickstart
//! ```

use bne_core::games::classic;
use bne_core::games::MixedProfile;
use bne_core::robust::classify_profile;
use bne_core::solvers::{pure_nash_equilibria, support_enumeration};

fn main() {
    // 1. Classical analysis of the paper's prisoner's dilemma table.
    let pd = classic::prisoners_dilemma();
    println!("game: {}", pd.name());
    for eq in pure_nash_equilibria(&pd) {
        println!(
            "  pure Nash equilibrium: ({}, {}) with payoffs {:?}",
            pd.action_label(0, eq[0]),
            pd.action_label(1, eq[1]),
            pd.payoff_vector(&eq)
        );
    }
    let cc = MixedProfile::from_pure(&pd, &[0, 0]);
    println!(
        "  mutual cooperation pays {:?} but is not an equilibrium (regret {:.1})",
        pd.payoff_vector(&[0, 0]),
        cc.max_regret(&pd)
    );

    // 2. Mixed equilibria via support enumeration: roshambo randomizes
    //    uniformly.
    let rps = classic::roshambo();
    let mixed = support_enumeration(&rps);
    println!("\ngame: {} — {} mixed equilibria", rps.name(), mixed.len());
    for eq in &mixed {
        println!("  P1 mixes {:?}", eq.strategy(0).probs());
    }

    // 3. Where Nash equilibrium stops being informative: the paper's
    //    bargaining example is a Nash equilibrium (and Pareto optimal, and
    //    resilient to coalitions of any size) yet a single unexpected
    //    deviation wipes out everyone else — the motivation for
    //    (k,t)-robustness.
    let bargaining = classic::bargaining_game(6);
    let all_stay = vec![0; 6];
    let report = classify_profile(&bargaining, &all_stay);
    println!("\ngame: {}", bargaining.name());
    println!(
        "  everyone stays: Nash = {}, Pareto = {}, k-resilient up to k = {}, t-immune up to t = {}",
        report.is_nash, report.is_pareto_optimal, report.max_resilience, report.max_immunity
    );
    println!("  → resilient to coalitions of every size, yet not even 1-immune.");
}
