//! Walkthrough of the `bne_net::obs` observability layer: one Paxos
//! crash-failover run, three ways of watching it.
//!
//! ```text
//! cargo run --release -p bne-examples --bin trace_timeline
//! ```
//!
//! The run: five acceptors, single-decree Paxos, and the initial
//! proposer (process 0) crashes after handling three events — so the
//! decision has to wait for a staggered timeout to notice the silence
//! and a survivor to drive a fresh ballot. Process 0 recovers at
//! t = 300 and re-learns the decision from its durable state.
//!
//! Three observers of the *identical* execution:
//!
//! 1. **none** — the baseline. The trace sink is a single disabled
//!    branch; this is what every benchmark and experiment runs under.
//! 2. **`TimelineObserver`** — records every event fully decoded, then
//!    renders a compact text timeline and exports Chrome trace-event
//!    JSON (load `trace_timeline.json` in Perfetto / `chrome://tracing`
//!    to see the failover as a gap between message spans).
//! 3. **`MetricsObserver`** — stores nothing per event: per-kind
//!    counters, Lamport-clock queue-latency histograms, timer-wait
//!    histogram, queue-depth timeline.
//!
//! The point the `tests/tests/net_obs.rs` property suite proves and
//! this example demonstrates: all three runs produce bit-identical
//! decisions, stats and Lamport clocks. Watching is free.

use bne_core::byzantine::paxos::PaxosMsg;
use bne_core::net::{
    AsyncProcess, EventNet, FaultPlan, HistogramSpec, LatencyModel, MetricsObserver, NetConfig,
    PaxosProcess, TimelineObserver,
};
use std::cell::RefCell;
use std::rc::Rc;

const N: usize = 5;
const TIMEOUT_TICKS: u64 = 40;
const MAX_TIMEOUTS: u32 = 12;

fn processes() -> Vec<Box<dyn AsyncProcess<Msg = PaxosMsg>>> {
    (0..N as u64)
        .map(|v| Box::new(PaxosProcess::new(10 + v, TIMEOUT_TICKS, MAX_TIMEOUTS)) as _)
        .collect()
}

fn config() -> NetConfig {
    NetConfig {
        latency: LatencyModel::Constant(1),
        faults: FaultPlan::none().crash(0, 3).recover_at(300),
        ..NetConfig::lockstep(7)
    }
}

fn main() {
    // 1. the silent baseline
    let mut baseline = EventNet::new(processes(), config());
    assert!(baseline.run(1_000_000), "queue must drain");
    println!(
        "baseline   decisions {:?}  vtime {}  lamport {:?}",
        baseline.decisions(),
        baseline.stats().virtual_time,
        baseline.lamport_clocks(),
    );

    // 2. the full timeline
    let timeline = Rc::new(RefCell::new(TimelineObserver::new()));
    let mut watched =
        EventNet::with_observer(processes(), config(), Box::new(Rc::clone(&timeline)));
    assert!(watched.run(1_000_000), "queue must drain");
    assert_eq!(baseline.decisions(), watched.decisions());
    assert_eq!(baseline.stats(), watched.stats());
    assert_eq!(baseline.lamport_clocks(), watched.lamport_clocks());
    println!("observed run is bit-identical to the baseline\n");

    let timeline = timeline.borrow();
    let text = timeline.render_text();
    let lines: Vec<&str> = text.lines().collect();
    println!("-- timeline: first 12 events (clean two-phase pipeline dies at the crash) --");
    for l in &lines[..12.min(lines.len())] {
        println!("  {l}");
    }
    // the failover: everything between the crash and the first decision
    let crash_at = lines.iter().position(|l| l.contains("CRASH")).unwrap_or(0);
    let decide_at = lines
        .iter()
        .position(|l| l.contains("DECIDE"))
        .unwrap_or(lines.len() - 1);
    println!(
        "  ... {} events elided ...",
        decide_at.saturating_sub(crash_at + 6)
    );
    println!("-- the crash, the timeout noticing it, and the first decisions --");
    for l in lines[crash_at..(decide_at + 6).min(lines.len())]
        .iter()
        .filter(|l| {
            l.contains("CRASH")
                || l.contains("timer")
                || l.contains("DECIDE")
                || l.contains("RECOVER")
        })
    {
        println!("  {l}");
    }
    println!("-- last 4 events (the recovered process re-learns) --");
    for l in &lines[lines.len().saturating_sub(4)..] {
        println!("  {l}");
    }

    let json = timeline.to_chrome_trace();
    let path = "trace_timeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\nChrome trace ({} events, {} bytes) written to {path} — load it in Perfetto or chrome://tracing",
            timeline.entries().len(),
            json.len()
        ),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }

    // 3. the streaming metrics view of the same run
    let metrics = Rc::new(RefCell::new(MetricsObserver::new(
        N,
        &HistogramSpec::ticks(64),
    )));
    let mut measured =
        EventNet::with_observer(processes(), config(), Box::new(Rc::clone(&metrics)));
    assert!(measured.run(1_000_000), "queue must drain");
    assert_eq!(baseline.decisions(), measured.decisions());
    let metrics = metrics.borrow();
    let c = metrics.counts();
    println!(
        "\nmetrics    sends {}  delivers {}  timers {}  crashes {}  recoveries {}  decides {}",
        c.sends, c.delivers, c.timers, c.crashes, c.recoveries, c.decides
    );
    println!(
        "           queue latency mean {:.2} ticks (min {:.0}, max {:.0}, {} samples)",
        metrics.latency_stats().mean(),
        metrics.latency_stats().min(),
        metrics.latency_stats().max(),
        metrics.latency_stats().count(),
    );
    let wait = metrics.timer_wait();
    println!(
        "           timer waits: {} fired, all in the 40-44 tick detection band: {}",
        wait.total(),
        (0..wait.buckets().len())
            .filter(|&i| wait.buckets()[i] > 0)
            .map(|i| {
                let (lo, _) = wait.bucket_bounds(i);
                format!("{}@{}t", wait.buckets()[i], lo)
            })
            .collect::<Vec<_>>()
            .join(" "),
    );
    let depths = metrics.queue_depth();
    let peak = depths.iter().map(|&(_, d)| d).max().unwrap_or(0);
    println!(
        "           queue depth sampled at {} bucket drains, peak {} (stats peak {})",
        depths.len(),
        peak,
        measured.stats().peak_queue_len,
    );
    println!(
        "\nThe failover price is detection, not transport: message latency stays at its 1-tick link cost while the decision waits ~{} ticks for process {}'s timeout.",
        TIMEOUT_TICKS,
        1,
    );
}
