//! Robust equilibria and mediators: Byzantine agreement as a game.
//!
//! Walks through Section 2 of the paper: the Byzantine agreement game, its
//! trivial solution with a mediator, the (n, k, t) feasibility regimes for
//! replacing the mediator with cheap talk, and two concrete cheap-talk
//! implementations built on the Byzantine agreement and PKI substrates.
//!
//! ```text
//! cargo run -p bne-examples --bin robust_mediators
//! ```

use bne_core::byzantine::mediator_byzantine_agreement;
use bne_core::mediator::feasibility::{classify_regime, Assumptions, Implementability};
use bne_core::mediator::{
    distributions_match, ByzantineAgreementGame, CheapTalkImplementation, MediatorGame,
    OralMessagesCheapTalk, SignedBroadcastCheapTalk, TruthfulMediator,
};
use std::collections::BTreeSet;

fn main() {
    let n = 7;
    let k = 1;
    let t = 1;

    // The mediator solution is trivial: the general tells the mediator, the
    // mediator tells everyone.
    let faulty: BTreeSet<usize> = [5, 6].into_iter().collect();
    let mediated = mediator_byzantine_agreement(n, 1, &faulty, 0);
    println!(
        "with a mediator: {} honest soldiers all decide {:?} using {} messages",
        mediated.decisions.len(),
        mediated.decisions.values().next(),
        mediated.messages
    );

    // Can cheap talk replace the mediator? Ask the feasibility catalogue.
    for assumptions in [Assumptions::none(), Assumptions::all()] {
        let regime = classify_regime(n, k, t, assumptions);
        let verdict = match regime.implementability {
            Implementability::Exact(_) => "exact implementation",
            Implementability::Epsilon(_) => "epsilon implementation",
            Implementability::Impossible => "impossible",
        };
        println!(
            "n = {n}, (k, t) = ({k}, {t}), assumptions {assumptions:?} → {verdict} (bullets {:?})",
            regime.justification
        );
    }

    // Constructive check: the oral-messages cheap-talk protocol induces the
    // same distribution over honest actions as the mediator.
    let game = ByzantineAgreementGame::build(n, 0.5);
    let mediator_game = MediatorGame::new(&game, TruthfulMediator);
    let om = OralMessagesCheapTalk::new(n, k, t);
    println!(
        "\nOM({}) cheap talk implements the mediator with faulty soldiers {:?}: {}",
        k + t,
        faulty,
        distributions_match(&mediator_game, &om, &faulty, 10, 1e-9)
    );

    // Push past n/3 total faults: oral messages break, signed broadcast
    // (cryptography + PKI, the paper's last bullet) still works.
    let n_small = 5;
    let heavy_faults: BTreeSet<usize> = [2, 3, 4].into_iter().collect();
    let small_game = ByzantineAgreementGame::build(n_small, 0.5);
    let small_mediator = MediatorGame::new(&small_game, TruthfulMediator);
    let om_small = OralMessagesCheapTalk::new(n_small, 1, 2);
    let ds_small = SignedBroadcastCheapTalk::new(n_small, 1, 2);
    println!(
        "n = {n_small} with 3 faulty: {} implements mediator: {} | {} implements mediator: {}",
        om_small.name(),
        distributions_match(&small_mediator, &om_small, &heavy_faults, 10, 1e-9),
        ds_small.name(),
        distributions_match(&small_mediator, &ds_small, &heavy_faults, 10, 1e-9),
    );

    // And the honest strategy is coalition-proof in the mediator game.
    println!(
        "\nhonest strategy in the mediator game is 2-resilient: {}",
        mediator_game.honest_is_k_resilient(2)
    );
}
