//! The scrip-system and file-sharing simulators, driven through the
//! `bne-sim` scenario engine: a small parameter grid × seeded replicas per
//! cell, aggregated into streaming statistics (no per-replica storage).
//!
//! ```text
//! cargo run --release -p bne-examples --bin scrip_economy
//! # multi-threaded replica sweep:
//! cargo run --release -p bne-examples --bin scrip_economy \
//!     --features bne-core/parallel
//! ```

use bne_core::p2p::scenario::{sharing_cost_grid, P2pScenario};
use bne_core::p2p::P2pConfig;
use bne_core::scrip::scenario::{money_supply_grid, ScripScenario};
use bne_core::sim::SimRunner;

fn main() {
    let runner = SimRunner::new(16, 2024);
    println!(
        "scenario engine: {} replicas per grid cell, base seed {}\n",
        runner.replicas(),
        runner.base_seed()
    );

    // The money-supply question: for 40 agents with threshold 8, how much
    // scrip should the system print? Too little starves trade, too much
    // saturates thresholds and kills volunteering.
    let supplies = [1u64, 2, 5, 8, 12];
    let grid = money_supply_grid(40, 8, &supplies, 20_000);
    println!("scrip money-supply curve (40 agents, threshold 8, 20k rounds):");
    println!("  scrip/agent   efficiency (mean ± std)   [min, max]     rational utility");
    for result in runner.run(&ScripScenario, &grid) {
        let eff = &result.outcome.efficiency;
        let util = &result.outcome.rational_utility;
        println!(
            "  {:>11}   {:.3} ± {:.3}             [{:.3}, {:.3}]   {:>8.1}",
            supplies[result.cell],
            eff.mean(),
            eff.std_dev(),
            eff.min(),
            eff.max(),
            util.mean()
        );
    }

    // The Gnutella free-riding picture, as a replica-averaged cost sweep
    // instead of a single seed-42 run.
    let costs = [0.3, 1.0, 2.5];
    let base = P2pConfig {
        peers: 500,
        queries: 4_000,
        ..P2pConfig::default()
    };
    let grid = sharing_cost_grid(&base, &costs);
    println!("\nfile-sharing cost sweep (500 peers, 4k queries):");
    println!("  cost   free riders      top-1% share");
    for result in runner.run(&P2pScenario, &grid) {
        println!(
            "  {:>4}   {:.3} ± {:.3}    {:.3} ± {:.3}",
            costs[result.cell],
            result.outcome.free_riders.mean(),
            result.outcome.free_riders.std_dev(),
            result.outcome.top1_share.mean(),
            result.outcome.top1_share.std_dev()
        );
    }
    println!(
        "\npaper quotes Adar–Huberman (2000): ~70% free riders, ~50% of responses from the top 1%."
    );
}
