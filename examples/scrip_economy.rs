//! The scrip-system and file-sharing simulators from the paper's motivation
//! and conclusions: "standard" kinds of irrational behaviour (hoarders,
//! altruists, free riders) and what they do to everyone else.
//!
//! ```text
//! cargo run --release -p bne-examples --bin scrip_economy
//! ```

use bne_core::p2p::{simulate as simulate_p2p, P2pConfig};
use bne_core::scrip::{mix_sweep, simulate as simulate_scrip, ScripConfig};

fn main() {
    // A healthy homogeneous scrip economy.
    let baseline = simulate_scrip(&ScripConfig::homogeneous(50, 10, 50_000, 1));
    println!(
        "homogeneous scrip economy (50 agents, threshold 10): efficiency {:.3}",
        baseline.efficiency
    );

    // Hoarders drain scrip from circulation; altruists give it away for
    // free. Both are "irrational" in the threshold-equilibrium sense, and
    // they move the rational agents' welfare in opposite directions.
    println!("\nhoarders / altruists sweep (40 agents, threshold 6):");
    for row in mix_sweep(40, 6, &[0, 10, 20], &[0, 10], 40_000, 3) {
        println!(
            "  hoarders {:>2}, altruists {:>2} → efficiency {:.3}, avg rational utility {:>8.1}",
            row.hoarders, row.altruists, row.efficiency, row.rational_utility
        );
    }

    // The Gnutella free-riding picture the paper quotes.
    let p2p = simulate_p2p(&P2pConfig::default());
    println!(
        "\nfile-sharing game ({} peers): {:.0}% free riders, top 1% of hosts serve {:.0}% of responses",
        P2pConfig::default().peers,
        100.0 * p2p.free_rider_fraction,
        100.0 * p2p.top1_percent_response_share
    );
    println!(
        "paper quotes Adar–Huberman (2000): ~70% free riders, ~50% of responses from the top 1%."
    );
}
