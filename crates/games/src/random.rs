//! Random game generation, used by the benches and the property tests
//! (parallel vs. sequential equivalence on arbitrary games).

use crate::normal_form::NormalFormGame;
use crate::Utility;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a dense normal-form game with the given per-player action
/// counts and i.i.d. integer payoffs in `[-5, 5]` (integer payoffs keep the
/// epsilon comparisons of the solution concepts crisp). Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `radices` is empty or contains a zero.
pub fn random_game(seed: u64, radices: &[usize]) -> NormalFormGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let total: usize = radices.iter().product();
    assert!(
        !radices.is_empty() && total > 0,
        "random_game needs at least one player and one action each"
    );
    let actions: Vec<Vec<String>> = radices
        .iter()
        .map(|&r| (0..r).map(|a| format!("a{a}")).collect())
        .collect();
    let payoffs: Vec<Vec<Utility>> = (0..radices.len())
        .map(|_| {
            (0..total)
                .map(|_| rng.random_range(-5i32..=5) as Utility)
                .collect()
        })
        .collect();
    NormalFormGame::new(format!("random(seed={seed})"), actions, payoffs)
        .expect("generated tensors are well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_game_is_deterministic_and_well_formed() {
        let a = random_game(7, &[2, 3, 4]);
        let b = random_game(7, &[2, 3, 4]);
        assert_eq!(a, b);
        assert_eq!(a.num_players(), 3);
        assert_eq!(a.num_profiles(), 24);
        let c = random_game(8, &[2, 3, 4]);
        assert_ne!(a, c);
        for p in 0..3 {
            for flat in 0..a.num_profiles() {
                let u = a.payoff_by_index(p, flat);
                assert!((-5.0..=5.0).contains(&u));
                assert_eq!(u, u.round());
            }
        }
    }
}
