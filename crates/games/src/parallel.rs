//! Chunked multi-threaded search over the flat profile space (the
//! `parallel` feature).
//!
//! The build environment is offline, so instead of rayon this module uses
//! `std::thread::scope` directly: the flat index space `0..total` is split
//! into one contiguous chunk per worker, each worker runs an
//! allocation-free cursor over its chunk, and results are combined in chunk
//! order. Two primitives cover every parallel search in the workspace:
//!
//! * [`collect_chunked`] — map each chunk to a `Vec` of hits and
//!   concatenate in chunk order, so the output is **bit-identical** to the
//!   sequential sweep;
//! * [`find_first`] — deterministic first-witness search: the result is
//!   always the hit with the **lowest flat index**, independent of thread
//!   timing, because each worker reports its chunk-local minimum and
//!   workers abandon chunks that can no longer contain the global minimum.
//!
//! Worker count defaults to the machine's available parallelism and can be
//! pinned with the `BNE_THREADS` environment variable (useful for
//! reproducible benchmarking).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads used by the parallel searches: `BNE_THREADS`
/// if set to a positive integer, otherwise
/// `std::thread::available_parallelism`. Cached after the first call —
/// `available_parallelism` re-reads cgroup limits on every invocation,
/// which would dwarf a small search.
pub fn num_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("BNE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Minimum number of flat indices per worker before a second thread is
/// worth its spawn cost *for cheap per-index work* (a pure-Nash check is
/// tens of nanoseconds); spaces smaller than `2 * MIN_CHUNK` run inline.
/// Searches whose per-index cost is exponential (the coalition sweeps in
/// `bne-robust`) bypass this heuristic via [`costly_workers`].
const MIN_CHUNK: usize = 1024;

/// Effective worker count for a space of `total` indices of **cheap**
/// per-index work (a per-profile check of tens of nanoseconds): capped
/// both by [`num_threads`] and by the amount of work available.
pub fn cheap_workers(total: usize) -> usize {
    num_threads().min(total / MIN_CHUNK).max(1)
}

/// Worker count for searches whose per-index cost dwarfs thread spawn
/// (coalition/deviation sweeps): every available thread, as long as each
/// gets at least a handful of indices.
pub fn costly_workers(total: usize) -> usize {
    num_threads().min(total / 4).max(1)
}

/// Splits `0..total` into at most `workers` contiguous, near-equal chunks
/// (never empty; fewer chunks when `total` is small).
pub fn chunks(total: usize, workers: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(total);
    let base = total / workers;
    let extra = total % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `map` over each chunk of `0..total` on its own thread and
/// concatenates the results **in chunk order**, which makes the output
/// identical to running `map(0..total)` sequentially whenever `map` visits
/// indices in ascending order.
pub fn collect_chunked<T, F>(total: usize, map: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    collect_chunked_with(total, cheap_workers(total), map)
}

/// [`collect_chunked`] with an explicit worker count (used by the tests to
/// exercise the multi-threaded path on any machine, and by callers that
/// know their per-index cost is large enough to ignore the work heuristic).
pub fn collect_chunked_with<T, F>(total: usize, workers: usize, map: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let mut chunk_list = chunks(total, workers);
    if chunk_list.len() <= 1 {
        // Hand the single chunk straight to `map`: no re-collect.
        return match chunk_list.pop() {
            Some(range) => map(range),
            None => Vec::new(),
        };
    }
    let mut results: Vec<Vec<T>> = Vec::with_capacity(chunk_list.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunk_list
            .into_iter()
            .map(|range| scope.spawn(|| map(range)))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel search worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Deterministic parallel first-witness search: returns the lowest flat
/// index in `0..total` satisfying `pred`, or `None`.
///
/// `pred` receives the flat index and a *cut-off* — the lowest witness any
/// worker has found so far. Chunks whose start lies above the cut-off are
/// abandoned (they cannot contain the global minimum), which is what makes
/// the parallel search faster than "scan everything" while keeping the
/// returned witness identical to the sequential one.
pub fn find_first<F>(total: usize, pred: F) -> Option<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    find_first_with(total, cheap_workers(total), pred)
}

/// [`find_first`] with an explicit worker count (see
/// [`collect_chunked_with`]).
pub fn find_first_with<F>(total: usize, workers: usize, pred: F) -> Option<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    let chunk_list = chunks(total, workers);
    if chunk_list.len() <= 1 {
        return chunk_list.into_iter().flatten().find(|&flat| pred(flat));
    }
    let best = AtomicUsize::new(usize::MAX);
    std::thread::scope(|scope| {
        for range in chunk_list {
            let best = &best;
            let pred = &pred;
            scope.spawn(move || {
                if range.start >= best.load(Ordering::Relaxed) {
                    return;
                }
                for flat in range {
                    // A lower witness elsewhere makes the rest of this
                    // chunk irrelevant.
                    if flat >= best.load(Ordering::Relaxed) {
                        return;
                    }
                    if pred(flat) {
                        best.fetch_min(flat, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    match best.load(Ordering::Relaxed) {
        usize::MAX => None,
        flat => Some(flat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_space_exactly() {
        for total in [0usize, 1, 5, 16, 97] {
            for workers in [1usize, 2, 3, 8, 200] {
                let cs = chunks(total, workers);
                let mut covered = 0;
                let mut expected_start = 0;
                for c in &cs {
                    assert_eq!(c.start, expected_start);
                    assert!(!c.is_empty());
                    covered += c.len();
                    expected_start = c.end;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn collect_chunked_matches_sequential_order() {
        let hits = collect_chunked(1000, |range| {
            range.filter(|i| i % 7 == 0).collect::<Vec<_>>()
        });
        let expected: Vec<usize> = (0..1000).filter(|i| i % 7 == 0).collect();
        assert_eq!(hits, expected);
        // force real threads regardless of the machine / work heuristic
        let threaded = collect_chunked_with(1000, 7, |range| {
            range.filter(|i| i % 7 == 0).collect::<Vec<_>>()
        });
        assert_eq!(threaded, expected);
    }

    #[test]
    fn find_first_returns_lowest_witness() {
        assert_eq!(find_first(10_000, |i| i % 997 == 41), Some(41));
        assert_eq!(find_first(10_000, |_| false), None);
        assert_eq!(find_first(0, |_| true), None);
        assert_eq!(find_first(1, |i| i == 0), Some(0));
        // multi-threaded path: a later chunk contains an earlier-looking
        // witness only in flat order; the lowest index must still win
        for workers in [2, 3, 8] {
            assert_eq!(
                find_first_with(10_000, workers, |i| i % 997 == 41),
                Some(41)
            );
            assert_eq!(
                find_first_with(10_000, workers, |i| i >= 4_999),
                Some(4_999)
            );
            assert_eq!(find_first_with(10_000, workers, |_| false), None);
        }
    }
}
