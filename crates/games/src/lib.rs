//! # bne-games
//!
//! Finite game representations used throughout the `beyond-nash` workspace:
//!
//! * [`NormalFormGame`] — strategic-form games with an arbitrary (finite)
//!   number of players and actions, stored as dense payoff tensors;
//! * [`MixedStrategy`] / [`MixedProfile`] — randomized strategies and the
//!   expected-utility machinery over them;
//! * [`BayesianGame`] — games of incomplete information with finite type
//!   spaces and a common prior, the setting used by the paper for both the
//!   mediator results (Section 2) and machine games (Section 3);
//! * [`ExtensiveGame`] — finite extensive-form games with chance moves and
//!   information sets, the setting for games with awareness (Section 4);
//! * [`repeated`] — finitely repeated games with discounting, used for
//!   finitely repeated prisoner's dilemma;
//! * [`classic`] — the zoo of concrete games that appear in the paper
//!   (prisoner's dilemma, roshambo, the 0/1 coordination example, the
//!   bargaining example, attack/retreat, the Figure 1 game, ...).
//!
//! * [`oracle`] — the [`DeviationOracle`]: the shared, pruned
//!   deviation-search core (best-response certificate tables, iterated
//!   pre-elimination, incremental flat-index sweeps) that `bne-solvers`,
//!   `bne-robust` and `bne-mediator` run their searches through;
//! * [`backend`] — the [`PayoffBackend`] abstraction over payoff queries:
//!   the dense tensor backend plus the utility-locality [`LocalBackend`]
//!   whose memory is O(players · neighborhood) instead of O(∏ actions);
//! * [`sampled`] — the [`SampledOracle`]: seeded sampled deviation audits
//!   producing ε-equilibrium certificates with (ε, δ) confidence bounds
//!   over any payoff backend, bit-identical sequential/parallel.
//!
//! All games are finite and use `f64` utilities. Beyond the oracle's
//! deviation predicates the crate is free of equilibrium computation:
//! solvers live in `bne-solvers`, and the paper's new solution concepts
//! live in `bne-robust`, `bne-machine` and `bne-awareness`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bayesian;
pub mod classic;
pub mod error;
pub mod extensive;
pub mod mixed;
pub mod normal_form;
pub mod oracle;
#[cfg(feature = "parallel")]
pub mod parallel;
pub mod profile;
pub mod random;
pub mod repeated;
pub mod sampled;
pub mod search;

pub use backend::{DenseBackend, LocalBackend, PayoffBackend, ProfileView};
pub use bayesian::{BayesianGame, BayesianStrategy, TypeDistribution};
pub use error::GameError;
pub use extensive::{ExtensiveGame, Node, NodeId, Outcome, PureBehaviorStrategy};
pub use mixed::{MixedProfile, MixedStrategy};
pub use normal_form::{NormalFormBuilder, NormalFormGame};
pub use oracle::{DeviationOracle, ResilienceVariant, SearchStrategy};
pub use profile::{ActionProfile, ProfileIter};
pub use sampled::{AuditSpec, SampledAudit, SampledCertificate, SampledDeviation, SampledOracle};

/// Index of a player in a game (0-based).
pub type PlayerId = usize;

/// Index of an action in a player's action set (0-based).
pub type ActionId = usize;

/// Index of a type in a player's type space (0-based).
pub type TypeId = usize;

/// Utility value. All payoffs in the workspace are `f64`.
pub type Utility = f64;

/// Numerical tolerance used when comparing utilities for equilibrium checks.
///
/// Two utilities within `EPSILON` of each other are treated as equal, so a
/// profile counts as an equilibrium when no deviation gains more than
/// `EPSILON`.
pub const EPSILON: f64 = 1e-9;
