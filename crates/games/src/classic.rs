//! The zoo of concrete games that appear in the paper (plus a few standard
//! companions used in tests and benchmarks).
//!
//! * [`prisoners_dilemma`] — the payoff table of Section 3;
//! * [`roshambo`] — rock-paper-scissors of Example 3.3;
//! * [`coordination_game`] — the n-player 0/1 game of Section 2 showing a
//!   Nash equilibrium that is not 2-resilient;
//! * [`bargaining_game`] — the n-player stay/leave game of Section 2 showing
//!   an equilibrium that is k-resilient for every k but not 1-immune;
//! * [`attack_retreat_game`] — the normal-form skeleton of Byzantine
//!   agreement used to motivate mediators;
//! * [`figure1_game`] — the extensive-form game of Figure 1 used to motivate
//!   awareness.

use crate::extensive::{ExtensiveGame, Node};
use crate::normal_form::{NormalFormBuilder, NormalFormGame};
use crate::profile::ProfileIter;

/// The prisoner's dilemma exactly as tabulated in Section 3 of the paper.
///
/// Action 0 is Cooperate, action 1 is Defect.
///
/// ```text
///          C           D
///  C    (3, 3)     (-5, 5)
///  D    (5, -5)    (-3, -3)
/// ```
pub fn prisoners_dilemma() -> NormalFormGame {
    NormalFormBuilder::new("prisoner's dilemma")
        .player("Row", &["Cooperate", "Defect"])
        .player("Column", &["Cooperate", "Defect"])
        .payoff(&[0, 0], &[3.0, 3.0])
        .payoff(&[0, 1], &[-5.0, 5.0])
        .payoff(&[1, 0], &[5.0, -5.0])
        .payoff(&[1, 1], &[-3.0, -3.0])
        .build()
        .expect("static game construction cannot fail")
}

/// A conventional prisoner's dilemma with non-negative payoffs
/// (T=5, R=3, P=1, S=0), used by the Axelrod tournament experiments where
/// cumulative scores are conventionally non-negative.
pub fn prisoners_dilemma_axelrod() -> NormalFormGame {
    NormalFormBuilder::new("prisoner's dilemma (Axelrod payoffs)")
        .player("Row", &["Cooperate", "Defect"])
        .player("Column", &["Cooperate", "Defect"])
        .payoff(&[0, 0], &[3.0, 3.0])
        .payoff(&[0, 1], &[0.0, 5.0])
        .payoff(&[1, 0], &[5.0, 0.0])
        .payoff(&[1, 1], &[1.0, 1.0])
        .build()
        .expect("static game construction cannot fail")
}

/// Rock–paper–scissors (roshambo) as in Example 3.3: actions 0, 1, 2 and
/// player 1 wins when `i = j ⊕ 1` (addition mod 3). Zero-sum.
pub fn roshambo() -> NormalFormGame {
    let mut b = NormalFormBuilder::new("roshambo")
        .player("P1", &["Rock", "Paper", "Scissors"])
        .player("P2", &["Rock", "Paper", "Scissors"]);
    for i in 0..3usize {
        for j in 0..3usize {
            let u1 = if i == (j + 1) % 3 {
                1.0
            } else if j == (i + 1) % 3 {
                -1.0
            } else {
                0.0
            };
            b = b.payoff(&[i, j], &[u1, -u1]);
        }
    }
    b.build().expect("static game construction cannot fail")
}

/// Matching pennies: the even player wins when the coins match.
pub fn matching_pennies() -> NormalFormGame {
    NormalFormBuilder::new("matching pennies")
        .player("Even", &["Heads", "Tails"])
        .player("Odd", &["Heads", "Tails"])
        .payoff(&[0, 0], &[1.0, -1.0])
        .payoff(&[0, 1], &[-1.0, 1.0])
        .payoff(&[1, 0], &[-1.0, 1.0])
        .payoff(&[1, 1], &[1.0, -1.0])
        .build()
        .expect("static game construction cannot fail")
}

/// Battle of the sexes: two pure equilibria with asymmetric payoffs, used to
/// illustrate the "which equilibrium will be played?" critique in the
/// introduction.
pub fn battle_of_the_sexes() -> NormalFormGame {
    NormalFormBuilder::new("battle of the sexes")
        .player("P1", &["Ballet", "Football"])
        .player("P2", &["Ballet", "Football"])
        .payoff(&[0, 0], &[2.0, 1.0])
        .payoff(&[1, 1], &[1.0, 2.0])
        .payoff(&[0, 1], &[0.0, 0.0])
        .payoff(&[1, 0], &[0.0, 0.0])
        .build()
        .expect("static game construction cannot fail")
}

/// The n-player 0/1 coordination example from Section 2 of the paper.
///
/// Every player plays 0 or 1.
///
/// * If everyone plays 0, everyone gets 1.
/// * If exactly two players play 1 (and the rest 0), those two get 2 and
///   everyone else gets 0.
/// * Otherwise everyone gets 0.
///
/// "All play 0" is a Nash equilibrium, but any *pair* of players can deviate
/// together and both do better — it is not 2-resilient.
pub fn coordination_game(n: usize) -> NormalFormGame {
    assert!(n > 1, "the coordination example needs more than one player");
    let actions = vec![vec!["0".to_string(), "1".to_string()]; n];
    let radices = vec![2usize; n];
    let mut payoffs = vec![Vec::with_capacity(1 << n); n];
    for profile in ProfileIter::new(&radices) {
        let ones: Vec<usize> = profile
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == 1)
            .map(|(p, _)| p)
            .collect();
        for (p, table) in payoffs.iter_mut().enumerate() {
            let u = if ones.is_empty() {
                1.0
            } else if ones.len() == 2 {
                if ones.contains(&p) {
                    2.0
                } else {
                    0.0
                }
            } else {
                0.0
            };
            table.push(u);
        }
    }
    NormalFormGame::new(format!("0/1 coordination (n = {n})"), actions, payoffs)
        .expect("static game construction cannot fail")
}

/// The n-player bargaining example from Section 2 of the paper.
///
/// Every player decides to Stay (action 0) at the bargaining table or Leave
/// (action 1).
///
/// * If everyone stays, everyone gets 2.
/// * If anyone leaves, the leavers get 1 and the stayers get 0.
///
/// "Everyone stays" is k-resilient for every k (deviating coalitions go from
/// 2 down to 1) and Pareto optimal, yet it is not 1-immune: a single
/// deviator drops every non-deviator from 2 to 0.
pub fn bargaining_game(n: usize) -> NormalFormGame {
    assert!(n > 1, "the bargaining example needs more than one player");
    let actions = vec![vec!["Stay".to_string(), "Leave".to_string()]; n];
    let radices = vec![2usize; n];
    let mut payoffs = vec![Vec::with_capacity(1 << n); n];
    for profile in ProfileIter::new(&radices) {
        let any_left = profile.contains(&1);
        for (p, table) in payoffs.iter_mut().enumerate() {
            let u = if !any_left {
                2.0
            } else if profile[p] == 1 {
                1.0
            } else {
                0.0
            };
            table.push(u);
        }
    }
    NormalFormGame::new(format!("bargaining (n = {n})"), actions, payoffs)
        .expect("static game construction cannot fail")
}

/// A normal-form skeleton of the Byzantine-agreement "attack/retreat" game.
///
/// Every player chooses Attack (0) or Retreat (1). Nonfaulty players want to
/// coordinate: if all `n` players choose the same action everyone gets 1,
/// otherwise everyone gets 0. (The full Bayesian game with the general's
/// preference as a type lives in `bne-mediator`.)
pub fn attack_retreat_game(n: usize) -> NormalFormGame {
    assert!(n > 1, "attack/retreat needs more than one player");
    let actions = vec![vec!["Attack".to_string(), "Retreat".to_string()]; n];
    let radices = vec![2usize; n];
    let mut payoffs = vec![Vec::with_capacity(1 << n); n];
    for profile in ProfileIter::new(&radices) {
        let all_same = profile.iter().all(|&a| a == profile[0]);
        for table in payoffs.iter_mut() {
            table.push(if all_same { 1.0 } else { 0.0 });
        }
    }
    NormalFormGame::new(format!("attack/retreat (n = {n})"), actions, payoffs)
        .expect("static game construction cannot fail")
}

/// The primality-guessing game of Example 3.1 in normal form (one player).
///
/// Action 0 = guess "prime", action 1 = guess "composite", action 2 = play
/// safe. `is_prime` says whether the hidden number actually is prime. A
/// correct guess pays 10, a wrong guess −10, playing safe pays 1. (The
/// computational version with machine costs lives in `bne-machine`.)
pub fn primality_game(is_prime: bool) -> NormalFormGame {
    let (u_prime, u_composite) = if is_prime {
        (10.0, -10.0)
    } else {
        (-10.0, 10.0)
    };
    NormalFormBuilder::new("primality guessing")
        .player("Guesser", &["SayPrime", "SayComposite", "PlaySafe"])
        .payoff(&[0], &[u_prime])
        .payoff(&[1], &[u_composite])
        .payoff(&[2], &[1.0])
        .build()
        .expect("static game construction cannot fail")
}

/// The extensive-form game of Figure 1 in the paper (payoffs follow the
/// Halpern–Rêgo example the figure is taken from).
///
/// * Player A moves first: `downA` ends the game with payoffs (1, 1);
///   `acrossA` passes the move to B.
/// * Player B then chooses `downB`, giving (2, 3), or `acrossB`, giving
///   (0, 2).
///
/// The Nash equilibrium highlighted in the paper is (acrossA, downB). If A
/// is unaware that B can play `downB`, A expects `acrossB` after `acrossA`
/// (payoff 0 for A) and therefore plays `downA`.
///
/// Information set 0 belongs to A, information set 1 to B. Action index 0 is
/// "down", action index 1 is "across" for both players.
pub fn figure1_game() -> ExtensiveGame {
    let nodes = vec![
        // 0: A moves
        Node::Decision {
            player: 0,
            info_set: 0,
            actions: vec![("downA".to_string(), 1), ("acrossA".to_string(), 2)],
        },
        // 1: A went down
        Node::Terminal {
            payoffs: vec![1.0, 1.0],
        },
        // 2: B moves
        Node::Decision {
            player: 1,
            info_set: 1,
            actions: vec![("downB".to_string(), 3), ("acrossB".to_string(), 4)],
        },
        // 3: B went down
        Node::Terminal {
            payoffs: vec![2.0, 3.0],
        },
        // 4: B went across
        Node::Terminal {
            payoffs: vec![0.0, 2.0],
        },
    ];
    ExtensiveGame::new("Figure 1 game", 2, nodes, 0).expect("static game construction cannot fail")
}

/// The Figure 1 game as seen by a player who is **unaware** of B's `downB`
/// move (the game ΓB of Figure 3): B's only move after `acrossA` is
/// `acrossB`.
pub fn figure1_game_unaware() -> ExtensiveGame {
    let nodes = vec![
        Node::Decision {
            player: 0,
            info_set: 0,
            actions: vec![("downA".to_string(), 1), ("acrossA".to_string(), 2)],
        },
        Node::Terminal {
            payoffs: vec![1.0, 1.0],
        },
        Node::Decision {
            player: 1,
            info_set: 1,
            actions: vec![("acrossB".to_string(), 3)],
        },
        Node::Terminal {
            payoffs: vec![0.0, 2.0],
        },
    ];
    ExtensiveGame::new("Figure 1 game (unaware of downB)", 2, nodes, 0)
        .expect("static game construction cannot fail")
}

/// A two-player, three-action zero-sum game with a known mixed equilibrium,
/// used as solver test material (it is roshambo with asymmetric stakes).
pub fn weighted_roshambo() -> NormalFormGame {
    let mut b = NormalFormBuilder::new("weighted roshambo")
        .player("P1", &["Rock", "Paper", "Scissors"])
        .player("P2", &["Rock", "Paper", "Scissors"]);
    // winning with rock pays 2, otherwise 1
    for i in 0..3usize {
        for j in 0..3usize {
            let u1 = if i == (j + 1) % 3 {
                if i == 0 {
                    2.0
                } else {
                    1.0
                }
            } else if j == (i + 1) % 3 {
                if j == 0 {
                    -2.0
                } else {
                    -1.0
                }
            } else {
                0.0
            };
            b = b.payoff(&[i, j], &[u1, -u1]);
        }
    }
    b.build().expect("static game construction cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pd_matches_paper_table() {
        let pd = prisoners_dilemma();
        assert_eq!(pd.payoff_vector(&[0, 0]), vec![3.0, 3.0]);
        assert_eq!(pd.payoff_vector(&[0, 1]), vec![-5.0, 5.0]);
        assert_eq!(pd.payoff_vector(&[1, 0]), vec![5.0, -5.0]);
        assert_eq!(pd.payoff_vector(&[1, 1]), vec![-3.0, -3.0]);
    }

    #[test]
    fn roshambo_is_zero_sum_with_cyclic_wins() {
        let g = roshambo();
        assert!(g.is_zero_sum());
        // paper convention: player 1 wins when i = j ⊕ 1
        assert_eq!(g.payoff(0, &[1, 0]), 1.0); // paper beats rock
        assert_eq!(g.payoff(0, &[2, 1]), 1.0); // scissors beats paper
        assert_eq!(g.payoff(0, &[0, 2]), 1.0); // rock beats scissors
        assert_eq!(g.payoff(0, &[0, 0]), 0.0);
        // no pure equilibrium
        assert!(g.profiles().all(|p| !g.is_pure_nash(&p)));
    }

    #[test]
    fn coordination_all_zero_is_nash_with_pair_deviation_gain() {
        let g = coordination_game(5);
        let all_zero = vec![0; 5];
        assert!(g.is_pure_nash(&all_zero));
        assert_eq!(g.payoff(0, &all_zero), 1.0);
        // if players 0 and 1 both deviate to 1 they get 2
        let mut dev = all_zero.clone();
        dev[0] = 1;
        dev[1] = 1;
        assert_eq!(g.payoff(0, &dev), 2.0);
        assert_eq!(g.payoff(1, &dev), 2.0);
        assert_eq!(g.payoff(2, &dev), 0.0);
    }

    #[test]
    fn coordination_single_deviation_does_not_pay() {
        let g = coordination_game(4);
        let mut one_dev = vec![0; 4];
        one_dev[2] = 1;
        assert_eq!(g.payoff(2, &one_dev), 0.0);
    }

    #[test]
    fn bargaining_everyone_staying_is_nash_and_pareto() {
        let g = bargaining_game(6);
        let all_stay = vec![0; 6];
        assert!(g.is_pure_nash(&all_stay));
        assert!(g.is_pareto_optimal(&all_stay));
        assert_eq!(g.payoff(0, &all_stay), 2.0);
        // a single leaver gets 1 and hurts everyone else
        let mut one_leaves = all_stay.clone();
        one_leaves[3] = 1;
        assert_eq!(g.payoff(3, &one_leaves), 1.0);
        assert_eq!(g.payoff(0, &one_leaves), 0.0);
    }

    #[test]
    fn attack_retreat_coordinated_profiles_are_equilibria() {
        let g = attack_retreat_game(4);
        assert!(g.is_pure_nash(&[0; 4]));
        assert!(g.is_pure_nash(&[1; 4]));
        // one lone dissenter can switch and restore unanimity, so a
        // 3-vs-1 split is not an equilibrium
        assert!(!g.is_pure_nash(&[0, 0, 0, 1]));
    }

    #[test]
    fn primality_game_unique_best_action_is_truth() {
        let g = primality_game(true);
        assert!(g.is_pure_nash(&[0]));
        assert!(!g.is_pure_nash(&[2]));
        let g = primality_game(false);
        assert!(g.is_pure_nash(&[1]));
    }

    #[test]
    fn figure1_unaware_variant_has_single_b_move() {
        let g = figure1_game_unaware();
        let sets = g.info_sets_of(1);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].1, 1);
        // backward induction now sends A down
        let (strategy, values) = g.backward_induction().unwrap();
        assert_eq!(strategy.get(0), Some(0));
        assert_eq!(values, vec![1.0, 1.0]);
    }

    #[test]
    fn battle_of_sexes_has_two_pure_equilibria() {
        let g = battle_of_the_sexes();
        let eq: Vec<_> = g.profiles().filter(|p| g.is_pure_nash(p)).collect();
        assert_eq!(eq.len(), 2);
    }

    #[test]
    fn weighted_roshambo_zero_sum() {
        assert!(weighted_roshambo().is_zero_sum());
    }

    #[test]
    fn axelrod_pd_defect_dominates() {
        let g = prisoners_dilemma_axelrod();
        assert!(g.strictly_dominates(0, 1, 0));
        assert!(g.is_pure_nash(&[1, 1]));
    }
}
