//! Bayesian games: finite games of incomplete information with a common
//! prior over type profiles.
//!
//! This is the setting Halpern uses both for the mediator results
//! (Section 2, e.g. Byzantine agreement where the general's type is his
//! initial preference) and for machine games (Section 3, where a player's
//! type is the input to her Turing machine).

use crate::error::GameError;
use crate::profile::{profile_to_index, ProfileIter};
use crate::{ActionId, PlayerId, TypeId, Utility, EPSILON};
use rand::{Rng, RngExt};

/// A joint probability distribution over type profiles.
///
/// Stored densely: one probability per type profile, laid out in the same
/// odometer order as [`ProfileIter`]. Supports arbitrary correlation between
/// players' types (needed, e.g., to model "all non-general players have a
/// single dummy type").
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDistribution {
    type_counts: Vec<usize>,
    probs: Vec<f64>,
}

impl TypeDistribution {
    /// Creates a distribution from explicit probabilities over type
    /// profiles.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidDistribution`] if probabilities are
    /// negative or don't sum to 1, and [`GameError::DimensionMismatch`] if
    /// the vector length doesn't match the number of type profiles.
    pub fn new(type_counts: Vec<usize>, probs: Vec<f64>) -> Result<Self, GameError> {
        let expected: usize = if type_counts.is_empty() {
            0
        } else {
            type_counts.iter().product()
        };
        if probs.len() != expected {
            return Err(GameError::DimensionMismatch {
                expected,
                found: probs.len(),
            });
        }
        if probs.iter().any(|p| !p.is_finite() || *p < -1e-12) {
            return Err(GameError::InvalidDistribution {
                reason: "negative or non-finite probability".to_string(),
            });
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(GameError::InvalidDistribution {
                reason: format!("type probabilities sum to {sum}, expected 1"),
            });
        }
        Ok(TypeDistribution { type_counts, probs })
    }

    /// An independent product distribution: `marginals[p][t]` is the
    /// probability that player `p` has type `t`.
    ///
    /// # Errors
    ///
    /// Returns an error if any marginal is not a valid distribution.
    pub fn independent(marginals: &[Vec<f64>]) -> Result<Self, GameError> {
        let type_counts: Vec<usize> = marginals.iter().map(|m| m.len()).collect();
        for (p, m) in marginals.iter().enumerate() {
            if m.is_empty() {
                return Err(GameError::EmptyGame {
                    reason: format!("player {p} has an empty type marginal"),
                });
            }
            let sum: f64 = m.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || m.iter().any(|p| *p < -1e-12) {
                return Err(GameError::InvalidDistribution {
                    reason: format!("marginal of player {p} is not a distribution"),
                });
            }
        }
        let mut probs = Vec::with_capacity(type_counts.iter().product());
        for profile in ProfileIter::new(&type_counts) {
            let pr: f64 = profile
                .iter()
                .enumerate()
                .map(|(p, &t)| marginals[p][t])
                .product();
            probs.push(pr);
        }
        Ok(TypeDistribution { type_counts, probs })
    }

    /// A point-mass distribution on the single type profile where everyone
    /// has type 0 (useful for complete-information games embedded as
    /// Bayesian games).
    pub fn trivial(num_players: usize) -> Self {
        TypeDistribution {
            type_counts: vec![1; num_players],
            probs: vec![1.0],
        }
    }

    /// Per-player type counts.
    pub fn type_counts(&self) -> &[usize] {
        &self.type_counts
    }

    /// Probability of the given type profile.
    pub fn prob(&self, types: &[TypeId]) -> f64 {
        self.probs[profile_to_index(types, &self.type_counts)]
    }

    /// Iterator over all type profiles with positive probability, together
    /// with their probabilities.
    pub fn support(&self) -> Vec<(Vec<TypeId>, f64)> {
        ProfileIter::new(&self.type_counts)
            .filter_map(|t| {
                let p = self.prob(&t);
                if p > 0.0 {
                    Some((t, p))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Samples a type profile.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<TypeId> {
        let x: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        let mut last = vec![0; self.type_counts.len()];
        for t in ProfileIter::new(&self.type_counts) {
            acc += self.prob(&t);
            last = t;
            if x < acc {
                return last;
            }
        }
        last
    }

    /// Conditional probability of the full profile `types` given that player
    /// `player` has type `types[player]` (Bayesian updating for interim
    /// expected utility). Returns 0 if the conditioning event has
    /// probability 0.
    pub fn conditional_prob(&self, player: PlayerId, types: &[TypeId]) -> f64 {
        let marginal: f64 = ProfileIter::new(&self.type_counts)
            .filter(|t| t[player] == types[player])
            .map(|t| self.prob(&t))
            .sum();
        if marginal <= 0.0 {
            0.0
        } else {
            self.prob(types) / marginal
        }
    }
}

/// The boxed utility callback of a [`BayesianGame`].
type UtilityFn = Box<dyn Fn(PlayerId, &[TypeId], &[ActionId]) -> Utility + Send + Sync>;

/// A finite Bayesian game.
///
/// Each player has a finite type space and a finite action set; utilities
/// depend on the full type profile and action profile. Payoffs are provided
/// through a boxed function so that games with large implicit payoff
/// structure (e.g. Byzantine agreement with many players) don't need a dense
/// tensor.
pub struct BayesianGame {
    name: String,
    type_counts: Vec<usize>,
    action_counts: Vec<usize>,
    prior: TypeDistribution,
    utility: UtilityFn,
}

impl std::fmt::Debug for BayesianGame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesianGame")
            .field("name", &self.name)
            .field("type_counts", &self.type_counts)
            .field("action_counts", &self.action_counts)
            .finish_non_exhaustive()
    }
}

impl BayesianGame {
    /// Creates a Bayesian game.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes are inconsistent or empty.
    pub fn new(
        name: impl Into<String>,
        action_counts: Vec<usize>,
        prior: TypeDistribution,
        utility: impl Fn(PlayerId, &[TypeId], &[ActionId]) -> Utility + Send + Sync + 'static,
    ) -> Result<Self, GameError> {
        let type_counts = prior.type_counts().to_vec();
        if action_counts.is_empty() {
            return Err(GameError::EmptyGame {
                reason: "no players".to_string(),
            });
        }
        if action_counts.len() != type_counts.len() {
            return Err(GameError::DimensionMismatch {
                expected: type_counts.len(),
                found: action_counts.len(),
            });
        }
        if let Some(p) = action_counts.iter().position(|&a| a == 0) {
            return Err(GameError::EmptyGame {
                reason: format!("player {p} has no actions"),
            });
        }
        Ok(BayesianGame {
            name: name.into(),
            type_counts,
            action_counts,
            prior,
            utility: Box::new(utility),
        })
    }

    /// The game's descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.action_counts.len()
    }

    /// Number of types of `player`.
    pub fn num_types(&self, player: PlayerId) -> usize {
        self.type_counts[player]
    }

    /// Number of actions of `player`.
    pub fn num_actions(&self, player: PlayerId) -> usize {
        self.action_counts[player]
    }

    /// Per-player action counts.
    pub fn action_counts(&self) -> &[usize] {
        &self.action_counts
    }

    /// Per-player type counts.
    pub fn type_counts(&self) -> &[usize] {
        &self.type_counts
    }

    /// The common prior over type profiles.
    pub fn prior(&self) -> &TypeDistribution {
        &self.prior
    }

    /// Utility of `player` when types are `types` and actions are `actions`.
    pub fn utility(&self, player: PlayerId, types: &[TypeId], actions: &[ActionId]) -> Utility {
        (self.utility)(player, types, actions)
    }

    /// Ex-ante expected utility of `player` under the pure Bayesian strategy
    /// profile `strategies` (each maps a player's type to an action).
    pub fn expected_utility(&self, player: PlayerId, strategies: &[BayesianStrategy]) -> Utility {
        let mut total = 0.0;
        for (types, pr) in self.prior.support() {
            let actions: Vec<ActionId> = strategies
                .iter()
                .enumerate()
                .map(|(p, s)| s.action(types[p]))
                .collect();
            total += pr * self.utility(player, &types, &actions);
        }
        total
    }

    /// Interim expected utility of `player` of following `own` when her type
    /// is `own_type` and the others follow `strategies` (whose entry for
    /// `player` is ignored).
    pub fn interim_utility(
        &self,
        player: PlayerId,
        own_type: TypeId,
        own: &BayesianStrategy,
        strategies: &[BayesianStrategy],
    ) -> Utility {
        let mut total = 0.0;
        for (types, _) in self.prior.support() {
            if types[player] != own_type {
                continue;
            }
            let cond = self.prior.conditional_prob(player, &types);
            if cond <= 0.0 {
                continue;
            }
            let actions: Vec<ActionId> = (0..self.num_players())
                .map(|p| {
                    if p == player {
                        own.action(types[p])
                    } else {
                        strategies[p].action(types[p])
                    }
                })
                .collect();
            total += cond * self.utility(player, &types, &actions);
        }
        total
    }

    /// Whether the pure strategy profile is a Bayes–Nash equilibrium: for
    /// every player and every type with positive probability, the prescribed
    /// action is a best response in interim expected utility.
    pub fn is_bayes_nash(&self, strategies: &[BayesianStrategy]) -> bool {
        for player in 0..self.num_players() {
            for ty in 0..self.num_types(player) {
                // skip types with zero marginal probability
                let marginal: f64 = self
                    .prior
                    .support()
                    .iter()
                    .filter(|(t, _)| t[player] == ty)
                    .map(|(_, p)| *p)
                    .sum();
                if marginal <= 0.0 {
                    continue;
                }
                let current = self.interim_utility(player, ty, &strategies[player], strategies);
                for a in 0..self.num_actions(player) {
                    let mut deviant = strategies[player].clone();
                    deviant.set_action(ty, a);
                    let u = self.interim_utility(player, ty, &deviant, strategies);
                    if u > current + EPSILON {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// A pure Bayesian strategy: a map from a player's type to an action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BayesianStrategy {
    actions: Vec<ActionId>,
}

impl BayesianStrategy {
    /// Creates a strategy from an explicit type → action table.
    pub fn new(actions: Vec<ActionId>) -> Self {
        BayesianStrategy { actions }
    }

    /// The strategy that plays `action` for every type (useful for players
    /// with a single dummy type).
    pub fn constant(action: ActionId, num_types: usize) -> Self {
        BayesianStrategy {
            actions: vec![action; num_types.max(1)],
        }
    }

    /// Action prescribed for `ty`.
    pub fn action(&self, ty: TypeId) -> ActionId {
        self.actions[ty.min(self.actions.len() - 1)]
    }

    /// Overrides the action for one type.
    pub fn set_action(&mut self, ty: TypeId, action: ActionId) {
        self.actions[ty] = action;
    }

    /// Number of types this strategy is defined over.
    pub fn num_types(&self) -> usize {
        self.actions.len()
    }

    /// Enumerates every pure Bayesian strategy for a player with
    /// `num_types` types and `num_actions` actions.
    pub fn enumerate_all(num_types: usize, num_actions: usize) -> Vec<BayesianStrategy> {
        ProfileIter::new(&vec![num_actions; num_types])
            .map(BayesianStrategy::new)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn coordination_bayesian() -> BayesianGame {
        // Two players; player 0 has two equally likely types; both want to
        // match player 0's type (actions 0/1), getting 1 on a match else 0.
        let prior = TypeDistribution::independent(&[vec![0.5, 0.5], vec![1.0]]).unwrap();
        BayesianGame::new("type matching", vec![2, 2], prior, |_p, types, actions| {
            if actions[0] == types[0] && actions[1] == types[0] {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn type_distribution_validation() {
        assert!(TypeDistribution::new(vec![2], vec![0.4, 0.7]).is_err());
        assert!(TypeDistribution::new(vec![2], vec![0.4]).is_err());
        assert!(TypeDistribution::new(vec![2], vec![0.4, 0.6]).is_ok());
        assert!(TypeDistribution::independent(&[vec![0.3, 0.8]]).is_err());
    }

    #[test]
    fn independent_distribution_multiplies() {
        let d = TypeDistribution::independent(&[vec![0.25, 0.75], vec![0.5, 0.5]]).unwrap();
        assert!((d.prob(&[0, 0]) - 0.125).abs() < 1e-12);
        assert!((d.prob(&[1, 1]) - 0.375).abs() < 1e-12);
        let total: f64 = d.support().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_probability() {
        // correlated: types equal with prob 1/2 each of (0,0),(1,1)
        let d = TypeDistribution::new(vec![2, 2], vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        assert!((d.conditional_prob(0, &[0, 0]) - 1.0).abs() < 1e-12);
        assert_eq!(d.conditional_prob(0, &[0, 1]), 0.0);
    }

    #[test]
    fn sampling_matches_prior() {
        let d = TypeDistribution::independent(&[vec![0.2, 0.8]]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng)[0] == 1).count();
        assert!((ones as f64 / n as f64 - 0.8).abs() < 0.02);
    }

    #[test]
    fn truth_following_is_bayes_nash_in_matching_game() {
        let g = coordination_bayesian();
        // player 0 plays her type, player 1 can't see it; any constant for
        // player 1 gives her 1/2. Playing own type for p0 and constant 0 for
        // p1: p0's type-1 action matters — deviating to 0 when type is 1
        // yields same 0 utility (mismatch either way), so it's still an
        // equilibrium.
        let strategies = vec![
            BayesianStrategy::new(vec![0, 1]),
            BayesianStrategy::constant(0, 1),
        ];
        assert!(g.is_bayes_nash(&strategies));
        let eu = g.expected_utility(0, &strategies);
        assert!((eu - 0.5).abs() < 1e-9);
    }

    #[test]
    fn non_equilibrium_detected() {
        let g = coordination_bayesian();
        // player 0 always plays the opposite of her type when it is 0 —
        // wait, to make a clear non-equilibrium: p0 plays constant 1, p1
        // plays constant 0: they never match when type is 0; p1 deviating to
        // 1 would gain when type is 1. Current utility for p1: only type 1
        // matches p0's action 1 but p1 plays 0 → utility 0. Deviating to 1
        // gives 0.5.
        let strategies = vec![
            BayesianStrategy::constant(1, 2),
            BayesianStrategy::constant(0, 1),
        ];
        assert!(!g.is_bayes_nash(&strategies));
    }

    #[test]
    fn enumerate_all_strategies() {
        let all = BayesianStrategy::enumerate_all(2, 3);
        assert_eq!(all.len(), 9);
        let all = BayesianStrategy::enumerate_all(3, 2);
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn bayesian_game_shape_validation() {
        let prior = TypeDistribution::trivial(2);
        assert!(BayesianGame::new("bad", vec![2], prior.clone(), |_, _, _| 0.0).is_err());
        assert!(BayesianGame::new("bad", vec![2, 0], prior, |_, _, _| 0.0).is_err());
    }
}
