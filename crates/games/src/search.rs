//! Shared profile-space sweep helpers.
//!
//! Every "find all profiles satisfying X" / "find the first profile
//! satisfying X" search in the workspace (pure Nash, k-resilience,
//! t-immunity, (k,t)-robustness, punishment strategies) is the same shape:
//! a predicate on the flat profile index, swept sequentially with the
//! zero-allocation cursor or in parallel over contiguous chunks. These four
//! functions are that shape, written once.
//!
//! Results are deterministic: collection sweeps return profiles in flat
//! (odometer) order regardless of worker count, and first-witness sweeps
//! return the lowest flat index.

use crate::normal_form::NormalFormGame;
use crate::profile::ActionProfile;

/// All profiles whose flat index satisfies `pred`, in flat-index order.
pub fn find_profiles<F: Fn(usize) -> bool>(game: &NormalFormGame, pred: F) -> Vec<ActionProfile> {
    let mut out = Vec::new();
    game.visit_profiles(|profile, flat| {
        if pred(flat) {
            out.push(profile.to_vec());
        }
    });
    out
}

/// The profile with the lowest flat index satisfying `pred`, if any.
pub fn first_profile<F: Fn(usize) -> bool>(
    game: &NormalFormGame,
    pred: F,
) -> Option<ActionProfile> {
    let mut found = None;
    game.visit_profiles_while(|profile, flat| {
        if pred(flat) {
            found = Some(profile.to_vec());
            return false;
        }
        true
    });
    found
}

/// Parallel form of [`find_profiles`]: chunks the space across `workers`
/// threads and concatenates per-chunk hits in chunk order, so the output
/// is bit-identical to the sequential sweep.
#[cfg(feature = "parallel")]
pub fn find_profiles_parallel<F: Fn(usize) -> bool + Sync>(
    game: &NormalFormGame,
    workers: usize,
    pred: F,
) -> Vec<ActionProfile> {
    crate::parallel::collect_chunked_with(game.num_profiles(), workers, |range| {
        let mut hits = Vec::new();
        game.visit_profiles_in(range, |profile, flat| {
            if pred(flat) {
                hits.push(profile.to_vec());
            }
            true
        });
        hits
    })
}

/// Parallel form of [`first_profile`] with deterministic
/// lowest-flat-index-wins semantics.
#[cfg(feature = "parallel")]
pub fn first_profile_parallel<F: Fn(usize) -> bool + Sync>(
    game: &NormalFormGame,
    workers: usize,
    pred: F,
) -> Option<ActionProfile> {
    crate::parallel::find_first_with(game.num_profiles(), workers, pred)
        .map(|flat| game.profile_at(flat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_game;

    #[test]
    fn sequential_helpers_match_manual_sweeps() {
        let g = random_game(77, &[3, 2, 3]);
        let even = find_profiles(&g, |flat| flat % 2 == 0);
        let expected: Vec<_> = g
            .profiles()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, p)| p)
            .collect();
        assert_eq!(even, expected);
        assert_eq!(first_profile(&g, |flat| flat >= 7), Some(g.profile_at(7)));
        assert_eq!(first_profile(&g, |_| false), None);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_helpers_are_bit_identical_for_any_worker_count() {
        let g = random_game(78, &[2, 3, 2, 2]);
        for workers in [1, 2, 3, 8] {
            assert_eq!(
                find_profiles(&g, |flat| flat % 3 == 1),
                find_profiles_parallel(&g, workers, |flat| flat % 3 == 1)
            );
            assert_eq!(
                first_profile(&g, |flat| flat > 10),
                first_profile_parallel(&g, workers, |flat| flat > 10)
            );
        }
    }
}
