//! Normal-form (strategic-form) games with finitely many players and actions.
//!
//! Payoffs are stored densely: for each player a `Vec<f64>` indexed by the
//! flat profile index (see [`crate::profile::profile_to_index`]). This keeps
//! lookups allocation-free, which matters for the exhaustive coalition
//! searches in `bne-robust`.

use crate::error::GameError;
use crate::profile::{
    index_to_profile, profile_to_index, strides_for, visit_mixed_radix_range,
    visit_mixed_radix_while, ActionProfile, ProfileIter,
};
use crate::{ActionId, PlayerId, Utility, EPSILON};

/// A finite normal-form game.
///
/// # Examples
///
/// Building prisoner's dilemma and checking its payoffs:
///
/// ```
/// use bne_games::NormalFormGame;
///
/// let pd = bne_games::classic::prisoners_dilemma();
/// assert_eq!(pd.num_players(), 2);
/// // (Defect, Defect) gives both players -3 in the paper's table.
/// assert_eq!(pd.payoff(0, &[1, 1]), -3.0);
/// assert_eq!(pd.payoff(1, &[1, 1]), -3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NormalFormGame {
    name: String,
    /// Action labels per player; `actions[p].len()` is that player's action count.
    actions: Vec<Vec<String>>,
    /// Player labels.
    players: Vec<String>,
    /// Payoff tensors: `payoffs[p][flat_profile_index]`.
    payoffs: Vec<Vec<Utility>>,
    /// Cached radices (`actions[p].len()`).
    radices: Vec<usize>,
    /// Cached per-player strides of the odometer layout
    /// (`strides[p] = radices[p + 1] * ... * radices[n - 1]`), so flat
    /// indices can be manipulated without re-encoding profiles.
    strides: Vec<usize>,
}

impl NormalFormGame {
    /// Creates a game from explicit action labels and payoff tensors.
    ///
    /// `payoffs[p]` must have one entry per pure action profile, laid out in
    /// odometer order (player 0 slowest).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::EmptyGame`] if there are no players or a player
    /// has no actions, and [`GameError::DimensionMismatch`] if a payoff
    /// tensor has the wrong length.
    pub fn new(
        name: impl Into<String>,
        actions: Vec<Vec<String>>,
        payoffs: Vec<Vec<Utility>>,
    ) -> Result<Self, GameError> {
        if actions.is_empty() {
            return Err(GameError::EmptyGame {
                reason: "game has no players".to_string(),
            });
        }
        if let Some(p) = actions.iter().position(|a| a.is_empty()) {
            return Err(GameError::EmptyGame {
                reason: format!("player {p} has no actions"),
            });
        }
        if payoffs.len() != actions.len() {
            return Err(GameError::DimensionMismatch {
                expected: actions.len(),
                found: payoffs.len(),
            });
        }
        let radices: Vec<usize> = actions.iter().map(|a| a.len()).collect();
        let expected: usize = radices.iter().product();
        for table in &payoffs {
            if table.len() != expected {
                return Err(GameError::DimensionMismatch {
                    expected,
                    found: table.len(),
                });
            }
        }
        let players = (0..actions.len()).map(|i| format!("P{i}")).collect();
        let strides = strides_for(&radices);
        Ok(NormalFormGame {
            name: name.into(),
            actions,
            players,
            payoffs,
            radices,
            strides,
        })
    }

    /// Renames the players (cosmetic; used by the classic game zoo).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] if the number of names does
    /// not equal the number of players.
    pub fn with_player_names<S: Into<String>>(mut self, names: Vec<S>) -> Result<Self, GameError> {
        if names.len() != self.num_players() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_players(),
                found: names.len(),
            });
        }
        self.players = names.into_iter().map(Into::into).collect();
        Ok(self)
    }

    /// The game's descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.actions.len()
    }

    /// Number of actions available to `player`.
    ///
    /// # Panics
    ///
    /// Panics if `player` is out of range.
    pub fn num_actions(&self, player: PlayerId) -> usize {
        self.radices[player]
    }

    /// Per-player action counts (the payoff tensor radices).
    pub fn action_counts(&self) -> &[usize] {
        &self.radices
    }

    /// Per-player strides of the dense payoff layout: a profile's flat
    /// index is `Σ profile[p] * strides()[p]` (player 0 slowest).
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Label of `player`'s action `action`.
    pub fn action_label(&self, player: PlayerId, action: ActionId) -> &str {
        &self.actions[player][action]
    }

    /// Label of `player`.
    pub fn player_label(&self, player: PlayerId) -> &str {
        &self.players[player]
    }

    /// Payoff to `player` under the pure `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile has the wrong length or contains an
    /// out-of-range action.
    pub fn payoff(&self, player: PlayerId, profile: &[ActionId]) -> Utility {
        self.payoffs[player][profile_to_index(profile, &self.radices)]
    }

    /// Payoff to `player` at a flat profile index — the allocation-free hot
    /// path used by every exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics if `player` or `flat` is out of range.
    #[inline]
    pub fn payoff_by_index(&self, player: PlayerId, flat: usize) -> Utility {
        self.payoffs[player][flat]
    }

    /// The full payoff tensor of `player`, indexed by flat profile index.
    /// Handy for solvers that scan one player's payoffs linearly.
    pub fn payoff_table(&self, player: PlayerId) -> &[Utility] {
        &self.payoffs[player]
    }

    /// Payoffs to every player under `profile`.
    pub fn payoff_vector(&self, profile: &[ActionId]) -> Vec<Utility> {
        let idx = profile_to_index(profile, &self.radices);
        self.payoffs.iter().map(|t| t[idx]).collect()
    }

    /// The action `player` takes in the profile with flat index `flat`,
    /// recovered in O(1) from the stride layout.
    #[inline]
    pub fn action_at(&self, flat: usize, player: PlayerId) -> ActionId {
        (flat / self.strides[player]) % self.radices[player]
    }

    /// Flat index of the profile obtained from the profile at `flat` by
    /// switching `player` to `new_action`: O(1) stride arithmetic, no
    /// cloning or re-encoding.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `new_action` is in range; an out-of-range action
    /// silently corrupts the index in release builds, so callers validate.
    #[inline]
    pub fn deviate_index(&self, flat: usize, player: PlayerId, new_action: ActionId) -> usize {
        debug_assert!(new_action < self.radices[player]);
        let stride = self.strides[player];
        flat - self.action_at(flat, player) * stride + new_action * stride
    }

    /// Checked variant of [`Self::payoff`].
    ///
    /// # Errors
    ///
    /// Returns an error if `player` or any profile entry is out of range, or
    /// the profile has the wrong length.
    pub fn try_payoff(&self, player: PlayerId, profile: &[ActionId]) -> Result<Utility, GameError> {
        self.validate_player(player)?;
        self.validate_profile(profile)?;
        Ok(self.payoff(player, profile))
    }

    /// Validates a player index.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::PlayerOutOfRange`] when out of range.
    pub fn validate_player(&self, player: PlayerId) -> Result<(), GameError> {
        if player >= self.num_players() {
            return Err(GameError::PlayerOutOfRange {
                player,
                num_players: self.num_players(),
            });
        }
        Ok(())
    }

    /// Validates a pure profile.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] for a wrong-length profile
    /// and [`GameError::ActionOutOfRange`] for an invalid action.
    pub fn validate_profile(&self, profile: &[ActionId]) -> Result<(), GameError> {
        if profile.len() != self.num_players() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_players(),
                found: profile.len(),
            });
        }
        for (p, &a) in profile.iter().enumerate() {
            if a >= self.radices[p] {
                return Err(GameError::ActionOutOfRange {
                    player: p,
                    action: a,
                    num_actions: self.radices[p],
                });
            }
        }
        Ok(())
    }

    /// Iterator over all pure action profiles.
    pub fn profiles(&self) -> ProfileIter {
        ProfileIter::new(&self.radices)
    }

    /// Number of pure action profiles.
    pub fn num_profiles(&self) -> usize {
        ProfileIter::count_profiles(&self.radices)
    }

    /// Calls `f(profile, flat)` for every pure profile, in odometer order,
    /// reusing a single buffer: no allocation per step.
    pub fn visit_profiles<F: FnMut(&[ActionId], usize)>(&self, mut f: F) {
        visit_mixed_radix_while(&self.radices, |p, flat| {
            f(p, flat);
            true
        });
    }

    /// Early-exit variant of [`Self::visit_profiles`]: stops when `f`
    /// returns `false`. Returns `true` when the sweep completed.
    pub fn visit_profiles_while<F: FnMut(&[ActionId], usize) -> bool>(&self, f: F) -> bool {
        visit_mixed_radix_while(&self.radices, f)
    }

    /// Visits the contiguous flat-index `range` of the profile space (the
    /// chunking primitive used by the `parallel` feature). Stops early when
    /// `f` returns `false`; returns `true` when the chunk completed.
    pub fn visit_profiles_in<F: FnMut(&[ActionId], usize) -> bool>(
        &self,
        range: std::ops::Range<usize>,
        f: F,
    ) -> bool {
        visit_mixed_radix_range(&self.radices, range, f)
    }

    /// Visits the deviation neighborhood of the profile at `flat` for one
    /// `coalition` (player indices, increasing): every joint action of the
    /// coalition members, in odometer order over the coalition's action
    /// sets, as `f(deviation, new_flat)` where `deviation[i]` is the action
    /// of `coalition[i]` and `new_flat` is computed incrementally in O(1)
    /// per step. The identity assignment is visited too (it satisfies
    /// `new_flat == flat` — callers that need proper deviations skip it).
    /// Stops early when `f` returns `false`; returns `true` when the whole
    /// neighborhood was visited.
    ///
    /// This replaces the clone-profile-and-re-encode pattern the robustness
    /// searches used: the payoff tensor is addressed directly at `new_flat`.
    ///
    /// # Panics
    ///
    /// Panics if a coalition member is out of range.
    pub fn visit_coalition_deviations<F: FnMut(&[ActionId], usize) -> bool>(
        &self,
        flat: usize,
        coalition: &[PlayerId],
        mut f: F,
    ) -> bool {
        // This visitor runs once per coalition in the robustness searches,
        // so the odometer lives on the stack (see `with_scratch`).
        crate::profile::with_scratch::<usize, bool>(coalition.len(), |deviation| {
            // Start from the coalition playing all-zeros.
            let mut current = flat;
            for &p in coalition {
                current -= self.action_at(flat, p) * self.strides[p];
            }
            loop {
                if !f(deviation, current) {
                    return false;
                }
                // Advance the coalition odometer, updating `current` in
                // place.
                let mut i = coalition.len();
                loop {
                    if i == 0 {
                        return true;
                    }
                    i -= 1;
                    let p = coalition[i];
                    deviation[i] += 1;
                    if deviation[i] < self.radices[p] {
                        current += self.strides[p];
                        break;
                    }
                    current -= (self.radices[p] - 1) * self.strides[p];
                    deviation[i] = 0;
                }
            }
        })
    }

    /// The best payoff `player` can obtain by unilaterally deviating from
    /// `profile` (including not deviating), together with one action
    /// achieving it.
    pub fn best_unilateral_deviation(
        &self,
        player: PlayerId,
        profile: &[ActionId],
    ) -> (ActionId, Utility) {
        self.best_unilateral_deviation_by_index(player, profile_to_index(profile, &self.radices))
    }

    /// Index-based form of [`Self::best_unilateral_deviation`]: walks the
    /// player's stride through the payoff tensor, allocation-free.
    pub fn best_unilateral_deviation_by_index(
        &self,
        player: PlayerId,
        flat: usize,
    ) -> (ActionId, Utility) {
        let stride = self.strides[player];
        let base = flat - self.action_at(flat, player) * stride;
        let table = &self.payoffs[player];
        let mut best_action = 0;
        let mut best = Utility::NEG_INFINITY;
        for a in 0..self.radices[player] {
            let u = table[base + a * stride];
            if u > best {
                best = u;
                best_action = a;
            }
        }
        (best_action, best)
    }

    /// All pure best responses of `player` against the other players'
    /// actions in `profile` (the entry for `player` itself is ignored).
    pub fn pure_best_responses(&self, player: PlayerId, profile: &[ActionId]) -> Vec<ActionId> {
        self.pure_best_responses_by_index(player, profile_to_index(profile, &self.radices))
    }

    /// Index-based form of [`Self::pure_best_responses`] (the entry of
    /// `player` within `flat` is ignored). Allocates only the result.
    pub fn pure_best_responses_by_index(&self, player: PlayerId, flat: usize) -> Vec<ActionId> {
        let stride = self.strides[player];
        let base = flat - self.action_at(flat, player) * stride;
        let table = &self.payoffs[player];
        let mut best = Utility::NEG_INFINITY;
        let mut responses = Vec::new();
        for a in 0..self.radices[player] {
            let u = table[base + a * stride];
            if u > best + EPSILON {
                best = u;
                responses.clear();
                responses.push(a);
            } else if (u - best).abs() <= EPSILON {
                responses.push(a);
            }
        }
        responses
    }

    /// Whether `profile` is a pure Nash equilibrium: no player can gain more
    /// than [`EPSILON`] by a unilateral deviation.
    pub fn is_pure_nash(&self, profile: &[ActionId]) -> bool {
        self.is_pure_nash_by_index(profile_to_index(profile, &self.radices))
    }

    /// Index-based form of [`Self::is_pure_nash`]: zero allocation, pure
    /// stride arithmetic.
    pub fn is_pure_nash_by_index(&self, flat: usize) -> bool {
        (0..self.num_players()).all(|p| {
            let current = self.payoffs[p][flat];
            let (_, best) = self.best_unilateral_deviation_by_index(p, flat);
            best <= current + EPSILON
        })
    }

    /// Whether `profile` is Pareto optimal among pure profiles: there is no
    /// other pure profile that makes every player at least as well off and
    /// some player strictly better off.
    pub fn is_pareto_optimal(&self, profile: &[ActionId]) -> bool {
        let base_flat = profile_to_index(profile, &self.radices);
        let n = self.num_players();
        for other in 0..self.num_profiles() {
            if other == base_flat {
                continue;
            }
            let none_worse =
                (0..n).all(|p| self.payoffs[p][other] >= self.payoffs[p][base_flat] - EPSILON);
            let some_better =
                (0..n).any(|p| self.payoffs[p][other] > self.payoffs[p][base_flat] + EPSILON);
            if none_worse && some_better {
                return false;
            }
        }
        true
    }

    /// Whether action `a` strictly dominates action `b` for `player` (yields
    /// a strictly higher payoff against every opponent profile).
    pub fn strictly_dominates(&self, player: PlayerId, a: ActionId, b: ActionId) -> bool {
        self.dominates_inner(player, a, b, true)
    }

    /// Whether action `a` weakly dominates action `b` for `player` (never
    /// worse, and strictly better against at least one opponent profile).
    pub fn weakly_dominates(&self, player: PlayerId, a: ActionId, b: ActionId) -> bool {
        self.dominates_inner(player, a, b, false)
    }

    fn dominates_inner(&self, player: PlayerId, a: ActionId, b: ActionId, strict: bool) -> bool {
        if a == b {
            return false;
        }
        let stride = self.strides[player];
        let table = &self.payoffs[player];
        let mut some_strict = false;
        // Walk only the profiles where `player` plays 0 (each opponents'
        // context exactly once), then address actions a and b by stride.
        let complete = self.visit_profiles_while(|_, flat| {
            if self.action_at(flat, player) != 0 {
                return true;
            }
            let ua = table[flat + a * stride];
            let ub = table[flat + b * stride];
            if strict {
                ua > ub + EPSILON
            } else {
                if ua < ub - EPSILON {
                    return false;
                }
                if ua > ub + EPSILON {
                    some_strict = true;
                }
                true
            }
        });
        complete && (strict || some_strict)
    }

    /// Returns the zero-sum "column" payoffs check: true when, for every
    /// profile, the payoffs of all players sum to (approximately) zero.
    pub fn is_zero_sum(&self) -> bool {
        (0..self.num_profiles()).all(|flat| {
            let s: f64 = self.payoffs.iter().map(|t| t[flat]).sum();
            s.abs() <= 1e-6
        })
    }

    /// The social welfare (sum of payoffs) of a profile.
    pub fn social_welfare(&self, profile: &[ActionId]) -> Utility {
        let flat = profile_to_index(profile, &self.radices);
        self.payoffs.iter().map(|t| t[flat]).sum()
    }

    /// Returns a new game that is the restriction of this game to the given
    /// action subsets (used by iterated elimination of dominated strategies).
    ///
    /// `keep[p]` lists the actions of player `p` to keep, in increasing
    /// order.
    ///
    /// # Errors
    ///
    /// Returns an error if any kept action is out of range or any player
    /// would be left with no actions.
    pub fn restrict(&self, keep: &[Vec<ActionId>]) -> Result<NormalFormGame, GameError> {
        if keep.len() != self.num_players() {
            return Err(GameError::DimensionMismatch {
                expected: self.num_players(),
                found: keep.len(),
            });
        }
        for (p, ks) in keep.iter().enumerate() {
            if ks.is_empty() {
                return Err(GameError::EmptyGame {
                    reason: format!("restriction leaves player {p} with no actions"),
                });
            }
            for &a in ks {
                if a >= self.radices[p] {
                    return Err(GameError::ActionOutOfRange {
                        player: p,
                        action: a,
                        num_actions: self.radices[p],
                    });
                }
            }
        }
        let actions: Vec<Vec<String>> = keep
            .iter()
            .enumerate()
            .map(|(p, ks)| ks.iter().map(|&a| self.actions[p][a].clone()).collect())
            .collect();
        let new_radices: Vec<usize> = keep.iter().map(|k| k.len()).collect();
        let mut payoffs: Vec<Vec<Utility>> =
            vec![Vec::with_capacity(new_radices.iter().product()); self.num_players()];
        for new_profile in ProfileIter::new(&new_radices) {
            let old_profile: Vec<ActionId> = new_profile
                .iter()
                .enumerate()
                .map(|(p, &a)| keep[p][a])
                .collect();
            for (p, table) in payoffs.iter_mut().enumerate() {
                table.push(self.payoff(p, &old_profile));
            }
        }
        NormalFormGame::new(format!("{} (restricted)", self.name), actions, payoffs)
    }

    /// Flat index of a profile (exposed for solvers that want to cache
    /// per-profile data).
    pub fn profile_index(&self, profile: &[ActionId]) -> usize {
        profile_to_index(profile, &self.radices)
    }

    /// Profile corresponding to a flat index.
    pub fn profile_at(&self, index: usize) -> ActionProfile {
        index_to_profile(index, &self.radices)
    }
}

/// Incremental builder for [`NormalFormGame`].
///
/// # Examples
///
/// ```
/// use bne_games::NormalFormBuilder;
///
/// let game = NormalFormBuilder::new("matching pennies")
///     .player("Even", &["Heads", "Tails"])
///     .player("Odd", &["Heads", "Tails"])
///     .payoff(&[0, 0], &[1.0, -1.0])
///     .payoff(&[0, 1], &[-1.0, 1.0])
///     .payoff(&[1, 0], &[-1.0, 1.0])
///     .payoff(&[1, 1], &[1.0, -1.0])
///     .build()
///     .unwrap();
/// assert!(game.is_zero_sum());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalFormBuilder {
    name: String,
    players: Vec<String>,
    actions: Vec<Vec<String>>,
    entries: Vec<(ActionProfile, Vec<Utility>)>,
    default_payoff: Utility,
}

impl NormalFormBuilder {
    /// Starts a builder for a game with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NormalFormBuilder {
            name: name.into(),
            players: Vec::new(),
            actions: Vec::new(),
            entries: Vec::new(),
            default_payoff: 0.0,
        }
    }

    /// Adds a player with the given label and action labels.
    pub fn player(mut self, label: impl Into<String>, actions: &[&str]) -> Self {
        self.players.push(label.into());
        self.actions
            .push(actions.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sets the payoff vector for one pure profile. Later calls override
    /// earlier ones for the same profile.
    pub fn payoff(mut self, profile: &[ActionId], payoffs: &[Utility]) -> Self {
        self.entries.push((profile.to_vec(), payoffs.to_vec()));
        self
    }

    /// Sets the payoff assigned to profiles not mentioned via
    /// [`Self::payoff`] (defaults to `0.0` for all players).
    pub fn default_payoff(mut self, value: Utility) -> Self {
        self.default_payoff = value;
        self
    }

    /// Builds the game.
    ///
    /// # Errors
    ///
    /// Returns an error if the structure is empty, a payoff entry refers to
    /// an invalid profile, or a payoff vector has the wrong length.
    pub fn build(self) -> Result<NormalFormGame, GameError> {
        if self.actions.is_empty() {
            return Err(GameError::EmptyGame {
                reason: "builder has no players".to_string(),
            });
        }
        let radices: Vec<usize> = self.actions.iter().map(|a| a.len()).collect();
        if let Some(p) = radices.iter().position(|&r| r == 0) {
            return Err(GameError::EmptyGame {
                reason: format!("player {p} has no actions"),
            });
        }
        let n = self.actions.len();
        let total: usize = radices.iter().product();
        let mut payoffs = vec![vec![self.default_payoff; total]; n];
        for (profile, vec) in &self.entries {
            if profile.len() != n {
                return Err(GameError::DimensionMismatch {
                    expected: n,
                    found: profile.len(),
                });
            }
            for (p, &a) in profile.iter().enumerate() {
                if a >= radices[p] {
                    return Err(GameError::ActionOutOfRange {
                        player: p,
                        action: a,
                        num_actions: radices[p],
                    });
                }
            }
            if vec.len() != n {
                return Err(GameError::DimensionMismatch {
                    expected: n,
                    found: vec.len(),
                });
            }
            let idx = profile_to_index(profile, &radices);
            for (p, &u) in vec.iter().enumerate() {
                payoffs[p][idx] = u;
            }
        }
        let game = NormalFormGame::new(self.name, self.actions, payoffs)?;
        game.with_player_names(self.players)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;

    #[test]
    fn builder_and_payoff_lookup() {
        let g = NormalFormBuilder::new("test")
            .player("A", &["x", "y"])
            .player("B", &["l", "m", "r"])
            .payoff(&[0, 2], &[5.0, -1.0])
            .default_payoff(1.0)
            .build()
            .unwrap();
        assert_eq!(g.num_players(), 2);
        assert_eq!(g.num_actions(1), 3);
        assert_eq!(g.payoff(0, &[0, 2]), 5.0);
        assert_eq!(g.payoff(1, &[0, 2]), -1.0);
        assert_eq!(g.payoff(0, &[1, 1]), 1.0);
        assert_eq!(g.action_label(1, 2), "r");
        assert_eq!(g.player_label(0), "A");
    }

    #[test]
    fn builder_rejects_bad_profiles() {
        let res = NormalFormBuilder::new("bad")
            .player("A", &["x"])
            .payoff(&[3], &[1.0])
            .build();
        assert!(matches!(res, Err(GameError::ActionOutOfRange { .. })));

        let res = NormalFormBuilder::new("bad2")
            .player("A", &["x"])
            .payoff(&[0, 0], &[1.0])
            .build();
        assert!(matches!(res, Err(GameError::DimensionMismatch { .. })));
    }

    #[test]
    fn new_rejects_wrong_tensor_length() {
        let res = NormalFormGame::new(
            "bad",
            vec![vec!["a".into(), "b".into()]],
            vec![vec![1.0, 2.0, 3.0]],
        );
        assert!(matches!(res, Err(GameError::DimensionMismatch { .. })));
    }

    #[test]
    fn pd_nash_and_dominance() {
        let pd = classic::prisoners_dilemma();
        // Defect strictly dominates cooperate for both players.
        assert!(pd.strictly_dominates(0, 1, 0));
        assert!(pd.strictly_dominates(1, 1, 0));
        assert!(!pd.strictly_dominates(0, 0, 1));
        // (D, D) is the unique pure Nash equilibrium.
        assert!(pd.is_pure_nash(&[1, 1]));
        assert!(!pd.is_pure_nash(&[0, 0]));
        assert!(!pd.is_pure_nash(&[0, 1]));
        // (C, C) Pareto-dominates (D, D).
        assert!(pd.is_pareto_optimal(&[0, 0]));
        assert!(!pd.is_pareto_optimal(&[1, 1]));
    }

    #[test]
    fn best_responses_in_matching_pennies() {
        let g = classic::matching_pennies();
        assert_eq!(g.pure_best_responses(0, &[0, 0]), vec![0]);
        assert_eq!(g.pure_best_responses(1, &[0, 0]), vec![1]);
        assert!(g.is_zero_sum());
    }

    #[test]
    fn restriction_removes_dominated_action() {
        let pd = classic::prisoners_dilemma();
        let restricted = pd.restrict(&[vec![1], vec![1]]).unwrap();
        assert_eq!(restricted.num_profiles(), 1);
        assert_eq!(restricted.payoff(0, &[0, 0]), -3.0);
        // leaving a player with nothing is an error
        assert!(pd.restrict(&[vec![], vec![0]]).is_err());
    }

    #[test]
    fn try_payoff_validates() {
        let pd = classic::prisoners_dilemma();
        assert!(pd.try_payoff(0, &[0, 0]).is_ok());
        assert!(pd.try_payoff(2, &[0, 0]).is_err());
        assert!(pd.try_payoff(0, &[0, 5]).is_err());
        assert!(pd.try_payoff(0, &[0]).is_err());
    }

    #[test]
    fn weak_dominance_detected() {
        // action 0 weakly dominates action 1 for player 0:
        // equal against opponent 0, strictly better against opponent 1.
        let g = NormalFormBuilder::new("weak")
            .player("A", &["top", "bottom"])
            .player("B", &["left", "right"])
            .payoff(&[0, 0], &[1.0, 0.0])
            .payoff(&[1, 0], &[1.0, 0.0])
            .payoff(&[0, 1], &[2.0, 0.0])
            .payoff(&[1, 1], &[0.0, 0.0])
            .build()
            .unwrap();
        assert!(g.weakly_dominates(0, 0, 1));
        assert!(!g.strictly_dominates(0, 0, 1));
        assert!(!g.weakly_dominates(0, 1, 0));
    }

    #[test]
    fn social_welfare_and_profile_index_roundtrip() {
        let pd = classic::prisoners_dilemma();
        assert_eq!(pd.social_welfare(&[0, 0]), 6.0);
        for p in pd.profiles() {
            assert_eq!(pd.profile_at(pd.profile_index(&p)), p);
        }
    }

    #[test]
    fn index_accessors_agree_with_profile_accessors() {
        let g = crate::random::random_game(11, &[2, 3, 4]);
        for (flat, profile) in g.profiles().enumerate() {
            assert_eq!(g.profile_index(&profile), flat);
            for p in 0..g.num_players() {
                assert_eq!(g.action_at(flat, p), profile[p]);
                assert_eq!(g.payoff_by_index(p, flat), g.payoff(p, &profile));
                assert_eq!(g.payoff_table(p)[flat], g.payoff(p, &profile));
                assert_eq!(g.is_pure_nash_by_index(flat), g.is_pure_nash(&profile),);
                for a in 0..g.num_actions(p) {
                    let mut cloned = profile.clone();
                    cloned[p] = a;
                    assert_eq!(g.deviate_index(flat, p, a), g.profile_index(&cloned));
                }
            }
        }
    }

    #[test]
    fn visit_profiles_matches_iterator() {
        let g = crate::random::random_game(3, &[3, 2, 2]);
        let mut visited = Vec::new();
        g.visit_profiles(|p, flat| visited.push((p.to_vec(), flat)));
        let expected: Vec<_> = g.profiles().enumerate().map(|(i, p)| (p, i)).collect();
        assert_eq!(visited, expected);

        let mut halves = Vec::new();
        let mid = g.num_profiles() / 2;
        g.visit_profiles_in(0..mid, |p, flat| {
            halves.push((p.to_vec(), flat));
            true
        });
        g.visit_profiles_in(mid..g.num_profiles(), |p, flat| {
            halves.push((p.to_vec(), flat));
            true
        });
        assert_eq!(halves, expected);
    }

    #[test]
    fn coalition_deviation_visitor_matches_clone_and_reencode() {
        let g = crate::random::random_game(5, &[2, 3, 2, 2]);
        let base = vec![1, 2, 0, 1];
        let flat = g.profile_index(&base);
        for coalition in [vec![0], vec![1, 3], vec![0, 1, 2], vec![0, 1, 2, 3]] {
            let mut visited = Vec::new();
            g.visit_coalition_deviations(flat, &coalition, |dev, new_flat| {
                visited.push((dev.to_vec(), new_flat));
                true
            });
            // reference: enumerate the coalition's joint actions the old way
            let radices: Vec<usize> = coalition.iter().map(|&p| g.num_actions(p)).collect();
            let expected: Vec<_> = ProfileIter::new(&radices)
                .map(|dev| {
                    let mut cloned = base.clone();
                    for (&p, &a) in coalition.iter().zip(dev.iter()) {
                        cloned[p] = a;
                    }
                    (dev, g.profile_index(&cloned))
                })
                .collect();
            assert_eq!(visited, expected);
            // the identity assignment maps back to the base flat index
            assert!(visited.iter().any(|(_, f)| *f == flat));
        }
    }

    #[test]
    fn coalition_deviation_visitor_early_exit() {
        let g = crate::random::random_game(5, &[2, 2]);
        let mut count = 0;
        let complete = g.visit_coalition_deviations(0, &[0, 1], |_, _| {
            count += 1;
            count < 2
        });
        assert!(!complete);
        assert_eq!(count, 2);
    }

    #[test]
    fn best_response_index_forms_agree() {
        let g = crate::random::random_game(17, &[3, 3, 2]);
        for (flat, profile) in g.profiles().enumerate() {
            for p in 0..g.num_players() {
                assert_eq!(
                    g.best_unilateral_deviation_by_index(p, flat),
                    g.best_unilateral_deviation(p, &profile)
                );
                assert_eq!(
                    g.pure_best_responses_by_index(p, flat),
                    g.pure_best_responses(p, &profile)
                );
            }
        }
    }
}
