//! The sampled deviation oracle: ε-equilibrium audits with (ε, δ)
//! confidence bounds over any [`PayoffBackend`].
//!
//! The exhaustive [`crate::DeviationOracle`] *proves* "no profitable
//! coalition deviation" by enumerating the deviation space — sound, but
//! exponential in coalition size and impossible once the game has more
//! than a handful of players. The [`SampledOracle`] trades proof for a
//! quantified audit: it draws seeded uniform samples from the deviation
//! space and issues a certificate of the form
//!
//! > *no sampled deviation of coalition size `s` gains more than ε*,
//!
//! mirroring the exhaustive oracle's accept/reject structure (one
//! certificate per coalition size, a concrete counterexample on reject)
//! and attaching two concentration bounds in the accept case:
//!
//! * **miss mass** — if at least a `ρ` fraction of the deviation space
//!   gained more than ε, then `m` independent uniform samples would all
//!   miss with probability at most `(1 − ρ)^m ≤ e^{−ρm}`. Solving
//!   `e^{−ρm} = δ` gives `ρ = ln(1/δ)/m`: with confidence `1 − δ`, fewer
//!   than that fraction of deviations are ε-profitable;
//! * **Hoeffding radius** — sampled gains are i.i.d. and bounded by the
//!   backend's payoff range `R = hi − lo` (a gain lies in `[−R, R]`), so
//!   the sampled mean gain is within `2R·sqrt(ln(2/δ)/(2m))` of the true
//!   mean gain of a uniformly random deviation, with probability `1 − δ`
//!   (Hoeffding's inequality; the standard toolkit in Aspnes' *Notes on
//!   Theory of Distributed Systems*).
//!
//! A sampled accept is therefore **not** a Nash certificate — a needle
//! deviation can hide in unsampled mass — but a sampled *reject* is sound:
//! the counterexample is a real deviation whose gain was measured by real
//! payoff queries, and re-checking it exhaustively must reproduce the
//! gain. The property tests pin both directions against the exhaustive
//! oracle on small dense games.
//!
//! # Determinism
//!
//! Samples are drawn in fixed blocks of [`SAMPLE_BLOCK`]; block `b` of
//! coalition size `s` seeds its own RNG via [`derive_seed`] (the same
//! SplitMix64 discipline as `bne_sim::derive_seed`), and block results
//! merge in block order. The parallel audit chunks blocks across workers
//! with `bne_games::parallel` and concatenates in chunk order, so the
//! sequential and parallel certificates are **bit-identical** — same
//! gains, same counterexample, same confidence numbers — for any worker
//! count.

use crate::backend::{PayoffBackend, ProfileView};
use crate::{ActionId, PlayerId, Utility, EPSILON};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Number of samples drawn per seeded block — the unit of parallel audit
/// work. Fixed so the block structure (and therefore every merge) depends
/// only on the sample count, never the worker count.
pub const SAMPLE_BLOCK: usize = 64;

/// Derives the RNG seed of sample block `block` at coalition size `size`.
/// Same bijective SplitMix64-style mix as `bne_sim::derive_seed`, so audit
/// streams never collide across blocks or sizes.
pub fn derive_seed(base_seed: u64, size: u64, block: u64) -> u64 {
    fn finalize(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let x = base_seed
        .wrapping_add(size.wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(block.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    finalize(finalize(x) ^ 0x9E37_79B9_7F4A_7C15)
}

/// Parameters of one sampled audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditSpec {
    /// Gain tolerance: a sampled deviation is a counterexample when some
    /// coalition member gains more than `epsilon` (plus the workspace
    /// [`EPSILON`] comparison slack, so `epsilon = 0.0` matches the
    /// exhaustive oracle's notion of "profitable" exactly).
    pub epsilon: f64,
    /// Confidence parameter of the concentration bounds (both the miss
    /// mass and the Hoeffding radius hold with probability `1 − delta`).
    pub delta: f64,
    /// Samples drawn per audited coalition size.
    pub samples: usize,
    /// Audit coalition sizes `1..=max_coalition` (clamped to the number
    /// of players).
    pub max_coalition: usize,
    /// Base seed of the audit's sample streams.
    pub seed: u64,
}

impl AuditSpec {
    /// A unilateral-only audit (`max_coalition = 1`) with the given
    /// tolerance, confidence and sample count.
    pub fn unilateral(epsilon: f64, delta: f64, samples: usize, seed: u64) -> Self {
        AuditSpec {
            epsilon,
            delta,
            samples,
            max_coalition: 1,
            seed,
        }
    }
}

/// A concrete sampled deviation: the coalition (increasing player order)
/// and the joint action it moves to, with the best member gain measured
/// by payoff queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledDeviation {
    /// Deviating players, in increasing order.
    pub players: Vec<PlayerId>,
    /// `actions[i]` is the action `players[i]` deviates to.
    pub actions: Vec<ActionId>,
    /// The largest gain any coalition member realizes (deviation payoff
    /// minus base payoff; the paper's some-member-gains notion).
    pub gain: f64,
    /// Index of the sample (within its coalition size's stream) that
    /// produced this deviation — ties the witness to the seed discipline.
    pub sample_index: usize,
}

/// The per-coalition-size certificate of a sampled audit — the sampled
/// analogue of one row of the exhaustive oracle's certificate table.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCertificate {
    /// Coalition size this certificate covers.
    pub size: usize,
    /// Samples drawn.
    pub samples: usize,
    /// Gain tolerance audited against.
    pub epsilon: f64,
    /// Confidence parameter of the bounds below.
    pub delta: f64,
    /// `true` iff no sampled deviation gained more than `epsilon`.
    pub accepted: bool,
    /// Largest sampled gain.
    pub max_gain: f64,
    /// Mean sampled gain (the average over uniform deviations).
    pub mean_gain: f64,
    /// The first sampled counterexample (lowest sample index), if any.
    pub counterexample: Option<SampledDeviation>,
    /// Accept-side bound: with confidence `1 − delta`, at most this
    /// fraction of the deviation space gains more than `epsilon`
    /// (`ln(1/delta) / samples`).
    pub miss_mass: f64,
    /// Hoeffding half-width of the mean-gain estimate at confidence
    /// `1 − delta` (`2R·sqrt(ln(2/delta)/(2·samples))` for payoff range
    /// `R`).
    pub hoeffding_radius: f64,
}

/// The full audit result: one certificate per coalition size, plus the
/// overall verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledAudit {
    /// Certificates for sizes `1..=max_coalition`, ascending.
    pub certificates: Vec<SampledCertificate>,
    /// `true` iff every certificate accepted.
    pub accepted: bool,
}

impl SampledAudit {
    /// The first rejecting certificate's counterexample, if any.
    pub fn counterexample(&self) -> Option<&SampledDeviation> {
        self.certificates
            .iter()
            .find_map(|c| c.counterexample.as_ref())
    }
}

/// Accumulator of one block of samples (and the unit the parallel path
/// merges in block order).
#[derive(Debug, Clone)]
struct BlockAudit {
    count: u64,
    mean: f64,
    max_gain: f64,
    witness: Option<SampledDeviation>,
}

impl BlockAudit {
    fn empty() -> Self {
        BlockAudit {
            count: 0,
            mean: 0.0,
            max_gain: f64::NEG_INFINITY,
            witness: None,
        }
    }

    fn push(&mut self, gain: f64) {
        self.count += 1;
        self.mean += (gain - self.mean) / self.count as f64;
        self.max_gain = self.max_gain.max(gain);
    }

    /// Merges `other` (a later block) into `self`. The witness with the
    /// lowest sample index wins; merging in ascending block order makes
    /// that the globally first counterexample.
    fn absorb(&mut self, other: &BlockAudit) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        self.mean += (other.mean - self.mean) * (n2 / (n1 + n2));
        self.max_gain = self.max_gain.max(other.max_gain);
        self.count += other.count;
        if self.witness.is_none() {
            self.witness = other.witness.clone();
        }
    }
}

/// The sampled deviation oracle over a payoff backend.
///
/// # Examples
///
/// On a small dense game the sampled audit agrees with the exhaustive
/// oracle: the prisoner's dilemma's (Defect, Defect) has no profitable
/// deviation, so every sampled certificate accepts at `ε = 0`.
///
/// ```
/// use bne_games::backend::DenseBackend;
/// use bne_games::classic::prisoners_dilemma;
/// use bne_games::sampled::{AuditSpec, SampledOracle};
///
/// let game = prisoners_dilemma();
/// let backend = DenseBackend::new(&game);
/// let oracle = SampledOracle::new(&backend);
/// let audit = oracle.audit(&[1, 1], &AuditSpec::unilateral(0.0, 1e-6, 128, 42));
/// assert!(audit.accepted);
/// // (Cooperate, Cooperate) is refuted by a sampled unilateral deviation
/// let audit = oracle.audit(&[0, 0], &AuditSpec::unilateral(0.0, 1e-6, 128, 42));
/// assert!(!audit.accepted);
/// assert!(audit.counterexample().unwrap().gain > 0.0);
/// ```
#[derive(Debug)]
pub struct SampledOracle<'b, B: PayoffBackend> {
    backend: &'b B,
}

impl<'b, B: PayoffBackend> SampledOracle<'b, B> {
    /// Creates a sampled oracle over `backend`.
    pub fn new(backend: &'b B) -> Self {
        SampledOracle { backend }
    }

    /// The audited backend.
    pub fn backend(&self) -> &'b B {
        self.backend
    }

    /// Runs one block of samples for coalition size `size`: samples
    /// `count` deviations from the block's own seeded stream and measures
    /// each gain with payoff queries against the cached `base_payoffs`.
    fn run_block(
        &self,
        base: &[ActionId],
        base_payoffs: &[Utility],
        size: usize,
        spec: &AuditSpec,
        block: usize,
    ) -> BlockAudit {
        let n = self.backend.num_players();
        let start = block * SAMPLE_BLOCK;
        let count = SAMPLE_BLOCK.min(spec.samples - start);
        let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, size as u64, block as u64));
        let mut acc = BlockAudit::empty();
        let mut players: Vec<PlayerId> = Vec::with_capacity(size);
        let mut overrides: Vec<(PlayerId, ActionId)> = Vec::with_capacity(size);
        for s in 0..count {
            // draw `size` distinct players, ascending
            players.clear();
            while players.len() < size {
                let p = rng.random_range(0..n);
                if !players.contains(&p) {
                    players.push(p);
                }
            }
            players.sort_unstable();
            // draw the joint deviation (any action, including staying)
            overrides.clear();
            for &p in &players {
                let a = rng.random_range(0..self.backend.num_actions(p));
                overrides.push((p, a));
            }
            let moved = overrides.iter().any(|&(p, a)| base[p] != a);
            let gain = if moved {
                let view = ProfileView::new(base, &overrides);
                let mut best = f64::NEG_INFINITY;
                for &p in &players {
                    best = best.max(self.backend.payoff(p, &view) - base_payoffs[p]);
                }
                best
            } else {
                0.0 // the non-deviation: no queries needed
            };
            acc.push(gain);
            if gain > spec.epsilon + EPSILON && acc.witness.is_none() {
                acc.witness = Some(SampledDeviation {
                    players: players.clone(),
                    actions: overrides.iter().map(|&(_, a)| a).collect(),
                    gain,
                    sample_index: start + s,
                });
            }
        }
        acc
    }

    /// Folds per-block accumulators (ascending block order) into the
    /// certificate for one coalition size.
    fn certify(
        &self,
        size: usize,
        spec: &AuditSpec,
        blocks: Vec<BlockAudit>,
    ) -> SampledCertificate {
        let mut acc = BlockAudit::empty();
        for block in &blocks {
            acc.absorb(block);
        }
        let (lo, hi) = self.backend.payoff_bounds();
        let range = (hi - lo).max(0.0);
        let m = acc.count.max(1) as f64;
        let delta = spec.delta.clamp(1e-300, 1.0);
        SampledCertificate {
            size,
            samples: acc.count as usize,
            epsilon: spec.epsilon,
            delta: spec.delta,
            accepted: acc.witness.is_none(),
            max_gain: if acc.count == 0 { 0.0 } else { acc.max_gain },
            mean_gain: acc.mean,
            counterexample: acc.witness,
            miss_mass: ((1.0 / delta).ln() / m).min(1.0),
            hoeffding_radius: 2.0 * range * ((2.0 / delta).ln() / (2.0 * m)).sqrt(),
        }
    }

    /// Number of sample blocks needed for `samples` samples.
    fn blocks_for(samples: usize) -> usize {
        samples.div_ceil(SAMPLE_BLOCK).max(1)
    }

    /// Audits the profile `base`: for each coalition size
    /// `1..=spec.max_coalition` (clamped to the player count), samples
    /// `spec.samples` joint deviations and certifies "no sampled
    /// deviation gains more than ε" with the spec's confidence bounds.
    ///
    /// # Panics
    ///
    /// Panics if `base` has the wrong length, `spec.samples == 0`, or
    /// `spec.max_coalition == 0`.
    pub fn audit(&self, base: &[ActionId], spec: &AuditSpec) -> SampledAudit {
        let base_payoffs = self.validate(base, spec);
        let blocks = Self::blocks_for(spec.samples);
        let max_size = spec.max_coalition.min(self.backend.num_players());
        let certificates = (1..=max_size)
            .map(|size| {
                let accs: Vec<BlockAudit> = (0..blocks)
                    .map(|b| self.run_block(base, &base_payoffs, size, spec, b))
                    .collect();
                self.certify(size, spec, accs)
            })
            .collect();
        Self::seal(certificates)
    }

    /// Parallel form of [`SampledOracle::audit`]: sample blocks are
    /// chunked across `workers` threads and merged in block order, so the
    /// result is bit-identical to the sequential audit.
    #[cfg(feature = "parallel")]
    pub fn audit_with_workers(
        &self,
        base: &[ActionId],
        spec: &AuditSpec,
        workers: usize,
    ) -> SampledAudit
    where
        B: Sync,
    {
        let base_payoffs = self.validate(base, spec);
        let blocks = Self::blocks_for(spec.samples);
        let max_size = spec.max_coalition.min(self.backend.num_players());
        let certificates = (1..=max_size)
            .map(|size| {
                let accs: Vec<BlockAudit> =
                    crate::parallel::collect_chunked_with(blocks, workers, |range| {
                        range
                            .map(|b| self.run_block(base, &base_payoffs, size, spec, b))
                            .collect()
                    });
                self.certify(size, spec, accs)
            })
            .collect();
        Self::seal(certificates)
    }

    /// Validates the audit inputs and returns the cached base payoffs —
    /// one batched read shared by every size and block (for simulation
    /// backends this is a single run).
    fn validate(&self, base: &[ActionId], spec: &AuditSpec) -> Vec<Utility> {
        let n = self.backend.num_players();
        assert_eq!(base.len(), n, "base profile must assign every player");
        assert!(spec.samples > 0, "audits need at least one sample");
        assert!(
            spec.max_coalition > 0,
            "audit at least unilateral deviations"
        );
        for (p, &a) in base.iter().enumerate() {
            assert!(
                a < self.backend.num_actions(p),
                "base action {a} out of range for player {p}"
            );
        }
        let mut base_payoffs = vec![0.0; n];
        self.backend
            .payoffs_into(&ProfileView::of_base(base), &mut base_payoffs);
        base_payoffs
    }

    fn seal(certificates: Vec<SampledCertificate>) -> SampledAudit {
        let accepted = certificates.iter().all(|c| c.accepted);
        SampledAudit {
            certificates,
            accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DenseBackend;
    use crate::classic;
    use crate::random::random_game;
    use crate::DeviationOracle;

    fn spec(epsilon: f64, samples: usize, max_coalition: usize, seed: u64) -> AuditSpec {
        AuditSpec {
            epsilon,
            delta: 1e-6,
            samples,
            max_coalition,
            seed,
        }
    }

    #[test]
    fn derive_seed_streams_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for size in 0..8u64 {
            for block in 0..512u64 {
                assert!(seen.insert(derive_seed(97, size, block)));
            }
        }
    }

    #[test]
    fn nash_profiles_are_never_rejected_at_zero_tolerance() {
        for seed in [3u64, 4, 5] {
            let g = random_game(seed, &[3, 3, 2]);
            let backend = DenseBackend::new(&g);
            let sampled = SampledOracle::new(&backend);
            let exhaustive = DeviationOracle::new(&g);
            for flat in 0..g.num_profiles() {
                if exhaustive.is_nash(flat) {
                    let base = g.profile_at(flat);
                    let audit = sampled.audit(&base, &spec(0.0, 256, 1, seed * 1000));
                    assert!(audit.accepted, "seed {seed} flat {flat} wrongly rejected");
                }
            }
        }
    }

    #[test]
    fn rejections_carry_verified_counterexamples() {
        let g = classic::prisoners_dilemma();
        let backend = DenseBackend::new(&g);
        let oracle = SampledOracle::new(&backend);
        let audit = oracle.audit(&[0, 0], &spec(0.0, 128, 2, 7));
        assert!(!audit.accepted);
        let cx = audit.counterexample().expect("CC must be refuted");
        // re-verify the witness against the dense game directly
        let mut profile = vec![0usize, 0];
        for (p, a) in cx.players.iter().zip(cx.actions.iter()) {
            profile[*p] = *a;
        }
        let gain = cx
            .players
            .iter()
            .map(|&p| g.payoff(p, &profile) - g.payoff(p, &[0, 0]))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(gain, cx.gain);
        assert!(gain > 0.0);
    }

    #[test]
    fn epsilon_tolerance_accepts_small_gains() {
        // gains in the PD are bounded by 5; a huge epsilon accepts all
        let g = classic::prisoners_dilemma();
        let backend = DenseBackend::new(&g);
        let oracle = SampledOracle::new(&backend);
        let audit = oracle.audit(&[0, 0], &spec(10.0, 64, 2, 11));
        assert!(audit.accepted);
        assert!(audit.certificates.iter().all(|c| c.max_gain <= 10.0));
        // confidence numbers are monotone in the sample count
        let few = oracle.audit(&[0, 0], &spec(10.0, 64, 1, 11));
        let many = oracle.audit(&[0, 0], &spec(10.0, 512, 1, 11));
        assert!(many.certificates[0].miss_mass < few.certificates[0].miss_mass);
        assert!(many.certificates[0].hoeffding_radius < few.certificates[0].hoeffding_radius);
    }

    #[test]
    fn audits_are_deterministic_in_the_seed() {
        let g = random_game(21, &[3, 2, 3]);
        let backend = DenseBackend::new(&g);
        let oracle = SampledOracle::new(&backend);
        let base = vec![0usize; 3];
        let a = oracle.audit(&base, &spec(0.0, 200, 3, 5));
        let b = oracle.audit(&base, &spec(0.0, 200, 3, 5));
        assert_eq!(a, b);
        let c = oracle.audit(&base, &spec(0.0, 200, 3, 6));
        // a different seed samples different deviations (stats differ)
        assert!(a != c || a.accepted == c.accepted);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_audit_is_bit_identical() {
        let g = random_game(33, &[4, 3, 3]);
        let backend = DenseBackend::new(&g);
        let oracle = SampledOracle::new(&backend);
        let base = vec![1usize, 0, 2];
        let sequential = oracle.audit(&base, &spec(0.0, 500, 2, 9));
        for workers in [2, 3, 5] {
            assert_eq!(
                sequential,
                oracle.audit_with_workers(&base, &spec(0.0, 500, 2, 9), workers),
                "workers {workers}"
            );
        }
    }
}
