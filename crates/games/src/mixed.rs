//! Mixed (randomized) strategies and expected utilities over them.

use crate::error::GameError;
use crate::normal_form::NormalFormGame;
use crate::{ActionId, PlayerId, Utility, EPSILON};
use rand::{Rng, RngExt};

/// A mixed strategy: a probability distribution over one player's actions.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedStrategy {
    probs: Vec<f64>,
}

impl MixedStrategy {
    /// Creates a mixed strategy from raw probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidDistribution`] if the vector is empty,
    /// contains negative or non-finite entries, or does not sum to 1 within
    /// `1e-6`.
    pub fn new(probs: Vec<f64>) -> Result<Self, GameError> {
        if probs.is_empty() {
            return Err(GameError::InvalidDistribution {
                reason: "empty probability vector".to_string(),
            });
        }
        if probs.iter().any(|p| !p.is_finite() || *p < -1e-12) {
            return Err(GameError::InvalidDistribution {
                reason: "negative or non-finite probability".to_string(),
            });
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(GameError::InvalidDistribution {
                reason: format!("probabilities sum to {sum}, expected 1"),
            });
        }
        Ok(MixedStrategy { probs })
    }

    /// The pure strategy that plays `action` with probability one, in a game
    /// where the player has `num_actions` actions.
    pub fn pure(action: ActionId, num_actions: usize) -> Self {
        let mut probs = vec![0.0; num_actions];
        probs[action] = 1.0;
        MixedStrategy { probs }
    }

    /// The uniform distribution over `num_actions` actions.
    pub fn uniform(num_actions: usize) -> Self {
        MixedStrategy {
            probs: vec![1.0 / num_actions as f64; num_actions],
        }
    }

    /// Probability assigned to `action` (0 if out of range).
    pub fn prob(&self, action: ActionId) -> f64 {
        self.probs.get(action).copied().unwrap_or(0.0)
    }

    /// The underlying probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of actions this strategy is defined over.
    pub fn num_actions(&self) -> usize {
        self.probs.len()
    }

    /// Actions played with probability greater than [`EPSILON`].
    pub fn support(&self) -> Vec<ActionId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > EPSILON)
            .map(|(a, _)| a)
            .collect()
    }

    /// Whether this strategy is (numerically) pure.
    pub fn is_pure(&self) -> bool {
        self.support().len() == 1
    }

    /// If pure, the action played with probability ~1.
    pub fn as_pure(&self) -> Option<ActionId> {
        let s = self.support();
        if s.len() == 1 && self.probs[s[0]] > 1.0 - 1e-6 {
            Some(s[0])
        } else {
            None
        }
    }

    /// Samples an action according to this distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ActionId {
        let x: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (a, p) in self.probs.iter().enumerate() {
            acc += p;
            if x < acc {
                return a;
            }
        }
        self.probs.len() - 1
    }

    /// L1 distance between two mixed strategies (0 if lengths differ is not
    /// meaningful, so the longer tail counts fully).
    pub fn l1_distance(&self, other: &MixedStrategy) -> f64 {
        let n = self.probs.len().max(other.probs.len());
        (0..n).map(|a| (self.prob(a) - other.prob(a)).abs()).sum()
    }
}

/// A mixed strategy profile: one [`MixedStrategy`] per player.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedProfile {
    strategies: Vec<MixedStrategy>,
}

impl MixedProfile {
    /// Creates a profile from per-player strategies.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of strategies or any strategy's length
    /// does not match the game.
    pub fn new(game: &NormalFormGame, strategies: Vec<MixedStrategy>) -> Result<Self, GameError> {
        if strategies.len() != game.num_players() {
            return Err(GameError::DimensionMismatch {
                expected: game.num_players(),
                found: strategies.len(),
            });
        }
        for (p, s) in strategies.iter().enumerate() {
            if s.num_actions() != game.num_actions(p) {
                return Err(GameError::DimensionMismatch {
                    expected: game.num_actions(p),
                    found: s.num_actions(),
                });
            }
        }
        Ok(MixedProfile { strategies })
    }

    /// The profile in which every player plays the pure action from
    /// `profile`.
    pub fn from_pure(game: &NormalFormGame, profile: &[ActionId]) -> Self {
        let strategies = profile
            .iter()
            .enumerate()
            .map(|(p, &a)| MixedStrategy::pure(a, game.num_actions(p)))
            .collect();
        MixedProfile { strategies }
    }

    /// The profile in which every player randomizes uniformly.
    pub fn uniform(game: &NormalFormGame) -> Self {
        let strategies = (0..game.num_players())
            .map(|p| MixedStrategy::uniform(game.num_actions(p)))
            .collect();
        MixedProfile { strategies }
    }

    /// The strategy of `player`.
    pub fn strategy(&self, player: PlayerId) -> &MixedStrategy {
        &self.strategies[player]
    }

    /// All per-player strategies.
    pub fn strategies(&self) -> &[MixedStrategy] {
        &self.strategies
    }

    /// Replaces `player`'s strategy, returning the new profile.
    pub fn with_strategy(&self, player: PlayerId, strategy: MixedStrategy) -> Self {
        let mut s = self.strategies.clone();
        s[player] = strategy;
        MixedProfile { strategies: s }
    }

    /// Probability that the pure profile `profile` is realized.
    pub fn profile_probability(&self, profile: &[ActionId]) -> f64 {
        profile
            .iter()
            .enumerate()
            .map(|(p, &a)| self.strategies[p].prob(a))
            .product()
    }

    /// Expected utility of `player` under this profile in `game`.
    pub fn expected_payoff(&self, game: &NormalFormGame, player: PlayerId) -> Utility {
        let mut total = 0.0;
        for profile in game.profiles() {
            let pr = self.profile_probability(&profile);
            if pr > 0.0 {
                total += pr * game.payoff(player, &profile);
            }
        }
        total
    }

    /// Expected utility for every player.
    pub fn expected_payoffs(&self, game: &NormalFormGame) -> Vec<Utility> {
        (0..game.num_players())
            .map(|p| self.expected_payoff(game, p))
            .collect()
    }

    /// Expected utility to `player` of deviating to the pure action
    /// `action` while everyone else follows this profile.
    pub fn deviation_payoff(
        &self,
        game: &NormalFormGame,
        player: PlayerId,
        action: ActionId,
    ) -> Utility {
        let deviated = self.with_strategy(
            player,
            MixedStrategy::pure(action, game.num_actions(player)),
        );
        deviated.expected_payoff(game, player)
    }

    /// The value of `player`'s best pure response against the others'
    /// strategies, together with one action achieving it.
    pub fn best_response_value(
        &self,
        game: &NormalFormGame,
        player: PlayerId,
    ) -> (ActionId, Utility) {
        let mut best = Utility::NEG_INFINITY;
        let mut best_action = 0;
        for a in 0..game.num_actions(player) {
            let u = self.deviation_payoff(game, player, a);
            if u > best {
                best = u;
                best_action = a;
            }
        }
        (best_action, best)
    }

    /// Maximum gain any player can obtain by a unilateral (pure) deviation.
    /// A profile is an ε-Nash equilibrium exactly when this is at most ε.
    pub fn max_regret(&self, game: &NormalFormGame) -> f64 {
        (0..game.num_players())
            .map(|p| {
                let current = self.expected_payoff(game, p);
                let (_, best) = self.best_response_value(game, p);
                (best - current).max(0.0)
            })
            .fold(0.0, f64::max)
    }

    /// Whether the profile is an ε-Nash equilibrium.
    pub fn is_epsilon_nash(&self, game: &NormalFormGame, epsilon: f64) -> bool {
        self.max_regret(game) <= epsilon
    }

    /// Whether the profile is a (numerical) Nash equilibrium, i.e. an
    /// ε-Nash equilibrium for a small fixed tolerance.
    pub fn is_nash(&self, game: &NormalFormGame) -> bool {
        self.is_epsilon_nash(game, 1e-6)
    }

    /// Samples a pure action profile from this mixed profile.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ActionId> {
        self.strategies.iter().map(|s| s.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;
    use rand::SeedableRng;

    #[test]
    fn mixed_strategy_validation() {
        assert!(MixedStrategy::new(vec![]).is_err());
        assert!(MixedStrategy::new(vec![0.5, 0.6]).is_err());
        assert!(MixedStrategy::new(vec![-0.1, 1.1]).is_err());
        assert!(MixedStrategy::new(vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn pure_and_uniform_constructors() {
        let p = MixedStrategy::pure(2, 4);
        assert_eq!(p.as_pure(), Some(2));
        assert!(p.is_pure());
        let u = MixedStrategy::uniform(4);
        assert_eq!(u.support(), vec![0, 1, 2, 3]);
        assert!(u.as_pure().is_none());
    }

    #[test]
    fn uniform_profile_in_matching_pennies_is_nash() {
        let g = classic::matching_pennies();
        let profile = MixedProfile::uniform(&g);
        assert!(profile.is_nash(&g));
        assert!((profile.expected_payoff(&g, 0)).abs() < 1e-9);
    }

    #[test]
    fn uniform_roshambo_is_nash_with_value_zero() {
        let g = classic::roshambo();
        let profile = MixedProfile::uniform(&g);
        assert!(profile.is_nash(&g));
        assert!(profile.expected_payoff(&g, 0).abs() < 1e-9);
        assert!(profile.expected_payoff(&g, 1).abs() < 1e-9);
    }

    #[test]
    fn pure_cooperate_profile_is_not_nash_in_pd() {
        let g = classic::prisoners_dilemma();
        let profile = MixedProfile::from_pure(&g, &[0, 0]);
        assert!(!profile.is_nash(&g));
        // regret is the gain from defecting: 5 - 3 = 2
        assert!((profile.max_regret(&g) - 2.0).abs() < 1e-9);
        let dd = MixedProfile::from_pure(&g, &[1, 1]);
        assert!(dd.is_nash(&g));
    }

    #[test]
    fn profile_probability_multiplies() {
        let g = classic::prisoners_dilemma();
        let p = MixedProfile::new(
            &g,
            vec![
                MixedStrategy::new(vec![0.25, 0.75]).unwrap(),
                MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
            ],
        )
        .unwrap();
        assert!((p.profile_probability(&[0, 0]) - 0.125).abs() < 1e-12);
        assert!((p.profile_probability(&[1, 1]) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn expected_payoff_matches_hand_computation() {
        let g = classic::prisoners_dilemma();
        // row mixes 50/50, column defects.
        let p = MixedProfile::new(
            &g,
            vec![MixedStrategy::uniform(2), MixedStrategy::pure(1, 2)],
        )
        .unwrap();
        // row: 0.5*(-5) + 0.5*(-3) = -4
        assert!((p.expected_payoff(&g, 0) + 4.0).abs() < 1e-9);
        // column: 0.5*5 + 0.5*(-3) = 1
        assert!((p.expected_payoff(&g, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = MixedStrategy::new(vec![0.2, 0.8]).unwrap();
        let n = 20_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn mixed_profile_rejects_wrong_shapes() {
        let g = classic::prisoners_dilemma();
        assert!(MixedProfile::new(&g, vec![MixedStrategy::uniform(2)]).is_err());
        assert!(MixedProfile::new(
            &g,
            vec![MixedStrategy::uniform(3), MixedStrategy::uniform(2)]
        )
        .is_err());
    }

    #[test]
    fn l1_distance_symmetric() {
        let a = MixedStrategy::new(vec![0.2, 0.8]).unwrap();
        let b = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        assert!((a.l1_distance(&b) - 0.6).abs() < 1e-12);
        assert!((b.l1_distance(&a) - 0.6).abs() < 1e-12);
        assert_eq!(a.l1_distance(&a), 0.0);
    }
}
