//! Payoff backends: the query surface the sampled deviation oracle runs
//! against, decoupled from the dense payoff tensor.
//!
//! The exhaustive [`crate::DeviationOracle`] is married to
//! [`NormalFormGame`]'s dense representation — memory `O(n · ∏ actions)` —
//! which caps it at toy profile spaces. The paper's heavy-traffic story
//! (scrip economies, p2p networks) needs games with *millions* of players,
//! where even writing down one payoff tensor is impossible. The
//! [`PayoffBackend`] trait abstracts the only operation the sampled audits
//! need: "what does player `p` earn at this profile?" — asked through a
//! [`ProfileView`], a base profile plus a sparse list of deviations, so a
//! query never materializes a mutated copy of a million-entry profile.
//!
//! Two backends live here:
//!
//! * [`DenseBackend`] — wraps a [`NormalFormGame`]; every query is the
//!   usual stride arithmetic. This is the bridge that lets the sampled
//!   oracle be property-tested against the exhaustive one on small games.
//! * [`LocalBackend`] — a *utility-locality* (graphical-game)
//!   representation: each player's payoff depends only on a bounded
//!   neighborhood of players, stored as one small table per player.
//!   Memory is `O(players · a^d)` for neighborhoods of size `d` — linear
//!   in players — instead of `O(players · a^players)` dense, and a payoff
//!   query touches `d` profile entries, never a dense structure.
//!
//! Simulation-driven backends (the million-agent scrip economy in
//! `bne-scrip`) implement [`PayoffBackend`] outside this crate.

use crate::normal_form::NormalFormGame;
use crate::{ActionId, PlayerId, Utility};
use std::sync::OnceLock;

/// A profile expressed as a shared base assignment plus a sparse list of
/// overrides — the natural shape of a deviation query. Reading an action
/// is `O(overrides)` (the override list is a handful of deviators), and no
/// mutated copy of the base is ever materialized, which is what makes
/// deviation queries on million-player games cheap.
#[derive(Debug, Clone, Copy)]
pub struct ProfileView<'a> {
    base: &'a [ActionId],
    overrides: &'a [(PlayerId, ActionId)],
}

impl<'a> ProfileView<'a> {
    /// A view of `base` with `overrides` applied. Overrides replace the
    /// base entry for their player; players listed twice take the first
    /// listed value (the audits never emit duplicates).
    pub fn new(base: &'a [ActionId], overrides: &'a [(PlayerId, ActionId)]) -> Self {
        ProfileView { base, overrides }
    }

    /// The base profile without overrides.
    pub fn of_base(base: &'a [ActionId]) -> Self {
        ProfileView {
            base,
            overrides: &[],
        }
    }

    /// Number of players in the profile.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the profile is empty (zero players).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The action player `p` takes under this view.
    pub fn action(&self, p: PlayerId) -> ActionId {
        for &(q, a) in self.overrides {
            if q == p {
                return a;
            }
        }
        self.base[p]
    }

    /// The sparse override list.
    pub fn overrides(&self) -> &'a [(PlayerId, ActionId)] {
        self.overrides
    }

    /// The underlying base profile.
    pub fn base(&self) -> &'a [ActionId] {
        self.base
    }
}

/// A source of payoff queries for the sampled deviation audits.
///
/// Implementations must be deterministic: the same view must always
/// return the same utility (stochastic backends fix their seeds at
/// construction — common random numbers across queries), which is what
/// makes sampled certificates reproducible and the sequential/parallel
/// audits bit-identical.
pub trait PayoffBackend {
    /// Number of players.
    fn num_players(&self) -> usize;

    /// Number of actions available to `player`.
    fn num_actions(&self, player: PlayerId) -> usize;

    /// Player `player`'s payoff at the profile described by `view`.
    fn payoff(&self, player: PlayerId, view: &ProfileView<'_>) -> Utility;

    /// A priori payoff bounds `(lo, hi)`: every payoff of every player
    /// lies in `[lo, hi]`. Used for the Hoeffding confidence radius of
    /// sampled certificates; the tighter the bound, the stronger the
    /// certificate.
    fn payoff_bounds(&self) -> (Utility, Utility);

    /// Fills `out[p]` with every player's payoff at `view`. Backends
    /// whose evaluation naturally produces all payoffs at once (one
    /// simulation run of an economy) override this to avoid `n` separate
    /// evaluations.
    fn payoffs_into(&self, view: &ProfileView<'_>, out: &mut [Utility]) {
        for (p, slot) in out.iter_mut().enumerate() {
            *slot = self.payoff(p, view);
        }
    }

    /// The players whose actions player `player`'s payoff can depend on,
    /// if the backend knows a bounded neighborhood; `None` means "possibly
    /// everyone". Purely advisory (diagnostics and tests).
    fn neighborhood(&self, player: PlayerId) -> Option<&[PlayerId]> {
        let _ = player;
        None
    }
}

/// The dense tensor as a [`PayoffBackend`]: stride arithmetic over the
/// wrapped [`NormalFormGame`]. Payoff bounds are scanned lazily (once)
/// over the tensors.
#[derive(Debug)]
pub struct DenseBackend<'g> {
    game: &'g NormalFormGame,
    bounds: OnceLock<(Utility, Utility)>,
}

impl<'g> DenseBackend<'g> {
    /// Wraps a dense game.
    pub fn new(game: &'g NormalFormGame) -> Self {
        DenseBackend {
            game,
            bounds: OnceLock::new(),
        }
    }

    /// The wrapped game.
    pub fn game(&self) -> &'g NormalFormGame {
        self.game
    }

    fn flat_of(&self, view: &ProfileView<'_>) -> usize {
        let strides = self.game.strides();
        let mut flat = 0;
        for (p, &stride) in strides.iter().enumerate() {
            flat += view.action(p) * stride;
        }
        flat
    }
}

impl PayoffBackend for DenseBackend<'_> {
    fn num_players(&self) -> usize {
        self.game.num_players()
    }

    fn num_actions(&self, player: PlayerId) -> usize {
        self.game.num_actions(player)
    }

    fn payoff(&self, player: PlayerId, view: &ProfileView<'_>) -> Utility {
        self.game.payoff_by_index(player, self.flat_of(view))
    }

    fn payoff_bounds(&self) -> (Utility, Utility) {
        *self.bounds.get_or_init(|| {
            let mut lo = Utility::INFINITY;
            let mut hi = Utility::NEG_INFINITY;
            for p in 0..self.game.num_players() {
                for &u in self.game.payoff_table(p) {
                    lo = lo.min(u);
                    hi = hi.max(u);
                }
            }
            if lo > hi {
                (0.0, 0.0)
            } else {
                (lo, hi)
            }
        })
    }
}

/// One player of a [`LocalBackend`]: a neighborhood and a payoff table
/// over the neighborhood's joint action sub-box.
#[derive(Debug, Clone)]
struct LocalPlayer {
    /// The players this player's payoff reads (always includes the player
    /// itself), in increasing order.
    neighbors: Vec<PlayerId>,
    /// Mixed-radix strides over `neighbors` (matching their order).
    strides: Vec<usize>,
    /// Payoff over the neighborhood sub-box, indexed by
    /// `Σ action(neighbors[i]) · strides[i]`.
    table: Vec<Utility>,
}

/// A utility-locality (graphical) game: each player's payoff depends only
/// on a bounded neighborhood of the profile. Memory is the sum of the
/// per-player neighborhood tables — `O(players · a^d)` for degree-`d`
/// neighborhoods — so million-player games with small neighborhoods fit
/// comfortably where the dense tensor (`O(players · a^players)` entries)
/// could not even be allocated. A payoff query reads `d` profile entries
/// and one table cell; no dense structure exists to touch.
#[derive(Debug, Clone)]
pub struct LocalBackend {
    action_counts: Vec<usize>,
    players: Vec<LocalPlayer>,
    bounds: (Utility, Utility),
}

impl LocalBackend {
    /// Builds a utility-locality game from per-player neighborhoods and a
    /// payoff function over the neighborhood's joint actions:
    /// `payoff(p, local_actions)` receives the actions of `p`'s
    /// neighborhood in the order given by `neighborhoods[p]` (each
    /// neighborhood must contain `p` itself; entries are deduplicated and
    /// sorted). The function is tabulated once per player.
    ///
    /// # Panics
    ///
    /// Panics if `action_counts` is empty or contains a zero, if
    /// `neighborhoods` has a different length, if a neighborhood names an
    /// out-of-range player, or if a neighborhood omits its own player.
    pub fn from_fn<F>(action_counts: &[usize], neighborhoods: &[Vec<PlayerId>], payoff: F) -> Self
    where
        F: Fn(PlayerId, &[ActionId]) -> Utility,
    {
        let n = action_counts.len();
        assert!(n > 0, "utility-locality games need at least one player");
        assert!(
            action_counts.iter().all(|&a| a > 0),
            "every player needs at least one action"
        );
        assert_eq!(
            neighborhoods.len(),
            n,
            "one neighborhood per player required"
        );
        let mut lo = Utility::INFINITY;
        let mut hi = Utility::NEG_INFINITY;
        let mut players = Vec::with_capacity(n);
        for (p, raw) in neighborhoods.iter().enumerate() {
            let mut neighbors = raw.clone();
            neighbors.sort_unstable();
            neighbors.dedup();
            assert!(
                neighbors.iter().all(|&q| q < n),
                "neighborhood of player {p} names an out-of-range player"
            );
            assert!(
                neighbors.contains(&p),
                "neighborhood of player {p} must contain the player itself"
            );
            // local mixed-radix layout over the neighborhood
            let mut strides = vec![0usize; neighbors.len()];
            let mut acc = 1usize;
            for (i, &q) in neighbors.iter().enumerate().rev() {
                strides[i] = acc;
                acc *= action_counts[q];
            }
            let mut table = Vec::with_capacity(acc);
            let mut local = vec![0usize; neighbors.len()];
            loop {
                let u = payoff(p, &local);
                lo = lo.min(u);
                hi = hi.max(u);
                table.push(u);
                // odometer over the neighborhood sub-box
                let mut i = local.len();
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    local[i] += 1;
                    if local[i] < action_counts[neighbors[i]] {
                        break;
                    }
                    local[i] = 0;
                }
                if local.iter().all(|&a| a == 0) {
                    break;
                }
            }
            debug_assert_eq!(table.len(), acc);
            players.push(LocalPlayer {
                neighbors,
                strides,
                table,
            });
        }
        LocalBackend {
            action_counts: action_counts.to_vec(),
            players,
            bounds: (lo.min(hi), hi.max(lo)),
        }
    }

    /// A ring-lattice utility-locality game: player `p`'s neighborhood is
    /// `p − radius ..= p + radius` (mod `n`, clamped to distinct players),
    /// every player has `actions` actions, and payoffs come from `payoff`
    /// as in [`LocalBackend::from_fn`]. The standard large-but-sparse
    /// shape used by the benches and tests.
    pub fn ring<F>(n: usize, actions: usize, radius: usize, payoff: F) -> Self
    where
        F: Fn(PlayerId, &[ActionId]) -> Utility,
    {
        let neighborhoods: Vec<Vec<PlayerId>> = (0..n)
            .map(|p| {
                let mut nb: Vec<PlayerId> =
                    (0..=2 * radius).map(|i| (p + n + i - radius) % n).collect();
                nb.sort_unstable();
                nb.dedup();
                nb
            })
            .collect();
        Self::from_fn(&vec![actions; n], &neighborhoods, payoff)
    }

    /// Total payoff-table entries across all players — the memory story:
    /// compare against `players · ∏ actions` for the dense tensor.
    pub fn table_entries(&self) -> usize {
        self.players.iter().map(|p| p.table.len()).sum()
    }

    /// Materializes the equivalent dense [`NormalFormGame`]. Only
    /// feasible for small games; the property tests use it to check local
    /// and dense queries agree.
    ///
    /// # Panics
    ///
    /// Panics if the dense profile space exceeds `2^24` profiles.
    pub fn to_dense(&self) -> NormalFormGame {
        let total: usize = self.action_counts.iter().product();
        assert!(
            total <= 1 << 24,
            "refusing to densify a game with {total} profiles"
        );
        let actions: Vec<Vec<String>> = self
            .action_counts
            .iter()
            .map(|&r| (0..r).map(|a| format!("a{a}")).collect())
            .collect();
        let n = self.action_counts.len();
        let mut payoffs = vec![vec![0.0; total]; n];
        let mut profile = vec![0usize; n];
        for flat in 0..total {
            let view = ProfileView::of_base(&profile);
            for (p, table) in payoffs.iter_mut().enumerate() {
                table[flat] = self.payoff(p, &view);
            }
            // advance the odometer (least-significant = last player,
            // matching the dense stride layout)
            let mut i = n;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                profile[i] += 1;
                if profile[i] < self.action_counts[i] {
                    break;
                }
                profile[i] = 0;
            }
        }
        NormalFormGame::new("densified local game".to_string(), actions, payoffs)
            .expect("locality tables produce well-formed tensors")
    }
}

impl PayoffBackend for LocalBackend {
    fn num_players(&self) -> usize {
        self.action_counts.len()
    }

    fn num_actions(&self, player: PlayerId) -> usize {
        self.action_counts[player]
    }

    fn payoff(&self, player: PlayerId, view: &ProfileView<'_>) -> Utility {
        let lp = &self.players[player];
        let mut idx = 0usize;
        for (&q, &stride) in lp.neighbors.iter().zip(lp.strides.iter()) {
            idx += view.action(q) * stride;
        }
        lp.table[idx]
    }

    fn payoff_bounds(&self) -> (Utility, Utility) {
        self.bounds
    }

    fn neighborhood(&self, player: PlayerId) -> Option<&[PlayerId]> {
        Some(&self.players[player].neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_game;

    #[test]
    fn profile_view_applies_overrides() {
        let base = [0usize, 1, 2];
        let overrides = [(1usize, 4usize)];
        let view = ProfileView::new(&base, &overrides);
        assert_eq!(view.len(), 3);
        assert_eq!(view.action(0), 0);
        assert_eq!(view.action(1), 4);
        assert_eq!(view.action(2), 2);
        let plain = ProfileView::of_base(&base);
        assert_eq!(plain.action(1), 1);
    }

    #[test]
    fn dense_backend_matches_direct_payoffs() {
        let g = random_game(41, &[3, 2, 4]);
        let backend = DenseBackend::new(&g);
        assert_eq!(backend.num_players(), 3);
        assert_eq!(backend.num_actions(2), 4);
        let base = [2usize, 0, 3];
        let view = ProfileView::of_base(&base);
        for p in 0..3 {
            assert_eq!(backend.payoff(p, &view), g.payoff(p, &base));
        }
        // overrides match a mutated profile
        let overrides = [(0usize, 1usize), (2usize, 0usize)];
        let dev_view = ProfileView::new(&base, &overrides);
        let mutated = [1usize, 0, 0];
        for p in 0..3 {
            assert_eq!(backend.payoff(p, &dev_view), g.payoff(p, &mutated));
        }
        let (lo, hi) = backend.payoff_bounds();
        assert!(lo <= hi);
        assert!((-5.0..=5.0).contains(&lo) && (-5.0..=5.0).contains(&hi));
        let mut out = vec![0.0; 3];
        backend.payoffs_into(&view, &mut out);
        for (p, &u) in out.iter().enumerate() {
            assert_eq!(u, g.payoff(p, &base));
        }
    }

    #[test]
    fn local_ring_matches_its_densification() {
        // coordination on a ring: payoff = -(sum of local action gaps)
        let local = LocalBackend::ring(5, 3, 1, |_, acts| {
            -(acts.iter().map(|&a| a as f64).sum::<f64>())
        });
        assert_eq!(local.num_players(), 5);
        assert_eq!(local.table_entries(), 5 * 27);
        let dense_game = local.to_dense();
        let dense = DenseBackend::new(&dense_game);
        let mut profile = vec![0usize; 5];
        for flat in 0..dense_game.num_profiles() {
            profile.copy_from_slice(&dense_game.profile_at(flat));
            let view = ProfileView::of_base(&profile);
            for p in 0..5 {
                assert_eq!(
                    local.payoff(p, &view),
                    dense.payoff(p, &view),
                    "flat {flat} player {p}"
                );
            }
        }
        assert_eq!(local.neighborhood(0), Some(&[0usize, 1, 4][..]));
        let (lo, hi) = local.payoff_bounds();
        assert_eq!(hi, 0.0);
        assert_eq!(lo, -6.0);
    }

    #[test]
    fn local_memory_is_linear_in_players() {
        // 200 players of 3 actions each: the dense tensor would need
        // 200 * 3^200 entries; the locality tables need 200 * 27.
        let local = LocalBackend::ring(200, 3, 1, |p, acts| {
            (p % 7) as f64 - acts.iter().sum::<usize>() as f64
        });
        assert_eq!(local.table_entries(), 200 * 27);
        let base = vec![1usize; 200];
        let view = ProfileView::of_base(&base);
        let overrides = [(100usize, 2usize)];
        let dev = ProfileView::new(&base, &overrides);
        // the deviation only moves payoffs inside the neighborhood
        for p in 0..200 {
            let moved = local.payoff(p, &dev) != local.payoff(p, &view);
            let in_nbhd = local.neighborhood(p).unwrap().contains(&100);
            assert!(!moved || in_nbhd, "player {p} moved without locality");
        }
    }

    #[test]
    #[should_panic(expected = "must contain the player itself")]
    fn neighborhood_must_include_self() {
        let _ = LocalBackend::from_fn(&[2, 2], &[vec![0], vec![0]], |_, _| 0.0);
    }
}
