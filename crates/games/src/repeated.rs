//! Finitely repeated two-player games with discounting.
//!
//! Used for finitely repeated prisoner's dilemma (FRPD, Example 3.2 of the
//! paper): the stage game is played `N` times and the round-`m` reward is
//! discounted by `δ^m`. Strategies observe the full history of past action
//! profiles; `bne-machine` layers machine/automaton strategies with explicit
//! complexity costs on top of this module.

use crate::error::GameError;
use crate::normal_form::NormalFormGame;
use crate::{ActionId, PlayerId, Utility};

/// One round of play in a two-player repeated game: the actions taken by
/// both players.
pub type Round = [ActionId; 2];

/// The history visible to strategies: every completed round so far, in
/// order.
pub type History = [Round];

/// A strategy for a two-player repeated game.
///
/// Implementors decide the next action from the player's index and the full
/// history of play. Strategies are fallible only through panics; the
/// engine validates actions against the stage game.
pub trait RepeatedStrategy {
    /// A short human-readable name (used in tournament tables).
    fn name(&self) -> String;

    /// Chooses the action for round `history.len()` given the history of all
    /// previous rounds. `me` is the index (0 or 1) of the player this
    /// strategy is playing as.
    fn decide(&mut self, me: PlayerId, history: &History) -> ActionId;

    /// Called when a match starts, allowing stateful strategies to reset.
    fn reset(&mut self) {}
}

/// Configuration of a finitely repeated two-player game.
#[derive(Debug, Clone)]
pub struct RepeatedGame {
    stage: NormalFormGame,
    rounds: usize,
    discount: f64,
}

/// The result of playing out a repeated game.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// The sequence of action profiles played.
    pub rounds: Vec<Round>,
    /// Total (discounted) payoff of each player.
    pub payoffs: [Utility; 2],
    /// Undiscounted per-round payoffs, for diagnostics.
    pub per_round: Vec<[Utility; 2]>,
}

impl RepeatedGame {
    /// Creates a repeated game from a two-player stage game.
    ///
    /// The round-`m` reward (1-based, as in the paper) is weighted by
    /// `discount^m`. Use `discount = 1.0` for no discounting.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UnsupportedStructure`] if the stage game does
    /// not have exactly two players, and [`GameError::InvalidDistribution`]
    /// if the discount factor is not in `(0, 1]` or `rounds` is zero.
    pub fn new(stage: NormalFormGame, rounds: usize, discount: f64) -> Result<Self, GameError> {
        if stage.num_players() != 2 {
            return Err(GameError::UnsupportedStructure {
                reason: "repeated games are implemented for two players".to_string(),
            });
        }
        if rounds == 0 {
            return Err(GameError::EmptyGame {
                reason: "repeated game must have at least one round".to_string(),
            });
        }
        if !(discount > 0.0 && discount <= 1.0) {
            return Err(GameError::InvalidDistribution {
                reason: format!("discount factor {discount} outside (0, 1]"),
            });
        }
        Ok(RepeatedGame {
            stage,
            rounds,
            discount,
        })
    }

    /// The stage game.
    pub fn stage(&self) -> &NormalFormGame {
        &self.stage
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Discount factor.
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Discount weight applied to round `m` (0-based round index; the paper
    /// indexes rounds from 1, so the weight is `discount^(m+1)`).
    pub fn weight(&self, round: usize) -> f64 {
        self.discount.powi(round as i32 + 1)
    }

    /// Plays the two strategies against each other and returns the full
    /// match result.
    pub fn play(&self, a: &mut dyn RepeatedStrategy, b: &mut dyn RepeatedStrategy) -> MatchResult {
        a.reset();
        b.reset();
        let mut history: Vec<Round> = Vec::with_capacity(self.rounds);
        let mut payoffs = [0.0, 0.0];
        let mut per_round = Vec::with_capacity(self.rounds);
        for m in 0..self.rounds {
            let act_a = a.decide(0, &history).min(self.stage.num_actions(0) - 1);
            let act_b = b.decide(1, &history).min(self.stage.num_actions(1) - 1);
            let profile = [act_a, act_b];
            let u0 = self.stage.payoff(0, &profile);
            let u1 = self.stage.payoff(1, &profile);
            per_round.push([u0, u1]);
            let w = self.weight(m);
            payoffs[0] += w * u0;
            payoffs[1] += w * u1;
            history.push(profile);
        }
        MatchResult {
            rounds: history,
            payoffs,
            per_round,
        }
    }

    /// Total discounted payoff of the constant action-profile sequence in
    /// which the same stage profile is played every round. Handy for
    /// analytic comparisons (e.g. the value of mutual cooperation in FRPD).
    pub fn constant_profile_value(&self, profile: &[ActionId; 2], player: PlayerId) -> Utility {
        let u = self.stage.payoff(player, profile);
        (0..self.rounds).map(|m| self.weight(m) * u).sum()
    }
}

/// Strategy that always plays a fixed action.
#[derive(Debug, Clone)]
pub struct ConstantStrategy {
    /// The action played every round.
    pub action: ActionId,
    /// Display name.
    pub label: String,
}

impl ConstantStrategy {
    /// Creates a constant strategy.
    pub fn new(action: ActionId, label: impl Into<String>) -> Self {
        ConstantStrategy {
            action,
            label: label.into(),
        }
    }
}

impl RepeatedStrategy for ConstantStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, _me: PlayerId, _history: &History) -> ActionId {
        self.action
    }
}

/// The tit-for-tat strategy of Example 3.2: cooperate (action 0) first, then
/// copy the opponent's previous action.
#[derive(Debug, Clone, Default)]
pub struct TitForTat;

impl RepeatedStrategy for TitForTat {
    fn name(&self) -> String {
        "TitForTat".to_string()
    }

    fn decide(&mut self, me: PlayerId, history: &History) -> ActionId {
        match history.last() {
            None => 0,
            Some(round) => round[1 - me],
        }
    }
}

/// Tit-for-tat that defects in the final `defect_last` rounds — the "best
/// response to tit-for-tat" the paper discusses, which requires keeping
/// track of the round number (and hence extra memory in the machine-game
/// model).
#[derive(Debug, Clone)]
pub struct TitForTatDefectLast {
    /// Total number of rounds in the game (needed to know when the end is
    /// near — this is exactly the extra bookkeeping the paper charges for).
    pub total_rounds: usize,
    /// Number of final rounds in which to defect.
    pub defect_last: usize,
}

impl RepeatedStrategy for TitForTatDefectLast {
    fn name(&self) -> String {
        format!("TitForTatDefectLast{}", self.defect_last)
    }

    fn decide(&mut self, me: PlayerId, history: &History) -> ActionId {
        let round = history.len();
        if round + self.defect_last >= self.total_rounds {
            return 1;
        }
        match history.last() {
            None => 0,
            Some(r) => r[1 - me],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;

    fn frpd(rounds: usize, discount: f64) -> RepeatedGame {
        RepeatedGame::new(classic::prisoners_dilemma(), rounds, discount).unwrap()
    }

    #[test]
    fn construction_validation() {
        let pd = classic::prisoners_dilemma();
        assert!(RepeatedGame::new(pd.clone(), 0, 0.9).is_err());
        assert!(RepeatedGame::new(pd.clone(), 5, 0.0).is_err());
        assert!(RepeatedGame::new(pd.clone(), 5, 1.5).is_err());
        assert!(RepeatedGame::new(classic::coordination_game(3), 5, 0.9).is_err());
        assert!(RepeatedGame::new(pd, 5, 1.0).is_ok());
    }

    #[test]
    fn mutual_tit_for_tat_cooperates_throughout() {
        let g = frpd(10, 0.9);
        let result = g.play(&mut TitForTat, &mut TitForTat);
        assert!(result.rounds.iter().all(|r| *r == [0, 0]));
        // both get the value of constant cooperation
        let expected = g.constant_profile_value(&[0, 0], 0);
        assert!((result.payoffs[0] - expected).abs() < 1e-9);
        assert!((result.payoffs[1] - expected).abs() < 1e-9);
    }

    #[test]
    fn tit_for_tat_punishes_defection() {
        let g = frpd(4, 1.0);
        let mut alld = ConstantStrategy::new(1, "AllD");
        let result = g.play(&mut TitForTat, &mut alld);
        // round 0: (C, D); rounds 1..: (D, D)
        assert_eq!(result.rounds[0], [0, 1]);
        assert!(result.rounds[1..].iter().all(|r| *r == [1, 1]));
    }

    #[test]
    fn defect_last_round_beats_tit_for_tat_without_discounting() {
        let n = 10;
        let g = frpd(n, 1.0);
        let mut tft = TitForTat;
        let mut sneaky = TitForTatDefectLast {
            total_rounds: n,
            defect_last: 1,
        };
        let honest = g.play(&mut TitForTat, &mut tft).payoffs[1];
        let mut tft2 = TitForTat;
        let tricky = g.play(&mut tft2, &mut sneaky).payoffs[1];
        // Defecting at the last round gains 5 - 3 = 2 with no future
        // punishment, so without discounting it strictly beats honesty.
        assert!(tricky > honest);
        assert!((tricky - honest - 2.0).abs() < 1e-9);
    }

    #[test]
    fn discounting_weights_early_rounds_more() {
        let g = frpd(3, 0.5);
        // weights are 0.5, 0.25, 0.125 (paper indexes rounds from 1)
        assert!((g.weight(0) - 0.5).abs() < 1e-12);
        assert!((g.weight(2) - 0.125).abs() < 1e-12);
        let v = g.constant_profile_value(&[0, 0], 0);
        assert!((v - 3.0 * (0.5 + 0.25 + 0.125)).abs() < 1e-9);
    }

    #[test]
    fn per_round_payoffs_recorded() {
        let g = frpd(3, 1.0);
        let r = g.play(
            &mut ConstantStrategy::new(0, "AllC"),
            &mut ConstantStrategy::new(1, "AllD"),
        );
        assert_eq!(r.per_round.len(), 3);
        assert_eq!(r.per_round[0], [-5.0, 5.0]);
    }
}
