//! The deviation oracle: one pruned search core for every
//! "no profitable coalition deviation" predicate in the workspace.
//!
//! The paper's central objects — pure Nash equilibrium, k-resilience,
//! t-immunity, (k,t)-robustness and punishment strategies — are all
//! predicates over coalition deviations from a profile. Before this module
//! each consumer (`bne-solvers`, the four `bne-robust` analyses,
//! `bne-mediator`) re-implemented the check as a brute-force sweep. The
//! [`DeviationOracle`] owns that hot path once:
//!
//! * **best-response payoff tables** — `best(p, flat)` is the highest
//!   payoff player `p` can reach from the profile at `flat` by a
//!   unilateral move (staying included), precomputed lazily in one pass
//!   over the payoff tensor. The table is a *sound accept/reject
//!   certificate*: a profile where every player already best-responds has
//!   no profitable size-1 deviation, and a single unilateral gain refutes
//!   k-resilience for **all** `k ≥ 1` at once;
//! * **iterated pre-elimination** — actions that are never an ε-best
//!   response against any surviving opponent context cannot appear in a
//!   Nash profile (and therefore in any k-resilient profile with
//!   `k ≥ 1`); eliminating them iteratively shrinks the searched space,
//!   with a remapping back to the original game's flat indices. This
//!   subsumes iterated strict dominance (a strictly dominated action is
//!   never a best response);
//! * **incremental flat-index evaluation** — the pruned sub-box is walked
//!   with stride-delta updates on the *original* flat index, so no
//!   profile is ever re-encoded;
//! * **memoized payoff snapshots** — a profile's payoff vector is read
//!   once and shared across every coalition and coalition size examined
//!   for it.
//!
//! Pruning never changes results: elimination is only applied to
//! predicates that imply "no unilateral gain" (Nash and k-resilience with
//! `k ≥ 1`), every such profile survives elimination, and the surviving
//! sub-box is enumerated in ascending original flat order — so pruned
//! sweeps return **bit-identical** profile lists (same profiles, same
//! order) as the exhaustive ones. [`SearchStrategy::Exhaustive`] keeps
//! the unpruned path available as the property-test equality gate.
//!
//! # Examples
//!
//! The oracle answers per-profile predicates by flat index (profile
//! `(a_0, …)` lives at `Σ a_p · stride_p`; see
//! [`NormalFormGame::strides`]). In the prisoner's dilemma, (Defect,
//! Defect) — flat index 3 — is the unique Nash equilibrium, but any
//! 2-coalition gains by jointly switching to Cooperate, so it is not
//! 2-resilient:
//!
//! ```
//! use bne_games::classic::prisoners_dilemma;
//! use bne_games::{DeviationOracle, ResilienceVariant};
//!
//! let game = prisoners_dilemma();
//! let oracle = DeviationOracle::new(&game);
//!
//! let dd = 3; // flat index of (Defect, Defect)
//! assert!(oracle.is_nash(dd));
//! assert!(!oracle.is_k_resilient(dd, 2, ResilienceVariant::SomeMemberGains));
//! assert_eq!(oracle.max_resilience(dd, 2, ResilienceVariant::SomeMemberGains), 1);
//!
//! // no other profile is Nash: one oracle, many queries, one table build
//! assert!((0..4).filter(|&flat| oracle.is_nash(flat)).eq([dd]));
//! ```

use crate::normal_form::NormalFormGame;
use crate::profile::{index_to_profile, try_for_each_subset_of_size, with_scratch, ActionProfile};
use crate::{ActionId, PlayerId, Utility, EPSILON};
use std::ops::Range;
use std::sync::OnceLock;

/// Which search core a [`DeviationOracle`] sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Best-response certificates plus iterated pre-elimination of
    /// never-best-response actions, applied wherever they are sound. The
    /// default, and bit-identical to [`SearchStrategy::Exhaustive`].
    #[default]
    Pruned,
    /// The unpruned flat-index sweep of the pre-oracle implementations:
    /// every profile visited, every size-1 deviation re-scanned. Retained
    /// as the escape hatch the property tests compare against.
    Exhaustive,
}

/// Which players must benefit for a coalition deviation to count as a
/// successful objection against k-resilience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResilienceVariant {
    /// The deviation succeeds if **some** member of the coalition strictly
    /// gains (and, implicitly, the others in the coalition follow along).
    /// This is the strong notion used by Abraham et al. and the paper.
    #[default]
    SomeMemberGains,
    /// The deviation succeeds only if **every** member of the coalition
    /// strictly gains. This is the weaker, coalition-proof-style notion.
    AllMembersGain,
}

/// The pruned sub-box: per-player surviving actions (original indices,
/// increasing) and the cached mixed-radix layout over them.
#[derive(Debug, Clone)]
struct PrunedSpace {
    /// Surviving actions per player, in increasing original order.
    surviving: Vec<Vec<ActionId>>,
    /// Radices of the pruned sub-box (`surviving[p].len()`).
    radices: Vec<usize>,
    /// Number of profiles in the pruned sub-box.
    count: usize,
    /// Rounds of elimination performed.
    rounds: usize,
}

/// The shared deviation-checking core. Borrows the game; every payoff
/// access is flat-index stride arithmetic on the original tensors.
#[derive(Debug)]
pub struct DeviationOracle<'g> {
    game: &'g NormalFormGame,
    strategy: SearchStrategy,
    /// `best[p][flat]`: lazily built best-response payoff tables.
    best: OnceLock<Vec<Vec<Utility>>>,
    /// Lazily computed pre-elimination result.
    pruned: OnceLock<PrunedSpace>,
}

impl<'g> DeviationOracle<'g> {
    /// Creates an oracle with the default [`SearchStrategy::Pruned`].
    pub fn new(game: &'g NormalFormGame) -> Self {
        Self::with_strategy(game, SearchStrategy::Pruned)
    }

    /// Creates an oracle with an explicit strategy
    /// ([`SearchStrategy::Exhaustive`] is the property-test gate).
    pub fn with_strategy(game: &'g NormalFormGame, strategy: SearchStrategy) -> Self {
        DeviationOracle {
            game,
            strategy,
            best: OnceLock::new(),
            pruned: OnceLock::new(),
        }
    }

    /// The underlying game.
    pub fn game(&self) -> &'g NormalFormGame {
        self.game
    }

    /// The strategy this oracle sweeps with.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    // -----------------------------------------------------------------
    // Best-response payoff tables (the accept/reject certificates)
    // -----------------------------------------------------------------

    /// The per-player best-response payoff tables, built on first use in
    /// one pass per player over the payoff tensor (entries are constant
    /// along the player's own stride, so each context is maximized once
    /// and the result written along the stride). The context walk is
    /// pure stride arithmetic — no division or re-encoding per entry.
    fn best_tables(&self) -> &Vec<Vec<Utility>> {
        self.best.get_or_init(|| {
            let n = self.game.num_players();
            let total = self.game.num_profiles();
            let mut tables = vec![vec![0.0; total]; n];
            for (p, table) in tables.iter_mut().enumerate() {
                let stride = self.game.strides()[p];
                let radix = self.game.num_actions(p);
                let payoffs = self.game.payoff_table(p);
                let block = stride * radix;
                let mut block_start = 0;
                while block_start < total {
                    for base in block_start..block_start + stride {
                        let mut m = Utility::NEG_INFINITY;
                        for a in 0..radix {
                            m = m.max(payoffs[base + a * stride]);
                        }
                        for a in 0..radix {
                            table[base + a * stride] = m;
                        }
                    }
                    block_start += block;
                }
            }
            tables
        })
    }

    /// The best payoff `player` can reach from the profile at `flat` by a
    /// unilateral move (including not moving) — a table lookup.
    pub fn best_unilateral_payoff(&self, player: PlayerId, flat: usize) -> Utility {
        self.best_tables()[player][flat]
    }

    /// Whether some player can strictly gain by a unilateral deviation
    /// from the profile at `flat`. `true` is a *reject certificate* for
    /// k-resilience at every `k ≥ 1` (and for Nash); `false` is an
    /// *accept certificate* for every size-1 coalition at once.
    pub fn has_unilateral_gain(&self, flat: usize) -> bool {
        let tables = self.best_tables();
        (0..self.game.num_players())
            .any(|p| tables[p][flat] > self.game.payoff_by_index(p, flat) + EPSILON)
    }

    /// Whether the profile at `flat` is a pure Nash equilibrium. With the
    /// tables built this is `n` lookups instead of a deviation scan.
    pub fn is_nash(&self, flat: usize) -> bool {
        match self.strategy {
            SearchStrategy::Pruned => !self.has_unilateral_gain(flat),
            SearchStrategy::Exhaustive => self.game.is_pure_nash_by_index(flat),
        }
    }

    // -----------------------------------------------------------------
    // Iterated pre-elimination
    // -----------------------------------------------------------------

    /// Visits the sub-box spanned by `surviving` with player `pin`'s
    /// digit held at its first surviving action, yielding the original
    /// flat index of every opponent context. Pure stride-delta updates —
    /// no division or re-encoding per context.
    fn visit_pinned_subbox(
        &self,
        surviving: &[Vec<ActionId>],
        pin: PlayerId,
        mut f: impl FnMut(usize),
    ) {
        let n = surviving.len();
        let strides = self.game.strides();
        with_scratch::<usize, ()>(n, |digits| {
            let mut flat: usize = surviving
                .iter()
                .enumerate()
                .map(|(p, s)| s[0] * strides[p])
                .sum();
            loop {
                f(flat);
                // advance the odometer over every player except `pin`
                let mut i = n;
                loop {
                    if i == 0 {
                        return;
                    }
                    i -= 1;
                    if i == pin {
                        continue;
                    }
                    let s = &surviving[i];
                    digits[i] += 1;
                    if digits[i] < s.len() {
                        flat += (s[digits[i]] - s[digits[i] - 1]) * strides[i];
                        break;
                    }
                    flat -= (s[s.len() - 1] - s[0]) * strides[i];
                    digits[i] = 0;
                }
            }
        });
    }

    /// The pre-elimination result: iterated removal of actions that are
    /// never an ε-best response against any surviving opponent context,
    /// with survivors expressed as original action indices. Sound for
    /// Nash-implying predicates because an equilibrium action is a best
    /// response against equilibrium opponent actions, which themselves
    /// survive every round (induction). Runs entirely on masks over the
    /// original payoff tensors — no restricted game is ever materialized,
    /// and every round reads its per-context maxima straight off the
    /// certificate tables (sound in later rounds too: the argmax action
    /// of a surviving context is ε-best there, so it can never have been
    /// eliminated — the full-game max *is* the surviving max).
    fn pruned_space(&self) -> &PrunedSpace {
        self.pruned.get_or_init(|| {
            let game = self.game;
            let n = game.num_players();
            let strides = game.strides();
            let tables = self.best_tables();
            let mut surviving: Vec<Vec<ActionId>> =
                (0..n).map(|p| (0..game.num_actions(p)).collect()).collect();
            let mut rounds = 0;
            loop {
                let mut changed = false;
                for p in 0..n {
                    if surviving[p].len() == 1 {
                        continue;
                    }
                    let payoffs = game.payoff_table(p);
                    let stride = strides[p];
                    let mut used = vec![false; surviving[p].len()];
                    let survivors_p = surviving[p].clone();
                    self.visit_pinned_subbox(&surviving, p, |flat| {
                        let base = flat - survivors_p[0] * stride;
                        let m = tables[p][flat];
                        for (slot, &a) in used.iter_mut().zip(survivors_p.iter()) {
                            if payoffs[base + a * stride] >= m - EPSILON {
                                *slot = true;
                            }
                        }
                    });
                    if used.iter().any(|u| !u) {
                        changed = true;
                        surviving[p] = survivors_p
                            .iter()
                            .zip(used.iter())
                            .filter_map(|(&a, &u)| u.then_some(a))
                            .collect();
                    }
                }
                if !changed {
                    break;
                }
                rounds += 1;
            }
            let radices: Vec<usize> = surviving.iter().map(|s| s.len()).collect();
            let count = radices.iter().product();
            PrunedSpace {
                surviving,
                radices,
                count,
                rounds,
            }
        })
    }

    /// The surviving actions per player (original indices, increasing)
    /// after iterated never-best-response elimination.
    pub fn surviving_actions(&self) -> Vec<Vec<ActionId>> {
        self.pruned_space().surviving.clone()
    }

    /// Number of profiles in the pruned sub-box (equals
    /// `game.num_profiles()` when nothing could be eliminated).
    pub fn pruned_profile_count(&self) -> usize {
        self.pruned_space().count
    }

    /// Rounds of iterated elimination performed.
    pub fn elimination_rounds(&self) -> usize {
        self.pruned_space().rounds
    }

    /// Original flat index of the `idx`-th profile of the pruned sub-box
    /// (ascending in `idx` because survivor lists are increasing).
    fn pruned_to_flat(&self, idx: usize) -> usize {
        let space = self.pruned_space();
        let digits = index_to_profile(idx, &space.radices);
        digits
            .iter()
            .enumerate()
            .map(|(p, &d)| space.surviving[p][d] * self.game.strides()[p])
            .sum()
    }

    /// Visits the pruned sub-box over the contiguous pruned-index `range`
    /// as `f(original_flat)`, maintaining the original flat index with
    /// stride-delta updates (no per-step re-encoding). Returns `true`
    /// when the whole range was visited.
    fn visit_pruned_range<F: FnMut(usize) -> bool>(&self, range: Range<usize>, mut f: F) -> bool {
        if range.start >= range.end {
            return true;
        }
        let space = self.pruned_space();
        let strides = self.game.strides();
        let mut digits = index_to_profile(range.start, &space.radices);
        let mut flat = self.pruned_to_flat(range.start);
        for _ in range {
            if !f(flat) {
                return false;
            }
            // advance the pruned odometer, updating the original flat
            // index in place
            let mut i = digits.len();
            loop {
                if i == 0 {
                    return true; // wrapped: range end was the last profile
                }
                i -= 1;
                let s = &space.surviving[i];
                digits[i] += 1;
                if digits[i] < s.len() {
                    flat += (s[digits[i]] - s[digits[i] - 1]) * strides[i];
                    break;
                }
                flat -= (s[s.len() - 1] - s[0]) * strides[i];
                digits[i] = 0;
            }
        }
        true
    }

    // -----------------------------------------------------------------
    // Predicates (all by original flat index)
    // -----------------------------------------------------------------

    /// Size-1 resilience check without the tables: the legacy early-exit
    /// stride walk (the [`SearchStrategy::Exhaustive`] path).
    fn scan_unilateral_gain(&self, flat: usize) -> bool {
        let n = self.game.num_players();
        for p in 0..n {
            let stride = self.game.strides()[p];
            let base = flat - self.game.action_at(flat, p) * stride;
            let current = self.game.payoff_by_index(p, flat);
            for a in 0..self.game.num_actions(p) {
                if self.game.payoff_by_index(p, base + a * stride) > current + EPSILON {
                    return true;
                }
            }
        }
        false
    }

    /// Whether some player can strictly gain by a unilateral deviation,
    /// via the strategy-appropriate path (table certificate when pruned,
    /// early-exit scan when exhaustive).
    fn unilateral_gain(&self, flat: usize) -> bool {
        match self.strategy {
            SearchStrategy::Pruned => self.has_unilateral_gain(flat),
            SearchStrategy::Exhaustive => self.scan_unilateral_gain(flat),
        }
    }

    /// Whether a coalition of exactly `size ≥ 2` players has a profitable
    /// joint deviation from `flat`, reading equilibrium payoffs from the
    /// memoized `snapshot`.
    fn coalition_gain_at_size(
        &self,
        flat: usize,
        size: usize,
        variant: ResilienceVariant,
        snapshot: &[Utility],
    ) -> bool {
        let game = self.game;
        !try_for_each_subset_of_size(game.num_players(), size, |coalition| {
            game.visit_coalition_deviations(flat, coalition, |_, new_flat| {
                if new_flat == flat {
                    return true; // the non-deviation
                }
                let success = match variant {
                    ResilienceVariant::SomeMemberGains => coalition
                        .iter()
                        .any(|&p| game.payoff_by_index(p, new_flat) > snapshot[p] + EPSILON),
                    ResilienceVariant::AllMembersGain => coalition
                        .iter()
                        .all(|&p| game.payoff_by_index(p, new_flat) > snapshot[p] + EPSILON),
                };
                !success
            })
        })
    }

    /// Whether a deviator set of exactly `size ≥ 2` players can hurt some
    /// bystander at `flat`, reading baselines from the memoized
    /// `snapshot`.
    fn immunity_violation_at_size(&self, flat: usize, size: usize, snapshot: &[Utility]) -> bool {
        let game = self.game;
        let n = game.num_players();
        !try_for_each_subset_of_size(n, size, |deviators| {
            game.visit_coalition_deviations(flat, deviators, |_, new_flat| {
                if new_flat == flat {
                    return true;
                }
                for (victim, &before) in snapshot.iter().enumerate() {
                    if deviators.contains(&victim) {
                        continue;
                    }
                    if game.payoff_by_index(victim, new_flat) < before - EPSILON {
                        return false;
                    }
                }
                true
            })
        })
    }

    /// Size-1 immunity check: can one deviator hurt some bystander?
    fn unilateral_immunity_violation(&self, flat: usize, snapshot: &[Utility]) -> bool {
        let game = self.game;
        let n = game.num_players();
        for p in 0..n {
            let stride = game.strides()[p];
            let base = flat - game.action_at(flat, p) * stride;
            for a in 0..game.num_actions(p) {
                let new_flat = base + a * stride;
                if new_flat == flat {
                    continue;
                }
                for (victim, &before) in snapshot.iter().enumerate() {
                    if victim != p && game.payoff_by_index(victim, new_flat) < before - EPSILON {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Fills `snapshot` with the payoff vector of the profile at `flat`
    /// (the memoized read shared by every coalition examined for it).
    fn snapshot_into(&self, flat: usize, snapshot: &mut [Utility]) {
        for (p, slot) in snapshot.iter_mut().enumerate() {
            *slot = self.game.payoff_by_index(p, flat);
        }
    }

    /// Whether the profile at `flat` is k-resilient under `variant`.
    /// Agrees exactly with `bne_robust::resilience::is_k_resilient`.
    pub fn is_k_resilient(&self, flat: usize, k: usize, variant: ResilienceVariant) -> bool {
        if k == 0 {
            return true;
        }
        if self.unilateral_gain(flat) {
            return false; // refutes every k >= 1 at once
        }
        let n = self.game.num_players();
        if k == 1 || n < 2 {
            return true;
        }
        with_scratch::<Utility, bool>(n, |snapshot| {
            self.snapshot_into(flat, snapshot);
            (2..=k.min(n)).all(|size| !self.coalition_gain_at_size(flat, size, variant, snapshot))
        })
    }

    /// Whether the profile at `flat` is t-immune. Elimination is *not*
    /// sound for immunity (immune profiles need not be equilibria), so
    /// immunity sweeps always cover the full space; the oracle still
    /// supplies the memoized snapshot and incremental deviation walks.
    pub fn is_t_immune(&self, flat: usize, t: usize) -> bool {
        if t == 0 {
            return true;
        }
        let n = self.game.num_players();
        with_scratch::<Utility, bool>(n, |snapshot| {
            self.snapshot_into(flat, snapshot);
            if self.unilateral_immunity_violation(flat, snapshot) {
                return false;
            }
            (2..=t.min(n)).all(|size| !self.immunity_violation_at_size(flat, size, snapshot))
        })
    }

    /// Componentwise (k,t)-robustness: k-resilient (strong variant) and
    /// t-immune.
    pub fn is_robust(&self, flat: usize, k: usize, t: usize) -> bool {
        self.is_k_resilient(flat, k, ResilienceVariant::SomeMemberGains)
            && self.is_t_immune(flat, t)
    }

    /// Whether the profile at `flat` is a `p`-punishment strategy
    /// relative to the equilibrium payoffs in `base`: for every deviator
    /// set of size ≤ `p` and every joint deviation, **every** player ends
    /// strictly below `base`.
    pub fn is_punishment(&self, flat: usize, base: &[Utility], p: usize) -> bool {
        let game = self.game;
        let n = game.num_players();
        // D = ∅: the punishment profile itself must sit strictly below.
        if (0..n).any(|player| game.payoff_by_index(player, flat) >= base[player] - EPSILON) {
            return false;
        }
        if p == 0 {
            return true;
        }
        if let SearchStrategy::Pruned = self.strategy {
            // Reject certificate for size ≥ 1: a lone deviator reaches
            // their best-response payoff, which must stay below base.
            let tables = self.best_tables();
            if (0..n).any(|player| tables[player][flat] >= base[player] - EPSILON) {
                return false;
            }
        }
        let everyone_below = |at: usize| {
            (0..n).all(|player| game.payoff_by_index(player, at) < base[player] - EPSILON)
        };
        for size in 1..=p.min(n) {
            let complete = try_for_each_subset_of_size(n, size, |deviators| {
                game.visit_coalition_deviations(flat, deviators, |_, at| everyone_below(at))
            });
            if !complete {
                return false;
            }
        }
        true
    }

    // -----------------------------------------------------------------
    // Single-pass maximal classification
    // -----------------------------------------------------------------

    /// The largest `k ≤ max_k` for which the profile at `flat` is
    /// k-resilient, found in **one** pass over coalition sizes instead of
    /// re-running the full check once per `k` (resilience is monotone in
    /// `k`, so the answer is "one below the first failing size").
    pub fn max_resilience(&self, flat: usize, max_k: usize, variant: ResilienceVariant) -> usize {
        let n = self.game.num_players();
        let cap = max_k.min(n);
        if cap == 0 {
            return 0;
        }
        if self.unilateral_gain(flat) {
            return 0;
        }
        with_scratch::<Utility, usize>(n, |snapshot| {
            self.snapshot_into(flat, snapshot);
            for size in 2..=cap {
                if self.coalition_gain_at_size(flat, size, variant, snapshot) {
                    return size - 1;
                }
            }
            cap
        })
    }

    /// The largest `t ≤ max_t` for which the profile at `flat` is
    /// t-immune, in one pass over deviator-set sizes.
    pub fn max_immunity(&self, flat: usize, max_t: usize) -> usize {
        let n = self.game.num_players();
        let cap = max_t.min(n);
        if cap == 0 {
            return 0;
        }
        with_scratch::<Utility, usize>(n, |snapshot| {
            self.snapshot_into(flat, snapshot);
            if self.unilateral_immunity_violation(flat, snapshot) {
                return 0;
            }
            for size in 2..=cap {
                if self.immunity_violation_at_size(flat, size, snapshot) {
                    return size - 1;
                }
            }
            cap
        })
    }

    /// The pair `(max resilient k, max immune t)`, each single-pass.
    pub fn max_robustness(&self, flat: usize, max_k: usize, max_t: usize) -> (usize, usize) {
        (
            self.max_resilience(flat, max_k, ResilienceVariant::SomeMemberGains),
            self.max_immunity(flat, max_t),
        )
    }

    /// Answers a whole family of componentwise robustness queries in
    /// **one** scan: `result[i]` is exactly
    /// `robust_profiles(cells[i].0, cells[i].1)`, but every profile is
    /// classified once (its maximal `k` and `t`, each single-pass) and
    /// matched against all cells, instead of re-sweeping the space and
    /// re-running the coalition searches once per `(k, t)` pair. When
    /// every cell has `k ≥ 1` the scan also runs over the pruned
    /// sub-box, and profiles with a unilateral gain skip the immunity
    /// scan entirely (no cell can match them).
    pub fn robust_frontier(&self, cells: &[(usize, usize)]) -> Vec<Vec<ActionProfile>> {
        if cells.is_empty() {
            return Vec::new();
        }
        let n = self.game.num_players();
        // is_k_resilient caps coalition sizes at n, so queries beyond n
        // coincide with k = n (same for t)
        let cells: Vec<(usize, usize)> = cells.iter().map(|&(k, t)| (k.min(n), t.min(n))).collect();
        let max_k = cells.iter().map(|&(k, _)| k).max().unwrap_or(0);
        let max_t = cells.iter().map(|&(_, t)| t).max().unwrap_or(0);
        let all_need_resilience = cells.iter().all(|&(k, _)| k >= 1);
        let mut out = vec![Vec::new(); cells.len()];
        let mut classify = |flat: usize| {
            let mk = self.max_resilience(flat, max_k, ResilienceVariant::SomeMemberGains);
            let mt = if mk == 0 && all_need_resilience {
                0 // unmatched everywhere: skip the immunity scan
            } else {
                self.max_immunity(flat, max_t)
            };
            for (slot, &(k, t)) in out.iter_mut().zip(cells.iter()) {
                if mk >= k && mt >= t {
                    slot.push(self.game.profile_at(flat));
                }
            }
        };
        if self.prunes(all_need_resilience) {
            self.visit_pruned_range(0..self.pruned_profile_count(), |flat| {
                classify(flat);
                true
            });
        } else {
            self.game.visit_profiles(|_, flat| classify(flat));
        }
        out
    }

    // -----------------------------------------------------------------
    // Sweeps
    // -----------------------------------------------------------------

    /// Whether the pruned sub-box may replace the full space for this
    /// sweep: only for predicates that imply "no unilateral gain".
    fn prunes(&self, nash_implying: bool) -> bool {
        nash_implying && self.strategy == SearchStrategy::Pruned
    }

    /// Core collection sweep: all profiles satisfying `pred`, in original
    /// flat order. `nash_implying` marks predicates for which every
    /// satisfying profile is a Nash equilibrium, enabling elimination.
    fn collect<F: Fn(usize) -> bool>(&self, nash_implying: bool, pred: F) -> Vec<ActionProfile> {
        let mut out = Vec::new();
        if self.prunes(nash_implying) {
            self.visit_pruned_range(0..self.pruned_profile_count(), |flat| {
                if pred(flat) {
                    out.push(self.game.profile_at(flat));
                }
                true
            });
        } else {
            self.game.visit_profiles(|profile, flat| {
                if pred(flat) {
                    out.push(profile.to_vec());
                }
            });
        }
        out
    }

    /// Core first-witness sweep: the satisfying profile with the lowest
    /// original flat index, if any.
    fn first<F: Fn(usize) -> bool>(&self, nash_implying: bool, pred: F) -> Option<ActionProfile> {
        let mut found = None;
        if self.prunes(nash_implying) {
            self.visit_pruned_range(0..self.pruned_profile_count(), |flat| {
                if pred(flat) {
                    found = Some(self.game.profile_at(flat));
                    return false;
                }
                true
            });
        } else {
            self.game.visit_profiles_while(|profile, flat| {
                if pred(flat) {
                    found = Some(profile.to_vec());
                    return false;
                }
                true
            });
        }
        found
    }

    /// Parallel collection sweep with chunk-order concatenation —
    /// bit-identical to [`Self::collect`] for any worker count.
    #[cfg(feature = "parallel")]
    fn collect_with_workers<F: Fn(usize) -> bool + Sync>(
        &self,
        nash_implying: bool,
        workers: usize,
        pred: F,
    ) -> Vec<ActionProfile> {
        if self.prunes(nash_implying) {
            crate::parallel::collect_chunked_with(self.pruned_profile_count(), workers, |range| {
                let mut hits = Vec::new();
                self.visit_pruned_range(range, |flat| {
                    if pred(flat) {
                        hits.push(self.game.profile_at(flat));
                    }
                    true
                });
                hits
            })
        } else {
            crate::search::find_profiles_parallel(self.game, workers, pred)
        }
    }

    /// Parallel first-witness sweep with deterministic
    /// lowest-flat-index-wins semantics.
    #[cfg(feature = "parallel")]
    fn first_with_workers<F: Fn(usize) -> bool + Sync>(
        &self,
        nash_implying: bool,
        workers: usize,
        pred: F,
    ) -> Option<ActionProfile> {
        if self.prunes(nash_implying) {
            // lowest pruned index == lowest original flat index (the
            // pruned→flat map is strictly increasing)
            crate::parallel::find_first_with(self.pruned_profile_count(), workers, |idx| {
                pred(self.pruned_to_flat(idx))
            })
            .map(|idx| self.game.profile_at(self.pruned_to_flat(idx)))
        } else {
            crate::search::first_profile_parallel(self.game, workers, pred)
        }
    }

    /// Every pure Nash equilibrium, in flat order.
    pub fn nash_profiles(&self) -> Vec<ActionProfile> {
        self.collect(true, |flat| self.is_nash(flat))
    }

    /// The pure Nash equilibrium with the lowest flat index, if any.
    pub fn first_nash(&self) -> Option<ActionProfile> {
        self.first(true, |flat| self.is_nash(flat))
    }

    /// Parallel form of [`Self::nash_profiles`]; bit-identical output.
    #[cfg(feature = "parallel")]
    pub fn nash_profiles_with_workers(&self, workers: usize) -> Vec<ActionProfile> {
        self.collect_with_workers(true, workers, |flat| self.is_nash(flat))
    }

    /// Parallel form of [`Self::first_nash`].
    #[cfg(feature = "parallel")]
    pub fn first_nash_with_workers(&self, workers: usize) -> Option<ActionProfile> {
        self.first_with_workers(true, workers, |flat| self.is_nash(flat))
    }

    /// Every k-resilient profile, in flat order. Pruned for `k ≥ 1`
    /// (k-resilience implies Nash); `k = 0` trivially accepts everything
    /// and sweeps the full space.
    pub fn k_resilient_profiles(&self, k: usize, variant: ResilienceVariant) -> Vec<ActionProfile> {
        self.collect(k >= 1, |flat| self.is_k_resilient(flat, k, variant))
    }

    /// The k-resilient profile with the lowest flat index, if any.
    pub fn first_k_resilient_profile(
        &self,
        k: usize,
        variant: ResilienceVariant,
    ) -> Option<ActionProfile> {
        self.first(k >= 1, |flat| self.is_k_resilient(flat, k, variant))
    }

    /// Parallel form of [`Self::k_resilient_profiles`].
    #[cfg(feature = "parallel")]
    pub fn k_resilient_profiles_with_workers(
        &self,
        k: usize,
        variant: ResilienceVariant,
        workers: usize,
    ) -> Vec<ActionProfile> {
        self.collect_with_workers(k >= 1, workers, |flat| {
            self.is_k_resilient(flat, k, variant)
        })
    }

    /// Parallel form of [`Self::first_k_resilient_profile`].
    #[cfg(feature = "parallel")]
    pub fn first_k_resilient_profile_with_workers(
        &self,
        k: usize,
        variant: ResilienceVariant,
        workers: usize,
    ) -> Option<ActionProfile> {
        self.first_with_workers(k >= 1, workers, |flat| {
            self.is_k_resilient(flat, k, variant)
        })
    }

    /// Every t-immune profile, in flat order (always the full space —
    /// elimination is unsound for immunity).
    pub fn t_immune_profiles(&self, t: usize) -> Vec<ActionProfile> {
        self.collect(false, |flat| self.is_t_immune(flat, t))
    }

    /// The t-immune profile with the lowest flat index, if any.
    pub fn first_t_immune_profile(&self, t: usize) -> Option<ActionProfile> {
        self.first(false, |flat| self.is_t_immune(flat, t))
    }

    /// Parallel form of [`Self::t_immune_profiles`].
    #[cfg(feature = "parallel")]
    pub fn t_immune_profiles_with_workers(&self, t: usize, workers: usize) -> Vec<ActionProfile> {
        self.collect_with_workers(false, workers, |flat| self.is_t_immune(flat, t))
    }

    /// Parallel form of [`Self::first_t_immune_profile`].
    #[cfg(feature = "parallel")]
    pub fn first_t_immune_profile_with_workers(
        &self,
        t: usize,
        workers: usize,
    ) -> Option<ActionProfile> {
        self.first_with_workers(false, workers, |flat| self.is_t_immune(flat, t))
    }

    /// Every (k,t)-robust profile (componentwise), in flat order. Pruned
    /// for `k ≥ 1`.
    pub fn robust_profiles(&self, k: usize, t: usize) -> Vec<ActionProfile> {
        self.collect(k >= 1, |flat| self.is_robust(flat, k, t))
    }

    /// The (k,t)-robust profile with the lowest flat index, if any.
    pub fn first_robust_profile(&self, k: usize, t: usize) -> Option<ActionProfile> {
        self.first(k >= 1, |flat| self.is_robust(flat, k, t))
    }

    /// Parallel form of [`Self::robust_profiles`].
    #[cfg(feature = "parallel")]
    pub fn robust_profiles_with_workers(
        &self,
        k: usize,
        t: usize,
        workers: usize,
    ) -> Vec<ActionProfile> {
        self.collect_with_workers(k >= 1, workers, |flat| self.is_robust(flat, k, t))
    }

    /// Parallel form of [`Self::first_robust_profile`].
    #[cfg(feature = "parallel")]
    pub fn first_robust_profile_with_workers(
        &self,
        k: usize,
        t: usize,
        workers: usize,
    ) -> Option<ActionProfile> {
        self.first_with_workers(k >= 1, workers, |flat| self.is_robust(flat, k, t))
    }

    /// Every `p`-punishment strategy relative to the payoffs in `base`,
    /// in flat order (always the full space — punishment profiles are
    /// deliberately bad and survive no elimination argument).
    pub fn punishment_profiles(&self, base: &[Utility], p: usize) -> Vec<ActionProfile> {
        self.collect(false, |flat| self.is_punishment(flat, base, p))
    }

    /// The `p`-punishment strategy with the lowest flat index, if any.
    pub fn first_punishment_profile(&self, base: &[Utility], p: usize) -> Option<ActionProfile> {
        self.first(false, |flat| self.is_punishment(flat, base, p))
    }

    /// Parallel form of [`Self::punishment_profiles`].
    #[cfg(feature = "parallel")]
    pub fn punishment_profiles_with_workers(
        &self,
        base: &[Utility],
        p: usize,
        workers: usize,
    ) -> Vec<ActionProfile> {
        self.collect_with_workers(false, workers, |flat| self.is_punishment(flat, base, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;
    use crate::random::random_game;

    fn oracle_pair(game: &NormalFormGame) -> (DeviationOracle<'_>, DeviationOracle<'_>) {
        (
            DeviationOracle::new(game),
            DeviationOracle::with_strategy(game, SearchStrategy::Exhaustive),
        )
    }

    #[test]
    fn best_tables_match_direct_maximization() {
        let g = random_game(91, &[3, 2, 4]);
        let oracle = DeviationOracle::new(&g);
        for flat in 0..g.num_profiles() {
            for p in 0..g.num_players() {
                let (_, best) = g.best_unilateral_deviation_by_index(p, flat);
                assert_eq!(oracle.best_unilateral_payoff(p, flat), best);
            }
            assert_eq!(oracle.is_nash(flat), g.is_pure_nash_by_index(flat));
        }
    }

    #[test]
    fn elimination_keeps_all_equilibrium_actions() {
        let pd = classic::prisoners_dilemma();
        let oracle = DeviationOracle::new(&pd);
        // cooperate is never a best response: only defect survives
        assert_eq!(oracle.surviving_actions(), vec![vec![1], vec![1]]);
        assert_eq!(oracle.pruned_profile_count(), 1);
        assert!(oracle.elimination_rounds() >= 1);
        assert_eq!(oracle.nash_profiles(), vec![vec![1, 1]]);

        // matching pennies: nothing is eliminable
        let mp = classic::matching_pennies();
        let oracle = DeviationOracle::new(&mp);
        assert_eq!(oracle.pruned_profile_count(), mp.num_profiles());
        assert!(oracle.nash_profiles().is_empty());
    }

    #[test]
    fn pruned_visitor_walks_surviving_profiles_in_flat_order() {
        let g = random_game(17, &[3, 3, 2]);
        let oracle = DeviationOracle::new(&g);
        let surviving = oracle.surviving_actions();
        let mut visited = Vec::new();
        oracle.visit_pruned_range(0..oracle.pruned_profile_count(), |flat| {
            visited.push(flat);
            true
        });
        let expected: Vec<usize> = (0..g.num_profiles())
            .filter(|&flat| {
                (0..g.num_players()).all(|p| surviving[p].contains(&g.action_at(flat, p)))
            })
            .collect();
        assert_eq!(visited, expected);
        // chunked visits agree with the whole walk
        let total = oracle.pruned_profile_count();
        let mut chunked = Vec::new();
        for start in (0..total).step_by(3) {
            oracle.visit_pruned_range(start..(start + 3).min(total), |flat| {
                chunked.push(flat);
                true
            });
        }
        assert_eq!(chunked, visited);
        for (idx, &flat) in visited.iter().enumerate() {
            assert_eq!(oracle.pruned_to_flat(idx), flat);
        }
    }

    #[test]
    fn pruned_and_exhaustive_sweeps_are_bit_identical() {
        for seed in [5u64, 6, 7] {
            let g = random_game(seed, &[3, 3, 2, 2]);
            let (pruned, exhaustive) = oracle_pair(&g);
            assert_eq!(pruned.nash_profiles(), exhaustive.nash_profiles());
            assert_eq!(pruned.first_nash(), exhaustive.first_nash());
            for k in 0..=3 {
                for variant in [
                    ResilienceVariant::SomeMemberGains,
                    ResilienceVariant::AllMembersGain,
                ] {
                    assert_eq!(
                        pruned.k_resilient_profiles(k, variant),
                        exhaustive.k_resilient_profiles(k, variant),
                        "seed {seed} k {k}"
                    );
                }
            }
            for (k, t) in [(0, 1), (1, 1), (2, 1), (1, 2)] {
                assert_eq!(
                    pruned.robust_profiles(k, t),
                    exhaustive.robust_profiles(k, t),
                    "seed {seed} k {k} t {t}"
                );
                assert_eq!(
                    pruned.first_robust_profile(k, t),
                    exhaustive.first_robust_profile(k, t)
                );
            }
            for t in 1..=2 {
                assert_eq!(pruned.t_immune_profiles(t), exhaustive.t_immune_profiles(t));
            }
        }
    }

    #[test]
    fn robust_frontier_matches_per_cell_sweeps() {
        for seed in [31u64, 32] {
            let g = random_game(seed, &[3, 3, 2, 2]);
            let cells = [(1, 0), (2, 0), (1, 1), (2, 1), (0, 1), (9, 9)];
            for strategy in [SearchStrategy::Pruned, SearchStrategy::Exhaustive] {
                let oracle = DeviationOracle::with_strategy(&g, strategy);
                let frontier = oracle.robust_frontier(&cells);
                assert_eq!(frontier.len(), cells.len());
                for (i, &(k, t)) in cells.iter().enumerate() {
                    assert_eq!(
                        frontier[i],
                        oracle.robust_profiles(k, t),
                        "seed {seed} cell ({k},{t})"
                    );
                }
            }
        }
        assert!(DeviationOracle::new(&random_game(1, &[2, 2]))
            .robust_frontier(&[])
            .is_empty());
    }

    #[test]
    fn punishment_predicate_matches_across_strategies() {
        let g = classic::bargaining_game(4);
        let base: Vec<f64> = (0..4).map(|p| g.payoff(p, &[0; 4])).collect();
        let (pruned, exhaustive) = oracle_pair(&g);
        for p in 0..=4 {
            assert_eq!(
                pruned.punishment_profiles(&base, p),
                exhaustive.punishment_profiles(&base, p),
                "p = {p}"
            );
        }
        // all-leave is a 3-punishment but not a 4-punishment strategy
        let all_leave_flat = g.profile_index(&[1; 4]);
        assert!(pruned.is_punishment(all_leave_flat, &base, 3));
        assert!(!pruned.is_punishment(all_leave_flat, &base, 4));
    }

    #[test]
    fn max_classification_is_single_pass_consistent() {
        for seed in [11u64, 12] {
            let g = random_game(seed, &[2, 3, 2]);
            let oracle = DeviationOracle::new(&g);
            let n = g.num_players();
            for flat in 0..g.num_profiles() {
                // reference: the per-k loop the single pass replaces
                let mut expect_k = 0;
                for k in 1..=n {
                    if oracle.is_k_resilient(flat, k, ResilienceVariant::SomeMemberGains) {
                        expect_k = k;
                    } else {
                        break;
                    }
                }
                let mut expect_t = 0;
                for t in 1..=n {
                    if oracle.is_t_immune(flat, t) {
                        expect_t = t;
                    } else {
                        break;
                    }
                }
                assert_eq!(
                    oracle.max_robustness(flat, n, n),
                    (expect_k, expect_t),
                    "seed {seed} flat {flat}"
                );
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_oracle_sweeps_are_bit_identical() {
        let g = random_game(23, &[3, 2, 3, 2]);
        let oracle = DeviationOracle::new(&g);
        for workers in [2, 4] {
            assert_eq!(
                oracle.nash_profiles(),
                oracle.nash_profiles_with_workers(workers)
            );
            assert_eq!(oracle.first_nash(), oracle.first_nash_with_workers(workers));
            assert_eq!(
                oracle.robust_profiles(2, 1),
                oracle.robust_profiles_with_workers(2, 1, workers)
            );
            assert_eq!(
                oracle.first_robust_profile(1, 1),
                oracle.first_robust_profile_with_workers(1, 1, workers)
            );
            assert_eq!(
                oracle.t_immune_profiles(2),
                oracle.t_immune_profiles_with_workers(2, workers)
            );
        }
    }
}
