//! Finite extensive-form games with chance moves and information sets.
//!
//! These are the objects augmented by the awareness machinery of Section 4
//! of the paper: an augmented game is an extensive game plus an awareness
//! level (a set of histories) at every node where a player moves.
//!
//! The representation is a straightforward game tree: every node is a
//! decision node (a player moves), a chance node (nature moves with known
//! probabilities), or a terminal node (payoffs). Decision nodes may be
//! grouped into information sets; all nodes of an information set must
//! belong to the same player and offer the same actions.

use crate::error::GameError;
use crate::normal_form::NormalFormGame;
use crate::profile::ProfileIter;
use crate::{ActionId, PlayerId, Utility};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a node in the game tree.
pub type NodeId = usize;

/// Identifier of an information set. Information sets are global: two nodes
/// with the same `InfoSetId` are indistinguishable to the player who moves
/// there.
pub type InfoSetId = usize;

/// A node in an extensive-form game tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A node where a player chooses among labelled actions.
    Decision {
        /// The player who moves here.
        player: PlayerId,
        /// The information set this node belongs to.
        info_set: InfoSetId,
        /// Labelled outgoing edges: `(action label, child node)`.
        actions: Vec<(String, NodeId)>,
    },
    /// A node where nature moves.
    Chance {
        /// Labelled outgoing edges with probabilities:
        /// `(label, probability, child node)`.
        outcomes: Vec<(String, f64, NodeId)>,
    },
    /// A leaf with a payoff for every player.
    Terminal {
        /// Payoff vector, one entry per player.
        payoffs: Vec<Utility>,
    },
}

/// A terminal outcome of a play-through: the history of labels followed and
/// the resulting payoffs.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Sequence of action / chance labels from the root to the leaf.
    pub history: Vec<String>,
    /// Probability of reaching this leaf (product of chance probabilities).
    pub probability: f64,
    /// Payoff vector at the leaf.
    pub payoffs: Vec<Utility>,
}

/// A pure behavior strategy profile: for every information set, the index of
/// the action taken there by the owning player.
///
/// Only information sets belonging to a player need entries for that
/// player's decisions; a single map suffices because information set ids are
/// globally unique.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PureBehaviorStrategy {
    choices: BTreeMap<InfoSetId, ActionId>,
}

impl PureBehaviorStrategy {
    /// Creates an empty strategy (no choices made yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a strategy from explicit `(information set, action)` pairs.
    pub fn from_choices(choices: &[(InfoSetId, ActionId)]) -> Self {
        PureBehaviorStrategy {
            choices: choices.iter().copied().collect(),
        }
    }

    /// Sets the action taken at `info_set`.
    pub fn set(&mut self, info_set: InfoSetId, action: ActionId) {
        self.choices.insert(info_set, action);
    }

    /// Returns the action chosen at `info_set`, if any.
    pub fn get(&self, info_set: InfoSetId) -> Option<ActionId> {
        self.choices.get(&info_set).copied()
    }

    /// All `(information set, action)` pairs in this strategy.
    pub fn choices(&self) -> impl Iterator<Item = (InfoSetId, ActionId)> + '_ {
        self.choices.iter().map(|(&i, &a)| (i, a))
    }

    /// Merges another strategy into this one (other's choices win on
    /// conflict). Useful for combining per-player strategies into a profile.
    pub fn merged_with(&self, other: &PureBehaviorStrategy) -> PureBehaviorStrategy {
        let mut out = self.clone();
        for (i, a) in other.choices() {
            out.set(i, a);
        }
        out
    }
}

/// A finite extensive-form game.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensiveGame {
    name: String,
    num_players: usize,
    nodes: Vec<Node>,
    root: NodeId,
}

impl ExtensiveGame {
    /// Creates a game from a node arena and a root node.
    ///
    /// # Errors
    ///
    /// Returns an error if the root is invalid, a child reference is out of
    /// range, a terminal payoff vector has the wrong length, chance
    /// probabilities don't sum to 1, a decision node references an
    /// out-of-range player, or two nodes in the same information set
    /// disagree on player or action count.
    pub fn new(
        name: impl Into<String>,
        num_players: usize,
        nodes: Vec<Node>,
        root: NodeId,
    ) -> Result<Self, GameError> {
        if num_players == 0 {
            return Err(GameError::EmptyGame {
                reason: "extensive game needs at least one player".to_string(),
            });
        }
        if nodes.is_empty() {
            return Err(GameError::EmptyGame {
                reason: "extensive game has no nodes".to_string(),
            });
        }
        if root >= nodes.len() {
            return Err(GameError::InvalidNode { node: root });
        }
        let mut info_sig: BTreeMap<InfoSetId, (PlayerId, usize)> = BTreeMap::new();
        for node in &nodes {
            match node {
                Node::Decision {
                    player,
                    info_set,
                    actions,
                } => {
                    if *player >= num_players {
                        return Err(GameError::PlayerOutOfRange {
                            player: *player,
                            num_players,
                        });
                    }
                    if actions.is_empty() {
                        return Err(GameError::EmptyGame {
                            reason: "decision node with no actions".to_string(),
                        });
                    }
                    for (_, child) in actions {
                        if *child >= nodes.len() {
                            return Err(GameError::InvalidNode { node: *child });
                        }
                    }
                    match info_sig.get(info_set) {
                        None => {
                            info_sig.insert(*info_set, (*player, actions.len()));
                        }
                        Some((p, n)) => {
                            if *p != *player || *n != actions.len() {
                                return Err(GameError::UnsupportedStructure {
                                    reason: format!(
                                        "information set {info_set} mixes players or \
                                         action counts"
                                    ),
                                });
                            }
                        }
                    }
                }
                Node::Chance { outcomes } => {
                    if outcomes.is_empty() {
                        return Err(GameError::EmptyGame {
                            reason: "chance node with no outcomes".to_string(),
                        });
                    }
                    let sum: f64 = outcomes.iter().map(|(_, p, _)| *p).sum();
                    if (sum - 1.0).abs() > 1e-6 || outcomes.iter().any(|(_, p, _)| *p < -1e-12) {
                        return Err(GameError::InvalidDistribution {
                            reason: format!("chance probabilities sum to {sum}"),
                        });
                    }
                    for (_, _, child) in outcomes {
                        if *child >= nodes.len() {
                            return Err(GameError::InvalidNode { node: *child });
                        }
                    }
                }
                Node::Terminal { payoffs } => {
                    if payoffs.len() != num_players {
                        return Err(GameError::DimensionMismatch {
                            expected: num_players,
                            found: payoffs.len(),
                        });
                    }
                }
            }
        }
        Ok(ExtensiveGame {
            name: name.into(),
            num_players,
            nodes,
            root,
        })
    }

    /// The game's descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.num_players
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All information sets of `player`, with the action count of each.
    pub fn info_sets_of(&self, player: PlayerId) -> Vec<(InfoSetId, usize)> {
        let mut out: BTreeMap<InfoSetId, usize> = BTreeMap::new();
        for node in &self.nodes {
            if let Node::Decision {
                player: p,
                info_set,
                actions,
            } = node
            {
                if *p == player {
                    out.insert(*info_set, actions.len());
                }
            }
        }
        out.into_iter().collect()
    }

    /// All information sets in the game with `(owner, action count)`.
    pub fn all_info_sets(&self) -> Vec<(InfoSetId, PlayerId, usize)> {
        let mut out: BTreeMap<InfoSetId, (PlayerId, usize)> = BTreeMap::new();
        for node in &self.nodes {
            if let Node::Decision {
                player,
                info_set,
                actions,
            } = node
            {
                out.insert(*info_set, (*player, actions.len()));
            }
        }
        out.into_iter().map(|(i, (p, n))| (i, p, n)).collect()
    }

    /// Whether the game has perfect information (every information set
    /// contains exactly one node).
    pub fn is_perfect_information(&self) -> bool {
        let mut seen: BTreeSet<InfoSetId> = BTreeSet::new();
        for node in &self.nodes {
            if let Node::Decision { info_set, .. } = node {
                if !seen.insert(*info_set) {
                    return false;
                }
            }
        }
        true
    }

    /// The history of action / outcome labels from the root to `target`, if
    /// `target` is reachable from the root.
    pub fn history_of(&self, target: NodeId) -> Option<Vec<String>> {
        fn dfs(game: &ExtensiveGame, node: NodeId, target: NodeId, path: &mut Vec<String>) -> bool {
            if node == target {
                return true;
            }
            match game.node(node) {
                Node::Terminal { .. } => false,
                Node::Decision { actions, .. } => {
                    for (label, child) in actions {
                        path.push(label.clone());
                        if dfs(game, *child, target, path) {
                            return true;
                        }
                        path.pop();
                    }
                    false
                }
                Node::Chance { outcomes } => {
                    for (label, _, child) in outcomes {
                        path.push(label.clone());
                        if dfs(game, *child, target, path) {
                            return true;
                        }
                        path.pop();
                    }
                    false
                }
            }
        }
        let mut path = Vec::new();
        if dfs(self, self.root, target, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    /// All terminal histories (sequences of labels root → leaf).
    pub fn terminal_histories(&self) -> Vec<Vec<String>> {
        self.outcomes_under(&PureBehaviorStrategy::new(), true)
            .into_iter()
            .map(|o| o.history)
            .collect()
    }

    /// Plays the game under the given (merged) pure behavior strategy
    /// profile and returns the distribution over terminal outcomes induced
    /// by chance moves.
    ///
    /// If a decision node's information set has no entry in `profile`, the
    /// first action is taken (this should not happen for complete profiles;
    /// it makes partial exploratory profiles usable in tests).
    pub fn outcomes(&self, profile: &PureBehaviorStrategy) -> Vec<Outcome> {
        self.outcomes_under(profile, false)
    }

    fn outcomes_under(&self, profile: &PureBehaviorStrategy, explore_all: bool) -> Vec<Outcome> {
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, Vec<String>, f64)> = vec![(self.root, Vec::new(), 1.0)];
        while let Some((id, history, prob)) = stack.pop() {
            match self.node(id) {
                Node::Terminal { payoffs } => out.push(Outcome {
                    history,
                    probability: prob,
                    payoffs: payoffs.clone(),
                }),
                Node::Chance { outcomes } => {
                    for (label, p, child) in outcomes {
                        if *p <= 0.0 && !explore_all {
                            continue;
                        }
                        let mut h = history.clone();
                        h.push(label.clone());
                        stack.push((*child, h, prob * p));
                    }
                }
                Node::Decision {
                    info_set, actions, ..
                } => {
                    if explore_all {
                        for (label, child) in actions {
                            let mut h = history.clone();
                            h.push(label.clone());
                            stack.push((*child, h, prob));
                        }
                    } else {
                        let a = profile.get(*info_set).unwrap_or(0).min(actions.len() - 1);
                        let (label, child) = &actions[a];
                        let mut h = history;
                        h.push(label.clone());
                        stack.push((*child, h, prob));
                    }
                }
            }
        }
        out
    }

    /// Expected payoffs of all players under a pure behavior strategy
    /// profile (expectation over chance moves).
    pub fn expected_payoffs(&self, profile: &PureBehaviorStrategy) -> Vec<Utility> {
        let mut totals = vec![0.0; self.num_players];
        for outcome in self.outcomes(profile) {
            for (p, u) in outcome.payoffs.iter().enumerate() {
                totals[p] += outcome.probability * u;
            }
        }
        totals
    }

    /// Backward induction (subgame-perfect equilibrium) for perfect
    /// information games. Ties are broken in favor of the lowest action
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::UnsupportedStructure`] if the game does not have
    /// perfect information.
    pub fn backward_induction(&self) -> Result<(PureBehaviorStrategy, Vec<Utility>), GameError> {
        if !self.is_perfect_information() {
            return Err(GameError::UnsupportedStructure {
                reason: "backward induction requires perfect information".to_string(),
            });
        }
        let mut strategy = PureBehaviorStrategy::new();
        let values = self.bi_node(self.root, &mut strategy);
        Ok((strategy, values))
    }

    fn bi_node(&self, id: NodeId, strategy: &mut PureBehaviorStrategy) -> Vec<Utility> {
        match self.node(id).clone() {
            Node::Terminal { payoffs } => payoffs,
            Node::Chance { outcomes } => {
                let mut totals = vec![0.0; self.num_players];
                for (_, p, child) in outcomes {
                    let vals = self.bi_node(child, strategy);
                    for (i, v) in vals.iter().enumerate() {
                        totals[i] += p * v;
                    }
                }
                totals
            }
            Node::Decision {
                player,
                info_set,
                actions,
            } => {
                let mut best: Option<(ActionId, Vec<Utility>)> = None;
                for (a, (_, child)) in actions.iter().enumerate() {
                    let vals = self.bi_node(*child, strategy);
                    let better = match &best {
                        None => true,
                        Some((_, bvals)) => vals[player] > bvals[player] + 1e-12,
                    };
                    if better {
                        best = Some((a, vals));
                    }
                }
                let (a, vals) = best.expect("decision node has at least one action");
                strategy.set(info_set, a);
                vals
            }
        }
    }

    /// Enumerates all pure strategies of `player` (one action per
    /// information set of that player).
    pub fn pure_strategies_of(&self, player: PlayerId) -> Vec<PureBehaviorStrategy> {
        let sets = self.info_sets_of(player);
        if sets.is_empty() {
            return vec![PureBehaviorStrategy::new()];
        }
        let radices: Vec<usize> = sets.iter().map(|(_, n)| *n).collect();
        ProfileIter::new(&radices)
            .map(|choice| {
                let mut s = PureBehaviorStrategy::new();
                for ((set, _), a) in sets.iter().zip(choice.iter()) {
                    s.set(*set, *a);
                }
                s
            })
            .collect()
    }

    /// Converts the game to its reduced normal form by enumerating all pure
    /// strategy combinations. Only suitable for small games (the number of
    /// strategies is exponential in the number of information sets).
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`NormalFormGame::new`].
    pub fn to_normal_form(&self) -> Result<NormalFormGame, GameError> {
        let per_player: Vec<Vec<PureBehaviorStrategy>> = (0..self.num_players)
            .map(|p| self.pure_strategies_of(p))
            .collect();
        let radices: Vec<usize> = per_player.iter().map(|s| s.len()).collect();
        let actions: Vec<Vec<String>> = per_player
            .iter()
            .map(|ss| (0..ss.len()).map(|i| format!("s{i}")).collect())
            .collect();
        let total: usize = radices.iter().product();
        let mut payoffs = vec![Vec::with_capacity(total); self.num_players];
        for combo in ProfileIter::new(&radices) {
            let mut merged = PureBehaviorStrategy::new();
            for (p, &si) in combo.iter().enumerate() {
                merged = merged.merged_with(&per_player[p][si]);
            }
            let values = self.expected_payoffs(&merged);
            for (p, v) in values.iter().enumerate() {
                payoffs[p].push(*v);
            }
        }
        NormalFormGame::new(format!("{} (normal form)", self.name), actions, payoffs)
    }

    /// Whether a merged pure behavior profile is a Nash equilibrium of the
    /// extensive game: no player can increase her expected payoff by
    /// switching to any of her pure strategies while the others keep theirs.
    pub fn is_nash(&self, profile: &PureBehaviorStrategy) -> bool {
        let base = self.expected_payoffs(profile);
        for (player, &base_u) in base.iter().enumerate() {
            for alt in self.pure_strategies_of(player) {
                // overlay alt's choices for this player's info sets only
                let mut deviated = profile.clone();
                for (set, a) in alt.choices() {
                    deviated.set(set, a);
                }
                let u = self.expected_payoffs(&deviated)[player];
                if u > base_u + 1e-9 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;

    #[test]
    fn figure1_game_structure() {
        let g = classic::figure1_game();
        assert_eq!(g.num_players(), 2);
        assert!(g.is_perfect_information());
        // histories: downA; acrossA,downB; acrossA,acrossB
        assert_eq!(g.terminal_histories().len(), 3);
    }

    #[test]
    fn figure1_nash_equilibrium_across_down() {
        let g = classic::figure1_game();
        // A plays across (action 1), B plays down (action 0): payoffs (1, 2)
        // per the classic construction; this is the equilibrium the paper
        // highlights.
        let mut profile = PureBehaviorStrategy::new();
        profile.set(0, 1); // A: across
        profile.set(1, 0); // B: down
        assert!(g.is_nash(&profile));
        let payoffs = g.expected_payoffs(&profile);
        assert!(payoffs[0] > 0.0 && payoffs[1] > 0.0);
    }

    #[test]
    fn backward_induction_on_figure1() {
        let g = classic::figure1_game();
        let (strategy, values) = g.backward_induction().unwrap();
        // B prefers downB (2 > 1), so A prefers acrossA (1 ... depends on
        // payoffs); at minimum the strategy must specify both info sets.
        assert!(strategy.get(0).is_some());
        assert!(strategy.get(1).is_some());
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn chance_nodes_average_payoffs() {
        // Nature chooses L (0.25) or R (0.75); then terminal payoffs 4 / 0
        // for player 0. Expected value 1.0.
        let nodes = vec![
            Node::Chance {
                outcomes: vec![("L".into(), 0.25, 1), ("R".into(), 0.75, 2)],
            },
            Node::Terminal { payoffs: vec![4.0] },
            Node::Terminal { payoffs: vec![0.0] },
        ];
        let g = ExtensiveGame::new("chance", 1, nodes, 0).unwrap();
        let v = g.expected_payoffs(&PureBehaviorStrategy::new());
        assert!((v[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_structures() {
        // bad chance probabilities
        let nodes = vec![
            Node::Chance {
                outcomes: vec![("L".into(), 0.6, 1), ("R".into(), 0.6, 1)],
            },
            Node::Terminal { payoffs: vec![0.0] },
        ];
        assert!(ExtensiveGame::new("bad", 1, nodes, 0).is_err());

        // dangling child
        let nodes = vec![Node::Decision {
            player: 0,
            info_set: 0,
            actions: vec![("a".into(), 5)],
        }];
        assert!(ExtensiveGame::new("bad", 1, nodes, 0).is_err());

        // wrong payoff length
        let nodes = vec![Node::Terminal {
            payoffs: vec![1.0, 2.0],
        }];
        assert!(ExtensiveGame::new("bad", 1, nodes, 0).is_err());

        // inconsistent information set
        let nodes = vec![
            Node::Decision {
                player: 0,
                info_set: 0,
                actions: vec![("a".into(), 2), ("b".into(), 2)],
            },
            Node::Decision {
                player: 1,
                info_set: 0,
                actions: vec![("a".into(), 2), ("b".into(), 2)],
            },
            Node::Terminal {
                payoffs: vec![0.0, 0.0],
            },
        ];
        assert!(ExtensiveGame::new("bad", 2, nodes, 0).is_err());
    }

    #[test]
    fn to_normal_form_preserves_equilibrium() {
        let g = classic::figure1_game();
        let nf = g.to_normal_form().unwrap();
        assert_eq!(nf.num_players(), 2);
        // A has one info set with 2 actions, B likewise: 2x2 normal form.
        assert_eq!(nf.num_actions(0), 2);
        assert_eq!(nf.num_actions(1), 2);
        // the extensive equilibrium (across, down) maps to (1, 0) and must
        // be a pure Nash equilibrium of the normal form too.
        assert!(nf.is_pure_nash(&[1, 0]));
    }

    #[test]
    fn history_of_reaches_leaves() {
        let g = classic::figure1_game();
        // find a terminal node and check its history is non-empty
        let mut found = false;
        for id in 0..g.num_nodes() {
            if matches!(g.node(id), Node::Terminal { .. }) {
                let h = g.history_of(id).expect("terminal reachable");
                assert!(!h.is_empty());
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn pure_strategy_enumeration_counts() {
        let g = classic::figure1_game();
        assert_eq!(g.pure_strategies_of(0).len(), 2);
        assert_eq!(g.pure_strategies_of(1).len(), 2);
    }

    #[test]
    fn imperfect_information_detected() {
        // one player, two decision nodes sharing an information set
        let nodes = vec![
            Node::Chance {
                outcomes: vec![("x".into(), 0.5, 1), ("y".into(), 0.5, 2)],
            },
            Node::Decision {
                player: 0,
                info_set: 7,
                actions: vec![("l".into(), 3), ("r".into(), 4)],
            },
            Node::Decision {
                player: 0,
                info_set: 7,
                actions: vec![("l".into(), 3), ("r".into(), 4)],
            },
            Node::Terminal { payoffs: vec![1.0] },
            Node::Terminal { payoffs: vec![0.0] },
        ];
        let g = ExtensiveGame::new("imperfect", 1, nodes, 0).unwrap();
        assert!(!g.is_perfect_information());
        assert!(g.backward_induction().is_err());
        assert_eq!(g.pure_strategies_of(0).len(), 2);
    }
}
