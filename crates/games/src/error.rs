//! Error type shared by the game-representation crate.

use std::fmt;

/// Errors produced while constructing or querying games.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GameError {
    /// A player index was out of range.
    PlayerOutOfRange {
        /// The offending player index.
        player: usize,
        /// Number of players in the game.
        num_players: usize,
    },
    /// An action index was out of range for the given player.
    ActionOutOfRange {
        /// The player whose action set was indexed.
        player: usize,
        /// The offending action index.
        action: usize,
        /// Number of actions available to that player.
        num_actions: usize,
    },
    /// A type index was out of range for the given player.
    TypeOutOfRange {
        /// The player whose type space was indexed.
        player: usize,
        /// The offending type index.
        ty: usize,
        /// Number of types available to that player.
        num_types: usize,
    },
    /// A payoff tensor (or other per-profile table) had the wrong length.
    DimensionMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Number of entries supplied.
        found: usize,
    },
    /// A probability distribution did not sum to one (within tolerance) or
    /// contained negative entries.
    InvalidDistribution {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A game must have at least one player and every player at least one
    /// action / type.
    EmptyGame {
        /// Human-readable description of what was empty.
        reason: String,
    },
    /// The requested operation is only defined for games with a specific
    /// structure (for example two-player, or perfect information).
    UnsupportedStructure {
        /// Human-readable description of the requirement.
        reason: String,
    },
    /// A node identifier in an extensive-form game was invalid.
    InvalidNode {
        /// The offending node id.
        node: usize,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::PlayerOutOfRange {
                player,
                num_players,
            } => write!(
                f,
                "player index {player} out of range (game has {num_players} players)"
            ),
            GameError::ActionOutOfRange {
                player,
                action,
                num_actions,
            } => write!(
                f,
                "action index {action} out of range for player {player} \
                 (player has {num_actions} actions)"
            ),
            GameError::TypeOutOfRange {
                player,
                ty,
                num_types,
            } => write!(
                f,
                "type index {ty} out of range for player {player} \
                 (player has {num_types} types)"
            ),
            GameError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {expected} entries, found {found}"
            ),
            GameError::InvalidDistribution { reason } => {
                write!(f, "invalid probability distribution: {reason}")
            }
            GameError::EmptyGame { reason } => write!(f, "empty game: {reason}"),
            GameError::UnsupportedStructure { reason } => {
                write!(f, "unsupported game structure: {reason}")
            }
            GameError::InvalidNode { node } => write!(f, "invalid node id {node}"),
        }
    }
}

impl std::error::Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_indices() {
        let e = GameError::PlayerOutOfRange {
            player: 7,
            num_players: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = GameError::ActionOutOfRange {
            player: 1,
            action: 9,
            num_actions: 2,
        };
        assert!(e.to_string().contains('9'));

        let e = GameError::DimensionMismatch {
            expected: 4,
            found: 5,
        };
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GameError>();
    }
}
