//! Action profiles and utilities for iterating over them.
//!
//! A profile assigns one action to each player. Profiles are stored as
//! `Vec<ActionId>` (the [`ActionProfile`] alias) and iterated in
//! "odometer" (mixed-radix) order by [`ProfileIter`], which many solvers
//! and robustness checkers rely on.

use crate::ActionId;

/// A pure action profile: `profile[i]` is the action chosen by player `i`.
pub type ActionProfile = Vec<ActionId>;

/// Iterator over every pure action profile of a game with the given
/// per-player action counts, in lexicographic (odometer) order.
///
/// The iterator knows exactly how many profiles remain, so `size_hint` is
/// exact, [`ExactSizeIterator`] holds, and `.collect::<Vec<_>>()`
/// pre-allocates. The final profile is moved out instead of cloned. For
/// allocation-free sweeps prefer [`visit_mixed_radix`] (or
/// `NormalFormGame::visit_profiles`), which reuses one buffer for the whole
/// walk.
///
/// # Examples
///
/// ```
/// use bne_games::profile::ProfileIter;
/// let mut iter = ProfileIter::new(&[2, 3]);
/// assert_eq!(iter.len(), 6);
/// let profiles: Vec<_> = iter.collect();
/// assert_eq!(profiles[0], vec![0, 0]);
/// assert_eq!(profiles[5], vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileIter {
    radices: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl ProfileIter {
    /// Creates an iterator over all profiles with `radices[i]` actions for
    /// player `i`. If any radix is zero the iterator is immediately empty.
    pub fn new(radices: &[usize]) -> Self {
        ProfileIter {
            remaining: Self::count_profiles(radices),
            current: vec![0; radices.len()],
            radices: radices.to_vec(),
        }
    }

    /// Total number of profiles this iterator will yield.
    pub fn count_profiles(radices: &[usize]) -> usize {
        if radices.is_empty() {
            return 0;
        }
        radices.iter().product()
    }
}

impl Iterator for ProfileIter {
    type Item = ActionProfile;

    fn next(&mut self) -> Option<ActionProfile> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            // Last profile: hand over the buffer instead of cloning it.
            return Some(std::mem::take(&mut self.current));
        }
        let out = self.current.clone();
        advance_odometer(&mut self.current, &self.radices);
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ProfileIter {}

impl std::iter::FusedIterator for ProfileIter {}

/// Advances a mixed-radix odometer (last digit fastest) by one step.
/// Returns `false` when the odometer wrapped around back to all zeros.
#[inline]
fn advance_odometer(current: &mut [usize], radices: &[usize]) -> bool {
    let mut i = current.len();
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        current[i] += 1;
        if current[i] < radices[i] {
            return true;
        }
        current[i] = 0;
    }
}

/// Per-player strides of the dense odometer layout (player 0 slowest):
/// `flat = Σ profile[p] * strides[p]` with
/// `strides[p] = radices[p + 1] * ... * radices[n - 1]`.
pub fn strides_for(radices: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; radices.len()];
    for p in (0..radices.len().saturating_sub(1)).rev() {
        strides[p] = strides[p + 1] * radices[p + 1];
    }
    strides
}

/// Calls `f(profile, flat)` for every mixed-radix assignment, reusing a
/// single buffer: no per-step allocation. `flat` is the assignment's index
/// in the dense odometer layout (the same index [`profile_to_index`]
/// computes). Visits nothing when `radices` is empty or contains a zero.
pub fn visit_mixed_radix<F: FnMut(&[usize], usize)>(radices: &[usize], mut f: F) {
    visit_mixed_radix_while(radices, |profile, flat| {
        f(profile, flat);
        true
    });
}

/// Early-exit variant of [`visit_mixed_radix`]: stops as soon as `f`
/// returns `false`. Returns `true` when the sweep ran to completion.
pub fn visit_mixed_radix_while<F: FnMut(&[usize], usize) -> bool>(
    radices: &[usize],
    mut f: F,
) -> bool {
    let total = ProfileIter::count_profiles(radices);
    let mut current = vec![0usize; radices.len()];
    for flat in 0..total {
        if !f(&current, flat) {
            return false;
        }
        advance_odometer(&mut current, radices);
    }
    true
}

/// Calls `f(profile, flat)` for every flat index in `range` (a contiguous
/// slice of the odometer order), reusing a single buffer. This is the
/// chunking primitive behind the `parallel` feature: a worker visits
/// `start..end` without materializing any profile.
///
/// # Panics
///
/// Panics if `range.end` exceeds the total number of profiles.
pub fn visit_mixed_radix_range<F: FnMut(&[usize], usize) -> bool>(
    radices: &[usize],
    range: std::ops::Range<usize>,
    mut f: F,
) -> bool {
    let total = ProfileIter::count_profiles(radices);
    assert!(range.end <= total, "range end {} > {total}", range.end);
    if range.start >= range.end {
        return true;
    }
    let mut current = index_to_profile(range.start, radices);
    for flat in range {
        if !f(&current, flat) {
            return false;
        }
        advance_odometer(&mut current, radices);
    }
    true
}

/// Converts a profile to a flat index into a dense payoff tensor laid out in
/// the same odometer order as [`ProfileIter`].
///
/// # Panics
///
/// Panics if the profile length does not match `radices` or any entry is out
/// of range (this is an internal indexing helper; public APIs validate
/// beforehand).
pub fn profile_to_index(profile: &[ActionId], radices: &[usize]) -> usize {
    assert_eq!(profile.len(), radices.len(), "profile length mismatch");
    let mut idx = 0usize;
    for (a, r) in profile.iter().zip(radices.iter()) {
        assert!(a < r, "action {a} out of range {r}");
        idx = idx * r + a;
    }
    idx
}

/// Inverse of [`profile_to_index`].
pub fn index_to_profile(mut index: usize, radices: &[usize]) -> ActionProfile {
    let mut profile = vec![0; radices.len()];
    for i in (0..radices.len()).rev() {
        profile[i] = index % radices[i];
        index /= radices[i];
    }
    profile
}

/// Runs `f` on a zeroed scratch slice of `len` elements, stack-allocated
/// for `len <= 16` (the realistic range for players/coalitions) with a
/// heap fallback beyond. The shared small-buffer pattern of the hot
/// visitors: one call replaces a per-invocation `Vec` allocation.
pub fn with_scratch<T: Copy + Default, R>(len: usize, f: impl FnOnce(&mut [T]) -> R) -> R {
    let mut stack = [T::default(); 16];
    if len <= stack.len() {
        f(&mut stack[..len])
    } else {
        let mut heap = vec![T::default(); len];
        f(&mut heap)
    }
}

/// Iterates over all subsets of `{0, .., n-1}` of size exactly `size`,
/// invoking `f` on each. Used for coalition enumeration in `bne-robust`.
pub fn for_each_subset_of_size<F: FnMut(&[usize])>(n: usize, size: usize, mut f: F) {
    try_for_each_subset_of_size(n, size, |s| {
        f(s);
        true
    });
}

/// Early-exit variant of [`for_each_subset_of_size`]: stops as soon as `f`
/// returns `false`. Returns `true` when every subset was visited. Lets the
/// witness searches in `bne-robust` enumerate coalitions without
/// materializing them.
pub fn try_for_each_subset_of_size<F: FnMut(&[usize]) -> bool>(
    n: usize,
    size: usize,
    mut f: F,
) -> bool {
    if size > n {
        return true;
    }
    // This function runs once per (profile, coalition size) in the
    // robustness sweeps, so the combination cursor lives on the stack.
    with_scratch::<usize, bool>(size, |combo| {
        for (i, slot) in combo.iter_mut().enumerate() {
            *slot = i;
        }
        if size == 0 {
            return f(combo);
        }
        loop {
            if !f(combo) {
                return false;
            }
            // advance combination
            let mut i = size;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if combo[i] < n - (size - i) {
                    combo[i] += 1;
                    for j in i + 1..size {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    })
}

/// Collects all subsets of `{0, .., n-1}` whose size is between 1 and
/// `max_size` inclusive.
pub fn subsets_up_to_size(n: usize, max_size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for size in 1..=max_size.min(n) {
        for_each_subset_of_size(n, size, |s| out.push(s.to_vec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_iter_covers_all_profiles_once() {
        let all: Vec<_> = ProfileIter::new(&[2, 3, 2]).collect();
        assert_eq!(all.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for p in &all {
            assert!(seen.insert(p.clone()), "duplicate profile {p:?}");
            assert!(p[0] < 2 && p[1] < 3 && p[2] < 2);
        }
    }

    #[test]
    fn profile_iter_empty_radix_yields_nothing() {
        assert_eq!(ProfileIter::new(&[2, 0, 3]).count(), 0);
        assert_eq!(ProfileIter::new(&[]).count(), 0);
    }

    #[test]
    fn index_round_trip() {
        let radices = [3, 4, 2, 5];
        for (i, p) in ProfileIter::new(&radices).enumerate() {
            assert_eq!(profile_to_index(&p, &radices), i);
            assert_eq!(index_to_profile(i, &radices), p);
        }
    }

    #[test]
    fn count_profiles_matches_iterator() {
        let radices = [2, 3, 4];
        assert_eq!(
            ProfileIter::count_profiles(&radices),
            ProfileIter::new(&radices).count()
        );
        assert_eq!(ProfileIter::count_profiles(&[]), 0);
    }

    #[test]
    fn subsets_of_size_two_from_four() {
        let mut got = Vec::new();
        for_each_subset_of_size(4, 2, |s| got.push(s.to_vec()));
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], vec![0, 1]);
        assert_eq!(got[5], vec![2, 3]);
    }

    #[test]
    fn subsets_of_size_zero_is_single_empty_set() {
        let mut got = Vec::new();
        for_each_subset_of_size(5, 0, |s| got.push(s.to_vec()));
        assert_eq!(got, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn subsets_up_to_size_counts() {
        // C(5,1) + C(5,2) + C(5,3) = 5 + 10 + 10 = 25
        assert_eq!(subsets_up_to_size(5, 3).len(), 25);
        // larger than n caps at n
        assert_eq!(subsets_up_to_size(3, 10).len(), 7);
    }

    #[test]
    fn profile_iter_is_exact_size() {
        let mut iter = ProfileIter::new(&[3, 2, 2]);
        assert_eq!(iter.len(), 12);
        assert_eq!(iter.size_hint(), (12, Some(12)));
        iter.next();
        assert_eq!(iter.len(), 11);
        assert_eq!(iter.by_ref().count(), 11);
        assert_eq!(iter.next(), None); // fused
        assert_eq!(ProfileIter::new(&[2, 0]).len(), 0);
    }

    #[test]
    fn strides_match_profile_to_index() {
        let radices = [3, 4, 2, 5];
        let strides = strides_for(&radices);
        assert_eq!(strides, vec![40, 10, 5, 1]);
        for p in ProfileIter::new(&radices) {
            let via_strides: usize = p.iter().zip(strides.iter()).map(|(a, s)| a * s).sum();
            assert_eq!(via_strides, profile_to_index(&p, &radices));
        }
    }

    #[test]
    fn visit_mixed_radix_agrees_with_profile_iter() {
        let radices = [2, 3, 2];
        let mut visited = Vec::new();
        visit_mixed_radix(&radices, |p, flat| visited.push((p.to_vec(), flat)));
        let expected: Vec<_> = ProfileIter::new(&radices)
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        assert_eq!(visited, expected);
        // degenerate radices visit nothing
        let mut count = 0;
        visit_mixed_radix(&[2, 0], |_, _| count += 1);
        visit_mixed_radix(&[], |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn visit_mixed_radix_while_stops_early() {
        let mut seen = 0;
        let completed = visit_mixed_radix_while(&[2, 2, 2], |_, flat| {
            seen += 1;
            flat < 2
        });
        assert!(!completed);
        assert_eq!(seen, 3);
        assert!(visit_mixed_radix_while(&[2, 2], |_, _| true));
    }

    #[test]
    fn visit_mixed_radix_range_covers_chunks() {
        let radices = [3, 2, 4];
        let total = ProfileIter::count_profiles(&radices);
        let mut chunked = Vec::new();
        for start in (0..total).step_by(5) {
            let end = (start + 5).min(total);
            visit_mixed_radix_range(&radices, start..end, |p, flat| {
                chunked.push((p.to_vec(), flat));
                true
            });
        }
        let whole: Vec<_> = ProfileIter::new(&radices)
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        assert_eq!(chunked, whole);
        // empty range is a no-op completion
        assert!(visit_mixed_radix_range(&radices, 3..3, |_, _| false));
    }
}
