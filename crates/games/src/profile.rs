//! Action profiles and utilities for iterating over them.
//!
//! A profile assigns one action to each player. Profiles are stored as
//! `Vec<ActionId>` (the [`ActionProfile`] alias) and iterated in
//! "odometer" (mixed-radix) order by [`ProfileIter`], which many solvers
//! and robustness checkers rely on.

use crate::ActionId;

/// A pure action profile: `profile[i]` is the action chosen by player `i`.
pub type ActionProfile = Vec<ActionId>;

/// Iterator over every pure action profile of a game with the given
/// per-player action counts, in lexicographic (odometer) order.
///
/// # Examples
///
/// ```
/// use bne_games::profile::ProfileIter;
/// let profiles: Vec<_> = ProfileIter::new(&[2, 3]).collect();
/// assert_eq!(profiles.len(), 6);
/// assert_eq!(profiles[0], vec![0, 0]);
/// assert_eq!(profiles[5], vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileIter {
    radices: Vec<usize>,
    current: Vec<usize>,
    exhausted: bool,
}

impl ProfileIter {
    /// Creates an iterator over all profiles with `radices[i]` actions for
    /// player `i`. If any radix is zero the iterator is immediately empty.
    pub fn new(radices: &[usize]) -> Self {
        let exhausted = radices.is_empty() || radices.iter().any(|&r| r == 0);
        ProfileIter {
            radices: radices.to_vec(),
            current: vec![0; radices.len()],
            exhausted,
        }
    }

    /// Total number of profiles this iterator will yield.
    pub fn count_profiles(radices: &[usize]) -> usize {
        if radices.is_empty() {
            return 0;
        }
        radices.iter().product()
    }
}

impl Iterator for ProfileIter {
    type Item = ActionProfile;

    fn next(&mut self) -> Option<ActionProfile> {
        if self.exhausted {
            return None;
        }
        let out = self.current.clone();
        // Advance the odometer (last player varies fastest... actually first
        // varies slowest): increment from the last digit.
        let mut i = self.current.len();
        loop {
            if i == 0 {
                self.exhausted = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.radices[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

/// Converts a profile to a flat index into a dense payoff tensor laid out in
/// the same odometer order as [`ProfileIter`].
///
/// # Panics
///
/// Panics if the profile length does not match `radices` or any entry is out
/// of range (this is an internal indexing helper; public APIs validate
/// beforehand).
pub fn profile_to_index(profile: &[ActionId], radices: &[usize]) -> usize {
    assert_eq!(profile.len(), radices.len(), "profile length mismatch");
    let mut idx = 0usize;
    for (a, r) in profile.iter().zip(radices.iter()) {
        assert!(a < r, "action {a} out of range {r}");
        idx = idx * r + a;
    }
    idx
}

/// Inverse of [`profile_to_index`].
pub fn index_to_profile(mut index: usize, radices: &[usize]) -> ActionProfile {
    let mut profile = vec![0; radices.len()];
    for i in (0..radices.len()).rev() {
        profile[i] = index % radices[i];
        index /= radices[i];
    }
    profile
}

/// Iterates over all subsets of `{0, .., n-1}` of size exactly `size`,
/// invoking `f` on each. Used for coalition enumeration in `bne-robust`.
pub fn for_each_subset_of_size<F: FnMut(&[usize])>(n: usize, size: usize, mut f: F) {
    if size > n {
        return;
    }
    let mut combo: Vec<usize> = (0..size).collect();
    if size == 0 {
        f(&combo);
        return;
    }
    loop {
        f(&combo);
        // advance combination
        let mut i = size;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if combo[i] < n - (size - i) {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Collects all subsets of `{0, .., n-1}` whose size is between 1 and
/// `max_size` inclusive.
pub fn subsets_up_to_size(n: usize, max_size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for size in 1..=max_size.min(n) {
        for_each_subset_of_size(n, size, |s| out.push(s.to_vec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_iter_covers_all_profiles_once() {
        let all: Vec<_> = ProfileIter::new(&[2, 3, 2]).collect();
        assert_eq!(all.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for p in &all {
            assert!(seen.insert(p.clone()), "duplicate profile {p:?}");
            assert!(p[0] < 2 && p[1] < 3 && p[2] < 2);
        }
    }

    #[test]
    fn profile_iter_empty_radix_yields_nothing() {
        assert_eq!(ProfileIter::new(&[2, 0, 3]).count(), 0);
        assert_eq!(ProfileIter::new(&[]).count(), 0);
    }

    #[test]
    fn index_round_trip() {
        let radices = [3, 4, 2, 5];
        for (i, p) in ProfileIter::new(&radices).enumerate() {
            assert_eq!(profile_to_index(&p, &radices), i);
            assert_eq!(index_to_profile(i, &radices), p);
        }
    }

    #[test]
    fn count_profiles_matches_iterator() {
        let radices = [2, 3, 4];
        assert_eq!(
            ProfileIter::count_profiles(&radices),
            ProfileIter::new(&radices).count()
        );
        assert_eq!(ProfileIter::count_profiles(&[]), 0);
    }

    #[test]
    fn subsets_of_size_two_from_four() {
        let mut got = Vec::new();
        for_each_subset_of_size(4, 2, |s| got.push(s.to_vec()));
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], vec![0, 1]);
        assert_eq!(got[5], vec![2, 3]);
    }

    #[test]
    fn subsets_of_size_zero_is_single_empty_set() {
        let mut got = Vec::new();
        for_each_subset_of_size(5, 0, |s| got.push(s.to_vec()));
        assert_eq!(got, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn subsets_up_to_size_counts() {
        // C(5,1) + C(5,2) + C(5,3) = 5 + 10 + 10 = 25
        assert_eq!(subsets_up_to_size(5, 3).len(), 25);
        // larger than n caps at n
        assert_eq!(subsets_up_to_size(3, 10).len(), 7);
    }
}
