//! Timeout + retransmission: the adapter that turns message **loss** into
//! message **latency**.
//!
//! Every protocol in the workspace previously treated a dropped message as
//! gone forever — which is why e19 found that healing a partition buys
//! nothing: by the time the network returns, nobody resends what was lost
//! in the outage. Real transports resend. [`RetryAdapter`] wraps any
//! [`AsyncProcess`] with a per-message acknowledge/retransmit loop:
//!
//! * each inner send becomes a [`RetryMsg::Data`] carrying a locally
//!   unique id, tracked in a pending table with a retransmission timer;
//! * a **multicast** (consecutive sends sharing one `Rc` payload) becomes
//!   **one** table entry per (message, recipient-set): a single id, a
//!   per-recipient ack bitmask, and one `Rc`-shared wire message reused by
//!   the initial fan-out and every retransmission — the payload is never
//!   cloned into the table, and retransmissions go only to the recipients
//!   that have not acked yet;
//! * receivers acknowledge every `Data` (re-acking duplicates, since the
//!   previous ack may itself have been lost) and deliver the payload to
//!   the inner process exactly once per `(sender, id)`;
//! * an unacknowledged entry is resent when its timer fires, with the
//!   timeout scaled by [`RetryPolicy::backoff`] each attempt, until
//!   [`RetryPolicy::max_attempts`] is exhausted (0 = retry forever).
//!
//! The unicast path is the degenerate one-recipient table entry: the
//! payload is moved (not cloned) into the single `Rc`-shared wire message,
//! so a message pending through `k` attempts costs one allocation total,
//! not `k` payload clones.
//!
//! Under a loss-free network the adapter is behaviorally invisible: the
//! inner processes see the same deliveries in the same order and decide
//! identically (with constant latencies the *data-projected* event traces
//! match exactly — acks and timers are extra events, but they perturb
//! nothing; the property tests in `tests/tests/net_retry.rs` assert
//! this). Under loss or partitions it converts correctness failures into
//! extra virtual time: e21 re-runs the e19 partition grid with
//! Bracha + retry and the "fatal window" becomes a latency cliff.
//!
//! Timer namespace: the adapter owns the **odd** timer ids (retransmission
//! timers are `id << 1 | 1`) and forwards inner timers shifted left one
//! bit, so inner timer ids must stay below `2^63`.

use crate::runtime::{AsyncProcess, NetCtx, Payload};
use bne_byzantine::ProcId;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Retransmission policy of a [`RetryAdapter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Virtual ticks before the first retransmission of an
    /// unacknowledged message. Must be ≥ 1.
    pub timeout: u64,
    /// Multiplier applied to the timeout after every retransmission
    /// (1 = constant interval, 2 = exponential backoff).
    pub backoff: u64,
    /// Total send attempts per message before giving up (0 = never give
    /// up; safe whenever the loss probability is below 1, since each
    /// attempt succeeds independently).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Retransmit every `timeout` ticks with exponential (×2) backoff,
    /// forever.
    pub fn exponential(timeout: u64) -> Self {
        RetryPolicy {
            timeout,
            backoff: 2,
            max_attempts: 0,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        format!(
            "retry(to={},x{},max={})",
            self.timeout,
            self.backoff,
            if self.max_attempts == 0 {
                "∞".to_string()
            } else {
                self.max_attempts.to_string()
            }
        )
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::exponential(4)
    }
}

/// The wire format of a retried channel: payloads with ids, and acks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryMsg<M> {
    /// A payload-carrying message; `id` is unique per sender.
    Data {
        /// Sender-local message id.
        id: u64,
        /// The inner protocol's message.
        payload: M,
    },
    /// Acknowledges receipt of the sender's `Data` with the same id.
    Ack {
        /// The acknowledged message id.
        id: u64,
    },
}

/// One pending table entry: a (message, recipient-set) pair awaiting
/// acknowledgement. Unicast sends are the one-recipient special case.
struct Pending<M> {
    /// The recipient set of the original fan-out, in send order.
    recipients: Vec<ProcId>,
    /// Per-recipient ack bitmask (bit `i` set ⇔ `recipients[i]` acked).
    acked: Vec<u64>,
    /// Recipients still unacked (`== recipients.len() - popcount(acked)`).
    remaining: usize,
    /// The one `Rc`-shared wire message: reused by the initial fan-out
    /// and every retransmission — the payload lives here exactly once.
    msg: Rc<RetryMsg<M>>,
    /// Send attempts so far (the initial fan-out counts as 1).
    attempts: u32,
    /// Current retransmission timeout (grows by the backoff factor).
    timeout: u64,
}

impl<M> Pending<M> {
    fn new(recipients: Vec<ProcId>, msg: Rc<RetryMsg<M>>, timeout: u64) -> Self {
        let words = recipients.len().div_ceil(64);
        Pending {
            remaining: recipients.len(),
            acked: vec![0; words],
            recipients,
            msg,
            attempts: 1,
            timeout,
        }
    }

    fn is_acked(&self, idx: usize) -> bool {
        self.acked[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Marks `src`'s slot acked; returns `true` if this was the last
    /// outstanding recipient.
    fn ack(&mut self, src: ProcId) -> bool {
        if let Some(idx) =
            (0..self.recipients.len()).find(|&i| self.recipients[i] == src && !self.is_acked(i))
        {
            self.acked[idx / 64] |= 1u64 << (idx % 64);
            self.remaining -= 1;
        }
        self.remaining == 0
    }
}

/// Wraps an [`AsyncProcess`] with acknowledgements and retransmission
/// (see the [module docs](self) for the protocol).
pub struct RetryAdapter<P: AsyncProcess> {
    inner: P,
    policy: RetryPolicy,
    next_id: u64,
    pending: BTreeMap<u64, Pending<P::Msg>>,
    delivered: BTreeSet<(ProcId, u64)>,
    /// Retransmissions actually sent (excludes first attempts), counted
    /// per retransmitted message (a table entry resent to 3 unacked
    /// recipients counts 3).
    retransmissions: u64,
    /// Optional shared counter mirroring `retransmissions` (lets scenario
    /// probes read the total after the adapter is boxed away).
    probe: Option<Rc<Cell<u64>>>,
    /// Recycled inner-callback context (capacity retained across events).
    scratch: Option<NetCtx<P::Msg>>,
}

impl<P: AsyncProcess> RetryAdapter<P> {
    /// Wraps `inner` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy.timeout == 0` (a zero timeout would retransmit
    /// in the same tick as the original send, before any ack could
    /// possibly arrive).
    pub fn new(inner: P, policy: RetryPolicy) -> Self {
        assert!(policy.timeout >= 1, "retry timeout must be at least 1");
        RetryAdapter {
            inner,
            policy,
            next_id: 0,
            pending: BTreeMap::new(),
            delivered: BTreeSet::new(),
            retransmissions: 0,
            probe: None,
            scratch: None,
        }
    }

    /// Mirrors the retransmission counter into a shared cell, so callers
    /// that box the adapter behind `dyn AsyncProcess` can still read it.
    pub fn with_probe(mut self, probe: Rc<Cell<u64>>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Retransmissions sent so far (first attempts are not counted).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    fn count_retransmissions(&mut self, sent: u64) {
        self.retransmissions += sent;
        if let Some(probe) = &self.probe {
            probe.set(probe.get() + sent);
        }
    }

    /// Opens one pending entry for a (payload, recipient-set) group and
    /// fans the shared wire message out to every recipient.
    fn track(&mut self, dsts: Vec<ProcId>, payload: P::Msg, ctx: &mut NetCtx<RetryMsg<P::Msg>>) {
        let id = self.next_id;
        self.next_id += 1;
        let msg = Rc::new(RetryMsg::Data { id, payload });
        for &dst in &dsts {
            ctx.send_shared(dst, Rc::clone(&msg));
        }
        if self.policy.max_attempts != 1 {
            ctx.set_timer(self.policy.timeout, (id << 1) | 1);
            self.pending
                .insert(id, Pending::new(dsts, msg, self.policy.timeout));
        }
    }

    /// Applies the actions an inner callback buffered: forwards timers
    /// (shifted into the even namespace) and converts sends into tracked
    /// `Data` messages with retransmission timers. Consecutive sends
    /// sharing one multicast `Rc` payload collapse into a single table
    /// entry; the payload is extracted by dropping the redundant `Rc`
    /// handles and unwrapping the last — no clone on this path.
    fn absorb(&mut self, ictx: &mut NetCtx<P::Msg>, ctx: &mut NetCtx<RetryMsg<P::Msg>>) {
        let actions = ictx.drain_actions();
        for (delay, timer) in actions.timers {
            debug_assert!(timer < 1 << 63, "inner timer id overflows the namespace");
            ctx.set_timer(delay, timer << 1);
        }
        let mut sends = actions.sends.peekable();
        while let Some((dst, payload)) = sends.next() {
            match payload {
                Payload::Owned(msg) => self.track(vec![dst], msg, ctx),
                Payload::Shared(rc) => {
                    let mut dsts = vec![dst];
                    while let Some((next_dst, Payload::Shared(next_rc))) = sends.peek() {
                        // repeated destinations split into separate
                        // entries, keeping (sender, id) delivery dedup
                        // per physical send
                        if !Rc::ptr_eq(&rc, next_rc) || dsts.contains(next_dst) {
                            break;
                        }
                        dsts.push(*next_dst);
                        sends.next(); // drops the redundant Rc handle
                    }
                    // the group held the only live handles: move the
                    // payload out (clone only in the pathological
                    // repeated-destination case)
                    let msg = Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone());
                    self.track(dsts, msg, ctx);
                }
            }
        }
    }
}

impl<P: AsyncProcess> AsyncProcess for RetryAdapter<P> {
    type Msg = RetryMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut NetCtx<Self::Msg>) {
        let mut ictx = self.scratch.take().unwrap_or_else(|| NetCtx::new(0, 0, 0));
        ictx.reset(ctx.id(), ctx.n(), ctx.now());
        self.inner.on_start(&mut ictx);
        self.absorb(&mut ictx, ctx);
        self.scratch = Some(ictx);
    }

    fn on_message(&mut self, src: ProcId, msg: Self::Msg, ctx: &mut NetCtx<Self::Msg>) {
        match msg {
            RetryMsg::Data { id, payload } => {
                // always ack — the previous ack may have been lost
                ctx.send(src, RetryMsg::Ack { id });
                if self.delivered.insert((src, id)) {
                    let mut ictx = self.scratch.take().unwrap_or_else(|| NetCtx::new(0, 0, 0));
                    ictx.reset(ctx.id(), ctx.n(), ctx.now());
                    self.inner.on_message(src, payload, &mut ictx);
                    self.absorb(&mut ictx, ctx);
                    self.scratch = Some(ictx);
                }
            }
            RetryMsg::Ack { id } => {
                if let Some(p) = self.pending.get_mut(&id) {
                    if p.ack(src) {
                        self.pending.remove(&id);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut NetCtx<Self::Msg>) {
        if timer & 1 == 0 {
            // an inner timer, forwarded
            let mut ictx = self.scratch.take().unwrap_or_else(|| NetCtx::new(0, 0, 0));
            ictx.reset(ctx.id(), ctx.n(), ctx.now());
            self.inner.on_timer(timer >> 1, &mut ictx);
            self.absorb(&mut ictx, ctx);
            self.scratch = Some(ictx);
            return;
        }
        let id = timer >> 1;
        let Some(p) = self.pending.get_mut(&id) else {
            return; // fully acknowledged in the meantime
        };
        if self.policy.max_attempts != 0 && p.attempts >= self.policy.max_attempts {
            self.pending.remove(&id);
            return; // gave up
        }
        p.attempts += 1;
        p.timeout = p.timeout.saturating_mul(self.policy.backoff.max(1));
        let timeout = p.timeout;
        // resend the one shared wire message to every unacked recipient
        let mut resent = 0;
        for i in 0..p.recipients.len() {
            if !p.is_acked(i) {
                let dst = p.recipients[i];
                let msg = Rc::clone(&p.msg);
                ctx.send_shared(dst, msg);
                resent += 1;
            }
        }
        self.count_retransmissions(resent);
        ctx.set_timer(timeout, (id << 1) | 1);
    }

    fn on_crash(&mut self) {
        self.inner.on_crash();
    }

    fn on_recover(&mut self, ctx: &mut NetCtx<Self::Msg>) {
        // re-arm the retransmission timer of every still-pending entry
        // (the timers scheduled before the crash were absorbed), then
        // give the inner process its own recovery callback. The pending
        // and delivered tables survive the crash in the adapter's
        // in-memory state by the suspend/resume default; a peer's
        // retransmissions re-fill whatever the crash window dropped —
        // the adapter IS the replay mechanism for durable protocols.
        let timeout = self.policy.timeout;
        for (&id, p) in &mut self.pending {
            p.timeout = timeout;
            ctx.set_timer(timeout, (id << 1) | 1);
        }
        let mut ictx = self.scratch.take().unwrap_or_else(|| NetCtx::new(0, 0, 0));
        ictx.reset(ctx.id(), ctx.n(), ctx.now());
        self.inner.on_recover(&mut ictx);
        self.absorb(&mut ictx, ctx);
        self.scratch = Some(ictx);
    }

    fn save_durable(&self) -> Option<crate::runtime::DurableState> {
        self.inner.save_durable()
    }

    fn restore_durable(&mut self, state: &crate::runtime::DurableState) {
        self.inner.restore_durable(state);
    }

    fn decision(&self) -> Option<u64> {
        self.inner.decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LatencyModel, LinkFaults, NetConfig};
    use crate::protocols::BrachaProcess;
    use crate::runtime::EventNet;
    use bne_byzantine::bracha::BrachaMsg;

    fn bracha_retry_net(
        n: usize,
        t: usize,
        policy: RetryPolicy,
        cfg: NetConfig,
    ) -> EventNet<RetryMsg<BrachaMsg>> {
        let procs: Vec<Box<dyn AsyncProcess<Msg = RetryMsg<BrachaMsg>>>> = (0..n)
            .map(|_| Box::new(RetryAdapter::new(BrachaProcess::new(t, 0, 1), policy)) as _)
            .collect();
        EventNet::new(procs, cfg)
    }

    #[test]
    fn zero_loss_decisions_match_the_unwrapped_protocol() {
        let policy = RetryPolicy::default();
        let mut net = bracha_retry_net(7, 2, policy, NetConfig::lockstep(1));
        assert!(net.run(1_000_000));
        assert_eq!(net.decisions(), vec![Some(1); 7]);
        // zero latency: every ack lands at tick 0, before any timer at
        // tick 4 fires, so nothing is ever retransmitted
        assert_eq!(
            net.stats().messages_delivered,
            net.stats().messages_sent,
            "no drops"
        );
    }

    #[test]
    fn heavy_loss_is_survived_by_retransmission() {
        let cfg = NetConfig {
            faults: LinkFaults::lossy(0.5).into(),
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(77)
        };
        let mut net = bracha_retry_net(4, 1, RetryPolicy::exponential(3), cfg);
        assert!(net.run(10_000_000), "queue must drain");
        assert_eq!(net.decisions(), vec![Some(1); 4]);
        assert!(net.stats().messages_dropped > 0, "loss actually happened");
    }

    #[test]
    fn bounded_attempts_give_up_and_drain() {
        // 100% loss: nothing ever arrives; with max_attempts = 3 every
        // message is sent exactly 3 times and the queue still drains
        let cfg = NetConfig {
            faults: LinkFaults::lossy(1.0).into(),
            ..NetConfig::lockstep(5)
        };
        let policy = RetryPolicy {
            timeout: 2,
            backoff: 2,
            max_attempts: 3,
        };
        let mut net = bracha_retry_net(3, 1, policy, cfg);
        assert!(net.run(1_000_000));
        assert_eq!(net.decisions(), vec![None; 3]);
        let stats = net.stats();
        assert_eq!(stats.messages_dropped, stats.messages_sent);
        // the broadcaster's Init multicast (to 3 destinations) is
        // attempted 3 times; nothing else ever starts
        assert_eq!(stats.messages_sent, 9);
    }

    #[test]
    fn duplicates_are_delivered_to_the_inner_process_once() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct CountDeliveries {
            count: Rc<Cell<usize>>,
        }
        impl AsyncProcess for CountDeliveries {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
                if ctx.id() == 0 {
                    ctx.send(1, 42);
                }
            }
            fn on_message(&mut self, _s: ProcId, _m: u64, _c: &mut NetCtx<u64>) {
                self.count.set(self.count.get() + 1);
            }
            fn on_timer(&mut self, _t: u64, _c: &mut NetCtx<u64>) {}
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        // latency 5 with timeout 2 and no backoff: several retransmissions
        // race ahead of the first ack, so process 1 receives duplicates
        let cfg = NetConfig {
            latency: LatencyModel::Constant(5),
            ..NetConfig::lockstep(0)
        };
        let count = Rc::new(Cell::new(0));
        let procs: Vec<Box<dyn AsyncProcess<Msg = RetryMsg<u64>>>> = (0..2)
            .map(|_| {
                Box::new(RetryAdapter::new(
                    CountDeliveries {
                        count: Rc::clone(&count),
                    },
                    RetryPolicy {
                        timeout: 2,
                        backoff: 1,
                        max_attempts: 0,
                    },
                )) as _
            })
            .collect();
        let mut net = EventNet::new(procs, cfg);
        assert!(net.run(100_000));
        let delivered = net.stats().messages_delivered;
        assert!(delivered > 3, "duplicates really flowed: {delivered}");
        assert_eq!(count.get(), 1, "inner process saw the payload once");
    }

    #[test]
    fn retransmission_counter_and_backoff_schedule() {
        // drive the adapter directly (no network): the broadcaster's Init
        // multicast becomes ONE pending entry covering 3 recipients;
        // firing its retry timer twice exhausts max_attempts = 3, after
        // which further timers are no-ops
        let policy = RetryPolicy {
            timeout: 2,
            backoff: 2,
            max_attempts: 3,
        };
        let mut adapter = RetryAdapter::new(BrachaProcess::new(1, 0, 1), policy);
        let mut ctx = NetCtx::new(0, 3, 0);
        adapter.on_start(&mut ctx);
        assert_eq!(adapter.retransmissions(), 0);
        assert_eq!(adapter.pending.len(), 1, "one entry per multicast group");
        let entry = adapter.pending.values().next().unwrap();
        assert_eq!(entry.recipients, vec![0, 1, 2]);
        assert_eq!(entry.remaining, 3);
        for _ in 0..2 {
            let mut ctx = NetCtx::new(0, 3, 0);
            adapter.on_timer(1, &mut ctx); // retry timer of id 0
        }
        // each firing resends to all 3 still-unacked recipients
        assert_eq!(adapter.retransmissions(), 6);
        // exponential backoff doubled the per-entry timeout twice
        assert!(adapter.pending.values().all(|p| p.timeout == 8));
        let mut ctx = NetCtx::new(0, 3, 0);
        adapter.on_timer(1, &mut ctx);
        assert_eq!(adapter.retransmissions(), 6, "attempts exhausted");
        assert!(adapter.pending.is_empty());
    }

    #[test]
    fn acks_clear_individual_recipients_and_stop_their_retransmits() {
        // one multicast entry over recipients {0, 1, 2}; ack from 1 only
        let policy = RetryPolicy {
            timeout: 2,
            backoff: 1,
            max_attempts: 0,
        };
        let mut adapter = RetryAdapter::new(BrachaProcess::new(1, 0, 1), policy);
        let mut ctx = NetCtx::new(0, 3, 0);
        adapter.on_start(&mut ctx);
        let mut ctx = NetCtx::new(0, 3, 0);
        adapter.on_message(1, RetryMsg::Ack { id: 0 }, &mut ctx);
        let entry = adapter.pending.values().next().unwrap();
        assert_eq!(entry.remaining, 2);
        // the next timer resends only to the 2 unacked recipients
        let mut ctx = NetCtx::new(0, 3, 0);
        adapter.on_timer(1, &mut ctx);
        assert_eq!(adapter.retransmissions(), 2);
        assert_eq!(
            ctx.drain_actions()
                .sends
                .map(|(d, _)| d)
                .collect::<Vec<_>>(),
            vec![0, 2],
            "recipient 1 is not retransmitted to"
        );
        // acking the rest removes the entry entirely
        let mut ctx = NetCtx::new(0, 3, 0);
        adapter.on_message(0, RetryMsg::Ack { id: 0 }, &mut ctx);
        adapter.on_message(2, RetryMsg::Ack { id: 0 }, &mut ctx);
        assert!(adapter.pending.is_empty());
    }

    #[test]
    fn multicast_payload_is_not_cloned_into_the_pending_table() {
        use std::cell::Cell;
        use std::rc::Rc;

        /// A payload that counts clones (delivery clones + table clones).
        #[derive(Debug)]
        struct Counted {
            clones: Rc<Cell<usize>>,
        }
        impl Clone for Counted {
            fn clone(&self) -> Self {
                self.clones.set(self.clones.get() + 1);
                Counted {
                    clones: Rc::clone(&self.clones),
                }
            }
        }
        struct Fan {
            clones: Rc<Cell<usize>>,
        }
        impl AsyncProcess for Fan {
            type Msg = Counted;
            fn on_start(&mut self, ctx: &mut NetCtx<Counted>) {
                if ctx.id() == 0 {
                    let msg = Counted {
                        clones: Rc::clone(&self.clones),
                    };
                    ctx.multicast(1..ctx.n(), msg);
                }
            }
            fn on_message(&mut self, _s: ProcId, _m: Counted, _c: &mut NetCtx<Counted>) {}
            fn on_timer(&mut self, _t: u64, _c: &mut NetCtx<Counted>) {}
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let n = 8;
        let clones = Rc::new(Cell::new(0));
        let procs: Vec<Box<dyn AsyncProcess<Msg = RetryMsg<Counted>>>> = (0..n)
            .map(|_| {
                Box::new(RetryAdapter::new(
                    Fan {
                        clones: Rc::clone(&clones),
                    },
                    RetryPolicy::default(),
                )) as _
            })
            .collect();
        let mut net = EventNet::new(procs, NetConfig::lockstep(0));
        assert!(net.run(100_000));
        // the table holds the ONE shared wire message (zero payload
        // copies of its own, shared with every retransmission); each of
        // the n - 1 deliveries materializes one clone because the table's
        // handle is still live until the ack lands
        assert_eq!(clones.get(), n - 1);
    }
}
