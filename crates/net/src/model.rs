//! The configuration surface of the event-driven network: latency models,
//! scheduler policies, and link faults.
//!
//! Everything here is *data*: a [`NetConfig`] plus a seed fully determines
//! an execution of [`crate::runtime::EventNet`]. The RNG streams driving
//! latency sampling, drop sampling and scheduler jitter are derived from
//! the config seed via the bijective [`bne_sim::derive_seed`] mix, so no
//! two streams ever alias and replicas with different seeds are
//! statistically independent.

use bne_byzantine::ProcId;
use rand::{Rng, RngExt};
use std::collections::BTreeSet;

/// How long a message spends in flight, in virtual ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks (0 = instantaneous).
    Constant(u64),
    /// Uniformly distributed latency in `min..=max`.
    UniformJitter {
        /// Minimum latency in ticks.
        min: u64,
        /// Maximum latency in ticks (inclusive).
        max: u64,
    },
    /// A heavy-tailed model: latency starts at `base` and repeatedly
    /// doubles with probability `tail_prob` (capped at `max_doublings`),
    /// giving occasional stragglers orders of magnitude slower than the
    /// typical message — the classic long-tail behavior of real networks.
    HeavyTail {
        /// Typical latency in ticks.
        base: u64,
        /// Probability of each successive doubling.
        tail_prob: f64,
        /// Upper bound on the number of doublings.
        max_doublings: u32,
    },
}

impl LatencyModel {
    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            LatencyModel::Constant(ticks) => format!("const({ticks})"),
            LatencyModel::UniformJitter { min, max } => format!("uniform({min}..={max})"),
            LatencyModel::HeavyTail { base, .. } => format!("heavy-tail(base={base})"),
        }
    }

    /// Samples one message latency. [`LatencyModel::Constant`] draws
    /// nothing from the RNG, so switching models never perturbs unrelated
    /// streams in the zero-latency lockstep gate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LatencyModel::Constant(ticks) => ticks,
            LatencyModel::UniformJitter { min, max } => {
                debug_assert!(min <= max, "empty latency range");
                rng.random_range(min..=max)
            }
            LatencyModel::HeavyTail {
                base,
                tail_prob,
                max_doublings,
            } => {
                let mut latency = base.max(1);
                for _ in 0..max_doublings {
                    if rng.random_bool(tail_prob) {
                        latency = latency.saturating_mul(2);
                    } else {
                        break;
                    }
                }
                latency
            }
        }
    }
}

/// Who controls message *ordering* (on top of the latency model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Messages are delivered in send order at `send_time + latency` —
    /// with [`LatencyModel::Constant`]`(0)` this reproduces the lockstep
    /// [`bne_byzantine::SyncNetwork`] bit-identically (the property the
    /// equality tests and the bench gate assert).
    Fifo,
    /// A seeded-random interleaving: every delivery gets a random
    /// tiebreak, so same-tick messages arrive in adversary-free but
    /// unpredictable order, and an extra jitter of `0..=jitter` ticks.
    /// The scheduler's RNG stream is derived from `seed` via
    /// [`bne_sim::derive_seed`], independent of the latency/drop stream.
    RandomInterleave {
        /// Seed of the scheduler's private RNG stream.
        seed: u64,
        /// Maximum extra delay added to any message.
        jitter: u64,
    },
    /// A rushing adversary: messages *from* the listed processes are
    /// delivered instantly (latency 0, ahead of every same-tick honest
    /// delivery), while honest messages are delayed by an extra
    /// `honest_delay` ticks. This is the classical scheduler that lets
    /// Byzantine processes speak last in a round and first in the next.
    AdversarialRush {
        /// The processes whose messages are rushed.
        byzantine: BTreeSet<ProcId>,
        /// Extra delay imposed on every honest message.
        honest_delay: u64,
    },
}

/// A network partition active over a virtual-time window: messages
/// crossing the cut (one endpoint inside `group`, the other outside)
/// while `cut_at ≤ now < heal_at` are dropped. The default window starts
/// at time 0 ([`Partition::until`]); [`Partition::window`] places the cut
/// mid-execution, which is what the e19 duration × heal-time sweeps use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub group: BTreeSet<ProcId>,
    /// First tick at which the cut is active.
    pub cut_at: u64,
    /// First tick at which cross-cut messages get through again.
    pub heal_at: u64,
}

impl Partition {
    /// A partition active from time 0 until `heal_at` (the pre-window
    /// behavior).
    pub fn until(group: BTreeSet<ProcId>, heal_at: u64) -> Self {
        Partition {
            group,
            cut_at: 0,
            heal_at,
        }
    }

    /// A partition active over `cut_at..heal_at`.
    pub fn window(group: BTreeSet<ProcId>, cut_at: u64, heal_at: u64) -> Self {
        Partition {
            group,
            cut_at,
            heal_at,
        }
    }

    /// Duration of the outage window in ticks.
    pub fn duration(&self) -> u64 {
        self.heal_at.saturating_sub(self.cut_at)
    }

    /// Whether a message `src → dst` sent at `now` is severed by this
    /// partition.
    pub fn severs(&self, src: ProcId, dst: ProcId, now: u64) -> bool {
        (self.cut_at..self.heal_at).contains(&now)
            && self.group.contains(&src) != self.group.contains(&dst)
    }
}

/// Which data structure backs the [`crate::runtime::EventNet`] event
/// queue.
///
/// Both implementations realize the **same total order** on events —
/// `(virtual time, tiebreak, sequence number)` — so executions are
/// bit-identical between them: same traces, same decisions, same
/// decision times, same statistics. The property tests in
/// `tests/tests/net_queue.rs` and the `net_engine` bench gate assert
/// exactly this; the only difference is speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueImpl {
    /// A bucketed timing wheel keyed by virtual tick, with an overflow
    /// heap for events beyond the wheel horizon. Near-future events (the
    /// overwhelmingly common case in discrete virtual time) cost O(1)
    /// amortized; this is the default and the fast path.
    #[default]
    Wheel,
    /// The original global binary heap — the reference implementation and
    /// escape hatch. O(log n) per event with full event keys; kept so the
    /// wheel can always be differentially tested against it.
    Heap,
}

impl QueueImpl {
    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            QueueImpl::Wheel => "wheel",
            QueueImpl::Heap => "heap",
        }
    }
}

/// Link-level faults: iid message loss and an optional healing partition.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability that any individual message is silently dropped.
    pub drop_prob: f64,
    /// An optional partition (see [`Partition`]).
    pub partition: Option<Partition>,
}

impl LinkFaults {
    /// A perfectly reliable link layer.
    pub fn none() -> Self {
        LinkFaults {
            drop_prob: 0.0,
            partition: None,
        }
    }

    /// iid loss with the given probability, no partition.
    pub fn lossy(drop_prob: f64) -> Self {
        LinkFaults {
            drop_prob,
            partition: None,
        }
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::none()
    }
}

/// When a planned process crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Fires once the process has handled this many events (message
    /// deliveries plus timer firings; `on_start` does not count).
    /// `AfterEvents(u64::MAX)` therefore never fires — a plan using it is
    /// bit-identical to a fault-free run.
    AfterEvents(u64),
    /// Fires at the given virtual time. `AtTime(0)` crashes the process
    /// before `on_start` runs — the crash-at-start replacement for the old
    /// `SilentAsyncProcess` wrapper.
    AtTime(u64),
}

/// One planned crash (and optional recovery) of one process.
///
/// Each fault fires at most once. A fault whose `recover_at` is `None`
/// is a crash-stop: the process never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessFault {
    /// Which process crashes.
    pub proc: ProcId,
    /// When the crash fires.
    pub trigger: CrashTrigger,
    /// Virtual time at which the process recovers (its durable state is
    /// restored and `on_recover` runs); `None` means crash-stop. A
    /// recovery time earlier than the crash time recovers immediately
    /// after the crash fires.
    pub recover_at: Option<u64>,
}

/// The unified fault surface of one execution: link faults (iid loss,
/// partitions) plus a plan of process crashes and recoveries, built in
/// fluent style:
///
/// ```
/// use bne_net::{FaultPlan, Partition};
/// let plan = FaultPlan::lossy(0.1)
///     .partition(Partition::window([0].into_iter().collect(), 5, 20))
///     .crash(2, 8)        // process 2 halts after handling 8 events
///     .recover_at(60)     // ... and recovers at virtual time 60
///     .crash_at_start(3); // process 3 never runs at all
/// assert!(plan.has_process_faults());
/// ```
///
/// Existing [`LinkFaults`] values convert losslessly:
/// `NetConfig { faults: LinkFaults::lossy(0.1).into(), .. }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Link-level faults (loss, partitions).
    pub link: LinkFaults,
    /// Planned process crashes/recoveries, enforced by the runtime.
    pub process: Vec<ProcessFault>,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// iid link loss with the given probability, no process faults.
    pub fn lossy(drop_prob: f64) -> Self {
        FaultPlan {
            link: LinkFaults::lossy(drop_prob),
            ..FaultPlan::default()
        }
    }

    /// Sets the link partition window (builder style).
    pub fn partition(mut self, partition: Partition) -> Self {
        self.link.partition = Some(partition);
        self
    }

    /// Crashes `proc` after it has handled `after_k` events (builder
    /// style). Follow with [`FaultPlan::recover_at`] to schedule its
    /// recovery.
    pub fn crash(mut self, proc: ProcId, after_k: u64) -> Self {
        self.process.push(ProcessFault {
            proc,
            trigger: CrashTrigger::AfterEvents(after_k),
            recover_at: None,
        });
        self
    }

    /// Crashes `proc` at virtual time `time` (builder style).
    pub fn crash_at(mut self, proc: ProcId, time: u64) -> Self {
        self.process.push(ProcessFault {
            proc,
            trigger: CrashTrigger::AtTime(time),
            recover_at: None,
        });
        self
    }

    /// Crashes `proc` before its `on_start` ever runs — the planned-fault
    /// replacement for the old `SilentAsyncProcess` wrapper.
    pub fn crash_at_start(self, proc: ProcId) -> Self {
        self.crash_at(proc, 0)
    }

    /// Schedules the recovery of the most recently added crash (builder
    /// style).
    ///
    /// # Panics
    ///
    /// Panics if no crash has been added yet.
    pub fn recover_at(mut self, time: u64) -> Self {
        self.process
            .last_mut()
            .expect("FaultPlan::recover_at called before any crash was added")
            .recover_at = Some(time);
        self
    }

    /// Whether the plan contains any process faults. Plans without them
    /// are enforced purely at the link layer and are bit-identical to the
    /// pre-crash-model runtime.
    pub fn has_process_faults(&self) -> bool {
        !self.process.is_empty()
    }

    /// The processes this plan crashes and never recovers. Liveness
    /// measurements (did everyone decide?) should quantify over the
    /// complement of this set.
    pub fn permanently_crashed(&self) -> BTreeSet<ProcId> {
        self.process
            .iter()
            .filter(|f| f.recover_at.is_none())
            .map(|f| f.proc)
            .collect()
    }
}

impl From<LinkFaults> for FaultPlan {
    fn from(link: LinkFaults) -> Self {
        FaultPlan {
            link,
            process: Vec::new(),
        }
    }
}

/// Full configuration of one [`crate::runtime::EventNet`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Base seed; every internal RNG stream is derived from it via
    /// [`bne_sim::derive_seed`].
    pub seed: u64,
    /// The in-flight time distribution.
    pub latency: LatencyModel,
    /// The delivery-order policy.
    pub scheduler: SchedulerPolicy,
    /// The fault plan: link faults (loss, partitions) plus planned
    /// process crashes/recoveries (see [`FaultPlan`]). Plain
    /// [`LinkFaults`] values convert via `.into()`.
    pub faults: FaultPlan,
    /// Virtual ticks per protocol round for round-based processes driven
    /// through [`crate::adapter::RoundAdapter`]. Must be ≥ 1; latencies at
    /// or above this make synchronous protocols miss messages, which is
    /// exactly the timing stress the async experiments measure.
    pub round_ticks: u64,
    /// Record a full event trace (see
    /// [`crate::runtime::EventNet::trace`]); used by the determinism
    /// property tests, off by default because traces grow with every
    /// event.
    pub record_trace: bool,
    /// Which queue implementation backs the event core (identical
    /// semantics either way; see [`QueueImpl`]).
    pub queue: QueueImpl,
}

impl NetConfig {
    /// The configuration under which the async runtime is bit-identical
    /// to [`bne_byzantine::SyncNetwork`]: zero latency, FIFO order, no
    /// faults, one tick per round.
    pub fn lockstep(seed: u64) -> Self {
        NetConfig {
            seed,
            latency: LatencyModel::Constant(0),
            scheduler: SchedulerPolicy::Fifo,
            faults: FaultPlan::none(),
            round_ticks: 1,
            record_trace: false,
            queue: QueueImpl::default(),
        }
    }

    /// Sets the fault plan (builder style); accepts a [`FaultPlan`] or a
    /// plain [`LinkFaults`].
    pub fn fault_plan(mut self, plan: impl Into<FaultPlan>) -> Self {
        self.faults = plan.into();
        self
    }

    /// Enables event-trace recording (builder style).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Selects the event-queue implementation (builder style).
    pub fn with_queue(mut self, queue: QueueImpl) -> Self {
        self.queue = queue;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_latency_never_touches_the_rng() {
        let mut a = StdRng::seed_from_u64(5);
        let b = StdRng::seed_from_u64(5);
        assert_eq!(LatencyModel::Constant(7).sample(&mut a), 7);
        // stream untouched: both rngs still agree
        assert_eq!(a, b);
        let _ = LatencyModel::UniformJitter { min: 0, max: 9 }.sample(&mut a);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_jitter_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = LatencyModel::UniformJitter { min: 3, max: 11 };
        for _ in 0..200 {
            let l = model.sample(&mut rng);
            assert!((3..=11).contains(&l));
        }
    }

    #[test]
    fn heavy_tail_is_bounded_by_doublings() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LatencyModel::HeavyTail {
            base: 4,
            tail_prob: 0.9,
            max_doublings: 3,
        };
        let mut seen_tail = false;
        for _ in 0..100 {
            let l = model.sample(&mut rng);
            assert!((4..=4 * 8).contains(&l));
            seen_tail |= l > 4;
        }
        assert!(seen_tail, "with p = 0.9 some doubling must occur");
    }

    #[test]
    fn partitions_sever_only_across_the_cut_until_healed() {
        let p = Partition::until([0usize, 1].into_iter().collect(), 10);
        assert!(p.severs(0, 2, 9));
        assert!(p.severs(2, 1, 0));
        assert!(!p.severs(0, 1, 5), "same side is unaffected");
        assert!(!p.severs(2, 3, 5), "same side is unaffected");
        assert!(!p.severs(0, 2, 10), "healed at heal_at");
        assert_eq!(p.duration(), 10);
    }

    #[test]
    fn fault_plan_builder_and_link_conversion() {
        let plan = FaultPlan::lossy(0.25)
            .partition(Partition::until([0usize].into_iter().collect(), 9))
            .crash(1, 4)
            .recover_at(30)
            .crash_at_start(2);
        assert_eq!(plan.link.drop_prob, 0.25);
        assert!(plan.link.partition.is_some());
        assert!(plan.has_process_faults());
        assert_eq!(plan.process.len(), 2);
        assert_eq!(plan.process[0].recover_at, Some(30));
        assert_eq!(plan.process[1].trigger, CrashTrigger::AtTime(0));
        // only the unrecovered crash counts as permanent
        assert_eq!(
            plan.permanently_crashed(),
            [2usize].into_iter().collect::<BTreeSet<_>>()
        );

        let from_link: FaultPlan = LinkFaults::lossy(0.25).into();
        assert_eq!(from_link.link, LinkFaults::lossy(0.25));
        assert!(!from_link.has_process_faults());
        assert!(FaultPlan::none() == FaultPlan::default());
    }

    #[test]
    #[should_panic(expected = "before any crash")]
    fn recover_at_without_a_crash_panics() {
        let _ = FaultPlan::none().recover_at(10);
    }

    #[test]
    fn windowed_partitions_only_sever_inside_the_window() {
        let p = Partition::window([0usize].into_iter().collect(), 4, 9);
        assert!(!p.severs(0, 1, 3), "before the cut");
        assert!(p.severs(0, 1, 4));
        assert!(p.severs(1, 0, 8));
        assert!(!p.severs(0, 1, 9), "healed at heal_at");
        assert_eq!(p.duration(), 5);
        // degenerate window never severs
        let empty = Partition::window([0usize].into_iter().collect(), 9, 4);
        assert!(!empty.severs(0, 1, 6));
        assert_eq!(empty.duration(), 0);
    }
}
