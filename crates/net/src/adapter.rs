//! Running unchanged round-based [`Process`] implementations on the
//! event-driven runtime.
//!
//! A [`RoundAdapter`] drives its inner process with a timer every
//! [`NetConfig::round_ticks`] virtual ticks: whatever messages arrived
//! since the previous boundary form the round's inbox (stably sorted by
//! sender, like [`SyncNetwork`]), and the round's output messages are
//! handed to the network, which applies latency, scheduling and faults.
//!
//! Under [`NetConfig::lockstep`] (zero latency, FIFO, no faults) this is
//! **bit-identical** to running the same processes on [`SyncNetwork`]:
//! every message sent at boundary `r` is delivered within tick `r` and
//! consumed at boundary `r + 1`, timers fire in process-id order, and
//! inboxes end up in the same sender-sorted order. The property tests in
//! `tests/tests/net_runtime.rs` assert this for OM and phase king across
//! generated `(n, t, seed)` grids; the `net_engine` bench asserts it again
//! before timing anything.
//!
//! With nonzero latency the same protocols become *timing-stressed*: a
//! message that takes longer than a round simply lands in a later round's
//! inbox, which is how the async experiments measure synchronous-protocol
//! degradation under asynchrony.
//!
//! # Examples
//!
//! A round-based [`Process`] runs unchanged on both runtimes, and under
//! [`NetConfig::lockstep`] the outcomes coincide exactly:
//!
//! ```
//! use bne_byzantine::{ProcId, Process};
//! use bne_net::{run_round_protocol, run_sync_protocol, NetConfig};
//!
//! /// Every process broadcasts its id in round 0 and decides the sum of
//! /// what it heard in round 1.
//! struct SumIds {
//!     id: ProcId,
//!     n: usize,
//!     sum: Option<u64>,
//! }
//!
//! impl Process for SumIds {
//!     type Msg = u64;
//!     fn init(&mut self, id: ProcId, n: usize) {
//!         self.id = id;
//!         self.n = n;
//!     }
//!     fn round(&mut self, round: usize, inbox: &[(ProcId, u64)]) -> Vec<(ProcId, u64)> {
//!         if round == 0 {
//!             (0..self.n).filter(|&d| d != self.id).map(|d| (d, self.id as u64)).collect()
//!         } else {
//!             self.sum = Some(inbox.iter().map(|(_, v)| v).sum());
//!             Vec::new()
//!         }
//!     }
//!     fn decision(&self) -> Option<u64> {
//!         self.sum
//!     }
//! }
//!
//! let make = || -> Vec<Box<dyn Process<Msg = u64>>> {
//!     (0..4).map(|_| Box::new(SumIds { id: 0, n: 0, sum: None }) as _).collect()
//! };
//! let (sync_decisions, sync_stats) = run_sync_protocol(make(), 2);
//! let async_out = run_round_protocol(make(), 2, NetConfig::lockstep(0));
//! assert_eq!(async_out.decisions, sync_decisions);
//! assert_eq!(async_out.round_stats(), sync_stats);
//! assert_eq!(async_out.decisions[0], Some(1 + 2 + 3));
//! ```

use crate::model::NetConfig;
use crate::runtime::{AsyncProcess, EventNet, NetCtx, NetStats};
use bne_byzantine::{ProcId, Process, RoundStats, SyncNetwork};

/// Adapts a round-based [`Process`] to the [`AsyncProcess`] interface.
pub struct RoundAdapter<M: Clone> {
    inner: Box<dyn Process<Msg = M>>,
    max_rounds: usize,
    round_ticks: u64,
    round: usize,
    inbox: Vec<(ProcId, M)>,
}

impl<M: Clone> RoundAdapter<M> {
    /// Wraps `inner`, which will execute exactly `max_rounds` rounds, one
    /// every `round_ticks` virtual ticks (use the same value as
    /// [`NetConfig::round_ticks`]).
    pub fn new(inner: Box<dyn Process<Msg = M>>, max_rounds: usize, round_ticks: u64) -> Self {
        RoundAdapter {
            inner,
            max_rounds,
            round_ticks,
            round: 0,
            inbox: Vec::new(),
        }
    }

    /// Rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.round
    }
}

impl<M: Clone> AsyncProcess for RoundAdapter<M> {
    type Msg = M;

    fn on_start(&mut self, ctx: &mut NetCtx<M>) {
        self.inner.init(ctx.id(), ctx.n());
        if self.max_rounds > 0 {
            // round 0 fires at time 0, after every process has started
            ctx.set_timer(0, 0);
        }
    }

    fn on_message(&mut self, src: ProcId, msg: M, _ctx: &mut NetCtx<M>) {
        // buffered until the next round boundary; messages arriving after
        // the final round are absorbed and ignored
        self.inbox.push((src, msg));
    }

    fn on_timer(&mut self, _timer: u64, ctx: &mut NetCtx<M>) {
        if self.round >= self.max_rounds {
            return;
        }
        // deterministic delivery order, matching SyncNetwork's per-round
        // sender sort (stable: ties keep arrival order); the buffer is
        // sorted and drained in place so its capacity survives the round
        self.inbox.sort_by_key(|(sender, _)| *sender);
        let out = self.inner.round(self.round, &self.inbox);
        self.inbox.clear();
        for (dst, msg) in out {
            ctx.send(dst, msg);
        }
        self.round += 1;
        if self.round < self.max_rounds {
            ctx.set_timer(self.round_ticks, 0);
        }
    }

    fn decision(&self) -> Option<u64> {
        self.inner.decision()
    }
}

/// The outcome of [`run_round_protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncRunOutcome {
    /// Decision of every process (in process-id order).
    pub decisions: Vec<Option<u64>>,
    /// Network-level statistics.
    pub stats: NetStats,
    /// Protocol rounds executed by every adapter.
    pub rounds: usize,
}

impl AsyncRunOutcome {
    /// The subset of statistics comparable with a [`SyncNetwork`] run.
    pub fn round_stats(&self) -> RoundStats {
        RoundStats {
            messages_sent: self.stats.messages_sent,
            rounds: self.rounds,
        }
    }
}

/// Runs a round-based protocol for exactly `rounds` rounds on the async
/// runtime under `cfg`, mirroring [`SyncNetwork::run`].
///
/// # Panics
///
/// Panics if the event queue fails to drain within a generous bound
/// (which would indicate a runaway process, not a scheduling artifact).
pub fn run_round_protocol<M: Clone + 'static>(
    processes: Vec<Box<dyn Process<Msg = M>>>,
    rounds: usize,
    cfg: NetConfig,
) -> AsyncRunOutcome {
    let round_ticks = cfg.round_ticks;
    let adapters: Vec<Box<dyn AsyncProcess<Msg = M>>> = processes
        .into_iter()
        .map(|p| Box::new(RoundAdapter::new(p, rounds, round_ticks)) as _)
        .collect();
    let mut net = EventNet::new(adapters, cfg);
    // round-based protocols always drain (timers stop at max_rounds);
    // the cap only guards against a runaway process
    const EVENT_CAP: usize = 100_000_000;
    let drained = net.run(EVENT_CAP);
    assert!(
        drained,
        "event queue did not drain within {EVENT_CAP} events"
    );
    AsyncRunOutcome {
        decisions: net.decisions(),
        stats: net.stats(),
        rounds,
    }
}

/// Runs the same processes on the lockstep [`SyncNetwork`] — the sync side
/// of the equality gate, returned in the same shape as
/// [`run_round_protocol`] for direct comparison.
pub fn run_sync_protocol<M: Clone>(
    processes: Vec<Box<dyn Process<Msg = M>>>,
    rounds: usize,
) -> (Vec<Option<u64>>, RoundStats) {
    let mut net = SyncNetwork::new(processes);
    net.run(rounds);
    (net.decisions(), net.stats())
}
