//! # bne-net
//!
//! A deterministic, seeded **discrete-event network runtime** — the
//! asynchronous execution layer under everything round-based in the
//! workspace.
//!
//! The paper's thesis is that solution concepts must survive the
//! realities of distributed computing, but the protocols in
//! `bne-byzantine` and `bne-mediator` previously ran only on the lockstep
//! [`bne_byzantine::SyncNetwork`]. This crate supplies the message-passing
//! model that dominates practice:
//!
//! * [`runtime`] — an event queue keyed by `(virtual time, tiebreak,
//!   sequence number)` driving [`runtime::AsyncProcess`]es, with a single
//!   seeded RNG stream per concern (links, scheduler) derived via
//!   [`bne_sim::derive_seed`]. The queue is a bucketed timing wheel over
//!   arena-allocated events (the original binary heap stays available
//!   behind [`model::QueueImpl`], differentially tested for bit-identical
//!   executions);
//! * [`model`] — pluggable [`model::LatencyModel`]s (constant,
//!   uniform-jitter, heavy-tail), [`model::SchedulerPolicy`]s (FIFO,
//!   seeded-random interleaving, adversarial rushing) and a unified
//!   builder-style [`model::FaultPlan`] combining [`model::LinkFaults`]
//!   (iid loss, partitions that heal at a fixed time) with
//!   [`model::ProcessFault`] crash-recovery plans (halt after `k`
//!   events, timed crash windows, durable-state recovery) enforced by
//!   the runtime for *any* protocol;
//! * [`adapter`] — a [`adapter::RoundAdapter`] running every existing
//!   round-based [`bne_byzantine::Process`] *unchanged* on the async
//!   runtime, **bit-identical** to `SyncNetwork` under the zero-latency
//!   FIFO configuration ([`model::NetConfig::lockstep`]);
//! * [`protocols`] — **event-driven** protocols running directly on the
//!   runtime with no round adapter: Bracha reliable broadcast
//!   ([`protocols::BrachaProcess`]), Ben-Or randomized consensus
//!   ([`protocols::BenOrProcess`]), single-decree Paxos
//!   ([`protocols::PaxosProcess`]) and leader-driven HSUC-style
//!   consensus ([`protocols::HsucProcess`]) — the latter two tolerate
//!   `f < n/2` crash-recovery faults via timeout-driven failover;
//! * [`retry`] — a [`retry::RetryAdapter`] wrapping any
//!   [`runtime::AsyncProcess`] with acknowledgement + retransmission
//!   (configurable backoff), turning message loss into latency;
//! * [`scenario`] — [`bne_sim::Scenario`] ports (async OM, phase king,
//!   Dolev–Strong, Bracha, Ben-Or, Paxos, HSUC) so agreement/validity
//!   rates sweep over latency × loss × scheduler × fault-plan × `f/n`
//!   grids through the parallel Monte Carlo engine (experiments
//!   e17–e22);
//! * [`cheap_talk`] — the mediator cheap-talk implementations re-hosted
//!   on the async runtime.
//!
//! The `net_engine` bench gates its timing runs on the
//! lockstep-equals-`SyncNetwork` assertion and records `BENCH_3.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod cheap_talk;
pub mod model;
pub mod obs;
pub mod protocols;
pub mod retry;
pub mod runtime;
pub mod scenario;

pub use adapter::{run_round_protocol, run_sync_protocol, AsyncRunOutcome, RoundAdapter};
pub use model::{
    CrashTrigger, FaultPlan, LatencyModel, LinkFaults, NetConfig, Partition, ProcessFault,
    QueueImpl, SchedulerPolicy,
};
pub use obs::{
    EventCounts, HistogramSpec, MetricsObserver, Observer, TimelineEntry, TimelineObserver,
};
#[allow(deprecated)]
pub use protocols::SilentAsyncProcess;
pub use protocols::{
    run_hsuc, run_paxos, BenOrNoiseProcess, BenOrProcess, BrachaProcess, HsucProcess, PaxosProcess,
};
pub use retry::{RetryAdapter, RetryMsg, RetryPolicy};
pub use runtime::{
    AsyncProcess, DurableState, EnabledEvent, EnabledKind, EventNet, IdleProcess, NetCtx,
    NetSnapshot, NetStats, TraceEvent, TraceFields, TraceKind,
};
pub use scenario::{
    quorum_consensus_grid, AsyncBrachaScenario, AsyncBroadcastScenario, AsyncOmScenario,
    AsyncPhaseKingScenario, BenOrScenario, ConsensusStats, CrashRegime, HsucScenario, NetProfile,
    PaxosScenario, QuorumConsensusCell, RbStats, SchedulerSpec,
};
