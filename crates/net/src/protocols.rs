//! Event-driven protocols running **directly** on [`EventNet`] — no
//! round adapter, no global clock.
//!
//! These are thin [`AsyncProcess`] shells over the runtime-agnostic state
//! machines in `bne-byzantine`: every message the machine wants out is
//! multicast to all `n` processes (their own copy loops back through the
//! network like anyone else's, so quorums count uniformly). Because
//! progress is driven purely by arrivals, the protocols' running time is
//! whatever the latency model and scheduler make it — the random variable
//! experiments e20/e21 measure.
//!
//! * [`BrachaProcess`] — Bracha reliable broadcast
//!   ([`bne_byzantine::bracha`]);
//! * [`BenOrProcess`] — Ben-Or randomized consensus
//!   ([`bne_byzantine::ben_or`]), with a per-process seeded coin and a
//!   round probe for measuring rounds-to-decide;
//! * [`SilentAsyncProcess`] — a crashed-from-the-start participant for
//!   any message type;
//! * [`BenOrNoiseProcess`] — a Byzantine participant injecting seeded
//!   random reports and proposals for every round it observes.

use crate::runtime::{AsyncProcess, EventNet, NetCtx};
use bne_byzantine::ben_or::{BenOrMsg, BenOrState};
use bne_byzantine::bracha::{BrachaMsg, BrachaState};
use bne_byzantine::{ProcId, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::rc::Rc;

/// Bracha reliable broadcast as an [`AsyncProcess`].
///
/// Process `broadcaster` multicasts `Init(input)` at start; everyone else
/// reacts to arrivals only. [`AsyncProcess::decision`] is the delivered
/// value, so [`EventNet::decision_times`] reports per-process delivery
/// latency.
pub struct BrachaProcess {
    t: usize,
    broadcaster: ProcId,
    input: Value,
    state: Option<BrachaState>,
}

impl BrachaProcess {
    /// A participant with fault budget `t`; `input` is used only by the
    /// process whose id equals `broadcaster`.
    pub fn new(t: usize, broadcaster: ProcId, input: Value) -> Self {
        BrachaProcess {
            t,
            broadcaster,
            input,
            state: None,
        }
    }
}

impl AsyncProcess for BrachaProcess {
    type Msg = BrachaMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<BrachaMsg>) {
        let mut state = BrachaState::new(ctx.id(), ctx.n(), self.t, self.broadcaster);
        for m in state.start(self.input) {
            ctx.multicast(0..ctx.n(), m);
        }
        self.state = Some(state);
    }

    fn on_message(&mut self, src: ProcId, msg: BrachaMsg, ctx: &mut NetCtx<BrachaMsg>) {
        let state = self.state.as_mut().expect("on_start ran");
        for m in state.handle(src, &msg) {
            ctx.multicast(0..ctx.n(), m);
        }
    }

    fn on_timer(&mut self, _timer: u64, _ctx: &mut NetCtx<BrachaMsg>) {}

    fn decision(&self) -> Option<u64> {
        self.state.as_ref().and_then(|s| s.delivered())
    }
}

/// Ben-Or randomized binary consensus as an [`AsyncProcess`].
///
/// The coin seed must be derived per process (e.g.
/// `bne_sim::derive_seed(replica_seed, COIN_STREAM, id)`) so no two
/// processes share a coin stream. An optional round probe
/// ([`BenOrProcess::with_round_probe`]) exposes the decision round to the
/// scenario without downcasting.
pub struct BenOrProcess {
    t: usize,
    pref: Value,
    max_rounds: u32,
    coin_seed: u64,
    state: Option<BenOrState>,
    round_probe: Option<Rc<Cell<Option<u32>>>>,
}

impl BenOrProcess {
    /// A participant with fault budget `t`, initial preference `pref`,
    /// round cap `max_rounds` and private coin seed `coin_seed`.
    pub fn new(t: usize, pref: Value, max_rounds: u32, coin_seed: u64) -> Self {
        BenOrProcess {
            t,
            pref,
            max_rounds,
            coin_seed,
            state: None,
            round_probe: None,
        }
    }

    /// Attaches a probe cell that is set to the decision round the moment
    /// the process decides (scenarios read it after the run; replicas are
    /// single-threaded, so a shared `Rc<Cell<…>>` is safe).
    pub fn with_round_probe(mut self, probe: Rc<Cell<Option<u32>>>) -> Self {
        self.round_probe = Some(probe);
        self
    }

    fn flush(&mut self, out: Vec<BenOrMsg>, ctx: &mut NetCtx<BenOrMsg>) {
        for m in out {
            ctx.multicast(0..ctx.n(), m);
        }
        if let (Some(probe), Some(state)) = (&self.round_probe, &self.state) {
            if probe.get().is_none() {
                probe.set(state.decided_round());
            }
        }
    }
}

impl AsyncProcess for BenOrProcess {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<BenOrMsg>) {
        let mut state = BenOrState::new(
            ctx.id(),
            ctx.n(),
            self.t,
            self.pref,
            self.max_rounds,
            self.coin_seed,
        );
        let out = state.start();
        self.state = Some(state);
        self.flush(out, ctx);
    }

    fn on_message(&mut self, src: ProcId, msg: BenOrMsg, ctx: &mut NetCtx<BenOrMsg>) {
        let state = self.state.as_mut().expect("on_start ran");
        if state.halted() {
            return; // decided (or gave up): no further traffic
        }
        let out = state.handle(src, &msg);
        self.flush(out, ctx);
    }

    fn on_timer(&mut self, _timer: u64, _ctx: &mut NetCtx<BenOrMsg>) {}

    fn decision(&self) -> Option<u64> {
        self.state.as_ref().and_then(|s| s.decided())
    }
}

/// A crashed-from-the-start participant: never sends, never decides.
/// Generic over the message type, so it drops into any protocol (wrapped
/// or not).
pub struct SilentAsyncProcess<M: Clone> {
    _marker: PhantomData<M>,
}

impl<M: Clone> SilentAsyncProcess<M> {
    /// A new silent process.
    pub fn new() -> Self {
        SilentAsyncProcess {
            _marker: PhantomData,
        }
    }
}

impl<M: Clone> Default for SilentAsyncProcess<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone> AsyncProcess for SilentAsyncProcess<M> {
    type Msg = M;
    fn on_start(&mut self, _ctx: &mut NetCtx<M>) {}
    fn on_message(&mut self, _src: ProcId, _msg: M, _ctx: &mut NetCtx<M>) {}
    fn on_timer(&mut self, _timer: u64, _ctx: &mut NetCtx<M>) {}
    fn decision(&self) -> Option<u64> {
        None
    }
}

/// A Byzantine Ben-Or participant: the first time it sees traffic for a
/// round, it multicasts a seeded-random report **and** proposal for that
/// round (valid-looking votes with adversarial content — the strongest
/// canned noise the quorum tallies will accept). It never decides and
/// never halts, but sends at most two multicasts per observed round, so
/// executions stay bounded.
pub struct BenOrNoiseProcess {
    seed: u64,
    rng: Option<StdRng>,
    rounds_hit: BTreeSet<u32>,
}

impl BenOrNoiseProcess {
    /// A noise adversary with its own seed (derive it per process and per
    /// replica via `bne_sim::derive_seed`).
    pub fn new(seed: u64) -> Self {
        BenOrNoiseProcess {
            seed,
            rng: None,
            rounds_hit: BTreeSet::new(),
        }
    }
}

impl AsyncProcess for BenOrNoiseProcess {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<BenOrMsg>) {
        // separate the stream per process id so colocated adversaries
        // sharing a base seed do not mirror each other
        self.rng = Some(StdRng::seed_from_u64(bne_sim::derive_seed(
            self.seed,
            ctx.id() as u64,
            0,
        )));
    }

    fn on_message(&mut self, _src: ProcId, msg: BenOrMsg, ctx: &mut NetCtx<BenOrMsg>) {
        let round = match msg {
            BenOrMsg::Report { round, .. } | BenOrMsg::Proposal { round, .. } => round,
            BenOrMsg::Decided { .. } => return,
        };
        if !self.rounds_hit.insert(round) {
            return;
        }
        let rng = self.rng.as_mut().expect("on_start ran");
        let report = rng.random_range(0..2u64);
        let proposal = if rng.random_bool(0.5) {
            Some(rng.random_range(0..2u64))
        } else {
            None
        };
        ctx.multicast(
            0..ctx.n(),
            BenOrMsg::Report {
                round,
                value: report,
            },
        );
        ctx.multicast(
            0..ctx.n(),
            BenOrMsg::Proposal {
                round,
                value: proposal,
            },
        );
    }

    fn on_timer(&mut self, _timer: u64, _ctx: &mut NetCtx<BenOrMsg>) {}

    fn decision(&self) -> Option<u64> {
        None
    }
}

/// Convenience: runs a full honest Bracha broadcast (process 0
/// broadcasting `input`) on `cfg`, returning the drained network.
///
/// # Panics
///
/// Panics if the event queue fails to drain within `max_events` — a
/// truncated execution would silently masquerade as a protocol-property
/// violation downstream.
pub fn run_bracha(
    n: usize,
    t: usize,
    input: Value,
    cfg: crate::model::NetConfig,
    max_events: usize,
) -> EventNet<BrachaMsg> {
    let procs: Vec<Box<dyn AsyncProcess<Msg = BrachaMsg>>> = (0..n)
        .map(|_| Box::new(BrachaProcess::new(t, 0, input)) as _)
        .collect();
    let mut net = EventNet::new(procs, cfg);
    assert!(
        net.run(max_events),
        "bracha event queue did not drain within {max_events} events"
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LatencyModel, LinkFaults, NetConfig, SchedulerPolicy};

    #[test]
    fn bracha_delivers_everywhere_on_a_clean_network() {
        let net = run_bracha(7, 2, 1, NetConfig::lockstep(3), 100_000);
        assert_eq!(net.decisions(), vec![Some(1); 7]);
        // zero latency: everything happens at virtual time 0
        assert!(net.decision_times().iter().all(|t| *t == Some(0)));
    }

    #[test]
    fn bracha_latency_is_the_echo_ready_pipeline_depth() {
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        };
        let net = run_bracha(4, 1, 1, cfg, 100_000);
        assert_eq!(net.decisions(), vec![Some(1); 4]);
        // init (1 tick) → echo (1) → ready (1): deliveries at tick 3
        assert!(net.decision_times().iter().all(|t| *t == Some(3)));
    }

    #[test]
    fn ben_or_unanimous_lockstep_decides_in_round_one() {
        let probes: Vec<Rc<Cell<Option<u32>>>> = (0..5).map(|_| Rc::new(Cell::new(None))).collect();
        let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = (0..5)
            .map(|i| {
                Box::new(
                    BenOrProcess::new(1, 1, 30, 100 + i as u64)
                        .with_round_probe(Rc::clone(&probes[i])),
                ) as _
            })
            .collect();
        let mut net = EventNet::new(procs, NetConfig::lockstep(0));
        assert!(net.run(1_000_000));
        assert_eq!(net.decisions(), vec![Some(1); 5]);
        assert!(probes.iter().all(|p| p.get() == Some(1)));
    }

    #[test]
    fn ben_or_mixed_starts_agree_under_random_scheduling() {
        let cfg = NetConfig {
            latency: LatencyModel::UniformJitter { min: 0, max: 3 },
            scheduler: SchedulerPolicy::RandomInterleave { seed: 5, jitter: 2 },
            ..NetConfig::lockstep(11)
        };
        let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = (0..6)
            .map(|i| Box::new(BenOrProcess::new(1, (i % 2) as u64, 60, 200 + i as u64)) as _)
            .collect();
        let mut net = EventNet::new(procs, cfg);
        assert!(net.run(5_000_000));
        let decisions = net.decisions();
        let first = decisions[0].expect("decides");
        assert!(decisions.iter().all(|d| *d == Some(first)), "{decisions:?}");
    }

    #[test]
    fn ben_or_tolerates_silent_and_noisy_faults() {
        for noisy in [false, true] {
            // n = 11, t = 2: quorums survive two non-participating or
            // actively noisy processes
            let n = 11;
            let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = (0..n)
                .map(|i| -> Box<dyn AsyncProcess<Msg = BenOrMsg>> {
                    if i >= n - 2 {
                        if noisy {
                            Box::new(BenOrNoiseProcess::new(900 + i as u64))
                        } else {
                            Box::new(SilentAsyncProcess::new())
                        }
                    } else {
                        Box::new(BenOrProcess::new(2, (i % 2) as u64, 80, 300 + i as u64))
                    }
                })
                .collect();
            let mut net = EventNet::new(procs, NetConfig::lockstep(17));
            assert!(net.run(10_000_000));
            let honest: Vec<Option<u64>> = net.decisions()[..n - 2].to_vec();
            let first = honest[0].expect("decides despite faults");
            assert!(honest.iter().all(|d| *d == Some(first)), "noisy={noisy}");
        }
    }

    #[test]
    fn bracha_runs_are_seed_deterministic() {
        let cfg = NetConfig {
            latency: LatencyModel::UniformJitter { min: 0, max: 4 },
            scheduler: SchedulerPolicy::RandomInterleave { seed: 2, jitter: 3 },
            faults: LinkFaults::lossy(0.2),
            ..NetConfig::lockstep(9)
        }
        .with_trace();
        let a = run_bracha(6, 1, 1, cfg.clone(), 100_000);
        let b = run_bracha(6, 1, 1, cfg, 100_000);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.decision_times(), b.decision_times());
    }
}
