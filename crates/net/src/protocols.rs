//! Event-driven protocols running **directly** on [`EventNet`] — no
//! round adapter, no global clock.
//!
//! These are thin [`AsyncProcess`] shells over the runtime-agnostic state
//! machines in `bne-byzantine`: every message the machine wants out is
//! multicast to all `n` processes (their own copy loops back through the
//! network like anyone else's, so quorums count uniformly). Because
//! progress is driven purely by arrivals, the protocols' running time is
//! whatever the latency model and scheduler make it — the random variable
//! experiments e20/e21 measure.
//!
//! * [`BrachaProcess`] — Bracha reliable broadcast
//!   ([`bne_byzantine::bracha`]);
//! * [`BenOrProcess`] — Ben-Or randomized consensus
//!   ([`bne_byzantine::ben_or`]), with a per-process seeded coin and a
//!   round probe for measuring rounds-to-decide;
//! * [`PaxosProcess`] — single-decree Paxos ([`bne_byzantine::paxos`]),
//!   with timeout-driven ballot escalation for leader failover and a
//!   durable acceptor snapshot for crash-recovery plans;
//! * [`HsucProcess`] — leader-driven rotating-coordinator consensus
//!   ([`bne_byzantine::hsuc`]), timeout-driven round advancement;
//! * [`BenOrNoiseProcess`] — a Byzantine participant injecting seeded
//!   random reports and proposals for every round it observes.
//!
//! The crashed-from-the-start participant that used to live here
//! ([`SilentAsyncProcess`]) is superseded by the runtime's fault plans:
//! `FaultPlan::crash_at_start(proc)` halts *any* process — no wrapper
//! type needed. A deprecated alias to [`crate::runtime::IdleProcess`]
//! remains for one release.

use crate::runtime::{AsyncProcess, DurableState, EventNet, NetCtx};
use bne_byzantine::ben_or::{BenOrMsg, BenOrState};
use bne_byzantine::bracha::{BrachaMsg, BrachaState};
use bne_byzantine::choice::SharedTap;
use bne_byzantine::hsuc::{HsucMsg, HsucState};
use bne_byzantine::paxos::{PaxosMsg, PaxosState};
use bne_byzantine::{ProcId, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Bracha reliable broadcast as an [`AsyncProcess`].
///
/// Process `broadcaster` multicasts `Init(input)` at start; everyone else
/// reacts to arrivals only. [`AsyncProcess::decision`] is the delivered
/// value, so [`EventNet::decision_times`] reports per-process delivery
/// latency.
pub struct BrachaProcess {
    t: usize,
    broadcaster: ProcId,
    input: Value,
    state: Option<BrachaState>,
    /// Quorum overrides `(amp, deliver)` forwarded to
    /// [`BrachaState::with_thresholds`] — the model checker's planted-bug
    /// hook. `None` = the real protocol.
    thresholds: Option<(usize, usize)>,
}

impl BrachaProcess {
    /// A participant with fault budget `t`; `input` is used only by the
    /// process whose id equals `broadcaster`.
    pub fn new(t: usize, broadcaster: ProcId, input: Value) -> Self {
        BrachaProcess {
            t,
            broadcaster,
            input,
            state: None,
            thresholds: None,
        }
    }

    /// Overrides the ready-amplification / delivery quorums (see
    /// [`BrachaState::with_thresholds`]): the mutation hook `bne-mc`
    /// self-tests use to plant quorum bugs the checker must catch.
    pub fn with_thresholds(mut self, amp_quorum: usize, deliver_quorum: usize) -> Self {
        self.thresholds = Some((amp_quorum, deliver_quorum));
        self
    }
}

impl AsyncProcess for BrachaProcess {
    type Msg = BrachaMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<BrachaMsg>) {
        let mut state = BrachaState::new(ctx.id(), ctx.n(), self.t, self.broadcaster);
        if let Some((amp, deliver)) = self.thresholds {
            state = state.with_thresholds(amp, deliver);
        }
        for m in state.start(self.input) {
            ctx.multicast(0..ctx.n(), m);
        }
        self.state = Some(state);
    }

    fn on_message(&mut self, src: ProcId, msg: BrachaMsg, ctx: &mut NetCtx<BrachaMsg>) {
        let state = self.state.as_mut().expect("on_start ran");
        for m in state.handle(src, &msg) {
            ctx.multicast(0..ctx.n(), m);
        }
    }

    fn quiescent(&self) -> bool {
        self.state.as_ref().is_some_and(BrachaState::is_quiescent)
    }

    fn absorbs(&self, src: ProcId, msg: &BrachaMsg) -> bool {
        self.state.as_ref().is_some_and(|s| s.absorbs(src, msg))
    }

    fn save_durable(&self) -> Option<DurableState> {
        self.state
            .as_ref()
            .map(|s| DurableState::from(s.durable_words()))
    }

    fn restore_durable(&mut self, state: &DurableState) {
        if let Some(s) = self.state.as_mut() {
            s.restore_durable(state.words());
        }
    }

    fn decision(&self) -> Option<u64> {
        self.state.as_ref().and_then(|s| s.delivered())
    }

    fn fork(&self) -> Option<Box<dyn AsyncProcess<Msg = BrachaMsg>>> {
        Some(Box::new(BrachaProcess {
            t: self.t,
            broadcaster: self.broadcaster,
            input: self.input,
            state: self.state.clone(),
            thresholds: self.thresholds,
        }))
    }

    fn state_words(&self) -> Option<Vec<u64>> {
        let mut out = vec![u64::from(self.state.is_some())];
        if let Some(state) = &self.state {
            state.state_words(&mut out);
        }
        Some(out)
    }
}

/// Ben-Or randomized binary consensus as an [`AsyncProcess`].
///
/// The coin seed must be derived per process (e.g.
/// `bne_sim::derive_seed(replica_seed, COIN_STREAM, id)`) so no two
/// processes share a coin stream. An optional round probe
/// ([`BenOrProcess::with_round_probe`]) exposes the decision round to the
/// scenario without downcasting.
pub struct BenOrProcess {
    t: usize,
    pref: Value,
    max_rounds: u32,
    coin_seed: u64,
    state: Option<BenOrState>,
    round_probe: Option<Rc<Cell<Option<u32>>>>,
    coin_tap: Option<SharedTap>,
}

impl BenOrProcess {
    /// A participant with fault budget `t`, initial preference `pref`,
    /// round cap `max_rounds` and private coin seed `coin_seed`.
    pub fn new(t: usize, pref: Value, max_rounds: u32, coin_seed: u64) -> Self {
        BenOrProcess {
            t,
            pref,
            max_rounds,
            coin_seed,
            state: None,
            round_probe: None,
            coin_tap: None,
        }
    }

    /// Routes coin flips through a shared [`ChoiceTap`] instead of the
    /// seeded RNG (see [`BenOrState::with_coin_tap`]): the hook `bne-mc`
    /// uses to enumerate coin outcomes. Tapped processes have canonical
    /// [`AsyncProcess::state_words`], so the checker can deduplicate
    /// states; untapped ones do not (an RNG has no canonical encoding).
    ///
    /// [`ChoiceTap`]: bne_byzantine::choice::ChoiceTap
    pub fn with_coin_tap(mut self, tap: SharedTap) -> Self {
        self.coin_tap = Some(tap);
        self
    }

    /// Attaches a probe cell that is set to the decision round the moment
    /// the process decides (scenarios read it after the run; replicas are
    /// single-threaded, so a shared `Rc<Cell<…>>` is safe).
    pub fn with_round_probe(mut self, probe: Rc<Cell<Option<u32>>>) -> Self {
        self.round_probe = Some(probe);
        self
    }

    fn flush(&mut self, out: Vec<BenOrMsg>, ctx: &mut NetCtx<BenOrMsg>) {
        for m in out {
            ctx.multicast(0..ctx.n(), m);
        }
        if let (Some(probe), Some(state)) = (&self.round_probe, &self.state) {
            if probe.get().is_none() {
                probe.set(state.decided_round());
            }
        }
    }
}

impl AsyncProcess for BenOrProcess {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<BenOrMsg>) {
        let mut state = BenOrState::new(
            ctx.id(),
            ctx.n(),
            self.t,
            self.pref,
            self.max_rounds,
            self.coin_seed,
        );
        if let Some(tap) = &self.coin_tap {
            state = state.with_coin_tap(Rc::clone(tap));
        }
        let out = state.start();
        self.state = Some(state);
        self.flush(out, ctx);
    }

    fn on_message(&mut self, src: ProcId, msg: BenOrMsg, ctx: &mut NetCtx<BenOrMsg>) {
        let state = self.state.as_mut().expect("on_start ran");
        if state.halted() {
            return; // decided (or gave up): no further traffic
        }
        let out = state.handle(src, &msg);
        self.flush(out, ctx);
    }

    fn decision(&self) -> Option<u64> {
        self.state.as_ref().and_then(|s| s.decided())
    }

    fn fork(&self) -> Option<Box<dyn AsyncProcess<Msg = BenOrMsg>>> {
        // the probe and tap are Rc-shared, not duplicated: probes are a
        // measurement channel the checker does not read, and the tap is
        // search state the checker saves/restores itself
        Some(Box::new(BenOrProcess {
            t: self.t,
            pref: self.pref,
            max_rounds: self.max_rounds,
            coin_seed: self.coin_seed,
            state: self.state.clone(),
            round_probe: self.round_probe.as_ref().map(Rc::clone),
            coin_tap: self.coin_tap.as_ref().map(Rc::clone),
        }))
    }

    fn state_words(&self) -> Option<Vec<u64>> {
        match &self.state {
            None => Some(vec![0]),
            Some(state) => state.state_words().map(|words| {
                let mut out = vec![1];
                out.extend(words);
                out
            }),
        }
    }

    fn quiescent(&self) -> bool {
        self.state.as_ref().is_some_and(BenOrState::is_quiescent)
    }

    fn absorbs(&self, src: ProcId, msg: &BenOrMsg) -> bool {
        self.state.as_ref().is_some_and(|s| s.absorbs(src, msg))
    }
}

/// Deprecated name for [`crate::runtime::IdleProcess`]: crash injection
/// is the runtime's job now — put `FaultPlan::crash_at_start(proc)` in
/// [`crate::model::NetConfig::fault_plan`] and keep the real process.
#[deprecated(
    since = "0.7.0",
    note = "use FaultPlan::crash_at_start on NetConfig (or IdleProcess for a genuinely inert slot)"
)]
pub type SilentAsyncProcess<M> = crate::runtime::IdleProcess<M>;

/// Single-decree Paxos as an [`AsyncProcess`].
///
/// Process 0 opens ballot 1 at start; every process arms a retry timer
/// and, if still undecided when it fires, escalates to a fresh own
/// ballot ([`PaxosState::on_timeout`]) — that timeout path is the leader
/// failover mechanism the crash plans of `e22` exercise. Timers are
/// staggered by process id so concurrent escalations do not duel
/// forever under symmetric schedules.
///
/// The acceptor state (promise + accepted ballot/value) is durable
/// across planned crashes; the in-flight proposal, quorum tallies and
/// even the learned decision are volatile and are re-learned through a
/// fresh ballot after recovery ([`AsyncProcess::on_recover`] re-arms the
/// timer, since pending timers are absorbed while crashed).
pub struct PaxosProcess {
    input: Value,
    timeout_ticks: u64,
    max_timeouts: u32,
    timeouts: u32,
    state: Option<PaxosState>,
    ballot_probe: Option<Rc<Cell<Option<u64>>>>,
}

impl PaxosProcess {
    /// A participant proposing `input` when free to choose. The retry
    /// timer fires every `timeout_ticks` (staggered by id) at most
    /// `max_timeouts` times, bounding ballot escalation so executions
    /// always drain.
    pub fn new(input: Value, timeout_ticks: u64, max_timeouts: u32) -> Self {
        PaxosProcess {
            input,
            timeout_ticks,
            max_timeouts,
            timeouts: 0,
            state: None,
            ballot_probe: None,
        }
    }

    /// Attaches a probe cell set to the deciding ballot the moment this
    /// process decides (scenarios read it after the run).
    pub fn with_ballot_probe(mut self, probe: Rc<Cell<Option<u64>>>) -> Self {
        self.ballot_probe = Some(probe);
        self
    }

    fn arm(&self, ctx: &mut NetCtx<PaxosMsg>) {
        ctx.set_timer(self.timeout_ticks + ctx.id() as u64, 0);
    }

    fn flush(&mut self, out: Vec<PaxosMsg>, ctx: &mut NetCtx<PaxosMsg>) {
        for m in out {
            ctx.multicast(0..ctx.n(), m);
        }
        if let (Some(probe), Some(state)) = (&self.ballot_probe, &self.state) {
            if probe.get().is_none() {
                probe.set(state.decided_ballot());
            }
        }
    }

    fn decided(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.decided().is_some())
    }
}

impl AsyncProcess for PaxosProcess {
    type Msg = PaxosMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<PaxosMsg>) {
        let mut state = PaxosState::new(ctx.id(), ctx.n(), self.input);
        let out = state.start();
        self.state = Some(state);
        self.flush(out, ctx);
        self.arm(ctx);
    }

    fn on_message(&mut self, src: ProcId, msg: PaxosMsg, ctx: &mut NetCtx<PaxosMsg>) {
        let state = self.state.as_mut().expect("on_start ran");
        let out = state.handle(src, &msg);
        self.flush(out, ctx);
    }

    fn on_timer(&mut self, _timer: u64, ctx: &mut NetCtx<PaxosMsg>) {
        if self.decided() || self.timeouts >= self.max_timeouts {
            return; // stop re-arming: let the execution drain
        }
        self.timeouts += 1;
        let out = self.state.as_mut().expect("on_start ran").on_timeout();
        self.flush(out, ctx);
        self.arm(ctx);
    }

    fn on_recover(&mut self, ctx: &mut NetCtx<PaxosMsg>) {
        // pending timers were absorbed while crashed: re-arm, so the
        // next timeout runs a recovery ballot and re-learns the value
        self.arm(ctx);
    }

    fn save_durable(&self) -> Option<DurableState> {
        self.state
            .as_ref()
            .map(|s| DurableState::from(s.durable_words()))
    }

    fn restore_durable(&mut self, state: &DurableState) {
        if let Some(s) = self.state.as_mut() {
            s.restore_durable(state.words());
        }
    }

    fn decision(&self) -> Option<u64> {
        self.state.as_ref().and_then(|s| s.decided())
    }

    // no `quiescent` override: even a decided acceptor keeps answering
    // phase messages and re-broadcasting `Decided`, so no Paxos process
    // is ever permanently silent while peers may still ask.
    fn timer_absorbed(&self, _timer: u64) -> bool {
        // mirrors the `on_timer` early return: once decided or out of
        // retry budget a firing neither acts nor re-arms, and (under
        // crash-stop faults) both conditions are permanent
        self.decided() || self.timeouts >= self.max_timeouts
    }

    fn absorbs(&self, src: ProcId, msg: &PaxosMsg) -> bool {
        // sound here because the checker's faults are crash-stop
        // (injected crashes never recover), so `PaxosState::absorbs`'s
        // no-recovery caveat holds
        self.state.as_ref().is_some_and(|s| s.absorbs(src, msg))
    }

    fn fork(&self) -> Option<Box<dyn AsyncProcess<Msg = PaxosMsg>>> {
        Some(Box::new(PaxosProcess {
            input: self.input,
            timeout_ticks: self.timeout_ticks,
            max_timeouts: self.max_timeouts,
            timeouts: self.timeouts,
            state: self.state.clone(),
            ballot_probe: self.ballot_probe.as_ref().map(Rc::clone),
        }))
    }

    fn state_words(&self) -> Option<Vec<u64>> {
        // the timeout counter bounds future escalations, so it is part
        // of the reachable-behavior state
        let mut out = vec![u64::from(self.state.is_some()), u64::from(self.timeouts)];
        if let Some(state) = &self.state {
            state.state_words(&mut out);
        }
        Some(out)
    }
}

/// Leader-driven (HSUC-style) consensus as an [`AsyncProcess`].
///
/// Everyone enters round 1 at start (led by process 0); an undecided
/// process whose retry timer fires advances one round, rotating the
/// coordinator ([`HsucState::on_timeout`]). Round entry is contagious
/// through higher-round messages, so one impatient process pulls the
/// whole network forward — the failover path the crash plans exercise.
///
/// The locked estimate pair and round counter are durable across
/// planned crashes; tallies and the decision are volatile (a recovered
/// process re-learns from decided peers' `Decide` rebroadcasts).
pub struct HsucProcess {
    input: Value,
    timeout_ticks: u64,
    max_timeouts: u32,
    timeouts: u32,
    state: Option<HsucState>,
    round_probe: Option<Rc<Cell<Option<u64>>>>,
}

impl HsucProcess {
    /// A participant with initial estimate `input`; the retry timer
    /// fires every `timeout_ticks` (staggered by id) at most
    /// `max_timeouts` times.
    pub fn new(input: Value, timeout_ticks: u64, max_timeouts: u32) -> Self {
        HsucProcess {
            input,
            timeout_ticks,
            max_timeouts,
            timeouts: 0,
            state: None,
            round_probe: None,
        }
    }

    /// Attaches a probe cell set to the deciding round the moment this
    /// process decides.
    pub fn with_round_probe(mut self, probe: Rc<Cell<Option<u64>>>) -> Self {
        self.round_probe = Some(probe);
        self
    }

    fn arm(&self, ctx: &mut NetCtx<HsucMsg>) {
        ctx.set_timer(self.timeout_ticks + ctx.id() as u64, 0);
    }

    fn flush(&mut self, out: Vec<HsucMsg>, ctx: &mut NetCtx<HsucMsg>) {
        for m in out {
            ctx.multicast(0..ctx.n(), m);
        }
        if let (Some(probe), Some(state)) = (&self.round_probe, &self.state) {
            if probe.get().is_none() {
                probe.set(state.decided_round());
            }
        }
    }

    fn decided(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.decided().is_some())
    }
}

impl AsyncProcess for HsucProcess {
    type Msg = HsucMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<HsucMsg>) {
        let mut state = HsucState::new(ctx.id(), ctx.n(), self.input);
        let out = state.start();
        self.state = Some(state);
        self.flush(out, ctx);
        self.arm(ctx);
    }

    fn on_message(&mut self, src: ProcId, msg: HsucMsg, ctx: &mut NetCtx<HsucMsg>) {
        let state = self.state.as_mut().expect("on_start ran");
        let out = state.handle(src, &msg);
        self.flush(out, ctx);
    }

    fn on_timer(&mut self, _timer: u64, ctx: &mut NetCtx<HsucMsg>) {
        if self.decided() || self.timeouts >= self.max_timeouts {
            return;
        }
        self.timeouts += 1;
        let out = self.state.as_mut().expect("on_start ran").on_timeout();
        self.flush(out, ctx);
        self.arm(ctx);
    }

    fn on_recover(&mut self, ctx: &mut NetCtx<HsucMsg>) {
        self.arm(ctx);
    }

    fn save_durable(&self) -> Option<DurableState> {
        self.state
            .as_ref()
            .map(|s| DurableState::from(s.durable_words()))
    }

    fn restore_durable(&mut self, state: &DurableState) {
        if let Some(s) = self.state.as_mut() {
            s.restore_durable(state.words());
        }
    }

    fn decision(&self) -> Option<u64> {
        self.state.as_ref().and_then(|s| s.decided())
    }
}

/// A Byzantine Ben-Or participant: the first time it sees traffic for a
/// round, it multicasts a seeded-random report **and** proposal for that
/// round (valid-looking votes with adversarial content — the strongest
/// canned noise the quorum tallies will accept). It never decides and
/// never halts, but sends at most two multicasts per observed round, so
/// executions stay bounded.
pub struct BenOrNoiseProcess {
    seed: u64,
    rng: Option<StdRng>,
    rounds_hit: BTreeSet<u32>,
}

impl BenOrNoiseProcess {
    /// A noise adversary with its own seed (derive it per process and per
    /// replica via `bne_sim::derive_seed`).
    pub fn new(seed: u64) -> Self {
        BenOrNoiseProcess {
            seed,
            rng: None,
            rounds_hit: BTreeSet::new(),
        }
    }
}

impl AsyncProcess for BenOrNoiseProcess {
    type Msg = BenOrMsg;

    fn on_start(&mut self, ctx: &mut NetCtx<BenOrMsg>) {
        // separate the stream per process id so colocated adversaries
        // sharing a base seed do not mirror each other
        self.rng = Some(StdRng::seed_from_u64(bne_sim::derive_seed(
            self.seed,
            ctx.id() as u64,
            0,
        )));
    }

    fn on_message(&mut self, _src: ProcId, msg: BenOrMsg, ctx: &mut NetCtx<BenOrMsg>) {
        let round = match msg {
            BenOrMsg::Report { round, .. } | BenOrMsg::Proposal { round, .. } => round,
            BenOrMsg::Decided { .. } => return,
        };
        if !self.rounds_hit.insert(round) {
            return;
        }
        let rng = self.rng.as_mut().expect("on_start ran");
        let report = rng.random_range(0..2u64);
        let proposal = if rng.random_bool(0.5) {
            Some(rng.random_range(0..2u64))
        } else {
            None
        };
        ctx.multicast(
            0..ctx.n(),
            BenOrMsg::Report {
                round,
                value: report,
            },
        );
        ctx.multicast(
            0..ctx.n(),
            BenOrMsg::Proposal {
                round,
                value: proposal,
            },
        );
    }

    fn decision(&self) -> Option<u64> {
        None
    }
}

/// Convenience: runs a full honest Bracha broadcast (process 0
/// broadcasting `input`) on `cfg`, returning the drained network.
///
/// # Panics
///
/// Panics if the event queue fails to drain within `max_events` — a
/// truncated execution would silently masquerade as a protocol-property
/// violation downstream.
pub fn run_bracha(
    n: usize,
    t: usize,
    input: Value,
    cfg: crate::model::NetConfig,
    max_events: usize,
) -> EventNet<BrachaMsg> {
    let procs: Vec<Box<dyn AsyncProcess<Msg = BrachaMsg>>> = (0..n)
        .map(|_| Box::new(BrachaProcess::new(t, 0, input)) as _)
        .collect();
    let mut net = EventNet::new(procs, cfg);
    assert!(
        net.run(max_events),
        "bracha event queue did not drain within {max_events} events"
    );
    net
}

/// Convenience: runs a full Paxos network (process `i` proposing
/// `inputs[i]` when free to choose) on `cfg`, returning the drained
/// network. Fault injection goes through `cfg`'s fault plan.
///
/// # Panics
///
/// Panics if the event queue fails to drain within `max_events`.
pub fn run_paxos(
    inputs: &[Value],
    timeout_ticks: u64,
    max_timeouts: u32,
    cfg: crate::model::NetConfig,
    max_events: usize,
) -> EventNet<PaxosMsg> {
    let procs: Vec<Box<dyn AsyncProcess<Msg = PaxosMsg>>> = inputs
        .iter()
        .map(|&v| Box::new(PaxosProcess::new(v, timeout_ticks, max_timeouts)) as _)
        .collect();
    let mut net = EventNet::new(procs, cfg);
    assert!(
        net.run(max_events),
        "paxos event queue did not drain within {max_events} events"
    );
    net
}

/// Convenience: runs a full HSUC-style network (process `i` with initial
/// estimate `inputs[i]`) on `cfg`, returning the drained network.
///
/// # Panics
///
/// Panics if the event queue fails to drain within `max_events`.
pub fn run_hsuc(
    inputs: &[Value],
    timeout_ticks: u64,
    max_timeouts: u32,
    cfg: crate::model::NetConfig,
    max_events: usize,
) -> EventNet<HsucMsg> {
    let procs: Vec<Box<dyn AsyncProcess<Msg = HsucMsg>>> = inputs
        .iter()
        .map(|&v| Box::new(HsucProcess::new(v, timeout_ticks, max_timeouts)) as _)
        .collect();
    let mut net = EventNet::new(procs, cfg);
    assert!(
        net.run(max_events),
        "hsuc event queue did not drain within {max_events} events"
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FaultPlan, LatencyModel, LinkFaults, NetConfig, SchedulerPolicy};
    use crate::runtime::IdleProcess;

    #[test]
    fn bracha_delivers_everywhere_on_a_clean_network() {
        let net = run_bracha(7, 2, 1, NetConfig::lockstep(3), 100_000);
        assert_eq!(net.decisions(), vec![Some(1); 7]);
        // zero latency: everything happens at virtual time 0
        assert!(net.decision_times().iter().all(|t| *t == Some(0)));
    }

    #[test]
    fn bracha_latency_is_the_echo_ready_pipeline_depth() {
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        };
        let net = run_bracha(4, 1, 1, cfg, 100_000);
        assert_eq!(net.decisions(), vec![Some(1); 4]);
        // init (1 tick) → echo (1) → ready (1): deliveries at tick 3
        assert!(net.decision_times().iter().all(|t| *t == Some(3)));
    }

    #[test]
    fn ben_or_unanimous_lockstep_decides_in_round_one() {
        let probes: Vec<Rc<Cell<Option<u32>>>> = (0..5).map(|_| Rc::new(Cell::new(None))).collect();
        let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = (0..5)
            .map(|i| {
                Box::new(
                    BenOrProcess::new(1, 1, 30, 100 + i as u64)
                        .with_round_probe(Rc::clone(&probes[i])),
                ) as _
            })
            .collect();
        let mut net = EventNet::new(procs, NetConfig::lockstep(0));
        assert!(net.run(1_000_000));
        assert_eq!(net.decisions(), vec![Some(1); 5]);
        assert!(probes.iter().all(|p| p.get() == Some(1)));
    }

    #[test]
    fn ben_or_mixed_starts_agree_under_random_scheduling() {
        let cfg = NetConfig {
            latency: LatencyModel::UniformJitter { min: 0, max: 3 },
            scheduler: SchedulerPolicy::RandomInterleave { seed: 5, jitter: 2 },
            ..NetConfig::lockstep(11)
        };
        let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = (0..6)
            .map(|i| Box::new(BenOrProcess::new(1, (i % 2) as u64, 60, 200 + i as u64)) as _)
            .collect();
        let mut net = EventNet::new(procs, cfg);
        assert!(net.run(5_000_000));
        let decisions = net.decisions();
        let first = decisions[0].expect("decides");
        assert!(decisions.iter().all(|d| *d == Some(first)), "{decisions:?}");
    }

    #[test]
    fn ben_or_tolerates_silent_and_noisy_faults() {
        for noisy in [false, true] {
            // n = 11, t = 2: quorums survive two non-participating or
            // actively noisy processes
            let n = 11;
            let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = (0..n)
                .map(|i| -> Box<dyn AsyncProcess<Msg = BenOrMsg>> {
                    if i >= n - 2 {
                        if noisy {
                            Box::new(BenOrNoiseProcess::new(900 + i as u64))
                        } else {
                            Box::new(IdleProcess::new())
                        }
                    } else {
                        Box::new(BenOrProcess::new(2, (i % 2) as u64, 80, 300 + i as u64))
                    }
                })
                .collect();
            let mut net = EventNet::new(procs, NetConfig::lockstep(17));
            assert!(net.run(10_000_000));
            let honest: Vec<Option<u64>> = net.decisions()[..n - 2].to_vec();
            let first = honest[0].expect("decides despite faults");
            assert!(honest.iter().all(|d| *d == Some(first)), "noisy={noisy}");
        }
    }

    #[test]
    fn paxos_clean_network_decides_the_first_proposers_input() {
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        };
        let net = run_paxos(&[7, 8, 9, 10, 11], 100, 10, cfg, 1_000_000);
        assert_eq!(net.decisions(), vec![Some(7); 5]);
        // P1a → P1b → P2a → P2b: four hops of constant latency 1
        assert!(net.decision_times().iter().all(|t| *t == Some(4)));
    }

    #[test]
    fn paxos_survives_a_crashed_initial_proposer_via_failover() {
        // process 0 (owner of ballot 1) is crashed from the start: the
        // others' retry timers escalate to their own ballots and a
        // majority of the 4 survivors (of n = 5) decides
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        }
        .fault_plan(FaultPlan::none().crash_at_start(0));
        let net = run_paxos(&[7, 8, 9, 10, 11], 20, 10, cfg, 1_000_000);
        let decisions = net.decisions();
        assert_eq!(decisions[0], None, "crashed process never decides");
        let survivors: Vec<u64> = decisions[1..].iter().map(|d| d.expect("decides")).collect();
        assert!(
            survivors.iter().all(|&v| v == survivors[0]),
            "{decisions:?}"
        );
        assert_eq!(net.stats().recoveries, vec![0; 5]);
    }

    #[test]
    fn hsuc_clean_network_decides_round_one() {
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        };
        let net = run_hsuc(&[3, 4, 5, 6, 7], 100, 10, cfg, 1_000_000);
        assert_eq!(net.decisions(), vec![Some(3); 5]);
    }

    #[test]
    fn hsuc_rotates_past_a_crashed_leader() {
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        }
        .fault_plan(FaultPlan::none().crash_at_start(0));
        let net = run_hsuc(&[3, 4, 5, 6, 7], 20, 10, cfg, 1_000_000);
        let decisions = net.decisions();
        assert_eq!(decisions[0], None);
        let survivors: Vec<u64> = decisions[1..].iter().map(|d| d.expect("decides")).collect();
        assert!(
            survivors.iter().all(|&v| v == survivors[0]),
            "{decisions:?}"
        );
    }

    #[test]
    fn paxos_recovers_a_crashed_acceptor_and_relearns_the_decision() {
        // process 2 crashes after its first handled event and recovers
        // at t = 200, after the others decided: its recovery ballot must
        // re-learn the already-chosen value (quorum intersection)
        let cfg = NetConfig {
            latency: LatencyModel::Constant(1),
            ..NetConfig::lockstep(0)
        }
        .fault_plan(FaultPlan::none().crash(2, 1).recover_at(200));
        let net = run_paxos(&[7, 8, 9], 30, 20, cfg, 1_000_000);
        let decisions = net.decisions();
        assert_eq!(net.stats().recoveries, vec![0, 0, 1]);
        assert_eq!(
            decisions,
            vec![Some(7); 3],
            "recovered process re-learns the chosen value"
        );
    }

    #[test]
    fn bracha_runs_are_seed_deterministic() {
        let cfg = NetConfig {
            latency: LatencyModel::UniformJitter { min: 0, max: 4 },
            scheduler: SchedulerPolicy::RandomInterleave { seed: 2, jitter: 3 },
            faults: LinkFaults::lossy(0.2).into(),
            ..NetConfig::lockstep(9)
        }
        .with_trace();
        let a = run_bracha(6, 1, 1, cfg.clone(), 100_000);
        let b = run_bracha(6, 1, 1, cfg, 100_000);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.decision_times(), b.decision_times());
    }
}
