//! Deterministic observability for the event runtime: streaming
//! [`Observer`] hooks, causal/latency metrics, and timeline exporters.
//!
//! # Design
//!
//! The runtime already routes every interesting transition through one
//! trace sink (`Off` or `Record`). This module adds the third sink:
//! a streaming observer attached via
//! [`crate::EventNet::with_observer`], whose hooks fire **in event
//! order** with two enrichments the flat [`crate::TraceEvent`] log
//! never carried:
//!
//! * **causal metadata** — the runtime maintains per-process Lamport
//!   clocks unconditionally (send ticks the sender; a delivery sets the
//!   receiver to `max(local, sender-at-send) + 1`; timer firings and
//!   crash/recover transitions tick the owner), so every hook reports
//!   the acting process's logical clock;
//! * **latency metadata** — each queued delivery carries its send time
//!   and each timer its arming time, so a hook observes queue latency
//!   (`deliver − send`) and timer wait (`fire − arm`) per event.
//!
//! # The zero-perturbation guarantee
//!
//! Attaching any observer yields decisions, decision times, traces and
//! statistics **bit-identical** to a `TraceSink::Off` run: the clocks
//! and timestamps are maintained whether or not anyone observes them,
//! and no RNG stream, ordering key or counter depends on the sink.
//! `tests/tests/net_obs.rs` property-tests this across
//! protocol × scheduler × latency × fault-plan grids, the same way the
//! wheel==heap equivalence is proven. The guarantee covers everything
//! deterministic in the execution; it does *not* cover wall-clock time
//! (observers cost real time — see the `net_obs` bench legs) or any
//! state an observer itself mutates.
//!
//! Observers are `&mut self` hooks on a boxed trait object owned by the
//! runtime. To read results back after a run, attach an
//! `Rc<RefCell<T>>` handle and keep a clone — the blanket impl forwards
//! every hook through the `RefCell`.

use crate::runtime::TraceKind;
use bne_sim::{Histogram, StreamingStats};
use std::cell::RefCell;
use std::rc::Rc;

/// Streaming hooks over one deterministic execution.
///
/// Every hook has a default no-op body, so an observer implements only
/// what it cares about. Hooks fire in event order, at the same points
/// the trace recorder would push a [`crate::TraceEvent`] (plus the two
/// extra hooks the flat trace never carried: [`Observer::on_decide`]
/// and [`Observer::on_queue_depth`]). Process ids arrive as `u64`,
/// matching the trace encoding.
pub trait Observer {
    /// A process sent a message. `clock` is the sender's Lamport clock
    /// after ticking for the send.
    fn on_send(&mut self, time: u64, src: u64, dst: u64, clock: u64) {
        let _ = (time, src, dst, clock);
    }

    /// A message was delivered. `sent_at` is the virtual time it was
    /// sent (queue latency = `time − sent_at`); `clock` is the
    /// receiver's Lamport clock after the `max(local, sender) + 1`
    /// update.
    fn on_deliver(&mut self, time: u64, src: u64, dst: u64, sent_at: u64, clock: u64) {
        let _ = (time, src, dst, sent_at, clock);
    }

    /// A message was dropped by loss or a partition.
    fn on_drop(&mut self, time: u64, src: u64, dst: u64) {
        let _ = (time, src, dst);
    }

    /// A timer fired. `armed_at` is when it was armed (timer wait =
    /// `time − armed_at`); `clock` is the owner's Lamport clock after
    /// ticking.
    fn on_timer(&mut self, time: u64, proc: u64, timer: u64, armed_at: u64, clock: u64) {
        let _ = (time, proc, timer, armed_at, clock);
    }

    /// A planned crash fired.
    fn on_crash(&mut self, time: u64, proc: u64, clock: u64) {
        let _ = (time, proc, clock);
    }

    /// A planned recovery fired.
    fn on_recover(&mut self, time: u64, proc: u64, clock: u64) {
        let _ = (time, proc, clock);
    }

    /// A delivery or timer addressed to a crashed process was absorbed
    /// (`src`/`dst` as the corresponding deliver or timer hook would
    /// have carried — the ambiguity is inherited from the trace
    /// encoding, see [`crate::TraceKind`]).
    fn on_crash_drop(&mut self, time: u64, src: u64, dst: u64) {
        let _ = (time, src, dst);
    }

    /// A process's [`crate::AsyncProcess::decision`] first became
    /// `Some(value)`.
    fn on_decide(&mut self, time: u64, proc: u64, value: u64) {
        let _ = (time, proc, value);
    }

    /// Virtual time advanced to `time` with `depth` events still
    /// queued — sampled at bucket-drain boundaries (the instant the
    /// previous tick's wheel bucket finished draining), giving a
    /// deterministic queue-depth timeline.
    fn on_queue_depth(&mut self, time: u64, depth: usize) {
        let _ = (time, depth);
    }
}

/// Forwarding impl so callers can attach a shared handle and keep a
/// clone to read results after the run (the runtime is single-threaded
/// and `Rc`-based throughout).
impl<T: Observer> Observer for Rc<RefCell<T>> {
    fn on_send(&mut self, time: u64, src: u64, dst: u64, clock: u64) {
        self.borrow_mut().on_send(time, src, dst, clock);
    }
    fn on_deliver(&mut self, time: u64, src: u64, dst: u64, sent_at: u64, clock: u64) {
        self.borrow_mut().on_deliver(time, src, dst, sent_at, clock);
    }
    fn on_drop(&mut self, time: u64, src: u64, dst: u64) {
        self.borrow_mut().on_drop(time, src, dst);
    }
    fn on_timer(&mut self, time: u64, proc: u64, timer: u64, armed_at: u64, clock: u64) {
        self.borrow_mut()
            .on_timer(time, proc, timer, armed_at, clock);
    }
    fn on_crash(&mut self, time: u64, proc: u64, clock: u64) {
        self.borrow_mut().on_crash(time, proc, clock);
    }
    fn on_recover(&mut self, time: u64, proc: u64, clock: u64) {
        self.borrow_mut().on_recover(time, proc, clock);
    }
    fn on_crash_drop(&mut self, time: u64, src: u64, dst: u64) {
        self.borrow_mut().on_crash_drop(time, src, dst);
    }
    fn on_decide(&mut self, time: u64, proc: u64, value: u64) {
        self.borrow_mut().on_decide(time, proc, value);
    }
    fn on_queue_depth(&mut self, time: u64, depth: usize) {
        self.borrow_mut().on_queue_depth(time, depth);
    }
}

/// Per-kind event counters — one per observer hook, plus decides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Messages sent (valid destination).
    pub sends: u64,
    /// Messages delivered to a live process.
    pub delivers: u64,
    /// Messages dropped by loss or partition.
    pub drops: u64,
    /// Deliveries/timers absorbed by a crashed target.
    pub crash_drops: u64,
    /// Timers fired on a live process.
    pub timers: u64,
    /// Planned crashes fired.
    pub crashes: u64,
    /// Planned recoveries fired.
    pub recoveries: u64,
    /// First decisions observed.
    pub decides: u64,
}

/// The shape of a latency histogram: `buckets` equal-width bins over
/// `[lo, hi)` ticks, with under/overflow counters outside the range
/// (see [`Histogram`]).
///
/// Scenario grids carry a spec rather than a histogram so every replica
/// builds the *same shape* — [`Histogram`]'s merge panics on shape
/// mismatch by design.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSpec {
    /// Inclusive lower bound, in virtual-time ticks.
    pub lo: f64,
    /// Exclusive upper bound, in virtual-time ticks.
    pub hi: f64,
    /// Number of equal-width bins.
    pub buckets: usize,
}

impl HistogramSpec {
    /// A spec over `[0, hi)` with one bucket per tick (capped at 64
    /// bins) — a sensible default for queue-latency ranges.
    pub fn ticks(hi: u64) -> Self {
        HistogramSpec {
            lo: 0.0,
            hi: hi as f64,
            buckets: (hi as usize).clamp(1, 64),
        }
    }

    /// Builds an empty histogram of this shape.
    pub fn build(&self) -> Histogram {
        Histogram::new(self.lo, self.hi, self.buckets)
    }
}

/// A deterministic metrics observer built on `bne-sim`'s accumulators:
/// per-kind [`EventCounts`], per-process message-latency [`Histogram`]s
/// (plus a merged one and global [`StreamingStats`]), a timer-wait
/// histogram, and the queue-depth timeline sampled at bucket-drain
/// boundaries.
///
/// Everything it collects is a pure function of the deterministic
/// execution, so two runs of the same `(config, seed)` produce equal
/// metrics.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    counts: EventCounts,
    latency: StreamingStats,
    merged: Histogram,
    per_proc: Vec<Histogram>,
    timer_wait: Histogram,
    queue_depth: Vec<(u64, usize)>,
}

impl MetricsObserver {
    /// An empty metrics observer for `n` processes, with latency and
    /// timer-wait histograms of the given shape.
    pub fn new(n: usize, spec: &HistogramSpec) -> Self {
        MetricsObserver {
            counts: EventCounts::default(),
            latency: StreamingStats::new(),
            merged: spec.build(),
            per_proc: (0..n).map(|_| spec.build()).collect(),
            timer_wait: spec.build(),
            queue_depth: Vec::new(),
        }
    }

    /// The per-kind event counters.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// Global queue-latency stats (one sample per delivery).
    pub fn latency_stats(&self) -> &StreamingStats {
        &self.latency
    }

    /// The merged (all-process) queue-latency histogram.
    pub fn merged_latency(&self) -> &Histogram {
        &self.merged
    }

    /// Queue-latency histogram of deliveries *to* process `proc`.
    pub fn proc_latency(&self, proc: usize) -> &Histogram {
        &self.per_proc[proc]
    }

    /// Timer-wait (`fire − arm`) histogram across all processes.
    pub fn timer_wait(&self) -> &Histogram {
        &self.timer_wait
    }

    /// The queue-depth timeline: `(time, queued events)` samples taken
    /// each time virtual time advanced.
    pub fn queue_depth(&self) -> &[(u64, usize)] {
        &self.queue_depth
    }
}

impl Observer for MetricsObserver {
    fn on_send(&mut self, _time: u64, _src: u64, _dst: u64, _clock: u64) {
        self.counts.sends += 1;
    }
    fn on_deliver(&mut self, time: u64, _src: u64, dst: u64, sent_at: u64, _clock: u64) {
        self.counts.delivers += 1;
        let lat = (time - sent_at) as f64;
        self.latency.push(lat);
        self.merged.record(lat);
        if let Some(h) = self.per_proc.get_mut(dst as usize) {
            h.record(lat);
        }
    }
    fn on_drop(&mut self, _time: u64, _src: u64, _dst: u64) {
        self.counts.drops += 1;
    }
    fn on_timer(&mut self, time: u64, _proc: u64, _timer: u64, armed_at: u64, _clock: u64) {
        self.counts.timers += 1;
        self.timer_wait.record((time - armed_at) as f64);
    }
    fn on_crash(&mut self, _time: u64, _proc: u64, _clock: u64) {
        self.counts.crashes += 1;
    }
    fn on_recover(&mut self, _time: u64, _proc: u64, _clock: u64) {
        self.counts.recoveries += 1;
    }
    fn on_crash_drop(&mut self, _time: u64, _src: u64, _dst: u64) {
        self.counts.crash_drops += 1;
    }
    fn on_decide(&mut self, _time: u64, _proc: u64, _value: u64) {
        self.counts.decides += 1;
    }
    fn on_queue_depth(&mut self, time: u64, depth: usize) {
        self.queue_depth.push((time, depth));
    }
}

/// One enriched timeline entry collected by a [`TimelineObserver`] —
/// the fully decoded counterpart of [`crate::TraceEvent`], with the
/// causal/latency enrichment kept per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEntry {
    /// A message left `src` for `dst`.
    Send {
        /// Virtual time of the send.
        time: u64,
        /// Sending process.
        src: u64,
        /// Receiving process.
        dst: u64,
        /// Sender's Lamport clock after the send.
        clock: u64,
    },
    /// A message was delivered.
    Deliver {
        /// Virtual time of the delivery.
        time: u64,
        /// Sending process.
        src: u64,
        /// Receiving process.
        dst: u64,
        /// When the message was sent (queue latency = `time − sent_at`).
        sent_at: u64,
        /// Receiver's Lamport clock after the delivery.
        clock: u64,
    },
    /// A message was dropped in flight.
    Drop {
        /// Virtual time of the drop.
        time: u64,
        /// Sending process.
        src: u64,
        /// Intended receiver.
        dst: u64,
    },
    /// A timer fired.
    Timer {
        /// Virtual time of the firing.
        time: u64,
        /// Owning process.
        proc: u64,
        /// Timer id.
        timer: u64,
        /// When the timer was armed (wait = `time − armed_at`).
        armed_at: u64,
        /// Owner's Lamport clock after the firing.
        clock: u64,
    },
    /// A planned crash fired.
    Crash {
        /// Virtual time of the crash.
        time: u64,
        /// Crashing process.
        proc: u64,
        /// Its Lamport clock after the crash tick.
        clock: u64,
    },
    /// A planned recovery fired.
    Recover {
        /// Virtual time of the recovery.
        time: u64,
        /// Recovering process.
        proc: u64,
        /// Its Lamport clock after the recovery tick.
        clock: u64,
    },
    /// An event addressed to a crashed process was absorbed.
    CrashDrop {
        /// Virtual time of the absorption.
        time: u64,
        /// `src` of the absorbed event (sender or timer owner).
        src: u64,
        /// `dst` of the absorbed event (receiver or timer id).
        dst: u64,
    },
    /// A process first decided.
    Decide {
        /// Virtual time of the decision.
        time: u64,
        /// Deciding process.
        proc: u64,
        /// The decided value.
        value: u64,
    },
}

impl TimelineEntry {
    /// Virtual time of this entry.
    pub fn time(&self) -> u64 {
        match *self {
            TimelineEntry::Send { time, .. }
            | TimelineEntry::Deliver { time, .. }
            | TimelineEntry::Drop { time, .. }
            | TimelineEntry::Timer { time, .. }
            | TimelineEntry::Crash { time, .. }
            | TimelineEntry::Recover { time, .. }
            | TimelineEntry::CrashDrop { time, .. }
            | TimelineEntry::Decide { time, .. } => time,
        }
    }

    /// The matching [`TraceKind`] (`None` for [`TimelineEntry::Decide`],
    /// which the flat trace does not record).
    pub fn trace_kind(&self) -> Option<TraceKind> {
        match self {
            TimelineEntry::Send { .. } => Some(TraceKind::Send),
            TimelineEntry::Deliver { .. } => Some(TraceKind::Deliver),
            TimelineEntry::Drop { .. } => Some(TraceKind::Drop),
            TimelineEntry::Timer { .. } => Some(TraceKind::Timer),
            TimelineEntry::Crash { .. } => Some(TraceKind::Crash),
            TimelineEntry::Recover { .. } => Some(TraceKind::Recover),
            TimelineEntry::CrashDrop { .. } => Some(TraceKind::CrashDrop),
            TimelineEntry::Decide { .. } => None,
        }
    }
}

/// An observer that collects the full enriched timeline and exports it
/// as Chrome trace-event JSON (loadable in `chrome://tracing` or
/// Perfetto) or a compact text timeline.
///
/// Both exports are pure functions of the collected entries, which are
/// a pure function of the deterministic execution — so two runs of the
/// same `(config, seed)` export **byte-identical** output (asserted in
/// `tests/tests/net_obs.rs`).
#[derive(Debug, Clone, Default)]
pub struct TimelineObserver {
    entries: Vec<TimelineEntry>,
}

impl TimelineObserver {
    /// An empty timeline.
    pub fn new() -> Self {
        TimelineObserver::default()
    }

    /// The collected entries, in event order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Exports the timeline as Chrome trace-event JSON.
    ///
    /// Deliveries and timer firings become duration (`"ph":"X"`) events
    /// spanning `send → deliver` / `arm → fire` on the destination
    /// process's track; everything else becomes a thread-scoped instant
    /// (`"ph":"i"`). Virtual ticks map 1:1 to microseconds (the unit
    /// the format requires).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for e in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            match *e {
                TimelineEntry::Send {
                    time,
                    src,
                    dst,
                    clock,
                } => {
                    out.push_str(&format!(
                        "{{\"name\":\"send {src}->{dst}\",\"cat\":\"msg\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\"pid\":0,\"tid\":{src},\"args\":{{\"clock\":{clock}}}}}"
                    ));
                }
                TimelineEntry::Deliver {
                    time,
                    src,
                    dst,
                    sent_at,
                    clock,
                } => {
                    let dur = time - sent_at;
                    out.push_str(&format!(
                        "{{\"name\":\"msg {src}->{dst}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{sent_at},\"dur\":{dur},\"pid\":0,\"tid\":{dst},\"args\":{{\"src\":{src},\"clock\":{clock}}}}}"
                    ));
                }
                TimelineEntry::Drop { time, src, dst } => {
                    out.push_str(&format!(
                        "{{\"name\":\"drop {src}->{dst}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\"pid\":0,\"tid\":{src}}}"
                    ));
                }
                TimelineEntry::Timer {
                    time,
                    proc,
                    timer,
                    armed_at,
                    clock,
                } => {
                    let dur = time - armed_at;
                    out.push_str(&format!(
                        "{{\"name\":\"timer {timer}\",\"cat\":\"timer\",\"ph\":\"X\",\"ts\":{armed_at},\"dur\":{dur},\"pid\":0,\"tid\":{proc},\"args\":{{\"clock\":{clock}}}}}"
                    ));
                }
                TimelineEntry::Crash { time, proc, .. } => {
                    out.push_str(&format!(
                        "{{\"name\":\"crash\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\"pid\":0,\"tid\":{proc}}}"
                    ));
                }
                TimelineEntry::Recover { time, proc, .. } => {
                    out.push_str(&format!(
                        "{{\"name\":\"recover\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\"pid\":0,\"tid\":{proc}}}"
                    ));
                }
                TimelineEntry::CrashDrop { time, src, dst } => {
                    out.push_str(&format!(
                        "{{\"name\":\"absorbed {src}/{dst}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\"pid\":0,\"tid\":{src}}}"
                    ));
                }
                TimelineEntry::Decide { time, proc, value } => {
                    out.push_str(&format!(
                        "{{\"name\":\"decide {value}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\"pid\":0,\"tid\":{proc}}}"
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders the timeline as compact text, one line per entry.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let line = match *e {
                TimelineEntry::Send {
                    time,
                    src,
                    dst,
                    clock,
                } => {
                    format!("{time:>6}  p{src} -> p{dst}  send              clk={clock}")
                }
                TimelineEntry::Deliver {
                    time,
                    src,
                    dst,
                    sent_at,
                    clock,
                } => {
                    format!(
                        "{time:>6}  p{src} -> p{dst}  deliver  lat={:<4} clk={clock}",
                        time - sent_at
                    )
                }
                TimelineEntry::Drop { time, src, dst } => {
                    format!("{time:>6}  p{src} -> p{dst}  drop")
                }
                TimelineEntry::Timer {
                    time,
                    proc,
                    timer,
                    armed_at,
                    clock,
                } => {
                    format!(
                        "{time:>6}  p{proc}        timer#{timer}  wait={:<4} clk={clock}",
                        time - armed_at
                    )
                }
                TimelineEntry::Crash { time, proc, .. } => {
                    format!("{time:>6}  p{proc}        CRASH")
                }
                TimelineEntry::Recover { time, proc, .. } => {
                    format!("{time:>6}  p{proc}        RECOVER")
                }
                TimelineEntry::CrashDrop { time, src, dst } => {
                    format!("{time:>6}  p{src}        absorbed ({src}/{dst})")
                }
                TimelineEntry::Decide { time, proc, value } => {
                    format!("{time:>6}  p{proc}        DECIDE {value}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl Observer for TimelineObserver {
    fn on_send(&mut self, time: u64, src: u64, dst: u64, clock: u64) {
        self.entries.push(TimelineEntry::Send {
            time,
            src,
            dst,
            clock,
        });
    }
    fn on_deliver(&mut self, time: u64, src: u64, dst: u64, sent_at: u64, clock: u64) {
        self.entries.push(TimelineEntry::Deliver {
            time,
            src,
            dst,
            sent_at,
            clock,
        });
    }
    fn on_drop(&mut self, time: u64, src: u64, dst: u64) {
        self.entries.push(TimelineEntry::Drop { time, src, dst });
    }
    fn on_timer(&mut self, time: u64, proc: u64, timer: u64, armed_at: u64, clock: u64) {
        self.entries.push(TimelineEntry::Timer {
            time,
            proc,
            timer,
            armed_at,
            clock,
        });
    }
    fn on_crash(&mut self, time: u64, proc: u64, clock: u64) {
        self.entries
            .push(TimelineEntry::Crash { time, proc, clock });
    }
    fn on_recover(&mut self, time: u64, proc: u64, clock: u64) {
        self.entries
            .push(TimelineEntry::Recover { time, proc, clock });
    }
    fn on_crash_drop(&mut self, time: u64, src: u64, dst: u64) {
        self.entries
            .push(TimelineEntry::CrashDrop { time, src, dst });
    }
    fn on_decide(&mut self, time: u64, proc: u64, value: u64) {
        self.entries
            .push(TimelineEntry::Decide { time, proc, value });
    }
}
