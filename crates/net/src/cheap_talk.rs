//! The mediator cheap-talk implementations re-hosted on the async
//! runtime.
//!
//! `bne-mediator`'s protocols implement the paper's Byzantine-agreement
//! mediator over the lockstep `SyncNetwork` (or the recursive OM
//! function). These ports run the *same* dissemination protocols through
//! [`crate::runtime::EventNet`]: under the lockstep profile they induce
//! the same action distributions as the trusted mediator (asserted by the
//! `distributions_match` tests), and under lossy or adversarially
//! scheduled networks the implementation condition visibly erodes — the
//! gap between the paper's synchronous assumption and asynchronous
//! practice, made measurable.

use crate::adapter::run_round_protocol;
use crate::scenario::NetProfile;
use bne_byzantine::broadcast::{DolevStrongProcess, EquivocatingSender, SignedMessage};
use bne_byzantine::network::{ProcId, Process};
use bne_byzantine::om::{OmConfig, TraitorStrategy};
use bne_byzantine::om_process::{om_process_set, OmProcess};
use bne_crypto::pki::PublicKeyInfrastructure;
use bne_games::TypeId;
use bne_mediator::{CheapTalkImplementation, CheapTalkOutcome};
use bne_sim::derive_seed;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Stream tag separating the network seed from the protocol-input seed.
const STREAM_NET_SEED: u64 = 13;

/// A faulty relay that never sends anything, for any message type.
struct SilentRelay<M>(PhantomData<M>);

impl<M> SilentRelay<M> {
    fn new() -> Self {
        SilentRelay(PhantomData)
    }
}

impl<M: Clone> Process for SilentRelay<M> {
    type Msg = M;
    fn init(&mut self, _id: ProcId, _n: usize) {}
    fn round(&mut self, _round: usize, _inbox: &[(ProcId, M)]) -> Vec<(ProcId, M)> {
        Vec::new()
    }
    fn decision(&self) -> Option<u64> {
        None
    }
}

/// Converts async protocol decisions into the cheap-talk action vector:
/// the general acts on its own preference, honest players on their
/// decisions, and faulty players take the mediator-defying marker action
/// (the same convention as the sync implementations, so distribution
/// comparisons are apples-to-apples).
fn actions_from_decisions(
    n: usize,
    types: &[TypeId],
    faulty: &BTreeSet<usize>,
    decisions: &[Option<u64>],
) -> Vec<usize> {
    let mut actions = vec![0usize; n];
    actions[0] = types[0];
    for (i, d) in decisions.iter().enumerate() {
        if let Some(v) = d {
            actions[i] = *v as usize;
        }
    }
    for &f in faulty {
        actions[f] = 1 - types[0].min(1);
    }
    actions
}

/// Cheap talk via the EIG oral-messages protocol OM(k + t), executed on
/// the event-driven runtime under a configurable [`NetProfile`].
#[derive(Debug, Clone)]
pub struct AsyncOralMessagesCheapTalk {
    /// Number of players.
    pub n: usize,
    /// Coalition bound the implementation is asked to support.
    pub k: usize,
    /// Fault bound the implementation is asked to support.
    pub t: usize,
    /// How the faulty players lie during dissemination.
    pub traitor_strategy: TraitorStrategy,
    /// Network conditions the talk phase runs under.
    pub net: NetProfile,
}

impl AsyncOralMessagesCheapTalk {
    /// Creates the protocol on a lockstep network with the
    /// parity-splitting adversary.
    pub fn new(n: usize, k: usize, t: usize) -> Self {
        AsyncOralMessagesCheapTalk {
            n,
            k,
            t,
            traitor_strategy: TraitorStrategy::SplitByParity,
            net: NetProfile::lockstep(),
        }
    }

    /// Replaces the network profile (builder style).
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }
}

impl CheapTalkImplementation for AsyncOralMessagesCheapTalk {
    fn execute(&self, types: &[TypeId], faulty: &BTreeSet<usize>, seed: u64) -> CheapTalkOutcome {
        let m = self.k + self.t;
        let config = OmConfig {
            n: self.n,
            m,
            commander_value: types[0] as u64,
            traitors: faulty.clone(),
            strategy: self.traitor_strategy,
            default_value: 0,
        };
        let rounds = OmProcess::rounds_needed(m);
        let outcome = run_round_protocol(
            om_process_set(&config),
            rounds,
            self.net
                .config(derive_seed(seed, STREAM_NET_SEED, 0), faulty),
        );
        CheapTalkOutcome {
            actions: actions_from_decisions(self.n, types, faulty, &outcome.decisions),
            messages: outcome.stats.messages_sent,
            rounds,
        }
    }

    fn name(&self) -> String {
        format!("async OM({}) cheap talk", self.k + self.t)
    }

    fn claimed_regime(&self) -> (usize, usize, usize) {
        (self.n, self.k, self.t)
    }
}

/// Cheap talk via Dolev–Strong signed broadcast over the simulated PKI,
/// executed on the event-driven runtime under a configurable
/// [`NetProfile`].
#[derive(Debug, Clone)]
pub struct AsyncSignedBroadcastCheapTalk {
    /// Number of players.
    pub n: usize,
    /// Coalition bound.
    pub k: usize,
    /// Fault bound.
    pub t: usize,
    /// Whether a faulty general equivocates instead of staying silent.
    pub general_equivocates: bool,
    /// Network conditions the talk phase runs under.
    pub net: NetProfile,
}

impl AsyncSignedBroadcastCheapTalk {
    /// Creates the protocol on a lockstep network.
    pub fn new(n: usize, k: usize, t: usize) -> Self {
        AsyncSignedBroadcastCheapTalk {
            n,
            k,
            t,
            general_equivocates: true,
            net: NetProfile::lockstep(),
        }
    }

    /// Replaces the network profile (builder style).
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }
}

impl CheapTalkImplementation for AsyncSignedBroadcastCheapTalk {
    fn execute(&self, types: &[TypeId], faulty: &BTreeSet<usize>, seed: u64) -> CheapTalkOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let fault_budget = self.k + self.t;
        let (pki, keys) = PublicKeyInfrastructure::setup(self.n, &mut rng);
        let mut processes: Vec<Box<dyn Process<Msg = SignedMessage>>> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            if i == 0 && faulty.contains(&0) && self.general_equivocates {
                processes.push(Box::new(EquivocatingSender::new(keys[0])));
            } else if faulty.contains(&i) {
                processes.push(Box::new(SilentRelay::new()));
            } else {
                processes.push(Box::new(DolevStrongProcess::new(
                    0,
                    types[0] as u64,
                    fault_budget,
                    pki.clone(),
                    keys[i],
                    0,
                )));
            }
        }
        let rounds = DolevStrongProcess::rounds_needed(fault_budget);
        let outcome = run_round_protocol(
            processes,
            rounds,
            self.net
                .config(derive_seed(seed, STREAM_NET_SEED, 0), faulty),
        );
        CheapTalkOutcome {
            actions: actions_from_decisions(self.n, types, faulty, &outcome.decisions),
            messages: outcome.stats.messages_sent,
            rounds,
        }
    }

    fn name(&self) -> String {
        format!(
            "async Dolev–Strong cheap talk (t + k = {})",
            self.k + self.t
        )
    }

    fn claimed_regime(&self) -> (usize, usize, usize) {
        (self.n, self.k, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinkFaults;
    use bne_mediator::{
        distributions_match, ByzantineAgreementGame, MediatorGame, TruthfulMediator,
    };

    fn faulty(ids: &[usize]) -> BTreeSet<usize> {
        ids.iter().copied().collect()
    }

    #[test]
    fn async_om_cheap_talk_implements_the_mediator_on_a_lockstep_net() {
        // n = 7 > 3(k + t) = 6 with k = 1, t = 1 — the paper's strong
        // regime, now running through the event queue
        let game = ByzantineAgreementGame::build(7, 0.5);
        let mg = MediatorGame::new(&game, TruthfulMediator);
        let ct = AsyncOralMessagesCheapTalk::new(7, 1, 1);
        assert!(distributions_match(&mg, &ct, &faulty(&[4, 6]), 5, 1e-9));
    }

    #[test]
    fn async_signed_broadcast_implements_the_mediator_beyond_n_over_3() {
        // n = 5, k + t = 3: far beyond n/3; the PKI protocol still works
        let game = ByzantineAgreementGame::build(5, 0.5);
        let mg = MediatorGame::new(&game, TruthfulMediator);
        let ct = AsyncSignedBroadcastCheapTalk::new(5, 1, 2);
        assert!(distributions_match(&mg, &ct, &faulty(&[2, 3, 4]), 5, 1e-9));
    }

    #[test]
    fn message_loss_breaks_the_implementation_condition() {
        // the same OM regime that is exact on a reliable network stops
        // implementing the mediator once 40% of messages are lost
        let game = ByzantineAgreementGame::build(7, 0.5);
        let mg = MediatorGame::new(&game, TruthfulMediator);
        let lossy = AsyncOralMessagesCheapTalk::new(7, 1, 1).with_net(NetProfile {
            faults: LinkFaults::lossy(0.4).into(),
            ..NetProfile::lockstep()
        });
        assert!(!distributions_match(
            &mg,
            &lossy,
            &faulty(&[4, 6]),
            16,
            1e-9
        ));
    }

    #[test]
    fn async_om_matches_actions_shape_of_the_sync_port() {
        let ct = AsyncOralMessagesCheapTalk::new(7, 1, 1);
        let types = vec![1usize, 0, 0, 0, 0, 0, 0];
        let out = ct.execute(&types, &faulty(&[4, 6]), 3);
        assert_eq!(out.actions.len(), 7);
        assert_eq!(out.actions[0], 1);
        for p in [1usize, 2, 3, 5] {
            assert_eq!(out.actions[p], 1, "honest player {p} follows the general");
        }
        assert!(out.messages > 0);
        assert_eq!(out.rounds, OmProcess::rounds_needed(2));
    }
}
