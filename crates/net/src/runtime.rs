//! The discrete-event engine: a seeded event queue keyed by
//! `(virtual time, tiebreak, sequence number)` driving message-passing
//! [`AsyncProcess`]es.
//!
//! Everything is deterministic given the [`NetConfig`]: the queue ordering
//! is a total order (the sequence number is unique), latency/drop sampling
//! happens in event-processing order from a single seeded stream, and the
//! scheduler's randomness lives in its own stream derived via
//! [`bne_sim::derive_seed`]. Two runs with the same `(config, processes)`
//! therefore produce the same event trace, decisions and statistics — the
//! determinism property tests assert exactly this.
//!
//! # The event core
//!
//! Queued events live in an **arena** (a slab indexed by `u32` handles
//! with a free list), so the queue itself only ever moves small `Copy`
//! keys around. Two queue implementations realize the same total order
//! (selected by [`NetConfig::queue`], see [`QueueImpl`]):
//!
//! * a **bucketed timing wheel**: a fixed ring of per-tick buckets over
//!   a fixed near-future horizon, with a binary-heap overflow for
//!   far-future events (retry backoff can exceed the horizon). Buckets
//!   stay append-sorted on the FIFO fast path and lazily sort their
//!   undrained tail when an out-of-order tiebreak lands, so a whole tick
//!   drains in one pass;
//! * the original **global binary heap** — the reference implementation
//!   and escape hatch, differentially tested against the wheel.
//!
//! # The crash-recovery fault model
//!
//! Beyond link faults, a [`crate::FaultPlan`] can crash and recover
//! *processes*: a crashed process receives nothing (deliveries and timers
//! addressed to it are counted as [`NetStats::crashed_drops`]) and sends
//! nothing, until a planned recovery restores its durable state (see
//! [`DurableState`]) and hands control back via
//! [`AsyncProcess::on_recover`]. The plan is enforced entirely by the
//! runtime, so any protocol can be crashed without per-protocol wrappers,
//! and the crash/recover events participate in the same `(time, tie, seq)`
//! total order — wheel and heap executions stay bit-identical.
//!
//! # Examples
//!
//! An [`AsyncProcess`] sees only message arrivals and its own timers —
//! no rounds. A two-process ping/pong, run to quiescence under the
//! lockstep configuration (note that the timer and crash-lifecycle hooks
//! all have default no-op implementations):
//!
//! ```
//! use bne_net::{AsyncProcess, EventNet, NetConfig, NetCtx};
//!
//! struct Ping {
//!     last: Option<u64>,
//! }
//!
//! impl AsyncProcess for Ping {
//!     type Msg = u64;
//!     fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
//!         if ctx.id() == 0 {
//!             ctx.send(1, 7); // the opening ping
//!         }
//!     }
//!     fn on_message(&mut self, src: usize, msg: u64, ctx: &mut NetCtx<u64>) {
//!         self.last = Some(msg);
//!         if ctx.id() == 1 {
//!             ctx.send(src, msg + 1); // pong once
//!         }
//!     }
//!     fn decision(&self) -> Option<u64> {
//!         self.last
//!     }
//! }
//!
//! let procs: Vec<Box<dyn AsyncProcess<Msg = u64>>> =
//!     (0..2).map(|_| Box::new(Ping { last: None }) as _).collect();
//! let mut net = EventNet::new(procs, NetConfig::lockstep(0));
//! assert!(net.run(100), "the event queue drains");
//! assert_eq!(net.decisions(), vec![Some(8), Some(7)]);
//! assert_eq!(net.stats().messages_delivered, 2);
//! ```

use crate::model::{CrashTrigger, NetConfig, QueueImpl, SchedulerPolicy};
use crate::obs::Observer;
use bne_byzantine::ProcId;
use bne_sim::derive_seed;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Stream tag for the latency/drop RNG (see [`bne_sim::derive_seed`]).
const STREAM_LINK: u64 = 1;
/// Stream tag for the scheduler RNG.
const STREAM_SCHEDULER: u64 = 2;

/// What a processed event was; part of [`TraceEvent`].
///
/// # Field encoding
///
/// A [`TraceEvent`] packs every kind into the same two `u64` fields, so
/// `src`/`dst` are **overloaded** per kind:
///
/// | kind                  | `src`            | `dst`        |
/// |-----------------------|------------------|--------------|
/// | `Send`/`Deliver`/`Drop` | sending process | receiving process |
/// | `Timer`               | timer owner      | timer id     |
/// | `Crash`/`Recover`     | process          | always 0     |
/// | `CrashDrop`           | as the absorbed `Deliver` *or* `Timer` entry |
///
/// Consumers should not re-derive this table: [`TraceEvent::fields`]
/// decodes an entry into a [`TraceFields`] view. Note that `CrashDrop`
/// is genuinely ambiguous — the trace does not retain whether the
/// absorbed event was a delivery or a timer, so its decoded view keeps
/// the raw pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A process sent a message (`src → dst`).
    Send,
    /// A message was delivered (`src → dst`).
    Deliver,
    /// A message was dropped by loss or partition (`src → dst`).
    Drop,
    /// A timer fired (`src` = process, `dst` = timer id).
    Timer,
    /// A planned process crash fired (`src` = process, `dst` = 0).
    Crash,
    /// A planned process recovery fired (`src` = process, `dst` = 0).
    Recover,
    /// A delivery or timer addressed to a crashed process was absorbed
    /// (`src`/`dst` as the corresponding [`TraceKind::Deliver`] or
    /// [`TraceKind::Timer`] entry would have carried).
    CrashDrop,
}

/// One entry of the deterministic event trace (recorded only when
/// [`NetConfig::record_trace`] is set). See [`TraceKind`] for how the
/// `src`/`dst` fields are overloaded per kind, and [`TraceEvent::fields`]
/// for the decoded view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: u64,
    /// Event class.
    pub kind: TraceKind,
    /// Sender / timer owner (see [`TraceKind`]).
    pub src: u64,
    /// Recipient / timer id (see [`TraceKind`]).
    pub dst: u64,
}

/// The decoded `src`/`dst` fields of one [`TraceEvent`] — the accessor
/// exporters use instead of re-deriving the per-kind encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFields {
    /// A message event (`Send`, `Deliver`, `Drop`): sender and receiver.
    Message {
        /// Sending process.
        src: u64,
        /// Receiving process.
        dst: u64,
    },
    /// A `Timer` event: the owning process and the timer id it armed.
    Timer {
        /// Timer owner.
        proc: u64,
        /// Timer id (as passed to [`NetCtx::set_timer`]).
        timer: u64,
    },
    /// A `Crash` or `Recover` lifecycle event.
    Lifecycle {
        /// The crashing / recovering process.
        proc: u64,
    },
    /// A `CrashDrop`: the raw fields of the absorbed event. The trace
    /// does not retain whether a delivery (`src → dst`) or a timer
    /// (`proc`, `timer id`) was absorbed, so the pair stays undecoded.
    Absorbed {
        /// `src` of the absorbed entry (sender, or timer owner).
        src: u64,
        /// `dst` of the absorbed entry (receiver, or timer id).
        dst: u64,
    },
}

impl TraceEvent {
    /// Decodes the overloaded `src`/`dst` fields per [`TraceKind`].
    pub fn fields(&self) -> TraceFields {
        match self.kind {
            TraceKind::Send | TraceKind::Deliver | TraceKind::Drop => TraceFields::Message {
                src: self.src,
                dst: self.dst,
            },
            TraceKind::Timer => TraceFields::Timer {
                proc: self.src,
                timer: self.dst,
            },
            TraceKind::Crash | TraceKind::Recover => TraceFields::Lifecycle { proc: self.src },
            TraceKind::CrashDrop => TraceFields::Absorbed {
                src: self.src,
                dst: self.dst,
            },
        }
    }
}

/// Aggregate statistics of one execution.
///
/// Besides the message counts, this carries the **work counters** the
/// `BENCH_6` methodology reports: events processed, the peak number of
/// simultaneously queued events, and the arena high-water mark (event
/// slots ever allocated — the allocation footprint of the run). All of
/// them are part of the deterministic execution, so they are bit-identical
/// across queue implementations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages handed to the network with a valid destination (counted at
    /// send time, like [`bne_byzantine::RoundStats::messages_sent`]).
    pub messages_sent: usize,
    /// Messages actually delivered to their recipient.
    pub messages_delivered: usize,
    /// Messages lost to iid drops or partitions.
    pub messages_dropped: usize,
    /// Deliveries and timers absorbed because their target process was
    /// crashed when they fired (work the crash model discarded — without
    /// this the atlas columns would undercount what the network actually
    /// did).
    pub crashed_drops: usize,
    /// Total events processed (deliveries + timers, plus any planned
    /// crash/recovery events from the fault plan).
    pub events_processed: usize,
    /// Timers actually fired (delivered to a live process). A subset of
    /// [`NetStats::events_processed`]; absorbed timers count as
    /// [`NetStats::crashed_drops`] instead. Separating them makes
    /// retry/timeout pressure visible without recording a trace.
    pub timers_fired: usize,
    /// Virtual time of the last processed event.
    pub virtual_time: u64,
    /// Peak number of simultaneously queued events.
    pub peak_queue_len: usize,
    /// Event-arena slots ever allocated (the in-flight high-water mark:
    /// slots are recycled through a free list, so this is the peak number
    /// of concurrently live events, not a per-event allocation count).
    pub arena_high_water: usize,
    /// Per-process recovery counts (in process-id order): how many times
    /// each process came back from a planned crash.
    pub recoveries: Vec<u64>,
}

/// A queued message payload: unicast sends own their message outright
/// (no extra allocation over the pre-`Rc` queue), multicasts share one
/// `Rc`-backed allocation across every recipient. The payload is only
/// materialized into an owned `M` at delivery time — the last live
/// reference is moved out instead of cloned, and messages dropped by
/// loss or partitions never pay for a clone at all. This is what cuts
/// the per-recipient clone cost of big multicast payloads (e.g. the
/// Dolev–Strong signature chains) on large `n`.
pub(crate) enum Payload<M> {
    /// A unicast message, owned by its single queue entry.
    Owned(M),
    /// A multicast message, shared across recipients.
    Shared(Rc<M>),
}

impl<M: Clone> Clone for Payload<M> {
    fn clone(&self) -> Self {
        match self {
            // a cloned snapshot shares the multicast allocation — payloads
            // are immutable once queued, so sharing across snapshots is safe
            Payload::Owned(msg) => Payload::Owned(msg.clone()),
            Payload::Shared(rc) => Payload::Shared(Rc::clone(rc)),
        }
    }
}

impl<M: Clone> Payload<M> {
    /// Materializes an owned message for delivery, cloning only when
    /// other recipients still hold the shared payload.
    pub(crate) fn into_msg(self) -> M {
        match self {
            Payload::Owned(msg) => msg,
            Payload::Shared(rc) => Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()),
        }
    }

    /// Borrows the queued message without materializing it — the model
    /// checker's read-only view for state fingerprinting.
    pub(crate) fn as_msg(&self) -> &M {
        match self {
            Payload::Owned(msg) => msg,
            Payload::Shared(rc) => rc,
        }
    }
}

/// The action buffer handed to every [`AsyncProcess`] callback.
///
/// Sends and timers requested here are applied by the runtime after the
/// callback returns, in request order — which keeps the sampling order of
/// the latency/drop RNG well-defined. The runtime recycles one scratch
/// buffer across events, so steady-state event processing allocates
/// nothing here.
pub struct NetCtx<M> {
    id: ProcId,
    n: usize,
    now: u64,
    sends: Vec<(ProcId, Payload<M>)>,
    timers: Vec<(u64, u64)>,
}

/// The drained action buffers of one [`NetCtx`], handed out by
/// [`NetCtx::drain_actions`]: timers and sends as separate draining
/// iterators (in request order, capacity retained by the context). This
/// is the one sanctioned way for adapters in this crate to consume an
/// inner context's buffered actions — previously `retry.rs` reached into
/// the fields directly.
pub(crate) struct NetActions<'a, M> {
    /// Buffered `(delay, timer-id)` requests, in request order.
    pub(crate) timers: std::vec::Drain<'a, (u64, u64)>,
    /// Buffered `(destination, payload)` sends, in request order.
    pub(crate) sends: std::vec::Drain<'a, (ProcId, Payload<M>)>,
}

impl<M> NetCtx<M> {
    pub(crate) fn new(id: ProcId, n: usize, now: u64) -> Self {
        NetCtx {
            id,
            n,
            now,
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Re-targets a recycled context: clears the buffers (keeping their
    /// capacity) and points it at a new `(id, now)`.
    pub(crate) fn reset(&mut self, id: ProcId, n: usize, now: u64) {
        self.id = id;
        self.n = n;
        self.now = now;
        self.sends.clear();
        self.timers.clear();
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Number of processes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sends `msg` to `dst`. Messages to nonexistent processes are
    /// silently discarded (matching [`bne_byzantine::SyncNetwork`]).
    pub fn send(&mut self, dst: ProcId, msg: M) {
        self.sends.push((dst, Payload::Owned(msg)));
    }

    /// Sends an already-shared payload to `dst` without cloning it —
    /// the internal hook the retry adapter uses to retransmit one tracked
    /// allocation to many recipients across many attempts.
    pub(crate) fn send_shared(&mut self, dst: ProcId, msg: Rc<M>) {
        self.sends.push((dst, Payload::Shared(msg)));
    }

    /// Sends one `msg` to every destination in `dsts`, storing the
    /// payload **once** in the event queue (`Rc`-backed) instead of
    /// cloning it per recipient. Delivery order, fault sampling and
    /// statistics are identical to calling [`Self::send`] once per
    /// destination with a clone — only the allocation profile changes
    /// (see the `multicast_matches_per_recipient_sends` test).
    pub fn multicast<I: IntoIterator<Item = ProcId>>(&mut self, dsts: I, msg: M) {
        let shared = Rc::new(msg);
        for dst in dsts {
            self.sends.push((dst, Payload::Shared(Rc::clone(&shared))));
        }
    }

    /// Arms a timer that fires `delay` ticks from now, delivered back via
    /// [`AsyncProcess::on_timer`] with the given id.
    pub fn set_timer(&mut self, delay: u64, timer: u64) {
        self.timers.push((delay, timer));
    }

    /// Drains the buffered actions (timers and sends, each in request
    /// order) while retaining buffer capacity for the next callback.
    pub(crate) fn drain_actions(&mut self) -> NetActions<'_, M> {
        NetActions {
            timers: self.timers.drain(..),
            sends: self.sends.drain(..),
        }
    }
}

/// The state a process carries across a planned crash: an opaque list of
/// words, snapshotted by [`AsyncProcess::save_durable`] when the crash
/// fires and handed back to [`AsyncProcess::restore_durable`] at recovery.
///
/// Protocols encode whatever their stable storage would hold (a Paxos
/// acceptor's promise and accepted ballot/value, a broadcast's delivered
/// flag); everything *not* encoded is, by convention, volatile and should
/// be wiped in `restore_durable`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableState {
    words: Vec<u64>,
}

impl DurableState {
    /// An empty snapshot.
    pub fn new() -> Self {
        DurableState::default()
    }

    /// Appends one word to the snapshot.
    pub fn push(&mut self, word: u64) {
        self.words.push(word);
    }

    /// Reads the `idx`-th word, if present.
    pub fn get(&self, idx: usize) -> Option<u64> {
        self.words.get(idx).copied()
    }

    /// The whole snapshot as a word slice.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of words in the snapshot.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl From<Vec<u64>> for DurableState {
    fn from(words: Vec<u64>) -> Self {
        DurableState { words }
    }
}

/// An event-driven protocol participant.
///
/// Unlike the round-based [`bne_byzantine::Process`], an `AsyncProcess`
/// never sees global rounds — only message arrivals and its own timers.
/// Round-based processes run unchanged through
/// [`crate::adapter::RoundAdapter`].
///
/// # The crash-recovery lifecycle
///
/// When a [`crate::FaultPlan`] crashes this process, the runtime calls
/// [`AsyncProcess::on_crash`], snapshots [`AsyncProcess::save_durable`],
/// and stops delivering events (they are absorbed and counted as
/// [`NetStats::crashed_drops`]). At the planned recovery time it calls
/// [`AsyncProcess::restore_durable`] with the snapshot (if one was saved)
/// and then [`AsyncProcess::on_recover`], from which the process may send
/// and re-arm timers — pending timers armed before the crash were
/// absorbed, so a timer-driven protocol must re-arm here to stay live.
///
/// The defaults give *suspend/resume* semantics: `save_durable` returns
/// `None`, so in-memory state silently survives and a crash window is
/// pure event omission. Protocols modeling real stable storage return a
/// snapshot of their durable fraction and wipe everything volatile in
/// `restore_durable`.
pub trait AsyncProcess {
    /// The message type exchanged by this protocol.
    type Msg: Clone;

    /// Called once at virtual time 0, before any event.
    fn on_start(&mut self, ctx: &mut NetCtx<Self::Msg>);

    /// Called when a message from `src` is delivered.
    fn on_message(&mut self, src: ProcId, msg: Self::Msg, ctx: &mut NetCtx<Self::Msg>);

    /// Called when a timer armed via [`NetCtx::set_timer`] fires.
    /// Defaults to doing nothing.
    fn on_timer(&mut self, timer: u64, ctx: &mut NetCtx<Self::Msg>) {
        let _ = (timer, ctx);
    }

    /// Called when a planned crash fires, immediately before the durable
    /// snapshot is taken. Defaults to doing nothing.
    fn on_crash(&mut self) {}

    /// Called when a planned recovery fires, immediately after
    /// [`AsyncProcess::restore_durable`]. Defaults to doing nothing.
    fn on_recover(&mut self, ctx: &mut NetCtx<Self::Msg>) {
        let _ = ctx;
    }

    /// Snapshots the state that survives a crash. Defaults to `None`,
    /// meaning the whole in-memory state survives (suspend/resume).
    fn save_durable(&self) -> Option<DurableState> {
        None
    }

    /// Restores a snapshot taken by [`AsyncProcess::save_durable`];
    /// implementations should reset everything volatile here. Only called
    /// when the crash-time snapshot was `Some`. Defaults to doing nothing.
    fn restore_durable(&mut self, state: &DurableState) {
        let _ = state;
    }

    /// The process's decision, if it has decided.
    fn decision(&self) -> Option<u64>;

    /// Clones this process, full volatile state included — the hook
    /// behind [`EventNet::snapshot`]. Unlike
    /// [`AsyncProcess::save_durable`] (which deliberately drops volatile
    /// state to model stable storage), a fork must preserve *everything*:
    /// the model checker restores it mid-protocol and expects identical
    /// future behavior. Defaults to `None`, meaning the process does not
    /// support checkpointing and `snapshot()` on its network fails.
    fn fork(&self) -> Option<Box<dyn AsyncProcess<Msg = Self::Msg>>> {
        None
    }

    /// A canonical encoding of the full local state, used by the model
    /// checker to deduplicate visited states. Two processes with equal
    /// `state_words` must behave identically on every future event.
    /// Defaults to `None` (no canonical encoding — exhaustive exploration
    /// with deduplication is unavailable for this process).
    fn state_words(&self) -> Option<Vec<u64>> {
        None
    }

    /// Whether this process has gone permanently quiet: it will never
    /// again send, arm a timer or change its decision, **on any future
    /// input**, and handling any two future messages in either order
    /// leaves it in the same state (its remaining updates commute — e.g.
    /// set-insert vote bookkeeping). The model checker uses this to
    /// linearize deliveries to quiescent processes instead of exploring
    /// their interleavings, so a wrong `true` here is a soundness bug
    /// (the POR-vs-full property tests in `tests/` guard the overrides).
    /// Defaults to `false` — no claim, no reduction.
    fn quiescent(&self) -> bool {
        false
    }

    /// Whether delivering `msg` from `src` to this process — now or
    /// after any sequence of further events — is a permanent behavioral
    /// no-op: no sends, no timers, no decision change, no
    /// [`AsyncProcess::state_words`] change. A duplicate vote or a
    /// message whose rule is behind an already-set one-shot flag
    /// qualifies; anything whose effect could be *revived* (e.g. a vote
    /// tally wiped by crash-recovery) does not, unless the fault model
    /// is crash-stop. The model checker dispatches absorbed deliveries
    /// as forced moves instead of exploring their interleavings; like
    /// [`AsyncProcess::quiescent`], a wrong `true` is a soundness bug
    /// guarded by the POR-vs-full property tests. Defaults to `false`.
    fn absorbs(&self, src: ProcId, msg: &Self::Msg) -> bool {
        let _ = (src, msg);
        false
    }

    /// Whether firing `timer` on this process — now or after any
    /// sequence of further events — is a permanent behavioral no-op: no
    /// sends, no re-arm, no decision change, no
    /// [`AsyncProcess::state_words`] change. A retry timer whose budget
    /// is exhausted (and which therefore will not be re-armed) qualifies;
    /// the same crash-stop caveat and property-test guard as
    /// [`AsyncProcess::absorbs`] apply. Defaults to `false`.
    fn timer_absorbed(&self, timer: u64) -> bool {
        let _ = timer;
        false
    }
}

/// A process that does nothing at all: no sends, no timers, no decision.
///
/// Useful as a placeholder participant (e.g. to pad a process vector to a
/// fixed `n`). For modeling a *crashed* participant, prefer
/// [`crate::FaultPlan::crash_at_start`], which works on any process and
/// is visible in the statistics.
pub struct IdleProcess<M: Clone> {
    _marker: std::marker::PhantomData<M>,
}

impl<M: Clone> IdleProcess<M> {
    /// Creates an inert process.
    pub fn new() -> Self {
        IdleProcess {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M: Clone> Default for IdleProcess<M> {
    fn default() -> Self {
        IdleProcess::new()
    }
}

impl<M: Clone + 'static> AsyncProcess for IdleProcess<M> {
    type Msg = M;
    fn on_start(&mut self, _ctx: &mut NetCtx<M>) {}
    fn on_message(&mut self, _src: ProcId, _msg: M, _ctx: &mut NetCtx<M>) {}
    fn decision(&self) -> Option<u64> {
        None
    }
    fn fork(&self) -> Option<Box<dyn AsyncProcess<Msg = M>>> {
        Some(Box::new(IdleProcess::new()))
    }
    fn state_words(&self) -> Option<Vec<u64>> {
        Some(Vec::new())
    }
    fn quiescent(&self) -> bool {
        true // does nothing, by construction
    }
}

#[derive(Clone)]
enum EventKind<M> {
    Deliver {
        src: ProcId,
        dst: ProcId,
        msg: Payload<M>,
        /// Virtual time the message was sent — carried so the delivery
        /// can be annotated with its queue latency (`deliver − send`).
        sent_at: u64,
        /// The sender's Lamport clock at send time (see
        /// [`EventNet::lamport_clocks`]).
        clk: u64,
    },
    Timer {
        proc: ProcId,
        timer: u64,
        /// Virtual time the timer was armed, so a firing can be
        /// annotated with its wait (`fire − arm`).
        armed_at: u64,
    },
    /// A planned crash from the fault plan (index into
    /// [`crate::FaultPlan::process`]).
    Crash { fault: usize },
    /// A planned recovery of a crashed process.
    Recover { proc: ProcId },
}

// ---------------------------------------------------------------------------
// The arena: payloads live in a slab, the queue moves 24-byte keys
// ---------------------------------------------------------------------------

/// Slab storage for in-flight events. Queue entries reference slots by
/// `u32` handle; freed slots are recycled through a free list, so a
/// steady-state run stops allocating once it reaches its peak in-flight
/// event count (the high-water mark reported in [`NetStats`]).
#[derive(Clone)]
struct Arena<M> {
    slots: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
}

impl<M> Arena<M> {
    fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, ev: EventKind<M>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(ev);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena capacity");
                self.slots.push(Some(ev));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> EventKind<M> {
        let ev = self.slots[slot as usize].take().expect("live arena slot");
        self.free.push(slot);
        ev
    }

    /// Slots ever allocated == peak number of concurrently live events.
    fn high_water(&self) -> usize {
        self.slots.len()
    }

    /// Borrows a live slot without freeing it — the model checker's
    /// read-only view of a queued event.
    fn peek(&self, slot: u32) -> &EventKind<M> {
        self.slots[slot as usize].as_ref().expect("live arena slot")
    }
}

// ---------------------------------------------------------------------------
// The timing wheel
// ---------------------------------------------------------------------------

/// Wheel horizon in ticks (must be a power of two). 64 covers every
/// latency model and scheduler delay in the workspace (the widest
/// near-future spread is heavy-tail latency at `base × 2^max_doublings`
/// plus scheduler jitter, ≈ 55 ticks); only far-future retry-backoff
/// timers overflow, and those are rare enough that the overflow heap is
/// cheap. Kept deliberately small because the ring is initialized per
/// `EventNet` — replica ensembles build millions of nets, so ring setup
/// cost is part of the hot path (64 × 32-byte buckets = one 2 KiB
/// write).
const WHEEL_SLOTS: usize = 64;
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// Within-tick ordering key of one queued event. `seq` is unique, so the
/// derived lexicographic order on `(tie, seq)` is total and `slot` is
/// never compared.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TickKey {
    tie: u64,
    seq: u64,
    slot: u32,
}

/// One per-tick bucket. Keys are appended; as long as appends arrive in
/// nondecreasing `(tie, seq)` order (the FIFO / monotone-sequence fast
/// path) the bucket needs no sorting at all, and a drain is a linear
/// scan. An out-of-order append (random tiebreaks, rushed deliveries into
/// a partially drained tick) marks the bucket dirty; the *undrained tail*
/// is then sorted lazily at the next pop — exactly reproducing the
/// global heap's "minimum of the remaining events" semantics.
#[derive(Default, Clone)]
struct Bucket {
    items: Vec<TickKey>,
    /// Drain cursor: `items[..next]` have been popped. `u32` keeps the
    /// bucket at 32 bytes — the ring is initialized per `EventNet`, so
    /// its footprint is construction cost.
    next: u32,
    /// Whether `items[next..]` needs sorting before the next pop.
    dirty: bool,
}

impl Bucket {
    fn push(&mut self, key: TickKey) {
        if !self.dirty {
            if let Some(last) = self.items.last() {
                if *last > key {
                    self.dirty = true;
                }
            }
        }
        self.items.push(key);
    }

    /// Pops the smallest remaining key. Caller guarantees non-emptiness.
    fn pop(&mut self) -> TickKey {
        let next = self.next as usize;
        if self.dirty {
            self.items[next..].sort_unstable();
            self.dirty = false;
        }
        let key = self.items[next];
        self.next += 1;
        if self.next as usize == self.items.len() {
            // fully drained: recycle the allocation for the next rotation
            self.items.clear();
            self.next = 0;
        }
        key
    }

    fn is_empty(&self) -> bool {
        self.next as usize == self.items.len()
    }
}

/// The bucketed timing wheel: per-tick buckets over
/// `[base, base + WHEEL_SLOTS)` plus an overflow heap for events beyond
/// the horizon. An occupancy bitmap makes "find the next non-empty tick"
/// a handful of word scans instead of a ring walk.
#[derive(Clone)]
struct TimingWheel {
    buckets: Vec<Bucket>,
    occupied: [u64; WHEEL_WORDS],
    /// Earliest time the wheel can hold; advances monotonically with
    /// every pop. The wheel covers `[base, base + WHEEL_SLOTS)`.
    base: u64,
    /// Events currently in buckets (excluding overflow).
    len: usize,
    /// Far-future events, keyed by the full `(time, tie, seq)` order.
    overflow: BinaryHeap<Reverse<(u64, u64, u64, u32)>>,
}

impl TimingWheel {
    fn new() -> Self {
        TimingWheel {
            buckets: (0..WHEEL_SLOTS).map(|_| Bucket::default()).collect(),
            occupied: [0; WHEEL_WORDS],
            base: 0,
            len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.len + self.overflow.len()
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    fn push(&mut self, time: u64, tie: u64, seq: u64, slot: u32) {
        debug_assert!(time >= self.base, "events are never scheduled in the past");
        if time - self.base < WHEEL_SLOTS as u64 {
            let idx = (time & WHEEL_MASK) as usize;
            self.buckets[idx].push(TickKey { tie, seq, slot });
            self.set_bit(idx);
            self.len += 1;
        } else {
            self.overflow.push(Reverse((time, tie, seq, slot)));
        }
    }

    /// Moves every overflow event that now fits the horizon into its
    /// bucket. Called whenever `base` advances.
    fn migrate_overflow(&mut self) {
        while let Some(&Reverse((time, tie, seq, slot))) = self.overflow.peek() {
            if time - self.base >= WHEEL_SLOTS as u64 {
                break;
            }
            self.overflow.pop();
            let idx = (time & WHEEL_MASK) as usize;
            self.buckets[idx].push(TickKey { tie, seq, slot });
            self.set_bit(idx);
            self.len += 1;
        }
    }

    /// Ring-scans the occupancy bitmap for the first occupied bucket at
    /// ring offset ≥ 0 from `start`, returning the offset. Caller
    /// guarantees `self.len > 0`.
    fn next_occupied_offset(&self, start: usize) -> usize {
        let word = start / 64;
        let bit = start % 64;
        let masked = self.occupied[word] & (!0u64 << bit);
        if masked != 0 {
            return word * 64 + masked.trailing_zeros() as usize - start;
        }
        for i in 1..=WHEEL_WORDS {
            let mut w = word + i;
            if w >= WHEEL_WORDS {
                w -= WHEEL_WORDS;
            }
            let bits = self.occupied[w];
            if bits != 0 {
                let pos = w * 64 + bits.trailing_zeros() as usize;
                return (pos + WHEEL_SLOTS - start) % WHEEL_SLOTS;
            }
        }
        unreachable!("next_occupied_offset called on an empty wheel")
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            // nothing inside the horizon: jump straight to the overflow
            let &Reverse((time, ..)) = self.overflow.peek()?;
            self.base = time;
            self.migrate_overflow();
            debug_assert!(self.len > 0);
        }
        let start = (self.base & WHEEL_MASK) as usize;
        let offset = self.next_occupied_offset(start);
        let time = self.base + offset as u64;
        let idx = (start + offset) % WHEEL_SLOTS;
        let key = self.buckets[idx].pop();
        self.len -= 1;
        if self.buckets[idx].is_empty() {
            self.clear_bit(idx);
        }
        if time > self.base {
            // the horizon slid forward: admit newly-eligible overflow
            self.base = time;
            self.migrate_overflow();
        }
        Some((time, key.slot))
    }

    /// Every queued `(time, tie, seq, slot)` key, unsorted. Buckets only
    /// hold times in `[base, base + WHEEL_SLOTS)`, so the ring offset
    /// reconstructs each key's absolute time.
    fn keys(&self, out: &mut Vec<(u64, u64, u64, u32)>) {
        for offset in 0..WHEEL_SLOTS as u64 {
            let time = self.base + offset;
            let bucket = &self.buckets[(time & WHEEL_MASK) as usize];
            for key in &bucket.items[bucket.next as usize..] {
                out.push((time, key.tie, key.seq, key.slot));
            }
        }
        for &Reverse(key) in &self.overflow {
            out.push(key);
        }
    }

    /// Removes one specific queued key (the model checker's out-of-order
    /// dispatch). Returns whether the key was present.
    fn remove(&mut self, time: u64, tie: u64, seq: u64, slot: u32) -> bool {
        if time >= self.base && time - self.base < WHEEL_SLOTS as u64 {
            let idx = (time & WHEEL_MASK) as usize;
            let bucket = &mut self.buckets[idx];
            let next = bucket.next as usize;
            let Some(pos) = bucket.items[next..]
                .iter()
                .position(|k| k.tie == tie && k.seq == seq && k.slot == slot)
            else {
                return false;
            };
            // removal preserves the relative order of the undrained tail,
            // so the bucket's dirty flag stays valid as-is
            bucket.items.remove(next + pos);
            self.len -= 1;
            if bucket.is_empty() {
                bucket.items.clear();
                bucket.next = 0;
                bucket.dirty = false;
                self.clear_bit(idx);
            }
            true
        } else {
            let before = self.overflow.len();
            self.overflow
                .retain(|&Reverse(key)| key != (time, tie, seq, slot));
            before != self.overflow.len()
        }
    }
}

/// The two interchangeable queue implementations behind [`EventNet`].
/// Both realize the `(time, tie, seq)` total order exactly; see
/// [`QueueImpl`].
#[derive(Clone)]
enum EventQueue {
    Wheel(TimingWheel),
    Heap(BinaryHeap<Reverse<(u64, u64, u64, u32)>>),
}

impl EventQueue {
    fn new(impl_choice: QueueImpl) -> Self {
        match impl_choice {
            QueueImpl::Wheel => EventQueue::Wheel(TimingWheel::new()),
            QueueImpl::Heap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    fn push(&mut self, time: u64, tie: u64, seq: u64, slot: u32) {
        match self {
            EventQueue::Wheel(wheel) => wheel.push(time, tie, seq, slot),
            EventQueue::Heap(heap) => heap.push(Reverse((time, tie, seq, slot))),
        }
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        match self {
            EventQueue::Wheel(wheel) => wheel.pop(),
            EventQueue::Heap(heap) => heap.pop().map(|Reverse((time, _, _, slot))| (time, slot)),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(wheel) => wheel.len(),
            EventQueue::Heap(heap) => heap.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every queued key, sorted by the `(time, tie, seq)` total order.
    fn keys(&self) -> Vec<(u64, u64, u64, u32)> {
        let mut out = Vec::with_capacity(self.len());
        match self {
            EventQueue::Wheel(wheel) => wheel.keys(&mut out),
            EventQueue::Heap(heap) => out.extend(heap.iter().map(|&Reverse(key)| key)),
        }
        out.sort_unstable();
        out
    }

    /// Removes one specific queued key; returns whether it was present.
    fn remove(&mut self, time: u64, tie: u64, seq: u64, slot: u32) -> bool {
        match self {
            EventQueue::Wheel(wheel) => wheel.remove(time, tie, seq, slot),
            EventQueue::Heap(heap) => {
                let before = heap.len();
                heap.retain(|&Reverse(key)| key != (time, tie, seq, slot));
                before != heap.len()
            }
        }
    }
}

/// The decoded class of one pending queue event, as seen by
/// [`EventNet::enabled_events`]. Payloads stay in the arena; the model
/// checker reads them through [`EventNet::event_msg`] when it needs the
/// message for state fingerprinting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnabledKind {
    /// A pending message delivery `src → dst`.
    Deliver {
        /// Sending process.
        src: ProcId,
        /// Receiving process.
        dst: ProcId,
    },
    /// A pending timer firing.
    Timer {
        /// Timer owner.
        proc: ProcId,
        /// Timer id (as passed to [`NetCtx::set_timer`]).
        timer: u64,
    },
    /// A planned crash from the fault plan.
    Crash {
        /// The process the fault targets.
        proc: ProcId,
    },
    /// A planned recovery of a crashed process.
    Recover {
        /// The recovering process.
        proc: ProcId,
    },
}

impl EnabledKind {
    /// The process whose state this event can affect — the dependency
    /// class the partial-order reduction groups by.
    pub fn target(&self) -> ProcId {
        match *self {
            EnabledKind::Deliver { dst, .. } => dst,
            EnabledKind::Timer { proc, .. }
            | EnabledKind::Crash { proc }
            | EnabledKind::Recover { proc } => proc,
        }
    }
}

/// One pending event of the queue, decoded for the model checker's
/// choice enumeration: the `(time, tie, seq)` total-order key (`seq` is
/// unique per event) plus the decoded [`EnabledKind`]. Obtained from
/// [`EventNet::enabled_events`] and consumed by
/// [`EventNet::step_chosen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnabledEvent {
    /// Scheduled virtual time.
    pub time: u64,
    /// Scheduler tiebreak.
    pub tie: u64,
    /// Unique sequence number (the event's identity).
    pub seq: u64,
    /// Arena slot (private: only meaningful to the owning net).
    slot: u32,
    /// Decoded event class.
    pub kind: EnabledKind,
}

/// Where trace events go: nowhere (the benchmark/ensemble fast path pays
/// a single branch per record call and no memory traffic), an in-memory
/// log (the replay/property-test path), or a streaming [`Observer`]
/// (the observability path — hooks fire in event order with causal and
/// latency enrichment, see [`crate::obs`]).
enum TraceSink {
    Off,
    Record(Vec<TraceEvent>),
    Stream(Box<dyn Observer>),
}

/// The deterministic discrete-event network runtime.
pub struct EventNet<M: Clone> {
    procs: Vec<Box<dyn AsyncProcess<Msg = M>>>,
    queue: EventQueue,
    arena: Arena<M>,
    cfg: NetConfig,
    link_rng: StdRng,
    sched_rng: StdRng,
    now: u64,
    next_seq: u64,
    stats: NetStats,
    /// Incremental mirror of `queue.len()` (pushes minus pops), so peak
    /// tracking never traverses the queue.
    queue_len: usize,
    trace: TraceSink,
    decision_times: Vec<Option<u64>>,
    /// Recycled action buffer: one live callback at a time, so a single
    /// scratch context serves every event.
    scratch: Option<NetCtx<M>>,
    /// Which processes are currently crashed (events addressed to them
    /// are absorbed).
    crashed: Vec<bool>,
    /// Events (deliveries + timers) each process has handled; drives
    /// [`CrashTrigger::AfterEvents`]. Absorbed events do not count.
    handled: Vec<u64>,
    /// Durable snapshots taken at crash time, consumed at recovery.
    saved: Vec<Option<DurableState>>,
    /// Whether each process's [`AsyncProcess::on_start`] has run. A
    /// process crashed *at start* boots via `on_start` at recovery
    /// instead of `on_recover` — it never initialized.
    started: Vec<bool>,
    /// Which plan faults have already fired (each fires at most once).
    fault_fired: Vec<bool>,
    /// Per-process Lamport clocks, maintained unconditionally (sends,
    /// deliveries, timer firings and crash/recover transitions tick
    /// them) so the causal annotations handed to an [`Observer`] are
    /// identical whether or not one is attached.
    lamport: Vec<u64>,
}

impl<M: Clone> EventNet<M> {
    /// Builds the network and runs every process's
    /// [`AsyncProcess::on_start`] (in process-id order, at time 0).
    pub fn new(procs: Vec<Box<dyn AsyncProcess<Msg = M>>>, cfg: NetConfig) -> Self {
        let sink = if cfg.record_trace {
            TraceSink::Record(Vec::new())
        } else {
            TraceSink::Off
        };
        Self::with_sink(procs, cfg, sink)
    }

    /// Builds the network with a streaming [`Observer`] attached.
    ///
    /// The observer sees every event the trace would record — including
    /// the time-0 crashes and `on_start` sends that fire during
    /// construction — enriched with causal and latency metadata. It
    /// replaces the trace sink, so [`EventNet::trace`] stays empty and
    /// [`NetConfig::record_trace`] is ignored. Attaching an observer
    /// cannot perturb the execution: decisions, decision times and
    /// statistics are bit-identical to a [`NetConfig::record_trace`]`
    /// = false` run (property-tested in `tests/tests/net_obs.rs`).
    ///
    /// To read results out after the run, attach an
    /// `Rc<RefCell<impl Observer>>` and keep a clone of the handle (the
    /// blanket [`Observer`] impl forwards through it).
    pub fn with_observer(
        procs: Vec<Box<dyn AsyncProcess<Msg = M>>>,
        cfg: NetConfig,
        observer: Box<dyn Observer>,
    ) -> Self {
        Self::with_sink(procs, cfg, TraceSink::Stream(observer))
    }

    fn with_sink(
        procs: Vec<Box<dyn AsyncProcess<Msg = M>>>,
        cfg: NetConfig,
        trace: TraceSink,
    ) -> Self {
        assert!(cfg.round_ticks >= 1, "round_ticks must be at least 1");
        let sched_seed = match cfg.scheduler {
            SchedulerPolicy::RandomInterleave { seed, .. } => seed,
            _ => 0,
        };
        let n = procs.len();
        let fault_count = cfg.faults.process.len();
        let mut net = EventNet {
            queue: EventQueue::new(cfg.queue),
            arena: Arena::new(),
            link_rng: StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_LINK, 0)),
            sched_rng: StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_SCHEDULER, sched_seed)),
            trace,
            cfg,
            now: 0,
            next_seq: 0,
            stats: NetStats {
                recoveries: vec![0; n],
                ..NetStats::default()
            },
            queue_len: 0,
            procs: Vec::new(),
            decision_times: vec![None; n],
            scratch: None,
            crashed: vec![false; n],
            handled: vec![0; n],
            saved: (0..n).map(|_| None).collect(),
            started: vec![false; n],
            fault_fired: vec![false; fault_count],
            lamport: vec![0; n],
        };
        // install the processes before starting them, so destination
        // validity checks in `route` see the real process count; one
        // context serves every start callback (and seeds the scratch
        // buffer the event loop recycles)
        net.procs = procs;
        // enact the fault plan: time-0 crashes fire before any `on_start`
        // (the crash-at-start semantics replacing `SilentAsyncProcess`),
        // and later timed crashes are queued ahead of every send, so at
        // equal (time, tie) a planned crash beats a delivery
        let plan = net.cfg.faults.process.clone();
        for (i, fault) in plan.iter().enumerate() {
            assert!(
                fault.proc < n,
                "fault plan names process {} but the network has {n}",
                fault.proc
            );
            match fault.trigger {
                CrashTrigger::AtTime(0) => {
                    net.fault_fired[i] = true;
                    net.crash_proc(fault.proc, fault.recover_at);
                }
                CrashTrigger::AtTime(t) => net.push_event(t, 0, EventKind::Crash { fault: i }),
                CrashTrigger::AfterEvents(_) => {} // checked after each dispatch
            }
        }
        let mut ctx = NetCtx::new(0, n, 0);
        for id in 0..n {
            if net.crashed[id] {
                continue; // crashed at start: boots at recovery, if any
            }
            net.started[id] = true;
            ctx.reset(id, n, 0);
            net.procs[id].on_start(&mut ctx);
            net.note_decision(id);
            net.apply(id, &mut ctx);
        }
        net.scratch = Some(ctx);
        net
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        let mut stats = self.stats.clone();
        // both are implied by hot-path state — the arena never shrinks,
        // so its slot count IS the running high-water mark, and `now` is
        // the time of the last processed event — so neither is stored
        // per event
        stats.arena_high_water = self.arena.high_water();
        stats.virtual_time = self.now;
        stats
    }

    /// The recorded event trace (empty unless
    /// [`NetConfig::record_trace`] was set; a streaming observer
    /// replaces the in-memory log, so it is empty then too).
    pub fn trace(&self) -> &[TraceEvent] {
        match &self.trace {
            TraceSink::Off | TraceSink::Stream(_) => &[],
            TraceSink::Record(trace) => trace,
        }
    }

    /// The per-process Lamport clocks (in process-id order).
    ///
    /// Maintained unconditionally by the runtime: a send ticks the
    /// sender, a delivery sets the receiver to
    /// `max(local, sender-at-send) + 1`, and timer firings, crashes and
    /// recoveries tick the owning process. Absorbed events
    /// ([`NetStats::crashed_drops`]) tick nothing — the process saw
    /// nothing.
    pub fn lamport_clocks(&self) -> &[u64] {
        &self.lamport
    }

    /// The decisions of every process (in process-id order).
    pub fn decisions(&self) -> Vec<Option<u64>> {
        self.procs.iter().map(|p| p.decision()).collect()
    }

    /// The virtual time at which each process's [`AsyncProcess::decision`]
    /// first became `Some` (in process-id order; `None` for processes that
    /// never decided). This is the per-process *decision latency* the
    /// event-driven experiments report — for round-based protocols the
    /// round count is fixed, but for Bracha/Ben-Or it is the measured
    /// random variable.
    pub fn decision_times(&self) -> &[Option<u64>] {
        &self.decision_times
    }

    /// Records the decision time of `proc` if its decision just appeared.
    fn note_decision(&mut self, proc: ProcId) {
        if self.decision_times[proc].is_none() {
            if let Some(value) = self.procs[proc].decision() {
                self.decision_times[proc] = Some(self.now);
                if let TraceSink::Stream(obs) = &mut self.trace {
                    obs.on_decide(self.now, proc as u64, value);
                }
            }
        }
    }

    /// Whether `proc` is currently crashed under the fault plan.
    pub fn is_crashed(&self, proc: ProcId) -> bool {
        self.crashed[proc]
    }

    /// The canonical state encoding of one process
    /// ([`AsyncProcess::state_words`]) — the per-process component of
    /// the model checker's exact state fingerprint. `None` if the
    /// process has no canonical encoding.
    pub fn process_state_words(&self, proc: ProcId) -> Option<Vec<u64>> {
        self.procs[proc].state_words()
    }

    /// Whether `proc` claims permanent quiescence
    /// ([`AsyncProcess::quiescent`]) — the model checker's
    /// delivery-linearization hook.
    pub fn process_quiescent(&self, proc: ProcId) -> bool {
        self.procs[proc].quiescent()
    }

    /// Fires one planned crash. A fault firing while its target is
    /// already crashed is consumed without effect (in particular its
    /// recovery is *not* scheduled — the earlier crash owns the process
    /// until its own recovery, if any).
    fn crash_proc(&mut self, proc: ProcId, recover_at: Option<u64>) {
        if self.crashed[proc] {
            return;
        }
        self.procs[proc].on_crash();
        self.saved[proc] = self.procs[proc].save_durable();
        self.crashed[proc] = true;
        self.lamport[proc] += 1;
        let clk = self.lamport[proc];
        self.record(TraceKind::Crash, proc as u64, 0, 0, clk);
        if let Some(t) = recover_at {
            // a recovery time already in the past fires immediately
            self.push_event(t.max(self.now), 0, EventKind::Recover { proc });
        }
    }

    /// Bumps `proc`'s handled-event counter and fires any
    /// [`CrashTrigger::AfterEvents`] fault it has now reached.
    fn after_dispatch(&mut self, proc: ProcId) {
        if self.fault_fired.is_empty() {
            return; // no process faults: zero bookkeeping on the hot path
        }
        self.handled[proc] += 1;
        for i in 0..self.cfg.faults.process.len() {
            if self.fault_fired[i] {
                continue;
            }
            let fault = self.cfg.faults.process[i];
            if fault.proc == proc {
                if let CrashTrigger::AfterEvents(k) = fault.trigger {
                    if self.handled[proc] >= k {
                        self.fault_fired[i] = true;
                        self.crash_proc(proc, fault.recover_at);
                    }
                }
            }
        }
    }

    /// Routes one trace record to the active sink. `cause` and `clock`
    /// are the streaming enrichment (send/arm time and the acting
    /// process's Lamport clock); the in-memory log keeps the legacy
    /// 4-field [`TraceEvent`] and the disabled path is still a single
    /// branch on the `Off` discriminant.
    #[inline]
    fn record(&mut self, kind: TraceKind, src: u64, dst: u64, cause: u64, clock: u64) {
        let time = self.now;
        match &mut self.trace {
            TraceSink::Off => {}
            TraceSink::Record(trace) => trace.push(TraceEvent {
                time,
                kind,
                src,
                dst,
            }),
            TraceSink::Stream(obs) => match kind {
                TraceKind::Send => obs.on_send(time, src, dst, clock),
                TraceKind::Deliver => obs.on_deliver(time, src, dst, cause, clock),
                TraceKind::Drop => obs.on_drop(time, src, dst),
                TraceKind::Timer => obs.on_timer(time, src, dst, cause, clock),
                TraceKind::Crash => obs.on_crash(time, src, clock),
                TraceKind::Recover => obs.on_recover(time, src, clock),
                TraceKind::CrashDrop => obs.on_crash_drop(time, src, dst),
            },
        }
    }

    fn push_event(&mut self, time: u64, tie: u64, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.arena.alloc(kind);
        self.queue.push(time, tie, seq, slot);
        // incremental queue length (== self.queue.len()), so the peak
        // tracking costs two register ops instead of a queue traversal;
        // the arena high-water mark is monotone and is read off the
        // arena lazily in `stats()`
        self.queue_len += 1;
        if self.queue_len > self.stats.peak_queue_len {
            self.stats.peak_queue_len = self.queue_len;
        }
    }

    /// Applies the actions a callback buffered in its [`NetCtx`]: timers
    /// first, then sends, each in request order. The context's buffers
    /// are drained in place (capacity retained for the next event).
    fn apply(&mut self, src: ProcId, ctx: &mut NetCtx<M>) {
        let actions = ctx.drain_actions();
        for (delay, timer) in actions.timers {
            self.push_event(
                self.now.saturating_add(delay),
                0,
                EventKind::Timer {
                    proc: src,
                    timer,
                    armed_at: self.now,
                },
            );
        }
        for (dst, msg) in actions.sends {
            self.route(src, dst, msg);
        }
    }

    /// Routes one message: validity check, fault sampling, latency and
    /// scheduler policy, then enqueue (or drop). Dropped payloads are
    /// simply released — a shared multicast payload is never cloned for
    /// a recipient who does not receive it.
    fn route(&mut self, src: ProcId, dst: ProcId, msg: Payload<M>) {
        if dst >= self.procs.len() {
            return; // nonexistent destination: discarded, not counted
        }
        self.stats.messages_sent += 1;
        // a send is a local Lamport event; the clock value rides with the
        // queued delivery so the receiver can take max(local, sender) + 1
        self.lamport[src] += 1;
        let clk = self.lamport[src];
        self.record(TraceKind::Send, src as u64, dst as u64, 0, clk);
        if let Some(p) = &self.cfg.faults.link.partition {
            if p.severs(src, dst, self.now) {
                self.stats.messages_dropped += 1;
                self.record(TraceKind::Drop, src as u64, dst as u64, 0, 0);
                return;
            }
        }
        let drop_prob = self.cfg.faults.link.drop_prob;
        if drop_prob > 0.0 && self.link_rng.random_bool(drop_prob) {
            self.stats.messages_dropped += 1;
            self.record(TraceKind::Drop, src as u64, dst as u64, 0, 0);
            return;
        }
        let latency = self.cfg.latency.sample(&mut self.link_rng);
        let (time, tie) = match &self.cfg.scheduler {
            SchedulerPolicy::Fifo => (self.now.saturating_add(latency), 0),
            SchedulerPolicy::RandomInterleave { jitter, .. } => {
                let extra = if *jitter > 0 {
                    self.sched_rng.random_range(0..=*jitter)
                } else {
                    0
                };
                let tie = self.sched_rng.random::<u64>();
                (self.now.saturating_add(latency).saturating_add(extra), tie)
            }
            SchedulerPolicy::AdversarialRush {
                byzantine,
                honest_delay,
            } => {
                if byzantine.contains(&src) {
                    // rushed: instantaneous, ahead of same-tick honest
                    // deliveries (tie 0 sorts with timers, before any
                    // positive tie)
                    (self.now, 0)
                } else {
                    (
                        self.now
                            .saturating_add(latency)
                            .saturating_add(*honest_delay),
                        1,
                    )
                }
            }
        };
        self.push_event(
            time,
            tie,
            EventKind::Deliver {
                src,
                dst,
                msg,
                sent_at: self.now,
                clk,
            },
        );
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, slot)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time must be monotone");
        self.queue_len -= 1;
        self.dispatch(time, slot);
        true
    }

    /// Dispatches the event in `slot` at virtual time `time` (already
    /// removed from the queue by the caller).
    fn dispatch(&mut self, time: u64, slot: u32) {
        let advanced = time > self.now;
        self.now = time;
        if advanced {
            // a new tick began: the previous wheel bucket fully drained,
            // so sample the queue-depth timeline at this boundary
            if let TraceSink::Stream(obs) = &mut self.trace {
                obs.on_queue_depth(time, self.queue_len);
            }
        }
        self.stats.events_processed += 1;
        let event = self.arena.take(slot);
        let n = self.procs.len();
        let mut ctx = self.scratch.take().unwrap_or_else(|| NetCtx::new(0, n, 0));
        match event {
            EventKind::Deliver {
                src,
                dst,
                msg,
                sent_at,
                clk,
            } => {
                if self.crashed[dst] {
                    // absorbed: the shared payload is released without a clone
                    self.stats.crashed_drops += 1;
                    self.record(TraceKind::CrashDrop, src as u64, dst as u64, 0, 0);
                } else {
                    self.stats.messages_delivered += 1;
                    self.lamport[dst] = self.lamport[dst].max(clk) + 1;
                    let clock = self.lamport[dst];
                    self.record(TraceKind::Deliver, src as u64, dst as u64, sent_at, clock);
                    ctx.reset(dst, n, self.now);
                    // the last live reference moves out without cloning
                    self.procs[dst].on_message(src, msg.into_msg(), &mut ctx);
                    self.note_decision(dst);
                    self.apply(dst, &mut ctx);
                    self.after_dispatch(dst);
                }
            }
            EventKind::Timer {
                proc,
                timer,
                armed_at,
            } => {
                if self.crashed[proc] {
                    self.stats.crashed_drops += 1;
                    self.record(TraceKind::CrashDrop, proc as u64, timer, 0, 0);
                } else {
                    self.stats.timers_fired += 1;
                    self.lamport[proc] += 1;
                    let clock = self.lamport[proc];
                    self.record(TraceKind::Timer, proc as u64, timer, armed_at, clock);
                    ctx.reset(proc, n, self.now);
                    self.procs[proc].on_timer(timer, &mut ctx);
                    self.note_decision(proc);
                    self.apply(proc, &mut ctx);
                    self.after_dispatch(proc);
                }
            }
            EventKind::Crash { fault } => {
                let fault = self.cfg.faults.process[fault];
                self.crash_proc(fault.proc, fault.recover_at);
            }
            EventKind::Recover { proc } => {
                self.lamport[proc] += 1;
                let clock = self.lamport[proc];
                self.record(TraceKind::Recover, proc as u64, 0, 0, clock);
                if self.crashed[proc] {
                    self.crashed[proc] = false;
                    self.stats.recoveries[proc] += 1;
                    if let Some(state) = self.saved[proc].take() {
                        self.procs[proc].restore_durable(&state);
                    }
                    ctx.reset(proc, n, self.now);
                    if self.started[proc] {
                        self.procs[proc].on_recover(&mut ctx);
                    } else {
                        // crashed before it ever initialized: recovery
                        // is a (late) boot, not a resume
                        self.started[proc] = true;
                        self.procs[proc].on_start(&mut ctx);
                    }
                    self.note_decision(proc);
                    self.apply(proc, &mut ctx);
                }
            }
        }
        self.scratch = Some(ctx);
    }

    /// Runs until the event queue drains or `max_events` have been
    /// processed; returns `true` if the queue drained.
    pub fn run(&mut self, max_events: usize) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        self.queue.is_empty()
    }

    // -----------------------------------------------------------------
    // The model-checker surface: enabled-set enumeration, out-of-order
    // dispatch, crash injection and whole-runtime snapshots
    // -----------------------------------------------------------------

    /// Number of events currently queued.
    pub fn pending_events(&self) -> usize {
        self.queue_len
    }

    /// Every pending queue event, decoded and sorted by the
    /// `(time, tie, seq)` total order — the model checker's choice set.
    /// `step()` always dispatches the first entry; [`Self::step_chosen`]
    /// dispatches any of them.
    pub fn enabled_events(&self) -> Vec<EnabledEvent> {
        self.queue
            .keys()
            .into_iter()
            .map(|(time, tie, seq, slot)| {
                let kind = match self.arena.peek(slot) {
                    EventKind::Deliver { src, dst, .. } => EnabledKind::Deliver {
                        src: *src,
                        dst: *dst,
                    },
                    EventKind::Timer { proc, timer, .. } => EnabledKind::Timer {
                        proc: *proc,
                        timer: *timer,
                    },
                    EventKind::Crash { fault } => EnabledKind::Crash {
                        proc: self.cfg.faults.process[*fault].proc,
                    },
                    EventKind::Recover { proc } => EnabledKind::Recover { proc: *proc },
                };
                EnabledEvent {
                    time,
                    tie,
                    seq,
                    slot,
                    kind,
                }
            })
            .collect()
    }

    /// Borrows the message payload of a pending [`EnabledKind::Deliver`]
    /// event (`None` for timers and lifecycle events) — the read-only
    /// view state fingerprinting uses.
    pub fn event_msg(&self, ev: &EnabledEvent) -> Option<&M> {
        match self.arena.peek(ev.slot) {
            EventKind::Deliver { msg, .. } => Some(msg.as_msg()),
            _ => None,
        }
    }

    /// Whether a pending delivery or timer would be absorbed by its
    /// (live) target as a permanent behavioral no-op
    /// ([`AsyncProcess::absorbs`] / [`AsyncProcess::timer_absorbed`]);
    /// `false` for other events.
    pub fn event_absorbed(&self, ev: &EnabledEvent) -> bool {
        match self.arena.peek(ev.slot) {
            EventKind::Deliver { src, dst, msg, .. } => {
                self.procs[*dst].absorbs(*src, msg.as_msg())
            }
            EventKind::Timer { proc, timer, .. } => self.procs[*proc].timer_absorbed(*timer),
            _ => false,
        }
    }

    /// Dispatches one specific pending event, ignoring the queue order —
    /// the model checker's transition relation. The event's virtual time
    /// is clamped to `max(now, event time)` so time stays monotone even
    /// when a later-scheduled event is chosen first. Returns `false` if
    /// `ev` is not (or no longer) pending.
    ///
    /// Only meaningful views from [`Self::enabled_events`] on *this* net
    /// (or a snapshot-restored copy of it, where slots coincide) should
    /// be passed in.
    pub fn step_chosen(&mut self, ev: &EnabledEvent) -> bool {
        if !self.queue.remove(ev.time, ev.tie, ev.seq, ev.slot) {
            return false;
        }
        self.queue_len -= 1;
        self.dispatch(ev.time.max(self.now), ev.slot);
        true
    }

    /// Crashes `proc` immediately, crash-stop style (no scheduled
    /// recovery): the model checker's crash-choice hook, letting the
    /// explorer place a crash *anywhere* in the schedule instead of at a
    /// preplanned trigger. Production runs should keep using
    /// [`crate::FaultPlan`]. A no-op if `proc` is already crashed.
    pub fn inject_crash(&mut self, proc: ProcId) {
        assert!(proc < self.procs.len(), "inject_crash: no such process");
        self.crash_proc(proc, None);
    }

    /// Captures the entire runtime state — processes (via
    /// [`AsyncProcess::fork`]), queue, arena, RNG streams, fault and
    /// clock bookkeeping — as a restorable checkpoint.
    ///
    /// Returns `None` if any process does not implement `fork`, or if a
    /// streaming observer is attached (observers are not cloneable; the
    /// in-memory trace sink is snapshotted fine). Cost is one clone of
    /// every live structure: for the small models the checker targets
    /// (n ≤ 5, tens of pending events) that is a few microseconds.
    pub fn snapshot(&self) -> Option<NetSnapshot<M>> {
        let mut procs = Vec::with_capacity(self.procs.len());
        for p in &self.procs {
            procs.push(p.fork()?);
        }
        let trace = match &self.trace {
            TraceSink::Off => None,
            TraceSink::Record(t) => Some(t.clone()),
            TraceSink::Stream(_) => return None,
        };
        Some(NetSnapshot {
            procs,
            queue: self.queue.clone(),
            arena: self.arena.clone(),
            link_rng: self.link_rng.clone(),
            sched_rng: self.sched_rng.clone(),
            now: self.now,
            next_seq: self.next_seq,
            stats: self.stats.clone(),
            queue_len: self.queue_len,
            trace,
            decision_times: self.decision_times.clone(),
            crashed: self.crashed.clone(),
            handled: self.handled.clone(),
            saved: self.saved.clone(),
            started: self.started.clone(),
            fault_fired: self.fault_fired.clone(),
            lamport: self.lamport.clone(),
        })
    }

    /// Rewinds the runtime to a [`Self::snapshot`] taken earlier on this
    /// same net (configuration included). The snapshot stays valid and
    /// can be restored any number of times — the backtracking step of
    /// the model checker's depth-first search.
    pub fn restore(&mut self, snap: &NetSnapshot<M>) {
        self.procs = snap
            .procs
            .iter()
            .map(|p| p.fork().expect("snapshotted processes support fork"))
            .collect();
        self.queue = snap.queue.clone();
        self.arena = snap.arena.clone();
        self.link_rng = snap.link_rng.clone();
        self.sched_rng = snap.sched_rng.clone();
        self.now = snap.now;
        self.next_seq = snap.next_seq;
        self.stats = snap.stats.clone();
        self.queue_len = snap.queue_len;
        if let (TraceSink::Record(t), Some(s)) = (&mut self.trace, &snap.trace) {
            t.clear();
            t.extend_from_slice(s);
        }
        self.decision_times.clone_from(&snap.decision_times);
        self.crashed.clone_from(&snap.crashed);
        self.handled.clone_from(&snap.handled);
        self.saved.clone_from(&snap.saved);
        self.started.clone_from(&snap.started);
        self.fault_fired.clone_from(&snap.fault_fired);
        self.lamport.clone_from(&snap.lamport);
    }
}

/// A point-in-time checkpoint of an [`EventNet`], produced by
/// [`EventNet::snapshot`] and consumed (repeatedly, if needed) by
/// [`EventNet::restore`]. Opaque: it is only meaningful to the net (and
/// configuration) it was taken from.
pub struct NetSnapshot<M: Clone> {
    procs: Vec<Box<dyn AsyncProcess<Msg = M>>>,
    queue: EventQueue,
    arena: Arena<M>,
    link_rng: StdRng,
    sched_rng: StdRng,
    now: u64,
    next_seq: u64,
    stats: NetStats,
    queue_len: usize,
    /// The in-memory trace log at snapshot time (`None` when the sink
    /// was off; streaming sinks refuse to snapshot).
    trace: Option<Vec<TraceEvent>>,
    decision_times: Vec<Option<u64>>,
    crashed: Vec<bool>,
    handled: Vec<u64>,
    saved: Vec<Option<DurableState>>,
    started: Vec<bool>,
    fault_fired: Vec<bool>,
    lamport: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FaultPlan, LatencyModel, LinkFaults, Partition};

    /// Echoes every received message back to its sender, once.
    struct Echo {
        got: Vec<(ProcId, u64)>,
        decided: Option<u64>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                got: Vec::new(),
                decided: None,
            }
        }
    }

    impl AsyncProcess for Echo {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
            if ctx.id() == 0 {
                for d in 1..ctx.n() {
                    ctx.send(d, d as u64 * 10);
                }
            }
        }
        fn on_message(&mut self, src: ProcId, msg: u64, ctx: &mut NetCtx<u64>) {
            self.got.push((src, msg));
            if ctx.id() != 0 {
                ctx.send(src, msg + 1);
            }
            self.decided = Some(msg);
        }
        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    fn echo_net(cfg: NetConfig, n: usize) -> EventNet<u64> {
        let procs: Vec<Box<dyn AsyncProcess<Msg = u64>>> =
            (0..n).map(|_| Box::new(Echo::new()) as _).collect();
        EventNet::new(procs, cfg)
    }

    #[test]
    fn fifo_zero_latency_echo_round_trip() {
        let mut net = echo_net(NetConfig::lockstep(0), 4);
        assert!(net.run(1_000));
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 6); // 3 out + 3 echoes
        assert_eq!(stats.messages_delivered, 6);
        assert_eq!(stats.messages_dropped, 0);
        assert_eq!(net.decisions()[0], Some(31)); // last echo processed: 30 + 1
    }

    #[test]
    fn traces_are_deterministic_and_replayable() {
        let cfg = NetConfig {
            latency: LatencyModel::UniformJitter { min: 0, max: 9 },
            scheduler: SchedulerPolicy::RandomInterleave { seed: 3, jitter: 4 },
            faults: LinkFaults::lossy(0.2).into(),
            ..NetConfig::lockstep(77)
        }
        .with_trace();
        let mut a = echo_net(cfg.clone(), 5);
        let mut b = echo_net(cfg, 5);
        assert!(a.run(10_000));
        assert!(b.run(10_000));
        assert!(!a.trace().is_empty());
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.decisions(), b.decisions());
    }

    #[test]
    fn different_scheduler_seeds_change_the_trace() {
        let cfg = |seed| {
            NetConfig {
                latency: LatencyModel::Constant(2),
                scheduler: SchedulerPolicy::RandomInterleave { seed, jitter: 6 },
                ..NetConfig::lockstep(1)
            }
            .with_trace()
        };
        let mut a = echo_net(cfg(1), 6);
        let mut b = echo_net(cfg(2), 6);
        assert!(a.run(10_000));
        assert!(b.run(10_000));
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn partition_drops_cross_cut_messages_until_heal() {
        // process 0 is cut off from everyone until tick 100; all its
        // initial sends at time 0 die, so nothing ever echoes back.
        let cfg = NetConfig {
            faults: LinkFaults {
                drop_prob: 0.0,
                partition: Some(Partition::until([0usize].into_iter().collect(), 100)),
            }
            .into(),
            ..NetConfig::lockstep(0)
        };
        let mut net = echo_net(cfg, 4);
        assert!(net.run(1_000));
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 3);
        assert_eq!(stats.messages_dropped, 3);
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(net.decisions(), vec![None; 4]);
    }

    #[test]
    fn rushing_scheduler_delivers_byzantine_first() {
        /// Records global arrival order at process 2.
        struct Recorder {
            order: Vec<ProcId>,
        }
        impl AsyncProcess for Recorder {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
                // both 0 (honest) and 1 (byzantine) send to 2 at time 0;
                // 0's send is buffered first
                if ctx.id() < 2 {
                    ctx.send(2, ctx.id() as u64);
                }
            }
            fn on_message(&mut self, src: ProcId, _msg: u64, _ctx: &mut NetCtx<u64>) {
                self.order.push(src);
            }
            fn decision(&self) -> Option<u64> {
                self.order.first().map(|&p| p as u64)
            }
        }
        let cfg = NetConfig {
            scheduler: SchedulerPolicy::AdversarialRush {
                byzantine: [1usize].into_iter().collect(),
                honest_delay: 5,
            },
            ..NetConfig::lockstep(0)
        };
        let procs: Vec<Box<dyn AsyncProcess<Msg = u64>>> = (0..3)
            .map(|_| Box::new(Recorder { order: Vec::new() }) as _)
            .collect();
        let mut net = EventNet::new(procs, cfg);
        assert!(net.run(100));
        // the byzantine message from 1 arrives before the honest one from 0
        assert_eq!(net.decisions()[2], Some(1));
    }

    #[test]
    fn multicast_matches_per_recipient_sends() {
        /// Process 0 fans one message out to everyone else, either via
        /// `multicast` or via a per-recipient `send` loop.
        struct Caster {
            use_multicast: bool,
            sum: u64,
        }
        impl AsyncProcess for Caster {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
                if ctx.id() == 0 {
                    if self.use_multicast {
                        ctx.multicast(1..ctx.n(), 7);
                    } else {
                        for d in 1..ctx.n() {
                            ctx.send(d, 7);
                        }
                    }
                }
            }
            fn on_message(&mut self, src: ProcId, msg: u64, _ctx: &mut NetCtx<u64>) {
                self.sum += msg + src as u64;
            }
            fn decision(&self) -> Option<u64> {
                Some(self.sum)
            }
        }
        let run = |use_multicast: bool| {
            let cfg = NetConfig {
                latency: LatencyModel::UniformJitter { min: 0, max: 4 },
                scheduler: crate::model::SchedulerPolicy::RandomInterleave { seed: 9, jitter: 2 },
                faults: LinkFaults::lossy(0.25).into(),
                ..NetConfig::lockstep(44)
            }
            .with_trace();
            let procs: Vec<Box<dyn AsyncProcess<Msg = u64>>> = (0..6)
                .map(|_| {
                    Box::new(Caster {
                        use_multicast,
                        sum: 0,
                    }) as _
                })
                .collect();
            let mut net = EventNet::new(procs, cfg);
            assert!(net.run(10_000));
            (net.trace().to_vec(), net.stats(), net.decisions())
        };
        // identical traces, stats and decisions: only the allocation
        // profile differs between the two fan-out styles
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn multicast_payload_is_cloned_lazily() {
        use std::cell::Cell;

        /// A payload that counts how many times it is cloned.
        #[derive(Debug)]
        struct Counted {
            clones: Rc<Cell<usize>>,
        }
        impl Clone for Counted {
            fn clone(&self) -> Self {
                self.clones.set(self.clones.get() + 1);
                Counted {
                    clones: Rc::clone(&self.clones),
                }
            }
        }
        struct Fan {
            clones: Rc<Cell<usize>>,
            got: usize,
        }
        impl AsyncProcess for Fan {
            type Msg = Counted;
            fn on_start(&mut self, ctx: &mut NetCtx<Counted>) {
                if ctx.id() == 0 {
                    let msg = Counted {
                        clones: Rc::clone(&self.clones),
                    };
                    ctx.multicast(1..ctx.n(), msg);
                }
            }
            fn on_message(&mut self, _s: ProcId, _m: Counted, _c: &mut NetCtx<Counted>) {
                self.got += 1;
            }
            fn decision(&self) -> Option<u64> {
                Some(self.got as u64)
            }
        }
        let n = 8;
        let run = |cfg: NetConfig| {
            let clones = Rc::new(Cell::new(0));
            let procs: Vec<Box<dyn AsyncProcess<Msg = Counted>>> = (0..n)
                .map(|_| {
                    Box::new(Fan {
                        clones: Rc::clone(&clones),
                        got: 0,
                    }) as _
                })
                .collect();
            let mut net = EventNet::new(procs, cfg);
            assert!(net.run(10_000));
            (clones.get(), net.stats())
        };
        // all delivered: n - 1 recipients share one payload; the last
        // delivery moves it out, so only n - 2 clones happen
        let (clones, stats) = run(NetConfig::lockstep(0));
        assert_eq!(stats.messages_delivered, n - 1);
        assert_eq!(clones, n - 2);
        // everything dropped by a partition: zero clones ever
        let (clones, stats) = run(NetConfig {
            faults: LinkFaults {
                drop_prob: 0.0,
                partition: Some(Partition::until([0usize].into_iter().collect(), 100)),
            }
            .into(),
            ..NetConfig::lockstep(0)
        });
        assert_eq!(stats.messages_dropped, n - 1);
        assert_eq!(clones, 0);
    }

    #[test]
    fn messages_to_invalid_destinations_are_discarded_uncounted() {
        struct Bad;
        impl AsyncProcess for Bad {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
                ctx.send(99, 1);
            }
            fn on_message(&mut self, _s: ProcId, _m: u64, _c: &mut NetCtx<u64>) {}
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let mut net = EventNet::new(
            vec![Box::new(Bad) as Box<dyn AsyncProcess<Msg = u64>>],
            NetConfig::lockstep(0),
        );
        assert!(net.run(10));
        assert_eq!(net.stats().messages_sent, 0);
    }

    /// A process that arms one far-future timer chain — each hop longer
    /// than the wheel horizon — to exercise the overflow path.
    struct LongTimer {
        hops: u64,
        fired: Vec<u64>,
    }
    impl AsyncProcess for LongTimer {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
            // several timers straddling the horizon in one batch, armed
            // out of target-time order
            ctx.set_timer(5_000, 1);
            ctx.set_timer(3, 2);
            ctx.set_timer(70_000, 3);
            ctx.set_timer(1_500, 4);
        }
        fn on_message(&mut self, _s: ProcId, _m: u64, _c: &mut NetCtx<u64>) {}
        fn on_timer(&mut self, timer: u64, ctx: &mut NetCtx<u64>) {
            self.fired.push(timer);
            if timer == 3 && self.hops > 0 {
                self.hops -= 1;
                ctx.set_timer(10_000, 3); // keep hopping past the horizon
            }
        }
        fn decision(&self) -> Option<u64> {
            None
        }
    }

    #[test]
    fn far_future_timers_cross_the_wheel_horizon_in_order() {
        for queue in [QueueImpl::Wheel, QueueImpl::Heap] {
            let procs: Vec<Box<dyn AsyncProcess<Msg = u64>>> = vec![Box::new(LongTimer {
                hops: 3,
                fired: Vec::new(),
            })];
            let mut net = EventNet::new(procs, NetConfig::lockstep(0).with_queue(queue));
            assert!(net.run(1_000), "{queue:?} must drain");
            assert_eq!(net.now(), 70_000 + 3 * 10_000);
            assert_eq!(net.stats().events_processed, 4 + 3);
        }
    }

    #[test]
    fn wheel_and_heap_produce_identical_executions() {
        let cfg = |queue| {
            NetConfig {
                latency: LatencyModel::UniformJitter { min: 0, max: 9 },
                scheduler: SchedulerPolicy::RandomInterleave { seed: 3, jitter: 4 },
                faults: LinkFaults::lossy(0.2).into(),
                ..NetConfig::lockstep(77)
            }
            .with_trace()
            .with_queue(queue)
        };
        let mut wheel = echo_net(cfg(QueueImpl::Wheel), 6);
        let mut heap = echo_net(cfg(QueueImpl::Heap), 6);
        assert!(wheel.run(10_000));
        assert!(heap.run(10_000));
        assert!(!wheel.trace().is_empty());
        assert_eq!(wheel.trace(), heap.trace());
        assert_eq!(wheel.stats(), heap.stats());
        assert_eq!(wheel.decisions(), heap.decisions());
    }

    #[test]
    fn work_counters_track_queue_and_arena_peaks() {
        let mut net = echo_net(NetConfig::lockstep(0), 5);
        assert!(net.run(1_000));
        let stats = net.stats();
        // 4 initial sends queue up before anything is processed
        assert_eq!(stats.peak_queue_len, 4);
        // slots are recycled: the arena never grows past the peak
        assert_eq!(stats.arena_high_water, 4);
        assert_eq!(stats.events_processed, 8);
    }

    #[test]
    fn crash_at_start_suppresses_on_start_and_absorbs_deliveries() {
        // process 1 never runs: no echo back, and the delivery addressed
        // to it is absorbed as a crashed drop rather than delivered
        let cfg = NetConfig {
            faults: FaultPlan::none().crash_at_start(1),
            ..NetConfig::lockstep(0)
        }
        .with_trace();
        let mut net = echo_net(cfg, 4);
        assert!(net.run(1_000));
        assert!(net.is_crashed(1));
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 3 + 2); // 3 out, 2 echoes
        assert_eq!(stats.messages_delivered, 4);
        assert_eq!(stats.crashed_drops, 1);
        assert_eq!(stats.recoveries, vec![0; 4]);
        assert_eq!(net.decisions()[1], None);
        assert_eq!(
            net.trace()[0],
            TraceEvent {
                time: 0,
                kind: TraceKind::Crash,
                src: 1,
                dst: 0
            }
        );
        assert!(net
            .trace()
            .iter()
            .any(|e| e.kind == TraceKind::CrashDrop && e.dst == 1));
    }

    #[test]
    fn crash_after_k_events_halts_mid_execution() {
        // Echo process 0 handles 3 deliveries (the echoes); crash it
        // after the first, so the remaining two are absorbed.
        let cfg = NetConfig {
            faults: FaultPlan::none().crash(0, 1),
            ..NetConfig::lockstep(0)
        };
        let mut net = echo_net(cfg, 4);
        assert!(net.run(1_000));
        assert!(net.is_crashed(0));
        let stats = net.stats();
        assert_eq!(stats.messages_delivered, 4); // 3 pings + 1 echo
        assert_eq!(stats.crashed_drops, 2);
    }

    #[test]
    fn crash_after_infinite_events_is_bit_identical_to_fault_free() {
        let base = NetConfig {
            latency: LatencyModel::UniformJitter { min: 0, max: 9 },
            scheduler: SchedulerPolicy::RandomInterleave { seed: 3, jitter: 4 },
            faults: LinkFaults::lossy(0.2).into(),
            ..NetConfig::lockstep(77)
        }
        .with_trace();
        let planned = NetConfig {
            faults: FaultPlan::lossy(0.2).crash(2, u64::MAX),
            ..base.clone()
        };
        let mut a = echo_net(base, 5);
        let mut b = echo_net(planned, 5);
        assert!(a.run(10_000));
        assert!(b.run(10_000));
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.decision_times(), b.decision_times());
    }

    /// A process with explicit durable state: it accumulates every
    /// received value into `volatile`, decides the durable checkpoint, and
    /// checkpoints on crash.
    struct Checkpointed {
        volatile: u64,
        checkpoint: Option<u64>,
        recoveries: u64,
    }
    impl AsyncProcess for Checkpointed {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut NetCtx<u64>) {
            if ctx.id() == 0 {
                ctx.send(1, 5);
                ctx.send(1, 6);
            }
        }
        fn on_message(&mut self, _src: ProcId, msg: u64, _ctx: &mut NetCtx<u64>) {
            self.volatile += msg;
        }
        fn on_crash(&mut self) {
            self.checkpoint = Some(self.volatile);
        }
        fn on_recover(&mut self, ctx: &mut NetCtx<u64>) {
            self.recoveries += 1;
            ctx.set_timer(1, 9); // recovered processes may re-arm timers
        }
        fn on_timer(&mut self, timer: u64, _ctx: &mut NetCtx<u64>) {
            self.volatile += timer;
        }
        fn save_durable(&self) -> Option<DurableState> {
            let mut st = DurableState::new();
            st.push(self.checkpoint.unwrap_or(0));
            Some(st)
        }
        fn restore_durable(&mut self, state: &DurableState) {
            // volatile state is lost; only the checkpoint survives
            self.volatile = state.get(0).expect("checkpoint word");
        }
        fn decision(&self) -> Option<u64> {
            self.checkpoint
        }
    }

    #[test]
    fn recovery_restores_durable_state_and_runs_on_recover() {
        // process 1 receives 5 (volatile = 5), crashes at time 2 (its
        // second delivery of 6 arrives at time 1... with constant latency
        // both arrive at time 0, so crash AfterEvents(1) instead:
        // checkpoint = 5, the second delivery is absorbed, recovery at
        // time 10 restores volatile = 5 and fires the re-armed timer.
        let cfg = NetConfig {
            faults: FaultPlan::none().crash(1, 1).recover_at(10),
            ..NetConfig::lockstep(0)
        }
        .with_trace();
        let procs: Vec<Box<dyn AsyncProcess<Msg = u64>>> = (0..2)
            .map(|_| {
                Box::new(Checkpointed {
                    volatile: 0,
                    checkpoint: None,
                    recoveries: 0,
                }) as _
            })
            .collect();
        let mut net = EventNet::new(procs, cfg);
        assert!(net.run(1_000));
        assert!(!net.is_crashed(1));
        let stats = net.stats();
        assert_eq!(stats.crashed_drops, 1, "the second delivery is absorbed");
        assert_eq!(stats.recoveries, vec![0, 1]);
        assert_eq!(net.decisions()[1], Some(5), "checkpoint survives");
        assert!(net
            .trace()
            .iter()
            .any(|e| e.kind == TraceKind::Recover && e.src == 1 && e.time == 10));
        // the re-armed timer fired at recovery + 1
        assert!(net
            .trace()
            .iter()
            .any(|e| e.kind == TraceKind::Timer && e.src == 1 && e.time == 11));
    }

    #[test]
    fn timed_crash_window_suspends_and_resumes_without_durable_loss() {
        // Echo keeps all in-memory state across the window (default
        // suspend/resume semantics): the crash only absorbs what fires
        // inside [2, 4).
        let cfg = |faults: FaultPlan| NetConfig {
            latency: LatencyModel::Constant(2),
            faults,
            ..NetConfig::lockstep(0)
        };
        let mut healthy = echo_net(cfg(FaultPlan::none()), 3);
        let mut windowed = echo_net(cfg(FaultPlan::none().crash_at(1, 2).recover_at(4)), 3);
        assert!(healthy.run(1_000));
        assert!(windowed.run(1_000));
        // the ping to 1 (arriving at time 2, exactly when the crash
        // fires) is absorbed, so 1 never echoes and never decides
        assert_eq!(healthy.decisions()[1], Some(10));
        assert_eq!(windowed.decisions()[1], None);
        assert_eq!(windowed.stats().crashed_drops, 1);
        assert_eq!(windowed.stats().recoveries, vec![0, 1, 0]);
    }

    #[test]
    fn crash_plans_are_bit_identical_across_queue_impls() {
        let cfg = |queue| {
            NetConfig {
                latency: LatencyModel::UniformJitter { min: 0, max: 9 },
                scheduler: SchedulerPolicy::RandomInterleave { seed: 3, jitter: 4 },
                faults: FaultPlan::lossy(0.1)
                    .crash(0, 2)
                    .recover_at(12)
                    .crash_at(3, 7)
                    .crash_at_start(4),
                ..NetConfig::lockstep(77)
            }
            .with_trace()
            .with_queue(queue)
        };
        let mut wheel = echo_net(cfg(QueueImpl::Wheel), 6);
        let mut heap = echo_net(cfg(QueueImpl::Heap), 6);
        assert!(wheel.run(10_000));
        assert!(heap.run(10_000));
        assert!(!wheel.trace().is_empty());
        assert_eq!(wheel.trace(), heap.trace());
        assert_eq!(wheel.stats(), heap.stats());
        assert_eq!(wheel.decisions(), heap.decisions());
    }

    #[test]
    #[should_panic(expected = "fault plan names process")]
    fn fault_plans_naming_unknown_processes_panic() {
        let cfg = NetConfig {
            faults: FaultPlan::none().crash(9, 1),
            ..NetConfig::lockstep(0)
        };
        let _ = echo_net(cfg, 3);
    }
}
