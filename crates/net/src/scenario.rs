//! Async protocol runs as [`bne_sim::Scenario`]s: agreement/validity rates
//! over **latency × loss × scheduler × `f/n`** grids, estimated from
//! ensembles of seeded executions through the parallel Monte Carlo engine.
//!
//! These are the asynchronous counterparts of
//! [`bne_byzantine::scenario`]'s lockstep sweeps, reporting into the same
//! [`ProtocolStats`] aggregate so sync and async grids are directly
//! comparable. Experiments e17–e18 are built from these scenarios.

use crate::adapter::run_round_protocol;
use crate::model::{
    FaultPlan, LatencyModel, LinkFaults, NetConfig, Partition, QueueImpl, SchedulerPolicy,
};
use crate::obs::{HistogramSpec, MetricsObserver};
use bne_byzantine::adversary::{FaultyBehavior, FaultyProcess};
use bne_byzantine::broadcast::{DolevStrongProcess, EquivocatingSender, SignedMessage};
use bne_byzantine::network::Process;
use bne_byzantine::om::{OmConfig, TraitorStrategy};
use bne_byzantine::om_process::{om_colluding_process_set, om_process_set, OmProcess};
use bne_byzantine::phase_king::PhaseKingProcess;
use bne_byzantine::properties::{check_agreement, check_validity};
use bne_byzantine::scenario::ProtocolStats;
use bne_byzantine::{ProcId, Value};
use bne_crypto::pki::PublicKeyInfrastructure;
use bne_sim::{derive_seed, Histogram, Merge, Scenario, StreamingStats};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Stream tag separating a replica's *network* seed from the seed used
/// for protocol inputs (commander orders, initial preferences).
const STREAM_NET_SEED: u64 = 11;
/// Stream tag for per-process Ben-Or coin seeds.
const STREAM_COIN: u64 = 12;
/// Stream tag for the colluding-traitor ledger seed.
const STREAM_COLLUSION: u64 = 13;
/// Stream tag for Byzantine noise-process seeds.
const STREAM_NOISE: u64 = 14;

/// A scheduler choice that does not yet know which processes are
/// Byzantine — scenarios materialize it per replica once the fault set is
/// drawn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// Send-order delivery ([`SchedulerPolicy::Fifo`]).
    Fifo,
    /// Seeded-random interleaving with up to `jitter` extra ticks per
    /// message; the per-replica scheduler seed is derived from the replica
    /// seed via [`derive_seed`].
    Random {
        /// Maximum extra delay added to any message.
        jitter: u64,
    },
    /// Rushing adversary: Byzantine messages instantly, honest messages
    /// delayed by `honest_delay` extra ticks.
    Rush {
        /// Extra delay imposed on every honest message.
        honest_delay: u64,
    },
}

impl SchedulerSpec {
    /// Builds the concrete policy for one replica.
    pub fn materialize(&self, byzantine: &BTreeSet<ProcId>, seed: u64) -> SchedulerPolicy {
        match *self {
            SchedulerSpec::Fifo => SchedulerPolicy::Fifo,
            SchedulerSpec::Random { jitter } => SchedulerPolicy::RandomInterleave {
                seed: derive_seed(seed, STREAM_NET_SEED, 1),
                jitter,
            },
            SchedulerSpec::Rush { honest_delay } => SchedulerPolicy::AdversarialRush {
                byzantine: byzantine.clone(),
                honest_delay,
            },
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            SchedulerSpec::Fifo => "fifo".to_string(),
            SchedulerSpec::Random { jitter } => format!("random(j={jitter})"),
            SchedulerSpec::Rush { honest_delay } => format!("rush(d={honest_delay})"),
        }
    }
}

/// The network conditions of one grid cell: everything about the runtime
/// except the per-replica seed and the fault set.
#[derive(Debug, Clone, PartialEq)]
pub struct NetProfile {
    /// In-flight time distribution.
    pub latency: LatencyModel,
    /// Delivery-order policy.
    pub scheduler: SchedulerSpec,
    /// The fault plan: link faults (loss, partitions) plus process
    /// crash/recovery faults. Plain [`LinkFaults`] convert via `.into()`.
    pub faults: FaultPlan,
    /// Virtual ticks per protocol round.
    pub round_ticks: u64,
    /// Event-queue implementation (identical executions either way; the
    /// wheel is the fast default, the heap is the differential-testing
    /// reference — see [`QueueImpl`]).
    pub queue: QueueImpl,
    /// When set, each replica runs with a streaming
    /// [`crate::obs::MetricsObserver`] attached and its outcome carries a
    /// queue-latency histogram of this shape (observer attachment is
    /// zero-perturbation, so every other column is unchanged). A shared
    /// *spec* rather than a histogram, because [`Histogram`]'s merge
    /// panics on shape mismatch — all replicas of a cell must agree.
    pub latency_hist: Option<HistogramSpec>,
}

impl NetProfile {
    /// The profile equivalent to the lockstep `SyncNetwork`: zero
    /// latency, FIFO, no faults.
    pub fn lockstep() -> Self {
        NetProfile {
            latency: LatencyModel::Constant(0),
            scheduler: SchedulerSpec::Fifo,
            faults: FaultPlan::none(),
            round_ticks: 1,
            queue: QueueImpl::default(),
            latency_hist: None,
        }
    }

    /// Selects the event-queue implementation (builder style).
    pub fn with_queue(mut self, queue: QueueImpl) -> Self {
        self.queue = queue;
        self
    }

    /// Enables the per-replica queue-latency histogram (builder style).
    pub fn with_latency_hist(mut self, spec: HistogramSpec) -> Self {
        self.latency_hist = Some(spec);
        self
    }

    /// Lockstep timing with iid message loss — the profile of the e17
    /// loss sweeps.
    pub fn lossy(drop_prob: f64) -> Self {
        NetProfile {
            faults: FaultPlan::lossy(drop_prob),
            ..NetProfile::lockstep()
        }
    }

    /// Builds the concrete [`NetConfig`] for one replica.
    pub fn config(&self, seed: u64, byzantine: &BTreeSet<ProcId>) -> NetConfig {
        NetConfig {
            seed,
            latency: self.latency.clone(),
            scheduler: self.scheduler.materialize(byzantine, seed),
            faults: self.faults.clone(),
            round_ticks: self.round_ticks,
            record_trace: false,
            queue: self.queue,
        }
    }
}

// ---------------------------------------------------------------------------
// OM(t), EIG formulation, on the async runtime
// ---------------------------------------------------------------------------

/// One grid cell of the async OM sweep.
#[derive(Debug, Clone)]
pub struct AsyncOmCell {
    /// Total number of participants (commander + lieutenants).
    pub n: usize,
    /// Number of traitors (also the recursion depth `m`).
    pub t: usize,
    /// How traitors lie.
    pub strategy: TraitorStrategy,
    /// Whether the commander is one of the traitors.
    pub commander_faulty: bool,
    /// When set, the traitors **collude**: they ignore `strategy` and
    /// draw coordinated, per-destination-consistent lies from a shared
    /// [`bne_byzantine::OmCollusion`] ledger (re-seeded per replica).
    pub colluding: bool,
    /// Network conditions.
    pub net: NetProfile,
}

/// Oral-messages Byzantine generals on the event-driven runtime, with the
/// commander's order drawn from the replica seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncOmScenario;

impl Scenario for AsyncOmScenario {
    type Config = AsyncOmCell;
    type Outcome = ProtocolStats;

    fn run(&self, cell: &AsyncOmCell, seed: u64) -> ProtocolStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let commander_value: Value = rng.random_range(0..2u64);
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let traitors: BTreeSet<usize> = if cell.commander_faulty {
            (0..cell.t).collect()
        } else {
            (1..=cell.t).collect()
        };
        let config = OmConfig {
            n: cell.n,
            m: cell.t,
            commander_value,
            traitors: traitors.clone(),
            strategy: cell.strategy,
            default_value: 0,
        };
        let processes = if cell.colluding {
            om_colluding_process_set(&config, derive_seed(seed, STREAM_COLLUSION, 0))
        } else {
            om_process_set(&config)
        };
        let outcome = run_round_protocol(
            processes,
            OmProcess::rounds_needed(config.m),
            cell.net.config(net_seed, &traitors),
        );
        // the correctness conditions constrain the honest lieutenants
        let honest: Vec<bool> = (0..cell.n)
            .map(|i| i != 0 && !traitors.contains(&i))
            .collect();
        let decided = outcome
            .decisions
            .iter()
            .zip(honest.iter())
            .filter(|(_, &h)| h)
            .all(|(d, _)| d.is_some());
        let agreement = check_agreement(&outcome.decisions, &honest);
        let validity =
            traitors.contains(&0) || check_validity(&outcome.decisions, &honest, commander_value);
        ProtocolStats::of_run(decided, agreement, validity, outcome.stats.messages_sent)
    }
}

/// The e17 grid: OM cells swept over message-loss probabilities under
/// otherwise-lockstep timing. With `colluding` set, traitors draw
/// coordinated lies from a shared per-replica ledger instead of
/// `strategy` (the e17 colluding arm).
pub fn async_om_loss_grid(
    cells: &[(usize, usize)],
    drop_probs: &[f64],
    strategy: TraitorStrategy,
    commander_faulty: bool,
    colluding: bool,
) -> Vec<AsyncOmCell> {
    let mut grid = Vec::new();
    for &drop_prob in drop_probs {
        for &(n, t) in cells {
            grid.push(AsyncOmCell {
                n,
                t,
                strategy,
                commander_faulty,
                colluding,
                net: NetProfile::lossy(drop_prob),
            });
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Phase king on the async runtime
// ---------------------------------------------------------------------------

/// One grid cell of the async phase-king sweep.
#[derive(Debug, Clone)]
pub struct AsyncPhaseKingCell {
    /// Total number of processes (honest + faulty).
    pub n: usize,
    /// Fault budget; the last `t` process ids are faulty (so every king is
    /// honest, as in the sync grid).
    pub t: usize,
    /// The faulty behavior (stochastic behaviors are re-seeded per
    /// replica via [`FaultyBehavior::with_seed`]).
    pub behavior: FaultyBehavior,
    /// Whether all honest processes start with the same seed-drawn bit.
    pub unanimous_start: bool,
    /// Network conditions.
    pub net: NetProfile,
}

/// Phase-king consensus on the event-driven runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncPhaseKingScenario;

impl Scenario for AsyncPhaseKingScenario {
    type Config = AsyncPhaseKingCell;
    type Outcome = ProtocolStats;

    fn run(&self, cell: &AsyncPhaseKingCell, seed: u64) -> ProtocolStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let honest_count = cell.n - cell.t;
        let common: Value = rng.random_range(0..2u64);
        let initials: Vec<Value> = (0..honest_count)
            .map(|_| {
                if cell.unanimous_start {
                    common
                } else {
                    rng.random_range(0..2u64)
                }
            })
            .collect();
        let mut processes: Vec<Box<dyn Process<Msg = Value>>> = initials
            .iter()
            .map(|&v| Box::new(PhaseKingProcess::new(v, cell.t)) as Box<dyn Process<Msg = Value>>)
            .collect();
        for _ in 0..cell.t {
            let behavior = cell.behavior.with_seed(rng.random::<u64>());
            processes.push(Box::new(FaultyProcess::new(behavior)));
        }
        let byzantine: BTreeSet<ProcId> = (honest_count..cell.n).collect();
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let outcome = run_round_protocol(
            processes,
            PhaseKingProcess::rounds_needed(cell.t),
            cell.net.config(net_seed, &byzantine),
        );
        let honest: Vec<bool> = (0..cell.n).map(|i| i < honest_count).collect();
        let decided = outcome
            .decisions
            .iter()
            .zip(honest.iter())
            .filter(|(_, &h)| h)
            .all(|(d, _)| d.is_some());
        let agreement = check_agreement(&outcome.decisions, &honest);
        let validity = if cell.unanimous_start {
            check_validity(&outcome.decisions, &honest, common)
        } else {
            true
        };
        ProtocolStats::of_run(decided, agreement, validity, outcome.stats.messages_sent)
    }
}

/// The e18 grid: phase-king cells swept over scheduler policies × latency
/// models (fixed `round_ticks`, so longer latencies genuinely threaten
/// round deadlines).
///
/// Use `unanimous_start = false` to stress *agreement*: unanimous-start
/// validity is remarkably robust to uniform delays (stale honest messages
/// still carry the common value), but mixed starts depend on the kings'
/// tiebreaks arriving on time, which adversarial schedulers deny.
pub fn async_phase_king_scheduler_grid(
    cells: &[(usize, usize)],
    behavior: &FaultyBehavior,
    schedulers: &[SchedulerSpec],
    latencies: &[LatencyModel],
    round_ticks: u64,
    unanimous_start: bool,
) -> Vec<AsyncPhaseKingCell> {
    let mut grid = Vec::new();
    for scheduler in schedulers {
        for latency in latencies {
            for &(n, t) in cells {
                grid.push(AsyncPhaseKingCell {
                    n,
                    t,
                    behavior: behavior.clone(),
                    unanimous_start,
                    net: NetProfile {
                        latency: latency.clone(),
                        scheduler: scheduler.clone(),
                        round_ticks,
                        ..NetProfile::lockstep()
                    },
                });
            }
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Dolev–Strong signed broadcast on the async runtime
// ---------------------------------------------------------------------------

/// One grid cell of the async signed-broadcast sweep.
#[derive(Debug, Clone)]
pub struct AsyncBroadcastCell {
    /// Total number of processes.
    pub n: usize,
    /// Fault budget (protocol runs `t + 1` relay rounds).
    pub t: usize,
    /// Whether the designated sender (process 0) equivocates.
    pub equivocating_sender: bool,
    /// Network conditions.
    pub net: NetProfile,
}

/// Dolev–Strong authenticated broadcast on the event-driven runtime, over
/// a per-replica simulated PKI.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncBroadcastScenario;

impl Scenario for AsyncBroadcastScenario {
    type Config = AsyncBroadcastCell;
    type Outcome = ProtocolStats;

    fn run(&self, cell: &AsyncBroadcastCell, seed: u64) -> ProtocolStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pki, keys) = PublicKeyInfrastructure::setup(cell.n, &mut rng);
        let input: Value = rng.random_range(0..2u64);
        let mut processes: Vec<Box<dyn Process<Msg = SignedMessage>>> = Vec::new();
        for i in 0..cell.n {
            if i == 0 && cell.equivocating_sender {
                processes.push(Box::new(EquivocatingSender::new(keys[0])));
            } else {
                processes.push(Box::new(DolevStrongProcess::new(
                    0,
                    input,
                    cell.t,
                    pki.clone(),
                    keys[i],
                    0,
                )));
            }
        }
        let byzantine: BTreeSet<ProcId> = if cell.equivocating_sender {
            [0].into_iter().collect()
        } else {
            BTreeSet::new()
        };
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let outcome = run_round_protocol(
            processes,
            DolevStrongProcess::rounds_needed(cell.t),
            cell.net.config(net_seed, &byzantine),
        );
        let honest: Vec<bool> = (0..cell.n)
            .map(|i| i != 0 || !cell.equivocating_sender)
            .collect();
        let decided = outcome
            .decisions
            .iter()
            .zip(honest.iter())
            .filter(|(_, &h)| h)
            .all(|(d, _)| d.is_some());
        let agreement = check_agreement(&outcome.decisions, &honest);
        let validity = if cell.equivocating_sender {
            true
        } else {
            check_validity(&outcome.decisions, &honest, input)
        };
        ProtocolStats::of_run(decided, agreement, validity, outcome.stats.messages_sent)
    }
}

/// One cell of the e19 CAP-flavored partition sweep: the network splits
/// into two halves (the designated sender's side first) for a window of
/// `duration` ticks ending at `heal_at`, while Dolev–Strong broadcast
/// runs underneath.
///
/// The two axes separate *how long* the network is split from *when* it
/// comes back: a short cut healing early is repaired by the remaining
/// relay rounds, while the same cut healing after the last round is
/// indistinguishable from a permanent one. `duration > heal_at` would
/// silently truncate the window (it cannot start before time 0), so
/// those combinations are **skipped** rather than emitted under a
/// misleading label; a single no-partition baseline cell per `(n, t)` is
/// emitted instead of one per heal time. Read each cell's actual window
/// from its `net.faults.link.partition` when labelling tables.
pub fn async_broadcast_partition_grid(
    cells: &[(usize, usize)],
    durations: &[u64],
    heal_times: &[u64],
    round_ticks: u64,
) -> Vec<AsyncBroadcastCell> {
    let make_cell = |n: usize, t: usize, partition: Option<Partition>| AsyncBroadcastCell {
        n,
        t,
        equivocating_sender: false,
        net: NetProfile {
            faults: LinkFaults {
                drop_prob: 0.0,
                partition,
            }
            .into(),
            round_ticks,
            ..NetProfile::lockstep()
        },
    };
    let mut grid = Vec::new();
    for &(n, t) in cells {
        grid.push(make_cell(n, t, None)); // the no-partition baseline
    }
    for &duration in durations {
        for &heal_at in heal_times {
            if duration == 0 || duration > heal_at {
                continue; // baseline already emitted / truncated window
            }
            for &(n, t) in cells {
                let group: BTreeSet<ProcId> = (0..n / 2).collect();
                grid.push(make_cell(
                    n,
                    t,
                    Some(Partition::window(group, heal_at - duration, heal_at)),
                ));
            }
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Event-driven protocols (no round adapter): Ben-Or and Bracha
// ---------------------------------------------------------------------------

/// Streaming aggregate of event-driven **consensus** executions. On top
/// of the correctness rates this records the two quantities that are
/// *random variables* for randomized protocols: rounds-to-decide and
/// virtual decision time. Both are recorded only for replicas where every
/// honest process decided (their means are conditional on success).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusStats {
    /// Did every honest process decide (within the round cap)?
    pub decided: StreamingStats,
    /// Did all honest decisions agree?
    pub agreement: StreamingStats,
    /// Did honest decisions match the unanimous honest input (vacuous
    /// under mixed starts)?
    pub validity: StreamingStats,
    /// Max rounds-to-decide over the honest processes (successful
    /// replicas only).
    pub rounds: StreamingStats,
    /// Max virtual decision time over the honest processes (successful
    /// replicas only).
    pub decide_time: StreamingStats,
    /// Point-to-point messages handed to the network.
    pub messages: StreamingStats,
    /// Runtime events processed (deliveries + timers) — the work metric
    /// the BENCH_6 queue comparison reports alongside wall time.
    pub events: StreamingStats,
    /// Timers fired on live processes ([`crate::NetStats::timers_fired`])
    /// — the retry/timeout-pressure column previously hidden inside
    /// `events`.
    pub timers: StreamingStats,
    /// Per-message queue-latency histogram (`deliver − send`, in ticks),
    /// summed over all replicas. `Some` only when the cell's
    /// [`NetProfile::latency_hist`] is set; `None` merges as identity, so
    /// grids mixing it on and off stay well-defined per cell.
    pub latency: Option<Histogram>,
}

impl Merge for ConsensusStats {
    fn merge(&mut self, other: &Self) {
        self.decided.merge(&other.decided);
        self.agreement.merge(&other.agreement);
        self.validity.merge(&other.validity);
        self.rounds.merge(&other.rounds);
        self.decide_time.merge(&other.decide_time);
        self.messages.merge(&other.messages);
        self.events.merge(&other.events);
        self.timers.merge(&other.timers);
        self.latency.merge(&other.latency);
    }
}

/// One grid cell of the Ben-Or sweep (experiment e20).
#[derive(Debug, Clone)]
pub struct BenOrCell {
    /// Total number of processes.
    pub n: usize,
    /// Fault budget shaping the quorum thresholds (classical Byzantine
    /// guarantee needs `n > 5t`).
    pub t: usize,
    /// Actual adversaries (the last `faults` process ids).
    pub faults: usize,
    /// Adversary flavor: `true` = seeded noise injection
    /// ([`crate::protocols::BenOrNoiseProcess`]), `false` = silent.
    pub noisy: bool,
    /// Whether all honest processes start with the same seed-drawn bit.
    pub unanimous_start: bool,
    /// Round cap after which an undecided process gives up.
    pub max_rounds: u32,
    /// Network conditions.
    pub net: NetProfile,
}

/// Ben-Or randomized consensus directly on the event runtime — the first
/// scenario whose running time is a random variable rather than a fixed
/// round count, which is what the scheduler adversaries stress.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenOrScenario;

impl Scenario for BenOrScenario {
    type Config = BenOrCell;
    type Outcome = ConsensusStats;

    fn run(&self, cell: &BenOrCell, seed: u64) -> ConsensusStats {
        use crate::protocols::{BenOrNoiseProcess, BenOrProcess};
        use crate::runtime::IdleProcess;
        use std::cell::Cell;
        use std::rc::Rc;

        let mut rng = StdRng::seed_from_u64(seed);
        let honest_count = cell.n - cell.faults;
        let common: Value = rng.random_range(0..2u64);
        let probes: Vec<Rc<Cell<Option<u32>>>> = (0..honest_count)
            .map(|_| Rc::new(Cell::new(None)))
            .collect();
        let mut procs: Vec<Box<dyn crate::runtime::AsyncProcess<Msg = bne_byzantine::BenOrMsg>>> =
            Vec::with_capacity(cell.n);
        for (i, probe) in probes.iter().enumerate() {
            let pref = if cell.unanimous_start {
                common
            } else {
                rng.random_range(0..2u64)
            };
            procs.push(Box::new(
                BenOrProcess::new(
                    cell.t,
                    pref,
                    cell.max_rounds,
                    derive_seed(seed, STREAM_COIN, i as u64),
                )
                .with_round_probe(Rc::clone(probe)),
            ));
        }
        for i in honest_count..cell.n {
            if cell.noisy {
                procs.push(Box::new(BenOrNoiseProcess::new(derive_seed(
                    seed,
                    STREAM_NOISE,
                    i as u64,
                ))));
            } else {
                // a silent adversary is a crash fault: an inert slot
                // crashed at start by the runtime's fault plan (the
                // per-protocol SilentAsyncProcess wrapper is gone)
                procs.push(Box::new(IdleProcess::new()));
            }
        }
        let byzantine: BTreeSet<ProcId> = (honest_count..cell.n).collect();
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let mut cfg = cell.net.config(net_seed, &byzantine);
        if !cell.noisy {
            for i in honest_count..cell.n {
                cfg.faults = std::mem::take(&mut cfg.faults).crash_at_start(i);
            }
        }
        let obs = cell
            .net
            .latency_hist
            .as_ref()
            .map(|spec| Rc::new(std::cell::RefCell::new(MetricsObserver::new(cell.n, spec))));
        let mut net = match &obs {
            Some(o) => crate::runtime::EventNet::with_observer(procs, cfg, Box::new(Rc::clone(o))),
            None => crate::runtime::EventNet::new(procs, cfg),
        };
        let drained = net.run(20_000_000);
        debug_assert!(drained, "Ben-Or event queue failed to drain");
        let decisions = net.decisions();
        let honest: Vec<bool> = (0..cell.n).map(|i| i < honest_count).collect();
        let decided = decisions[..honest_count].iter().all(|d| d.is_some());
        let agreement = check_agreement(&decisions, &honest);
        let validity = if cell.unanimous_start {
            check_validity(&decisions, &honest, common)
        } else {
            true
        };
        let (rounds, decide_time) = if decided {
            let max_round = probes.iter().filter_map(|p| p.get()).max().unwrap_or(0);
            let max_time = net.decision_times()[..honest_count]
                .iter()
                .filter_map(|t| *t)
                .max()
                .unwrap_or(0);
            (
                StreamingStats::of(f64::from(max_round)),
                StreamingStats::of(max_time as f64),
            )
        } else {
            (StreamingStats::new(), StreamingStats::new())
        };
        ConsensusStats {
            decided: StreamingStats::of(f64::from(u8::from(decided))),
            agreement: StreamingStats::of(f64::from(u8::from(agreement))),
            validity: StreamingStats::of(f64::from(u8::from(validity))),
            rounds,
            decide_time,
            messages: StreamingStats::of(net.stats().messages_sent as f64),
            events: StreamingStats::of(net.stats().events_processed as f64),
            timers: StreamingStats::of(net.stats().timers_fired as f64),
            latency: obs.map(|o| o.borrow().merged_latency().clone()),
        }
    }
}

/// The e20 grid: Ben-Or cells swept over scheduler policies × fault
/// counts at a fixed latency, mixed starts (so the coin genuinely
/// matters and the decision round is a non-degenerate random variable).
pub fn ben_or_scheduler_grid(
    cells: &[(usize, usize)],
    fault_counts: &[usize],
    schedulers: &[SchedulerSpec],
    latency: LatencyModel,
    max_rounds: u32,
) -> Vec<BenOrCell> {
    let mut grid = Vec::new();
    for scheduler in schedulers {
        for &faults in fault_counts {
            for &(n, t) in cells {
                grid.push(BenOrCell {
                    n,
                    t,
                    faults,
                    noisy: true,
                    unanimous_start: false,
                    max_rounds,
                    net: NetProfile {
                        latency: latency.clone(),
                        scheduler: scheduler.clone(),
                        ..NetProfile::lockstep()
                    },
                });
            }
        }
    }
    grid
}

/// Streaming aggregate of **reliable broadcast** executions: the three RB
/// correctness conditions plus delivery latency (recorded only for
/// replicas where every process delivered, so the mean is conditional on
/// success — the "latency cliff" of e21).
#[derive(Debug, Clone, PartialEq)]
pub struct RbStats {
    /// Did every honest process deliver?
    pub delivered: StreamingStats,
    /// RB agreement (no two honest deliveries differ).
    pub agreement: StreamingStats,
    /// RB validity (honest broadcaster's value delivered by all honest).
    pub validity: StreamingStats,
    /// RB totality (one honest delivery implies all).
    pub totality: StreamingStats,
    /// Max virtual delivery time over all processes (successful replicas
    /// only).
    pub deliver_time: StreamingStats,
    /// Point-to-point messages handed to the network (acks and
    /// retransmissions included when a retry policy is active).
    pub messages: StreamingStats,
    /// Runtime events processed (deliveries + timers).
    pub events: StreamingStats,
    /// Retransmissions sent by the retry adapters (0 for the bare arm),
    /// summed over all processes via the adapters' shared probe.
    pub retransmissions: StreamingStats,
    /// Timers fired on live processes
    /// ([`crate::NetStats::timers_fired`]) — for Bracha this counts the
    /// retry adapters' retransmission timers, making retry pressure
    /// visible separately from `events`.
    pub timers: StreamingStats,
    /// Per-message queue-latency histogram (`deliver − send`, in ticks),
    /// summed over all replicas; `Some` only when the cell's
    /// [`NetProfile::latency_hist`] is set.
    pub latency: Option<Histogram>,
}

impl Merge for RbStats {
    fn merge(&mut self, other: &Self) {
        self.delivered.merge(&other.delivered);
        self.agreement.merge(&other.agreement);
        self.validity.merge(&other.validity);
        self.totality.merge(&other.totality);
        self.deliver_time.merge(&other.deliver_time);
        self.messages.merge(&other.messages);
        self.events.merge(&other.events);
        self.retransmissions.merge(&other.retransmissions);
        self.timers.merge(&other.timers);
        self.latency.merge(&other.latency);
    }
}

/// One grid cell of the Bracha sweep (experiment e21): all processes
/// honest — the adversary is the *network* (loss, partitions,
/// scheduling), optionally answered by retransmission.
#[derive(Debug, Clone)]
pub struct AsyncBrachaCell {
    /// Total number of processes.
    pub n: usize,
    /// Fault budget shaping the quorum sizes (`n > 3t` for the classical
    /// guarantee; larger `t` means larger quorums, i.e. less slack
    /// against loss).
    pub t: usize,
    /// Retransmission policy; `None` runs the bare protocol (the e19
    /// regime where whatever the partition eats stays lost).
    pub retry: Option<crate::retry::RetryPolicy>,
    /// Network conditions.
    pub net: NetProfile,
}

/// Bracha reliable broadcast directly on the event runtime, with process
/// 0 broadcasting a seed-drawn bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncBrachaScenario;

impl Scenario for AsyncBrachaScenario {
    type Config = AsyncBrachaCell;
    type Outcome = RbStats;

    fn run(&self, cell: &AsyncBrachaCell, seed: u64) -> RbStats {
        use crate::protocols::BrachaProcess;
        use crate::retry::{RetryAdapter, RetryMsg};
        use bne_byzantine::bracha::BrachaMsg;
        use bne_byzantine::properties::rb_report;

        /// Runs any process set to quiescence and extracts the outcome
        /// fields — one definition for both arms, so the event bound and
        /// the extraction can never diverge between them.
        fn drive<M: Clone>(
            procs: Vec<Box<dyn crate::runtime::AsyncProcess<Msg = M>>>,
            cfg: NetConfig,
            obs: Option<&std::rc::Rc<std::cell::RefCell<MetricsObserver>>>,
        ) -> (
            Vec<Option<Value>>,
            Vec<Option<u64>>,
            crate::runtime::NetStats,
            bool,
        ) {
            let mut net = match obs {
                Some(o) => crate::runtime::EventNet::with_observer(
                    procs,
                    cfg,
                    Box::new(std::rc::Rc::clone(o)),
                ),
                None => crate::runtime::EventNet::new(procs, cfg),
            };
            let drained = net.run(20_000_000);
            (
                net.decisions(),
                net.decision_times().to_vec(),
                net.stats(),
                drained,
            )
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let input: Value = rng.random_range(0..2u64);
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let cfg = cell.net.config(net_seed, &BTreeSet::new());
        // one shared counter across all adapters: total retransmissions
        // stay readable after the adapters are boxed behind the trait
        let retrans_probe = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let obs = cell.net.latency_hist.as_ref().map(|spec| {
            std::rc::Rc::new(std::cell::RefCell::new(MetricsObserver::new(cell.n, spec)))
        });
        let (decisions, times, stats, drained) = match cell.retry {
            None => drive::<BrachaMsg>(
                (0..cell.n)
                    .map(|_| Box::new(BrachaProcess::new(cell.t, 0, input)) as _)
                    .collect(),
                cfg,
                obs.as_ref(),
            ),
            Some(policy) => drive::<RetryMsg<BrachaMsg>>(
                (0..cell.n)
                    .map(|_| {
                        Box::new(
                            RetryAdapter::new(BrachaProcess::new(cell.t, 0, input), policy)
                                .with_probe(std::rc::Rc::clone(&retrans_probe)),
                        ) as _
                    })
                    .collect(),
                cfg,
                obs.as_ref(),
            ),
        };
        debug_assert!(drained, "Bracha event queue failed to drain");
        let honest = vec![true; cell.n];
        let report = rb_report(&decisions, &honest, Some(input));
        let delivered = decisions.iter().all(|d| d.is_some());
        let deliver_time = if delivered {
            let max_time = times.iter().filter_map(|t| *t).max().unwrap_or(0);
            StreamingStats::of(max_time as f64)
        } else {
            StreamingStats::new()
        };
        RbStats {
            delivered: StreamingStats::of(f64::from(u8::from(delivered))),
            agreement: StreamingStats::of(f64::from(u8::from(report.agreement))),
            validity: StreamingStats::of(f64::from(u8::from(report.validity))),
            totality: StreamingStats::of(f64::from(u8::from(report.totality))),
            deliver_time,
            messages: StreamingStats::of(stats.messages_sent as f64),
            events: StreamingStats::of(stats.events_processed as f64),
            retransmissions: StreamingStats::of(retrans_probe.get() as f64),
            timers: StreamingStats::of(stats.timers_fired as f64),
            latency: obs.map(|o| o.borrow().merged_latency().clone()),
        }
    }
}

/// The e21 grid: the e19 partition sweep (half/half cut over outage
/// duration × heal time) re-run on Bracha, with one arm per entry of
/// `retries` (`None` = bare protocol, `Some(policy)` = retransmission).
/// Latency is one tick per hop so the echo/ready pipeline spans a few
/// ticks and partition windows can cover all, part or none of it; like
/// [`async_broadcast_partition_grid`], truncated `duration > heal_at`
/// combinations are skipped and a single no-partition baseline per
/// `(n, t, retry)` is emitted.
pub fn bracha_partition_grid(
    cells: &[(usize, usize)],
    durations: &[u64],
    heal_times: &[u64],
    retries: &[Option<crate::retry::RetryPolicy>],
) -> Vec<AsyncBrachaCell> {
    let make_cell = |n: usize,
                     t: usize,
                     retry: Option<crate::retry::RetryPolicy>,
                     partition: Option<Partition>| AsyncBrachaCell {
        n,
        t,
        retry,
        net: NetProfile {
            latency: LatencyModel::Constant(1),
            faults: LinkFaults {
                drop_prob: 0.0,
                partition,
            }
            .into(),
            ..NetProfile::lockstep()
        },
    };
    let mut grid = Vec::new();
    for &retry in retries {
        for &(n, t) in cells {
            grid.push(make_cell(n, t, retry, None));
        }
        for &duration in durations {
            for &heal_at in heal_times {
                if duration == 0 || duration > heal_at {
                    continue;
                }
                for &(n, t) in cells {
                    let group: BTreeSet<ProcId> = (0..n / 2).collect();
                    grid.push(make_cell(
                        n,
                        t,
                        retry,
                        Some(Partition::window(group, heal_at - duration, heal_at)),
                    ));
                }
            }
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Crash-recovery consensus: Paxos and HSUC (experiment e22)
// ---------------------------------------------------------------------------

/// The fault regime of one protocol-atlas cell (experiment e22): what the
/// *process* fault plan does to the execution. Link faults stay in the
/// cell's [`NetProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashRegime {
    /// No process faults.
    None,
    /// Process 0 (initial Paxos proposer / HSUC round-1 leader) halts
    /// after handling `after_events` events and never returns.
    CrashStop {
        /// Events handled before the halt.
        after_events: u64,
    },
    /// Process 0 halts after `after_events` events and recovers at
    /// virtual time `recover_at` from its durable state.
    CrashRecovery {
        /// Events handled before the halt.
        after_events: u64,
        /// Virtual time of the recovery.
        recover_at: u64,
    },
}

impl CrashRegime {
    /// Applies the regime to a fault plan.
    pub fn apply(&self, plan: FaultPlan) -> FaultPlan {
        match *self {
            CrashRegime::None => plan,
            CrashRegime::CrashStop { after_events } => plan.crash(0, after_events),
            CrashRegime::CrashRecovery {
                after_events,
                recover_at,
            } => plan.crash(0, after_events).recover_at(recover_at),
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            CrashRegime::None => "none".to_string(),
            CrashRegime::CrashStop { after_events } => format!("stop(k={after_events})"),
            CrashRegime::CrashRecovery {
                after_events,
                recover_at,
            } => format!("recover(k={after_events},t={recover_at})"),
        }
    }
}

/// One grid cell of the Paxos / HSUC sweeps (experiment e22).
#[derive(Debug, Clone)]
pub struct QuorumConsensusCell {
    /// Total number of processes (tolerates `f < n/2` crashed).
    pub n: usize,
    /// What the process fault plan does (always targets process 0, the
    /// initial proposer/leader — the hardest process to lose).
    pub crash: CrashRegime,
    /// Retry-timer period of the shells (leader-failover detection
    /// time); staggered per process id by the shell.
    pub timeout_ticks: u64,
    /// Retry-timer firing cap per process, bounding ballot/round
    /// escalation so executions always drain.
    pub max_timeouts: u32,
    /// Network conditions.
    pub net: NetProfile,
}

impl QuorumConsensusCell {
    #[allow(clippy::too_many_arguments)]
    fn run_common(
        &self,
        decisions: Vec<Option<Value>>,
        times: &[Option<u64>],
        rounds: Option<f64>,
        stats: crate::runtime::NetStats,
        inputs: &[Value],
        drained: bool,
        latency: Option<Histogram>,
    ) -> ConsensusStats {
        debug_assert!(drained, "consensus event queue failed to drain");
        // a permanently crashed process is exempt from deciding; a
        // *recovered* one is not — that is the whole point of recovery
        let exempt = self.crash.apply(FaultPlan::none()).permanently_crashed();
        let obligated: Vec<usize> = (0..self.n).filter(|i| !exempt.contains(i)).collect();
        let decided = obligated.iter().all(|&i| decisions[i].is_some());
        let values: BTreeSet<Value> = decisions.iter().filter_map(|d| *d).collect();
        // agreement over ALL decisions ever made (safety: no two decided
        // values, crashed or not); validity: the decided value is some
        // process's input
        let agreement = values.len() <= 1;
        let validity = values.iter().all(|v| inputs.contains(v));
        let (rounds, decide_time) = if decided {
            let max_time = obligated
                .iter()
                .filter_map(|&i| times[i])
                .max()
                .unwrap_or(0);
            (
                rounds.map(StreamingStats::of).unwrap_or_default(),
                StreamingStats::of(max_time as f64),
            )
        } else {
            (StreamingStats::new(), StreamingStats::new())
        };
        ConsensusStats {
            decided: StreamingStats::of(f64::from(u8::from(decided))),
            agreement: StreamingStats::of(f64::from(u8::from(agreement))),
            validity: StreamingStats::of(f64::from(u8::from(validity))),
            rounds,
            decide_time,
            messages: StreamingStats::of(stats.messages_sent as f64),
            events: StreamingStats::of(stats.events_processed as f64),
            timers: StreamingStats::of(stats.timers_fired as f64),
            latency,
        }
    }

    fn config(&self, seed: u64) -> NetConfig {
        let mut cfg = self.net.config(seed, &BTreeSet::new());
        cfg.faults = self.crash.apply(std::mem::take(&mut cfg.faults));
        cfg
    }
}

/// Single-decree Paxos on the event runtime under a crash plan: process
/// `i` proposes a seed-drawn value; decisions must be unique network-wide
/// (the safety gate of e22) and every non-permanently-crashed process
/// must learn one. "Rounds" is the highest deciding *ballot* — 1 means
/// the initial proposer won, higher means failover escalated.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaxosScenario;

impl Scenario for PaxosScenario {
    type Config = QuorumConsensusCell;
    type Outcome = ConsensusStats;

    fn run(&self, cell: &QuorumConsensusCell, seed: u64) -> ConsensusStats {
        use crate::protocols::PaxosProcess;
        use std::cell::Cell;
        use std::rc::Rc;

        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<Value> = (0..cell.n).map(|_| rng.random_range(0..100u64)).collect();
        let probes: Vec<Rc<Cell<Option<u64>>>> =
            (0..cell.n).map(|_| Rc::new(Cell::new(None))).collect();
        let procs: Vec<Box<dyn crate::runtime::AsyncProcess<Msg = bne_byzantine::PaxosMsg>>> =
            inputs
                .iter()
                .zip(&probes)
                .map(|(&v, probe)| {
                    Box::new(
                        PaxosProcess::new(v, cell.timeout_ticks, cell.max_timeouts)
                            .with_ballot_probe(Rc::clone(probe)),
                    ) as _
                })
                .collect();
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let obs = cell
            .net
            .latency_hist
            .as_ref()
            .map(|spec| Rc::new(std::cell::RefCell::new(MetricsObserver::new(cell.n, spec))));
        let mut net = match &obs {
            Some(o) => crate::runtime::EventNet::with_observer(
                procs,
                cell.config(net_seed),
                Box::new(Rc::clone(o)),
            ),
            None => crate::runtime::EventNet::new(procs, cell.config(net_seed)),
        };
        let drained = net.run(20_000_000);
        let rounds = probes
            .iter()
            .filter_map(|p| p.get())
            .max()
            .map(|b| b as f64);
        cell.run_common(
            net.decisions(),
            net.decision_times(),
            rounds,
            net.stats(),
            &inputs,
            drained,
            obs.map(|o| o.borrow().merged_latency().clone()),
        )
    }
}

/// Leader-driven (HSUC-style) consensus on the event runtime under a
/// crash plan — same cell shape and outcome as [`PaxosScenario`], so the
/// e22 atlas compares them column-for-column. "Rounds" is the highest
/// deciding round — 1 means leader 0's round sufficed.
#[derive(Debug, Clone, Copy, Default)]
pub struct HsucScenario;

impl Scenario for HsucScenario {
    type Config = QuorumConsensusCell;
    type Outcome = ConsensusStats;

    fn run(&self, cell: &QuorumConsensusCell, seed: u64) -> ConsensusStats {
        use crate::protocols::HsucProcess;
        use std::cell::Cell;
        use std::rc::Rc;

        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<Value> = (0..cell.n).map(|_| rng.random_range(0..100u64)).collect();
        let probes: Vec<Rc<Cell<Option<u64>>>> =
            (0..cell.n).map(|_| Rc::new(Cell::new(None))).collect();
        let procs: Vec<Box<dyn crate::runtime::AsyncProcess<Msg = bne_byzantine::HsucMsg>>> =
            inputs
                .iter()
                .zip(&probes)
                .map(|(&v, probe)| {
                    Box::new(
                        HsucProcess::new(v, cell.timeout_ticks, cell.max_timeouts)
                            .with_round_probe(Rc::clone(probe)),
                    ) as _
                })
                .collect();
        let net_seed = derive_seed(seed, STREAM_NET_SEED, 0);
        let obs = cell
            .net
            .latency_hist
            .as_ref()
            .map(|spec| Rc::new(std::cell::RefCell::new(MetricsObserver::new(cell.n, spec))));
        let mut net = match &obs {
            Some(o) => crate::runtime::EventNet::with_observer(
                procs,
                cell.config(net_seed),
                Box::new(Rc::clone(o)),
            ),
            None => crate::runtime::EventNet::new(procs, cell.config(net_seed)),
        };
        let drained = net.run(20_000_000);
        let rounds = probes
            .iter()
            .filter_map(|p| p.get())
            .max()
            .map(|r| r as f64);
        cell.run_common(
            net.decisions(),
            net.decision_times(),
            rounds,
            net.stats(),
            &inputs,
            drained,
            obs.map(|o| o.borrow().merged_latency().clone()),
        )
    }
}

/// The e22 atlas grid for one protocol: crash regimes × schedulers × n,
/// at one-tick latency so decision times are hop counts. The crash plans
/// always hit process 0 — the initial Paxos proposer and HSUC round-1
/// leader — because losing the coordinator is the regime where failover
/// (and recovery) actually shows up in the measured columns.
pub fn quorum_consensus_grid(
    sizes: &[usize],
    regimes: &[CrashRegime],
    schedulers: &[SchedulerSpec],
    timeout_ticks: u64,
    max_timeouts: u32,
) -> Vec<QuorumConsensusCell> {
    let mut grid = Vec::new();
    for scheduler in schedulers {
        for &regime in regimes {
            for &n in sizes {
                grid.push(QuorumConsensusCell {
                    n,
                    crash: regime,
                    timeout_ticks,
                    max_timeouts,
                    net: NetProfile {
                        latency: LatencyModel::Constant(1),
                        scheduler: scheduler.clone(),
                        ..NetProfile::lockstep()
                    },
                });
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_sim::SimRunner;

    #[test]
    fn lockstep_async_om_matches_the_sync_bound_structure() {
        // within the n > 3t bound and with no network faults, the async
        // runtime preserves OM's guarantees
        let grid = async_om_loss_grid(
            &[(4, 1), (7, 2)],
            &[0.0],
            TraitorStrategy::Flip,
            false,
            false,
        );
        for cell in SimRunner::new(8, 17).run_sequential(&AsyncOmScenario, &grid) {
            assert_eq!(cell.outcome.agreement.mean(), 1.0, "cell {}", cell.cell);
            assert_eq!(cell.outcome.validity.mean(), 1.0, "cell {}", cell.cell);
        }
    }

    #[test]
    fn message_loss_degrades_om_within_the_bound() {
        // n = 4, t = 1 is perfectly correct on a reliable network, but iid
        // loss of 35% of messages must break validity in some replicas
        let grid = async_om_loss_grid(&[(4, 1)], &[0.0, 0.35], TraitorStrategy::Flip, false, false);
        let results = SimRunner::new(48, 18).run_sequential(&AsyncOmScenario, &grid);
        let reliable = results[0].outcome.validity.mean();
        let lossy = results[1].outcome.validity.mean();
        assert_eq!(reliable, 1.0);
        assert!(
            lossy < reliable,
            "loss must cost validity: lossy rate {lossy}"
        );
    }

    #[test]
    fn lockstep_async_phase_king_holds_its_budget() {
        let grid = vec![AsyncPhaseKingCell {
            n: 6,
            t: 1,
            behavior: FaultyBehavior::Equivocate { seed: 9 },
            unanimous_start: true,
            net: NetProfile::lockstep(),
        }];
        let results = SimRunner::new(10, 19).run_sequential(&AsyncPhaseKingScenario, &grid);
        assert_eq!(results[0].outcome.decided.mean(), 1.0);
        assert_eq!(results[0].outcome.agreement.mean(), 1.0);
        assert_eq!(results[0].outcome.validity.mean(), 1.0);
    }

    #[test]
    fn rushing_scheduler_breaks_mixed_start_agreement() {
        // honest messages delayed two extra ticks (an odd round shift at
        // round_ticks 1): the kings' tiebreaks never arrive on time, so
        // mixed-start executions stay split, while Byzantine noise lands
        // instantly in every tally. FIFO at zero latency is lockstep and
        // must stay perfect.
        let grid = async_phase_king_scheduler_grid(
            &[(6, 1)],
            &FaultyBehavior::RandomNoise { seed: 3 },
            &[SchedulerSpec::Fifo, SchedulerSpec::Rush { honest_delay: 2 }],
            &[LatencyModel::Constant(0)],
            1,
            false,
        );
        let results = SimRunner::new(32, 20).run_sequential(&AsyncPhaseKingScenario, &grid);
        let fifo = results[0].outcome.agreement.mean();
        let rush = results[1].outcome.agreement.mean();
        assert_eq!(fifo, 1.0, "zero latency under FIFO is lockstep");
        assert!(rush < fifo, "rushing must hurt: {rush} vs {fifo}");
    }

    #[test]
    fn lockstep_async_broadcast_delivers() {
        let grid = vec![
            AsyncBroadcastCell {
                n: 5,
                t: 2,
                equivocating_sender: false,
                net: NetProfile::lockstep(),
            },
            AsyncBroadcastCell {
                n: 5,
                t: 1,
                equivocating_sender: true,
                net: NetProfile::lockstep(),
            },
        ];
        let results = SimRunner::new(6, 21).run_sequential(&AsyncBroadcastScenario, &grid);
        assert_eq!(results[0].outcome.agreement.mean(), 1.0);
        assert_eq!(results[0].outcome.validity.mean(), 1.0);
        assert_eq!(results[1].outcome.agreement.mean(), 1.0);
    }

    #[test]
    fn partition_grid_separates_fatal_from_healed_windows() {
        // Dolev–Strong with (n, t) = (6, 2) runs t + 2 = 4 rounds at
        // ticks 0..=3, and the sender's value floods in rounds 0-1
        // (broadcast, then one relay wave — each process relays exactly
        // once). A cut covering that whole flood window is fatal for the
        // cut-off half *no matter when it heals*; a window that leaves a
        // flood tick open, or opens after the flood, is harmless.
        let grid = async_broadcast_partition_grid(&[(6, 2)], &[0, 2, 4], &[2, 4], 1);
        // one baseline + the untruncated windows (2,2), (2,4), (4,4) —
        // duration > heal_at combinations are skipped, not mislabeled
        assert_eq!(grid.len(), 4);
        assert!(grid[0].net.faults.link.partition.is_none());
        let results = SimRunner::new(16, 1_905).run_sequential(&AsyncBroadcastScenario, &grid);
        let rate = |duration: u64, heal: u64| {
            let idx = grid
                .iter()
                .position(|c| match &c.net.faults.link.partition {
                    None => duration == 0,
                    Some(p) => p.duration() == duration && p.heal_at == heal,
                })
                .expect("cell exists");
            results[idx].outcome.agreement.mean()
        };
        assert_eq!(rate(0, 0), 1.0, "no partition is the lockstep baseline");
        assert_eq!(
            rate(2, 4),
            1.0,
            "a cut over the relay rounds only (ticks 2..4) is harmless"
        );
        assert!(
            rate(2, 2) < 1.0,
            "a cut over the broadcast round (ticks 0..2) is fatal even though it heals mid-protocol"
        );
        assert!(
            rate(4, 4) < 1.0,
            "a partition covering every round must break agreement"
        );
    }

    #[test]
    fn colluding_traitors_are_at_least_as_harmful_below_the_bound() {
        // (6, 2) violates n > 3t: the balanced consistent split must not
        // *help* correctness relative to the parity split, and across
        // replicas it should actually hurt (measured in e17's colluding
        // arm; asserted loosely here to stay seed-robust)
        let stateless = async_om_loss_grid(
            &[(6, 2)],
            &[0.0],
            TraitorStrategy::SplitByParity,
            false,
            false,
        );
        let colluding = async_om_loss_grid(
            &[(6, 2)],
            &[0.0],
            TraitorStrategy::SplitByParity,
            false,
            true,
        );
        let runner = SimRunner::new(48, 1_717);
        let s = runner.run_sequential(&AsyncOmScenario, &stateless)[0]
            .outcome
            .clone();
        let c = runner.run_sequential(&AsyncOmScenario, &colluding)[0]
            .outcome
            .clone();
        let correct = |o: &ProtocolStats| o.agreement.mean().min(o.validity.mean());
        assert!(
            correct(&c) <= correct(&s) + 1e-9,
            "collusion must not help the protocol: colluding {} vs stateless {}",
            correct(&c),
            correct(&s)
        );
    }

    #[test]
    fn ben_or_rushing_scheduler_costs_decision_time() {
        // the e20 acceptance shape in miniature: same fault fraction,
        // FIFO vs rushing adversary — rushing must cost strictly more
        // expected decision time (and it does so through extra rounds,
        // not just the per-hop delay)
        let grid = ben_or_scheduler_grid(
            &[(8, 1)],
            &[1],
            &[SchedulerSpec::Fifo, SchedulerSpec::Rush { honest_delay: 3 }],
            LatencyModel::Constant(1),
            200,
        );
        let results = SimRunner::new(32, 2_020).run_sequential(&BenOrScenario, &grid);
        let fifo = &results[0].outcome;
        let rush = &results[1].outcome;
        assert_eq!(fifo.decided.mean(), 1.0, "FIFO decides");
        assert_eq!(rush.decided.mean(), 1.0, "rush delays but cannot block");
        assert!(
            rush.decide_time.mean() > fifo.decide_time.mean(),
            "rushing must cost time: {} vs {}",
            rush.decide_time.mean(),
            fifo.decide_time.mean()
        );
    }

    #[test]
    fn ben_or_unanimous_lockstep_is_a_one_round_protocol() {
        let grid = vec![BenOrCell {
            n: 7,
            t: 1,
            faults: 0,
            noisy: false,
            unanimous_start: true,
            max_rounds: 50,
            net: NetProfile::lockstep(),
        }];
        let results = SimRunner::new(16, 2_021).run_sequential(&BenOrScenario, &grid);
        let o = &results[0].outcome;
        assert_eq!(o.decided.mean(), 1.0);
        assert_eq!(o.validity.mean(), 1.0);
        assert_eq!(o.rounds.mean(), 1.0);
    }

    #[test]
    fn bracha_partition_fatal_window_becomes_latency_with_retry() {
        // the e21 acceptance shape in miniature: a cut covering Bracha's
        // whole init→echo→ready pipeline is fatal bare, survived with
        // retransmission at a measurable latency cost
        let retry = Some(crate::retry::RetryPolicy::exponential(2));
        let grid = bracha_partition_grid(&[(6, 1)], &[4], &[4], &[None, retry]);
        assert_eq!(grid.len(), 4, "baseline + window, two arms");
        let results = SimRunner::new(16, 2_121).run_sequential(&AsyncBrachaScenario, &grid);
        let (bare_base, bare_cut) = (&results[0].outcome, &results[1].outcome);
        let (retry_base, retry_cut) = (&results[2].outcome, &results[3].outcome);
        assert_eq!(bare_base.delivered.mean(), 1.0);
        assert!(
            bare_cut.delivered.mean() < 1.0,
            "a [0, 4) cut over the whole pipeline must be fatal without retransmission"
        );
        assert_eq!(retry_base.delivered.mean(), 1.0);
        assert_eq!(
            retry_cut.delivered.mean(),
            1.0,
            "retransmission survives the fatal window"
        );
        assert!(
            retry_cut.deliver_time.mean() > retry_base.deliver_time.mean(),
            "…at a latency cost: {} vs {}",
            retry_cut.deliver_time.mean(),
            retry_base.deliver_time.mean()
        );
    }

    #[test]
    fn paxos_and_hsuc_atlas_cells_hold_safety_under_every_regime() {
        // the e22 acceptance shape in miniature: all three crash regimes
        // across both quorum protocols — agreement (the safety gate) and
        // validity must be perfect in every replica; the crash-stop and
        // crash-recovery regimes must still decide via failover
        let grid = quorum_consensus_grid(
            &[5],
            &[
                CrashRegime::None,
                CrashRegime::CrashStop { after_events: 2 },
                CrashRegime::CrashRecovery {
                    after_events: 2,
                    recover_at: 400,
                },
            ],
            &[SchedulerSpec::Fifo, SchedulerSpec::Random { jitter: 2 }],
            40,
            12,
        );
        for (label, results) in [
            (
                "paxos",
                SimRunner::new(8, 2_201).run_sequential(&PaxosScenario, &grid),
            ),
            (
                "hsuc",
                SimRunner::new(8, 2_202).run_sequential(&HsucScenario, &grid),
            ),
        ] {
            for cell in &results {
                assert_eq!(
                    cell.outcome.agreement.mean(),
                    1.0,
                    "{label} safety violated in cell {}",
                    cell.cell
                );
                assert_eq!(
                    cell.outcome.validity.mean(),
                    1.0,
                    "{label} validity violated in cell {}",
                    cell.cell
                );
                assert_eq!(
                    cell.outcome.decided.mean(),
                    1.0,
                    "{label} liveness lost in cell {}",
                    cell.cell
                );
            }
        }
    }

    #[test]
    fn paxos_crash_recovery_regime_actually_recovers_and_costs_time() {
        let mk = |crash| QuorumConsensusCell {
            n: 5,
            crash,
            timeout_ticks: 40,
            max_timeouts: 12,
            net: NetProfile {
                latency: LatencyModel::Constant(1),
                ..NetProfile::lockstep()
            },
        };
        let grid = vec![
            mk(CrashRegime::None),
            mk(CrashRegime::CrashRecovery {
                after_events: 1,
                recover_at: 300,
            }),
        ];
        let results = SimRunner::new(12, 2_203).run_sequential(&PaxosScenario, &grid);
        let (clean, recover) = (&results[0].outcome, &results[1].outcome);
        assert_eq!(clean.decided.mean(), 1.0);
        assert_eq!(recover.decided.mean(), 1.0, "recovered process re-learns");
        assert!(
            recover.decide_time.mean() > clean.decide_time.mean(),
            "recovery cannot be free: {} vs {}",
            recover.decide_time.mean(),
            clean.decide_time.mean()
        );
    }

    #[test]
    fn async_runs_are_reproducible_from_the_replica_seed() {
        // heavy loss + mixed starts: outcomes genuinely vary by seed,
        // so reproducibility is not vacuous
        let cell = AsyncPhaseKingCell {
            n: 9,
            t: 2,
            behavior: FaultyBehavior::Garbage { seed: 1 },
            unanimous_start: false,
            net: NetProfile {
                latency: LatencyModel::UniformJitter { min: 0, max: 5 },
                scheduler: SchedulerSpec::Random { jitter: 3 },
                faults: LinkFaults::lossy(0.45).into(),
                round_ticks: 4,
                ..NetProfile::lockstep()
            },
        };
        let a = AsyncPhaseKingScenario.run(&cell, 123);
        let b = AsyncPhaseKingScenario.run(&cell, 123);
        assert_eq!(a, b);
        let differs = (124..140).any(|s| AsyncPhaseKingScenario.run(&cell, s) != a);
        assert!(differs, "16 different seeds should not all coincide");
    }
}
