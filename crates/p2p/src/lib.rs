//! # bne-p2p
//!
//! A peer-to-peer file-sharing game and network simulator, substituting for
//! the Gnutella measurements of Adar and Huberman (2000) that the paper uses
//! to motivate immunity: *"almost 70 percent of users share no files and
//! nearly 50 percent of responses are from the top 1 percent of sharing
//! hosts"*. We obviously cannot re-measure the 2000 Gnutella network; this
//! crate reproduces the *shape* of those statistics from first principles:
//!
//! * **the sharing game** — sharing costs `sharing_cost` (bandwidth, legal
//!   risk) and yields no material benefit, since whether you can download
//!   depends only on what *others* share; agents whose private "kick out of
//!   sharing" (an altruism term drawn from a heavy-tailed distribution)
//!   exceeds the cost share anyway. Free riding is the dominant strategy for
//!   everyone else, so the equilibrium sharing rate is just the tail
//!   probability of the altruism distribution — tune the cost and the
//!   distribution and the ≈30 % sharing rate falls out;
//! * **the query/response process** — sharers hold libraries with
//!   Pareto-distributed sizes; queries flood a random overlay with a TTL and
//!   are answered by reachable sharers in proportion to their library sizes,
//!   concentrating responses on the biggest sharers exactly as in the
//!   measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;

use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};

/// Configuration of a file-sharing simulation.
#[derive(Debug, Clone)]
pub struct P2pConfig {
    /// Number of peers.
    pub peers: usize,
    /// Cost of sharing (bandwidth, lawsuit risk, ...).
    pub sharing_cost: f64,
    /// Scale of the exponentially distributed "kick out of sharing" term.
    /// Larger means more intrinsically generous peers.
    pub altruism_scale: f64,
    /// Pareto shape parameter for library sizes of sharers (smaller = more
    /// skewed).
    pub library_shape: f64,
    /// Average out-degree of the random overlay graph.
    pub degree: usize,
    /// Flood TTL for queries.
    pub ttl: usize,
    /// Number of queries to simulate.
    pub queries: usize,
}

impl Default for P2pConfig {
    fn default() -> Self {
        P2pConfig {
            peers: 2_000,
            sharing_cost: 1.0,
            altruism_scale: 0.85,
            library_shape: 1.1,
            degree: 6,
            ttl: 4,
            queries: 20_000,
        }
    }
}

/// The measured outcome of a simulation — the quantities the paper quotes.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pOutcome {
    /// Fraction of peers sharing no files (the free riders).
    pub free_rider_fraction: f64,
    /// Fraction of all query responses served by the top 1 % of peers
    /// (ranked by responses served).
    pub top1_percent_response_share: f64,
    /// Fraction of responses served by the top 10 % of peers.
    pub top10_percent_response_share: f64,
    /// Fraction of queries that received at least one response.
    pub query_success_rate: f64,
    /// Number of sharers.
    pub sharers: usize,
}

/// A peer's equilibrium decision in the sharing game: share exactly when the
/// private benefit (altruism) covers the cost. Because downloads do not
/// depend on one's own sharing, this *is* the dominant strategy — the game
/// needs no fixed-point computation.
pub fn shares_in_equilibrium(altruism: f64, sharing_cost: f64) -> bool {
    altruism >= sharing_cost
}

/// Runs the full simulation: equilibrium sharing decisions, overlay
/// construction, query flooding, response accounting. The RNG stream is
/// fully determined by `seed`, so independently seeded calls are
/// independent replicas (the seed used to live inside [`P2pConfig`], which
/// silently reused one stream across runs of the same configuration).
///
/// # Panics
///
/// Panics if there are fewer than 10 peers.
pub fn simulate(config: &P2pConfig, seed: u64) -> P2pOutcome {
    assert!(config.peers >= 10, "need at least 10 peers");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.peers;

    // 1. equilibrium sharing decisions
    let altruism: Vec<f64> = (0..n)
        .map(|_| sample_exponential(&mut rng, config.altruism_scale))
        .collect();
    let shares: Vec<bool> = altruism
        .iter()
        .map(|&a| shares_in_equilibrium(a, config.sharing_cost))
        .collect();
    let sharers = shares.iter().filter(|s| **s).count();

    // 2. library sizes for sharers (Pareto-distributed)
    let libraries: Vec<f64> = (0..n)
        .map(|i| {
            if shares[i] {
                sample_pareto(&mut rng, config.library_shape)
            } else {
                0.0
            }
        })
        .collect();

    // 3. random overlay graph (undirected, approximately `degree` edges per
    //    peer)
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    let edges = n * config.degree / 2;
    for _ in 0..edges {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
    }

    // 4. query flooding: each query starts at a random peer, reaches
    //    everyone within `ttl` hops, and is answered by reachable sharers
    //    with probability proportional to library size (normalized by the
    //    largest library so big sharers answer almost always).
    let max_library = libraries.iter().cloned().fold(0.0_f64, f64::max).max(1.0);
    let mut responses_by_peer = vec![0usize; n];
    let mut answered_queries = 0usize;
    let mut visited = vec![usize::MAX; n];
    for query in 0..config.queries {
        let origin = rng.random_range(0..n);
        // BFS up to ttl
        let mut frontier = vec![origin];
        visited[origin] = query;
        let mut any = false;
        for _hop in 0..config.ttl {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &adjacency[u] {
                    if visited[v] != query {
                        visited[v] = query;
                        next.push(v);
                        if shares[v] {
                            let p = libraries[v] / max_library;
                            if rng.random::<f64>() < p {
                                responses_by_peer[v] += 1;
                                any = true;
                            }
                        }
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        if any {
            answered_queries += 1;
        }
    }

    // 5. concentration statistics
    let total_responses: usize = responses_by_peer.iter().sum();
    let mut sorted = responses_by_peer.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let share_of_top = |fraction: f64| -> f64 {
        if total_responses == 0 {
            return 0.0;
        }
        let k = ((n as f64 * fraction).ceil() as usize).max(1);
        sorted.iter().take(k).sum::<usize>() as f64 / total_responses as f64
    };

    P2pOutcome {
        free_rider_fraction: 1.0 - sharers as f64 / n as f64,
        top1_percent_response_share: share_of_top(0.01),
        top10_percent_response_share: share_of_top(0.10),
        query_success_rate: answered_queries as f64 / config.queries as f64,
        sharers,
    }
}

fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    -scale * u.ln()
}

fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    u.powf(-1.0 / shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_riding_is_dominant_below_the_cost() {
        assert!(!shares_in_equilibrium(0.5, 1.0));
        assert!(shares_in_equilibrium(1.5, 1.0));
    }

    #[test]
    fn default_configuration_reproduces_the_gnutella_shape() {
        let outcome = simulate(&P2pConfig::default(), 42);
        // ≈70 % free riders (Adar–Huberman report "almost 70 percent")
        assert!(
            (outcome.free_rider_fraction - 0.70).abs() < 0.06,
            "free riders {}",
            outcome.free_rider_fraction
        );
        // the top 1 % of hosts serve a large chunk of responses (the paper
        // quotes ~50 %; accept a wide band for the synthetic network, since
        // the Pareto tail makes the statistic swing with the RNG stream)
        assert!(
            outcome.top1_percent_response_share > 0.30
                && outcome.top1_percent_response_share < 0.90,
            "top 1% share {}",
            outcome.top1_percent_response_share
        );
        assert!(outcome.top10_percent_response_share > outcome.top1_percent_response_share);
        assert!(outcome.query_success_rate > 0.5);
    }

    #[test]
    fn raising_the_sharing_cost_increases_free_riding() {
        let cheap = simulate(
            &P2pConfig {
                sharing_cost: 0.3,
                ..P2pConfig::default()
            },
            42,
        );
        let expensive = simulate(
            &P2pConfig {
                sharing_cost: 2.5,
                ..P2pConfig::default()
            },
            42,
        );
        assert!(expensive.free_rider_fraction > cheap.free_rider_fraction + 0.1);
        assert!(expensive.sharers < cheap.sharers);
    }

    #[test]
    fn more_skewed_libraries_concentrate_responses() {
        let skewed = simulate(
            &P2pConfig {
                library_shape: 0.8,
                ..P2pConfig::default()
            },
            42,
        );
        let flat = simulate(
            &P2pConfig {
                library_shape: 3.0,
                ..P2pConfig::default()
            },
            42,
        );
        assert!(skewed.top1_percent_response_share > flat.top1_percent_response_share);
    }

    #[test]
    fn simulation_is_reproducible_for_a_fixed_seed() {
        let a = simulate(&P2pConfig::default(), 42);
        let b = simulate(&P2pConfig::default(), 42);
        assert_eq!(a, b);
        let c = simulate(&P2pConfig::default(), 43);
        assert_ne!(a, c, "different seeds must give independent replicas");
    }
}
