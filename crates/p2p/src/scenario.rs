//! The file-sharing simulator as a [`bne_sim::Scenario`]: sharing-cost /
//! topology grids with seeded replicas, replacing one-shot calls to
//! [`crate::simulate`].

use crate::{simulate, P2pConfig, P2pOutcome};
use bne_sim::{Merge, Scenario, StreamingStats};

/// Streaming aggregate of file-sharing replicas (one grid cell).
#[derive(Debug, Clone, PartialEq)]
pub struct P2pStats {
    /// Fraction of peers sharing nothing.
    pub free_riders: StreamingStats,
    /// Share of responses served by the top 1 % of peers.
    pub top1_share: StreamingStats,
    /// Share of responses served by the top 10 % of peers.
    pub top10_share: StreamingStats,
    /// Fraction of queries answered at all.
    pub query_success: StreamingStats,
    /// Number of sharers.
    pub sharers: StreamingStats,
}

impl P2pStats {
    /// Summarizes one replica.
    pub fn of_outcome(outcome: &P2pOutcome) -> Self {
        P2pStats {
            free_riders: StreamingStats::of(outcome.free_rider_fraction),
            top1_share: StreamingStats::of(outcome.top1_percent_response_share),
            top10_share: StreamingStats::of(outcome.top10_percent_response_share),
            query_success: StreamingStats::of(outcome.query_success_rate),
            sharers: StreamingStats::of(outcome.sharers as f64),
        }
    }
}

impl Merge for P2pStats {
    fn merge(&mut self, other: &Self) {
        self.free_riders.merge(&other.free_riders);
        self.top1_share.merge(&other.top1_share);
        self.top10_share.merge(&other.top10_share);
        self.query_success.merge(&other.query_success);
        self.sharers.merge(&other.sharers);
    }
}

/// The file-sharing scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct P2pScenario;

impl Scenario for P2pScenario {
    type Config = P2pConfig;
    type Outcome = P2pStats;

    fn run(&self, config: &P2pConfig, seed: u64) -> P2pStats {
        P2pStats::of_outcome(&simulate(config, seed))
    }
}

/// Grid varying the sharing cost over an otherwise fixed network.
pub fn sharing_cost_grid(base: &P2pConfig, costs: &[f64]) -> Vec<P2pConfig> {
    costs
        .iter()
        .map(|&sharing_cost| P2pConfig {
            sharing_cost,
            ..base.clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_sim::{canonical_fold, derive_seed, SimRunner};

    fn small_base() -> P2pConfig {
        P2pConfig {
            peers: 120,
            queries: 800,
            ..P2pConfig::default()
        }
    }

    #[test]
    fn scenario_replica_matches_direct_simulate() {
        let config = small_base();
        let stats = P2pScenario.run(&config, 5);
        let outcome = simulate(&config, 5);
        assert_eq!(stats.free_riders.mean(), outcome.free_rider_fraction);
        assert_eq!(stats.sharers.mean(), outcome.sharers as f64);
    }

    #[test]
    fn engine_aggregate_is_bit_identical_to_legacy_loop() {
        let grid = sharing_cost_grid(&small_base(), &[0.5, 1.0, 2.0]);
        let runner = SimRunner::new(12, 3);
        let engine = runner.run_sequential(&P2pScenario, &grid);
        for (cell, config) in grid.iter().enumerate() {
            let legacy =
                canonical_fold((0..12).map(|r| {
                    P2pStats::of_outcome(&simulate(config, derive_seed(3, cell as u64, r)))
                }))
                .expect("non-empty");
            assert_eq!(engine[cell].outcome, legacy);
        }
    }

    #[test]
    fn replicated_cost_sweep_shows_more_free_riding_as_cost_rises() {
        let grid = sharing_cost_grid(&small_base(), &[0.3, 2.5]);
        let results = SimRunner::new(16, 9).run_sequential(&P2pScenario, &grid);
        assert!(
            results[1].outcome.free_riders.mean() > results[0].outcome.free_riders.mean() + 0.1,
            "replica-averaged free riding must rise with the sharing cost"
        );
    }
}
