//! Canned Byzantine behaviors.
//!
//! The paper's reason for caring about immunity is precisely that real
//! systems contain players whose behavior is not explained by the modelled
//! utilities — "faulty computers, a faulty network, ... or a lack of
//! understanding of the game". These process implementations plug into the
//! [`crate::network::SyncNetwork`] (and, through `bne-net`'s round
//! adapter, the async event-driven runtime) anywhere an honest process
//! would, and misbehave in the standard ways used to stress Byzantine
//! agreement protocols.
//!
//! Every stochastic variant carries an **explicit seed** (the same
//! convention as the `bne-sim` engine's `derive_seed`d replica seeds):
//! there is no internally-fixed RNG stream, so scenario code can re-seed
//! adversaries per replica with [`FaultyBehavior::with_seed`] and the
//! adversary's randomness genuinely varies across replicas while staying
//! reproducible. Per-process streams are separated with
//! [`bne_sim::derive_seed`], so two faulty processes sharing one behavior
//! never mirror each other.

use crate::network::{ProcId, Process};
use crate::Value;
use bne_sim::derive_seed;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A Byzantine behavior for protocols whose message type is a plain
/// [`Value`] (the phase-king protocol and other broadcast-style protocols).
#[derive(Debug, Clone)]
pub enum FaultyBehavior {
    /// Sends nothing, ever (a crashed-from-the-start process).
    Silent,
    /// Behaves like an honest broadcaster of its initial value for the first
    /// `after` rounds, then stops (crash fault).
    Crash {
        /// Number of rounds of correct behavior before crashing.
        after: usize,
        /// The value broadcast while alive.
        value: Value,
    },
    /// Broadcasts a fixed value to everyone in every round, regardless of
    /// protocol state.
    FixedValue(Value),
    /// The classic equivocation attack: each round, sends 0 to one half of
    /// the processes and 1 to the other — with the halves drawn freshly
    /// from the seeded stream each round, so the split is not a fixed
    /// pattern protocols could accidentally exploit.
    Equivocate {
        /// RNG seed (explicit, per the `bne-sim` seeding convention).
        seed: u64,
    },
    /// Sends uniformly random bits to every process every round.
    RandomNoise {
        /// RNG seed (explicit, per the `bne-sim` seeding convention).
        seed: u64,
    },
    /// Sends arbitrary garbage values (uniform over all of `u64`) to every
    /// process every round — stresses input validation, not just binary
    /// disagreement.
    Garbage {
        /// RNG seed (explicit, per the `bne-sim` seeding convention).
        seed: u64,
    },
}

impl FaultyBehavior {
    /// Whether this behavior draws from an RNG stream.
    pub fn is_stochastic(&self) -> bool {
        matches!(
            self,
            FaultyBehavior::Equivocate { .. }
                | FaultyBehavior::RandomNoise { .. }
                | FaultyBehavior::Garbage { .. }
        )
    }

    /// Returns a copy with the RNG seed of a stochastic variant replaced
    /// by `seed`; deterministic variants are returned unchanged. Scenario
    /// code calls this with a replica-derived seed so adversary randomness
    /// varies across replicas instead of replaying one fixed stream.
    pub fn with_seed(&self, seed: u64) -> FaultyBehavior {
        match self {
            FaultyBehavior::Equivocate { .. } => FaultyBehavior::Equivocate { seed },
            FaultyBehavior::RandomNoise { .. } => FaultyBehavior::RandomNoise { seed },
            FaultyBehavior::Garbage { .. } => FaultyBehavior::Garbage { seed },
            deterministic => deterministic.clone(),
        }
    }

    /// The explicit seed of a stochastic variant, if any.
    fn seed(&self) -> Option<u64> {
        match self {
            FaultyBehavior::Equivocate { seed }
            | FaultyBehavior::RandomNoise { seed }
            | FaultyBehavior::Garbage { seed } => Some(*seed),
            _ => None,
        }
    }
}

/// A faulty process wrapping a [`FaultyBehavior`]. It never decides — the
/// correctness conditions of Byzantine agreement only constrain the honest
/// processes.
#[derive(Debug)]
pub struct FaultyProcess {
    behavior: FaultyBehavior,
    id: ProcId,
    n: usize,
    rng: StdRng,
}

impl FaultyProcess {
    /// Creates a faulty process with the given behavior.
    pub fn new(behavior: FaultyBehavior) -> Self {
        FaultyProcess {
            behavior,
            id: 0,
            n: 0,
            rng: StdRng::seed_from_u64(0),
        }
    }
}

impl Process for FaultyProcess {
    type Msg = Value;

    fn init(&mut self, id: ProcId, n: usize) {
        self.id = id;
        self.n = n;
        if let Some(seed) = self.behavior.seed() {
            // per-process stream separation via the engine's bijective mix
            self.rng = StdRng::seed_from_u64(derive_seed(seed, id as u64, 0));
        }
    }

    fn round(&mut self, round: usize, _inbox: &[(ProcId, Value)]) -> Vec<(ProcId, Value)> {
        match &self.behavior {
            FaultyBehavior::Silent => Vec::new(),
            FaultyBehavior::Crash { after, value } => {
                if round < *after {
                    (0..self.n).map(|d| (d, *value)).collect()
                } else {
                    Vec::new()
                }
            }
            FaultyBehavior::FixedValue(v) => (0..self.n).map(|d| (d, *v)).collect(),
            FaultyBehavior::Equivocate { .. } => {
                // a fresh half/half split each round (Fisher–Yates on the
                // destination list, first half told 0, second half told 1)
                let mut order: Vec<ProcId> = (0..self.n).collect();
                for i in (1..order.len()).rev() {
                    let j = self.rng.random_range(0..=i);
                    order.swap(i, j);
                }
                let half = self.n / 2;
                let mut out: Vec<(ProcId, Value)> = order
                    .into_iter()
                    .enumerate()
                    .map(|(pos, d)| (d, Value::from(pos >= half)))
                    .collect();
                // deliver in destination order (the network sorts inboxes
                // by sender anyway; this keeps the outbox canonical)
                out.sort_by_key(|(d, _)| *d);
                out
            }
            FaultyBehavior::RandomNoise { .. } => (0..self.n)
                .map(|d| (d, self.rng.random_range(0..2u64)))
                .collect(),
            FaultyBehavior::Garbage { .. } => {
                (0..self.n).map(|d| (d, self.rng.random::<u64>())).collect()
            }
        }
    }

    fn decision(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one_round(behavior: FaultyBehavior, n: usize, round: usize) -> Vec<(ProcId, Value)> {
        let mut p = FaultyProcess::new(behavior);
        p.init(1, n);
        p.round(round, &[])
    }

    #[test]
    fn silent_sends_nothing() {
        assert!(run_one_round(FaultyBehavior::Silent, 5, 0).is_empty());
    }

    #[test]
    fn crash_stops_after_deadline() {
        let b = FaultyBehavior::Crash { after: 2, value: 1 };
        assert_eq!(run_one_round(b.clone(), 4, 1).len(), 4);
        assert!(run_one_round(b, 4, 2).is_empty());
    }

    #[test]
    fn equivocator_splits_the_network() {
        let msgs = run_one_round(FaultyBehavior::Equivocate { seed: 4 }, 6, 0);
        assert_eq!(msgs.len(), 6);
        assert!(msgs.iter().filter(|(_, v)| *v == 0).count() == 3);
        assert!(msgs.iter().filter(|(_, v)| *v == 1).count() == 3);
    }

    #[test]
    fn equivocation_split_varies_with_seed_and_round() {
        let a = run_one_round(FaultyBehavior::Equivocate { seed: 1 }, 8, 0);
        let b = run_one_round(FaultyBehavior::Equivocate { seed: 2 }, 8, 0);
        assert_ne!(a, b, "different seeds must draw different splits");
        let mut p = FaultyProcess::new(FaultyBehavior::Equivocate { seed: 1 });
        p.init(1, 8);
        let r0 = p.round(0, &[]);
        let r1 = p.round(1, &[]);
        assert_ne!(r0, r1, "the split must be redrawn every round");
        assert_eq!(a, r0, "same (seed, id, round) is reproducible");
    }

    #[test]
    fn random_noise_is_reproducible() {
        let a = run_one_round(FaultyBehavior::RandomNoise { seed: 9 }, 8, 0);
        let b = run_one_round(FaultyBehavior::RandomNoise { seed: 9 }, 8, 0);
        assert_eq!(a, b);
        assert!(a.iter().all(|(_, v)| *v < 2));
    }

    #[test]
    fn garbage_sends_out_of_domain_values() {
        let msgs = run_one_round(FaultyBehavior::Garbage { seed: 5 }, 64, 0);
        assert_eq!(msgs.len(), 64);
        // with 64 uniform u64 draws, some value is essentially always
        // outside the protocol's {0, 1} domain
        assert!(msgs.iter().any(|(_, v)| *v > 1));
    }

    #[test]
    fn processes_sharing_a_behavior_do_not_mirror_each_other() {
        let behavior = FaultyBehavior::RandomNoise { seed: 9 };
        let mut a = FaultyProcess::new(behavior.clone());
        let mut b = FaultyProcess::new(behavior);
        a.init(1, 8);
        b.init(2, 8);
        assert_ne!(a.round(0, &[]), b.round(0, &[]));
    }

    #[test]
    fn with_seed_reseeds_only_stochastic_variants() {
        assert!(matches!(
            FaultyBehavior::Equivocate { seed: 1 }.with_seed(9),
            FaultyBehavior::Equivocate { seed: 9 }
        ));
        assert!(matches!(
            FaultyBehavior::Garbage { seed: 1 }.with_seed(9),
            FaultyBehavior::Garbage { seed: 9 }
        ));
        assert!(matches!(
            FaultyBehavior::FixedValue(1).with_seed(9),
            FaultyBehavior::FixedValue(1)
        ));
        assert!(!FaultyBehavior::Silent.is_stochastic());
        assert!(FaultyBehavior::RandomNoise { seed: 0 }.is_stochastic());
    }

    #[test]
    fn faulty_processes_never_decide() {
        let mut p = FaultyProcess::new(FaultyBehavior::FixedValue(1));
        p.init(0, 3);
        p.round(0, &[]);
        assert_eq!(p.decision(), None);
    }
}
