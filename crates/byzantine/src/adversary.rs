//! Canned Byzantine behaviors.
//!
//! The paper's reason for caring about immunity is precisely that real
//! systems contain players whose behavior is not explained by the modelled
//! utilities — "faulty computers, a faulty network, ... or a lack of
//! understanding of the game". These process implementations plug into the
//! [`crate::network::SyncNetwork`] anywhere an honest process would, and
//! misbehave in the standard ways used to stress Byzantine agreement
//! protocols.

use crate::network::{ProcId, Process};
use crate::Value;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A Byzantine behavior for protocols whose message type is a plain
/// [`Value`] (the phase-king protocol and other broadcast-style protocols).
#[derive(Debug, Clone)]
pub enum FaultyBehavior {
    /// Sends nothing, ever (a crashed-from-the-start process).
    Silent,
    /// Behaves like an honest broadcaster of its initial value for the first
    /// `after` rounds, then stops (crash fault).
    Crash {
        /// Number of rounds of correct behavior before crashing.
        after: usize,
        /// The value broadcast while alive.
        value: Value,
    },
    /// Broadcasts a fixed value to everyone in every round, regardless of
    /// protocol state.
    FixedValue(Value),
    /// Sends value 0 to the lower-numbered half of the processes and 1 to
    /// the rest — the classic equivocation attack.
    Equivocate,
    /// Sends uniformly random bits to every process every round.
    RandomNoise {
        /// RNG seed (kept per-process so runs are reproducible).
        seed: u64,
    },
}

/// A faulty process wrapping a [`FaultyBehavior`]. It never decides — the
/// correctness conditions of Byzantine agreement only constrain the honest
/// processes.
#[derive(Debug)]
pub struct FaultyProcess {
    behavior: FaultyBehavior,
    id: ProcId,
    n: usize,
    rng: StdRng,
}

impl FaultyProcess {
    /// Creates a faulty process with the given behavior.
    pub fn new(behavior: FaultyBehavior) -> Self {
        FaultyProcess {
            behavior,
            id: 0,
            n: 0,
            rng: StdRng::seed_from_u64(0),
        }
    }
}

impl Process for FaultyProcess {
    type Msg = Value;

    fn init(&mut self, id: ProcId, n: usize) {
        self.id = id;
        self.n = n;
        if let FaultyBehavior::RandomNoise { seed } = self.behavior {
            self.rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
        }
    }

    fn round(&mut self, round: usize, _inbox: &[(ProcId, Value)]) -> Vec<(ProcId, Value)> {
        match &self.behavior {
            FaultyBehavior::Silent => Vec::new(),
            FaultyBehavior::Crash { after, value } => {
                if round < *after {
                    (0..self.n).map(|d| (d, *value)).collect()
                } else {
                    Vec::new()
                }
            }
            FaultyBehavior::FixedValue(v) => (0..self.n).map(|d| (d, *v)).collect(),
            FaultyBehavior::Equivocate => (0..self.n)
                .map(|d| (d, if d < self.n / 2 { 0 } else { 1 }))
                .collect(),
            FaultyBehavior::RandomNoise { .. } => (0..self.n)
                .map(|d| (d, self.rng.random_range(0..2u64)))
                .collect(),
        }
    }

    fn decision(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one_round(behavior: FaultyBehavior, n: usize, round: usize) -> Vec<(ProcId, Value)> {
        let mut p = FaultyProcess::new(behavior);
        p.init(1, n);
        p.round(round, &[])
    }

    #[test]
    fn silent_sends_nothing() {
        assert!(run_one_round(FaultyBehavior::Silent, 5, 0).is_empty());
    }

    #[test]
    fn crash_stops_after_deadline() {
        let b = FaultyBehavior::Crash { after: 2, value: 1 };
        assert_eq!(run_one_round(b.clone(), 4, 1).len(), 4);
        assert!(run_one_round(b, 4, 2).is_empty());
    }

    #[test]
    fn equivocator_splits_the_network() {
        let msgs = run_one_round(FaultyBehavior::Equivocate, 6, 0);
        assert_eq!(msgs.len(), 6);
        assert!(msgs.iter().filter(|(_, v)| *v == 0).count() == 3);
        assert!(msgs.iter().filter(|(_, v)| *v == 1).count() == 3);
    }

    #[test]
    fn random_noise_is_reproducible() {
        let a = run_one_round(FaultyBehavior::RandomNoise { seed: 9 }, 8, 0);
        let b = run_one_round(FaultyBehavior::RandomNoise { seed: 9 }, 8, 0);
        assert_eq!(a, b);
        assert!(a.iter().all(|(_, v)| *v < 2));
    }

    #[test]
    fn faulty_processes_never_decide() {
        let mut p = FaultyProcess::new(FaultyBehavior::FixedValue(1));
        p.init(0, 3);
        p.round(0, &[]);
        assert_eq!(p.decision(), None);
    }
}
