//! Ben-Or's randomized binary consensus, as a runtime-agnostic state
//! machine with a seeded per-process coin.
//!
//! The second event-driven protocol of the workspace (after
//! [`crate::bracha`]): each process moves through *its own* rounds at
//! whatever pace the message schedule allows — there is no global clock,
//! and the number of rounds until decision is a **random variable** whose
//! distribution depends on the inputs, the coin seeds and, crucially, the
//! scheduler. That makes it exactly the workload the `bne-net` adversarial
//! schedulers were built to stress (the Herman-protocol-style
//! expected-convergence analysis).
//!
//! The protocol (Ben-Or 1983, in the presentation of Aspnes' *Notes on
//! Theory of Distributed Systems*): in round `r` with preference `x`,
//!
//! 1. multicast `Report(r, x)`; collect `n − t` round-`r` reports. If more
//!    than `(n + t) / 2` report the same `v`, multicast `Proposal(r, v)`,
//!    else `Proposal(r, ⊥)`;
//! 2. collect `n − t` round-`r` proposals. If `2t + 1` propose the same
//!    `v`: **decide** `v`. Else if `t + 1` propose `v`: adopt `x = v`.
//!    Else: set `x` to a fresh coin flip. Advance to round `r + 1`.
//!
//! A process that decides multicasts `Decided(v)` and halts; peers count a
//! `Decided(v)` as a permanent `Report(r, v)` **and** `Proposal(r, v)` in
//! every later round, which is what lets stragglers reach their quorums
//! after the fast processes have gone quiet (termination detection without
//! a global observer). With these thresholds the classical guarantees hold
//! for `n > 5t` under Byzantine faults (`n > 2t` for crash faults);
//! termination is with probability 1, so [`BenOrState`] carries a
//! `max_rounds` cap after which it halts undecided rather than spin
//! forever in a simulation.

use crate::network::ProcId;
use crate::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// One Ben-Or message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenOrMsg {
    /// Phase-1 vote: "my round-`round` preference is `value`".
    Report {
        /// The sender's current round (1-based).
        round: u32,
        /// The sender's preference.
        value: Value,
    },
    /// Phase-2 vote: "round `round` reports showed a supermajority for
    /// `value`" (`None` encodes the ⊥ proposal).
    Proposal {
        /// The sender's current round (1-based).
        round: u32,
        /// The proposed value, or `None` for ⊥.
        value: Option<Value>,
    },
    /// Broadcast once on deciding; counts as this sender's report and
    /// proposal in every later round.
    Decided {
        /// The decided value.
        value: Value,
    },
}

/// Which phase of its current round a process is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for `n − t` round-`r` reports.
    Reporting,
    /// Waiting for `n − t` round-`r` proposals.
    Proposing,
}

/// The state of one Ben-Or participant: per-round vote tallies (keyed by
/// sender, so Byzantine duplicates cannot stuff a quorum), the halted
/// peers' decided values, and the process's private seeded coin.
#[derive(Debug, Clone)]
pub struct BenOrState {
    id: ProcId,
    n: usize,
    t: usize,
    pref: Value,
    round: u32,
    phase: Phase,
    max_rounds: u32,
    reports: BTreeMap<u32, BTreeMap<ProcId, Value>>,
    proposals: BTreeMap<u32, BTreeMap<ProcId, Option<Value>>>,
    decided_peers: BTreeMap<ProcId, Value>,
    decided: Option<Value>,
    decided_round: Option<u32>,
    halted: bool,
    coin: StdRng,
    /// When set, coin flips come from the scripted tap instead of the
    /// seeded RNG — the model checker's hook for enumerating *all* coin
    /// outcomes (Ben-Or's safety must hold for every one of them).
    coin_tap: Option<crate::choice::SharedTap>,
}

impl BenOrState {
    /// A fresh participant with initial preference `pref` and a private
    /// coin seeded with `coin_seed` (derive it per process via
    /// `bne_sim::derive_seed` so no two processes share a coin stream).
    pub fn new(
        id: ProcId,
        n: usize,
        t: usize,
        pref: Value,
        max_rounds: u32,
        coin_seed: u64,
    ) -> Self {
        BenOrState {
            id,
            n,
            t,
            pref,
            round: 1,
            phase: Phase::Reporting,
            max_rounds,
            reports: BTreeMap::new(),
            proposals: BTreeMap::new(),
            decided_peers: BTreeMap::new(),
            decided: None,
            decided_round: None,
            halted: false,
            coin: StdRng::seed_from_u64(coin_seed),
            coin_tap: None,
        }
    }

    /// Reroutes coin flips through a scripted [`crate::choice::ChoiceTap`]
    /// (domain 2 per flip). Clones of this state share the tap — which is
    /// what the model checker wants: the tap's contents are search state,
    /// saved and restored alongside the runtime snapshot.
    pub fn with_coin_tap(mut self, tap: crate::choice::SharedTap) -> Self {
        self.coin_tap = Some(tap);
        self
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The round in which the decision was reached, if any.
    pub fn decided_round(&self) -> Option<u32> {
        self.decided_round
    }

    /// Whether the process has stopped participating (decided, or gave up
    /// at `max_rounds`).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The opening move: multicast this process's round-1 report.
    pub fn start(&mut self) -> Vec<BenOrMsg> {
        vec![BenOrMsg::Report {
            round: 1,
            value: self.pref,
        }]
    }

    /// Handles one incoming message and advances through as many
    /// phases/rounds as the accumulated votes allow, returning every
    /// message to multicast to all `n` processes (first write per
    /// `(round, sender)` wins; a process's own multicasts loop back
    /// through the network like anyone else's).
    pub fn handle(&mut self, src: ProcId, msg: &BenOrMsg) -> Vec<BenOrMsg> {
        match *msg {
            BenOrMsg::Report { round, value } => {
                self.reports
                    .entry(round)
                    .or_default()
                    .entry(src)
                    .or_insert(value);
            }
            BenOrMsg::Proposal { round, value } => {
                self.proposals
                    .entry(round)
                    .or_default()
                    .entry(src)
                    .or_insert(value);
            }
            BenOrMsg::Decided { value } => {
                self.decided_peers.entry(src).or_insert(value);
            }
        }
        self.advance()
    }

    /// Tries to finish the current phase (possibly several in a row — a
    /// burst of buffered future-round votes can unlock more than one).
    fn advance(&mut self) -> Vec<BenOrMsg> {
        let mut out = Vec::new();
        loop {
            if self.halted {
                return out;
            }
            match self.phase {
                Phase::Reporting => {
                    let Some(tally) = self.report_tally() else {
                        return out;
                    };
                    // supermajority: two report quorums intersect in an
                    // honest process, so at most one value can cross it
                    let quorum = (self.n + self.t) / 2 + 1;
                    let proposal = tally.iter().find(|&(_, &c)| c >= quorum).map(|(&v, _)| v);
                    self.phase = Phase::Proposing;
                    out.push(BenOrMsg::Proposal {
                        round: self.round,
                        value: proposal,
                    });
                }
                Phase::Proposing => {
                    let Some(tally) = self.proposal_tally() else {
                        return out;
                    };
                    // the best-supported non-⊥ value (ties broken toward
                    // the smaller value for determinism; honest processes
                    // can never produce two conflicting proposals, so a
                    // tie means Byzantine noise on both sides)
                    let best = tally
                        .iter()
                        .max_by_key(|&(&v, &c)| (c, std::cmp::Reverse(v)))
                        .map(|(&v, &c)| (v, c));
                    match best {
                        // c ≥ 2t + 1: a majority of the proposers are honest
                        Some((v, c)) if c > 2 * self.t => {
                            self.decided = Some(v);
                            self.decided_round = Some(self.round);
                            self.halted = true;
                            out.push(BenOrMsg::Decided { value: v });
                            return out;
                        }
                        // c ≥ t + 1: at least one honest proposer
                        Some((v, c)) if c > self.t => self.pref = v,
                        _ => {
                            self.pref = match &self.coin_tap {
                                Some(tap) => tap.borrow_mut().draw(2),
                                None => self.coin.random_range(0..2u64),
                            }
                        }
                    }
                    self.round += 1;
                    if self.round > self.max_rounds {
                        // give up undecided: bounds the simulation
                        self.halted = true;
                        return out;
                    }
                    self.phase = Phase::Reporting;
                    out.push(BenOrMsg::Report {
                        round: self.round,
                        value: self.pref,
                    });
                }
            }
        }
    }

    /// A canonical encoding of the *behaviorally live* local state, or
    /// `None` when the coin is the seeded RNG (whose internal state has
    /// no canonical word encoding — state-space deduplication would be
    /// unsound). Exhaustive checking therefore requires
    /// [`BenOrState::with_coin_tap`]. The tap's own contents are
    /// deliberately *not* encoded: every consumed choice's effect is
    /// already visible in the protocol state, and the checker forks over
    /// future draws on demand.
    ///
    /// *Dead* state is canonicalized away, so two states that differ only
    /// in facts that can never again influence behavior share an
    /// encoding: a halted process keeps only its decision (its tallies
    /// are never re-read and it never speaks again), and tally rows that
    /// no future [`BenOrState::handle`] call can reach — past rounds, the
    /// current round's reports once the phase has moved on, and rows from
    /// peers in `decided_peers` (the tallies skip them in favor of the
    /// permanent decided vote) — are dropped. The taxonomy matches
    /// [`BenOrState::absorbs`] exactly: a message is absorbed precisely
    /// when handling it could only create or refresh a dead row.
    pub fn state_words(&self) -> Option<Vec<u64>> {
        self.coin_tap.as_ref()?;
        if self.halted {
            // tag 2 cannot collide with a live encoding, whose first
            // word is a binary preference
            return Some(vec![
                2,
                u64::from(self.decided.is_some()),
                self.decided.unwrap_or(0),
            ]);
        }
        let mut out = vec![
            self.pref,
            u64::from(self.round),
            match self.phase {
                Phase::Reporting => 0,
                Phase::Proposing => 1,
            },
        ];
        let report_rows: Vec<(u32, ProcId, u64)> = self
            .reports
            .iter()
            .flat_map(|(&round, votes)| votes.iter().map(move |(&src, &v)| (round, src, v)))
            .filter(|&(round, src, _)| {
                (round > self.round || (round == self.round && self.phase == Phase::Reporting))
                    && !self.decided_peers.contains_key(&src)
            })
            .collect();
        out.push(report_rows.len() as u64);
        for (round, src, v) in report_rows {
            out.extend([u64::from(round), src as u64, v]);
        }
        let proposal_rows: Vec<(u32, ProcId, Option<Value>)> = self
            .proposals
            .iter()
            .flat_map(|(&round, votes)| votes.iter().map(move |(&src, &v)| (round, src, v)))
            .filter(|&(round, src, _)| {
                round >= self.round && !self.decided_peers.contains_key(&src)
            })
            .collect();
        out.push(proposal_rows.len() as u64);
        for (round, src, v) in proposal_rows {
            out.extend([
                u64::from(round),
                src as u64,
                u64::from(v.is_some()),
                v.unwrap_or(0),
            ]);
        }
        out.push(self.decided_peers.len() as u64);
        for (&src, &v) in &self.decided_peers {
            out.push(src as u64);
            out.push(v);
        }
        Some(out)
    }

    /// Whether this process has permanently stopped speaking: decided or
    /// given up at the round cap. Every later incoming message is a
    /// behavioral no-op (see [`BenOrState::absorbs`]).
    pub fn is_quiescent(&self) -> bool {
        self.halted
    }

    /// Whether handling `msg` from `src` is a *permanent* behavioral
    /// no-op: it cannot trigger sends, cannot change the decision, and
    /// leaves the canonical [`BenOrState::state_words`] unchanged — now
    /// and after any further messages. True when halted, when `src`
    /// already has a row in the relevant tally (first write wins), when
    /// `src` is a known decided peer (the tallies use its permanent
    /// decided vote instead), and when the vote's round can no longer be
    /// read (past rounds; current-round reports once the phase has moved
    /// to proposing). All those conditions are monotone, which is what
    /// makes the no-op permanent.
    pub fn absorbs(&self, src: ProcId, msg: &BenOrMsg) -> bool {
        if self.halted {
            return true;
        }
        if self.decided_peers.contains_key(&src) {
            return true;
        }
        match *msg {
            BenOrMsg::Report { round, .. } => {
                round < self.round
                    || (round == self.round && self.phase == Phase::Proposing)
                    || self
                        .reports
                        .get(&round)
                        .is_some_and(|votes| votes.contains_key(&src))
            }
            BenOrMsg::Proposal { round, .. } => {
                round < self.round
                    || self
                        .proposals
                        .get(&round)
                        .is_some_and(|votes| votes.contains_key(&src))
            }
            BenOrMsg::Decided { .. } => false,
        }
    }

    /// The round-`r` report tally (value → votes), with halted peers
    /// counted as permanent reporters of their decided value. `None`
    /// until `n − t` distinct voters have been heard.
    fn report_tally(&self) -> Option<BTreeMap<Value, usize>> {
        let empty = BTreeMap::new();
        let live = self.reports.get(&self.round).unwrap_or(&empty);
        let mut tally: BTreeMap<Value, usize> = BTreeMap::new();
        let mut voters = 0usize;
        for (&src, &v) in live {
            if !self.decided_peers.contains_key(&src) {
                *tally.entry(v).or_default() += 1;
                voters += 1;
            }
        }
        for &v in self.decided_peers.values() {
            *tally.entry(v).or_default() += 1;
            voters += 1;
        }
        (voters >= self.n - self.t).then_some(tally)
    }

    /// The round-`r` proposal tally over non-⊥ values, with halted peers
    /// counted as permanent proposers of their decided value. `None`
    /// until `n − t` distinct voters have been heard.
    fn proposal_tally(&self) -> Option<BTreeMap<Value, usize>> {
        let empty = BTreeMap::new();
        let live = self.proposals.get(&self.round).unwrap_or(&empty);
        let mut tally: BTreeMap<Value, usize> = BTreeMap::new();
        let mut voters = 0usize;
        for (&src, &v) in live {
            if !self.decided_peers.contains_key(&src) {
                if let Some(v) = v {
                    *tally.entry(v).or_default() += 1;
                }
                voters += 1;
            }
        }
        for &v in self.decided_peers.values() {
            *tally.entry(v).or_default() += 1;
            voters += 1;
        }
        (voters >= self.n - self.t).then_some(tally)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full network of `BenOrState`s by a FIFO queue until
    /// quiescence (every returned message multicast to all).
    fn run_lockstep(prefs: &[Value], t: usize, max_rounds: u32) -> Vec<BenOrState> {
        let n = prefs.len();
        let mut procs: Vec<BenOrState> = prefs
            .iter()
            .enumerate()
            .map(|(i, &p)| BenOrState::new(i, n, t, p, max_rounds, 0xC0 + i as u64))
            .collect();
        let mut queue: std::collections::VecDeque<(ProcId, ProcId, BenOrMsg)> =
            std::collections::VecDeque::new();
        for (src, proc) in procs.iter_mut().enumerate() {
            for m in proc.start() {
                for dst in 0..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        while let Some((src, dst, msg)) = queue.pop_front() {
            for m in procs[dst].handle(src, &msg) {
                for d in 0..n {
                    queue.push_back((dst, d, m));
                }
            }
        }
        procs
    }

    #[test]
    fn unanimous_inputs_decide_in_round_one() {
        let procs = run_lockstep(&[1, 1, 1, 1, 1], 1, 50);
        for p in &procs {
            assert_eq!(p.decided(), Some(1));
            assert_eq!(p.decided_round(), Some(1));
        }
    }

    #[test]
    fn mixed_inputs_decide_and_agree() {
        let procs = run_lockstep(&[0, 1, 0, 1, 0, 1, 0], 1, 200);
        let first = procs[0].decided().expect("must decide");
        for p in &procs {
            assert_eq!(p.decided(), Some(first), "agreement");
        }
    }

    #[test]
    fn validity_unanimous_zero() {
        let procs = run_lockstep(&[0, 0, 0, 0], 1, 50);
        assert!(procs.iter().all(|p| p.decided() == Some(0)));
    }

    #[test]
    fn max_rounds_halts_undecided_rather_than_spinning() {
        // t = n: quorums are unreachable, so every process coins forever
        // until the cap trips
        let mut p = BenOrState::new(0, 3, 3, 1, 5, 9);
        let _ = p.start();
        // n - t = 0 voters needed: advances through phases on no votes
        let _ = p.advance();
        assert!(p.halted());
        assert_eq!(p.decided(), None);
    }

    #[test]
    fn duplicate_votes_from_one_sender_count_once() {
        let mut p = BenOrState::new(0, 4, 1, 1, 10, 7);
        let _ = p.start();
        for _ in 0..5 {
            let _ = p.handle(2, &BenOrMsg::Report { round: 1, value: 1 });
        }
        // only 1 distinct voter < n - t = 3: still reporting
        assert_eq!(p.phase, Phase::Reporting);
    }

    #[test]
    fn decided_peers_unblock_stragglers_in_later_rounds() {
        // three peers decided 1 and halted; the straggler's round-1 tally
        // counts them, crosses its quorums and decides without any live
        // round-1 traffic
        let mut p = BenOrState::new(3, 4, 1, 0, 10, 11);
        let _ = p.start();
        let mut out = Vec::new();
        for src in 0..3 {
            out.extend(p.handle(src, &BenOrMsg::Decided { value: 1 }));
        }
        assert_eq!(p.decided(), Some(1));
        assert!(out
            .iter()
            .any(|m| matches!(m, BenOrMsg::Decided { value: 1 })));
    }

    #[test]
    fn coin_streams_differ_across_seeds() {
        let mut a = BenOrState::new(0, 3, 1, 0, 10, 1);
        let mut b = BenOrState::new(0, 3, 1, 0, 10, 2);
        let flips = |s: &mut BenOrState| -> Vec<u64> {
            (0..32).map(|_| s.coin.random_range(0..2u64)).collect()
        };
        assert_ne!(flips(&mut a), flips(&mut b));
    }
}
