//! Scripted nondeterminism: the **choice tap** protocols expose their
//! coins and Byzantine lies through, so the `bne-mc` model checker can
//! enumerate them instead of sampling them.
//!
//! A [`ChoiceTap`] replaces an RNG with a *script*: a prefix of already
//! decided choices plus a record of **demands** — draws that ran past the
//! script's end. The checker's protocol is:
//!
//! 1. run a transition with the current script;
//! 2. if the tap reports demands, the transition consumed nondeterminism
//!    the script did not cover — roll the runtime back (via
//!    `EventNet::restore`), extend the script with one candidate value
//!    per branch of the first demand's domain, and re-run;
//! 3. once no demands remain, the transition was fully deterministic
//!    under the script and the search recurses.
//!
//! Draws past the script's end return `0`, so step 1 is always total —
//! the checker just must not *keep* a state whose step left demands.
//! Protocols share a tap across clones via [`SharedTap`]; the tap's
//! contents are part of the *search* state, not the *protocol* state, so
//! `EventNet::snapshot` does not capture it — the checker saves and
//! restores tap contents itself with [`ChoiceTap::save`]/
//! [`ChoiceTap::restore`].

use std::cell::RefCell;
use std::rc::Rc;

/// A scripted source of bounded nondeterministic choices (see the
/// module docs for the search protocol it supports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChoiceTap {
    /// Decided choices, consumed in order.
    script: Vec<u64>,
    /// Draws performed so far (index of the next script entry).
    pos: usize,
    /// Domain sizes of draws that ran past the script (in draw order).
    demands: Vec<u64>,
}

impl ChoiceTap {
    /// A tap with an empty script: every draw becomes a demand.
    pub fn new() -> Self {
        ChoiceTap::default()
    }

    /// A tap primed with `script` (used by counterexample replay, where
    /// the full choice sequence is known up front).
    pub fn scripted(script: Vec<u64>) -> Self {
        ChoiceTap {
            script,
            pos: 0,
            demands: Vec::new(),
        }
    }

    /// Draws one choice from `0..domain`. Scripted draws return the next
    /// script entry (clamped into the domain); draws past the script
    /// return `0` and record the demand.
    pub fn draw(&mut self, domain: u64) -> u64 {
        debug_assert!(domain >= 1, "empty choice domain");
        let v = match self.script.get(self.pos) {
            Some(&v) => {
                debug_assert!(v < domain, "scripted choice out of domain");
                v.min(domain - 1)
            }
            None => {
                self.demands.push(domain);
                0
            }
        };
        self.pos += 1;
        v
    }

    /// Domain sizes of the draws that ran past the script since the last
    /// [`ChoiceTap::restore`] (empty iff the last transition was fully
    /// covered).
    pub fn demands(&self) -> &[u64] {
        &self.demands
    }

    /// The decided script (the consumed prefix of the choice space).
    pub fn script(&self) -> &[u64] {
        &self.script
    }

    /// Number of draws performed.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Appends one decided choice to the script (the checker's fork
    /// step: one extension per candidate value of the first demand).
    pub fn push_choice(&mut self, v: u64) {
        self.script.push(v);
    }

    /// Captures the tap for the checker's backtracking stack.
    pub fn save(&self) -> ChoiceTap {
        self.clone()
    }

    /// Rewinds to a [`ChoiceTap::save`]d state.
    pub fn restore(&mut self, saved: &ChoiceTap) {
        self.script.clone_from(&saved.script);
        self.pos = saved.pos;
        self.demands.clone_from(&saved.demands);
    }
}

/// A tap shared between the checker and the processes drawing from it.
pub type SharedTap = Rc<RefCell<ChoiceTap>>;

/// Builds a fresh shared tap with an empty script.
pub fn shared_tap() -> SharedTap {
    Rc::new(RefCell::new(ChoiceTap::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_draws_follow_the_script_then_demand() {
        let mut tap = ChoiceTap::scripted(vec![1, 0]);
        assert_eq!(tap.draw(2), 1);
        assert_eq!(tap.draw(2), 0);
        assert!(tap.demands().is_empty());
        assert_eq!(tap.draw(3), 0, "past the script: default 0");
        assert_eq!(tap.demands(), &[3]);
    }

    #[test]
    fn save_restore_rewinds_script_growth_and_demands() {
        let mut tap = ChoiceTap::new();
        let clean = tap.save();
        let _ = tap.draw(2);
        tap.push_choice(1);
        assert!(!tap.demands().is_empty());
        tap.restore(&clean);
        assert_eq!(tap, clean);
        assert_eq!(tap.pos(), 0);
    }
}
