//! Single-decree Paxos, as a runtime-agnostic state machine.
//!
//! The first *ballot-based* protocol in the workspace: agreement comes
//! from **quorum intersection** (any two majorities share a process)
//! rather than from round counting, following the classical synod
//! protocol (and the Fast Paxos TLA+ presentation of its message flow).
//! Every process plays all three roles:
//!
//! * **proposer** — owns the ballot numbers `b` with `(b − 1) mod n ==
//!   id`, so no two processes ever run the same ballot. A proposer
//!   starts ballot `b` by multicasting `P1a(b)`;
//! * **acceptor** — on `P1a(b)` with `b` above every ballot it has
//!   promised, it promises `b` and answers `P1b(b, acc_ballot,
//!   acc_value)` carrying the highest-ballot value it has ever accepted.
//!   On `P2a(b, v)` with `b` at or above its promise it accepts,
//!   recording `(b, v)` and multicasting `P2b(b, v)`;
//! * **learner** — a majority of `P2b(b, v)` means `v` is *chosen*: it
//!   decides `v` and multicasts `Decided` so stragglers learn cheaply.
//!
//! The safety core is the proposer's **forced value** rule: having
//! gathered `P1b`s from a majority, it must propose the accepted value
//! of the highest `acc_ballot` among them (its own input only if none).
//! Any chosen value was accepted by a majority, every later phase-1
//! quorum intersects that majority, so every later ballot re-proposes
//! the chosen value — *no two decided values, ever*, under any message
//! loss, reordering, or crash/recovery pattern. Liveness needs a stable
//! proposer: the `bne-net` shell provides leader failover by escalating
//! to a fresh own ballot on timeout ([`PaxosState::on_timeout`]).
//!
//! Crash-recovery: an acceptor's promise and accepted pair are exactly
//! the state that must survive a crash ([`PaxosState::durable_words`] /
//! [`PaxosState::restore_durable`]); tallies, the proposer phase and
//! even the learned decision are volatile and are rebuilt by re-running
//! a ballot after recovery — acceptors answer phase messages forever,
//! decided or not, precisely so recovered processes can re-learn.

use crate::network::ProcId;
use crate::Value;
use std::collections::{BTreeMap, BTreeSet};

/// One single-decree Paxos message. Ballot numbers start at 1; ballot 0
/// encodes "none" in `P1b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PaxosMsg {
    /// Phase-1a: the proposer owning `ballot` asks for promises.
    P1a {
        /// The ballot being opened.
        ballot: u64,
    },
    /// Phase-1b: an acceptor's promise for `ballot`, reporting the
    /// highest ballot it has accepted in (`0` = never) and that value.
    P1b {
        /// The promised ballot.
        ballot: u64,
        /// Highest ballot this acceptor has accepted in (0 = none).
        acc_ballot: u64,
        /// The value accepted at `acc_ballot`, if any.
        acc_value: Option<Value>,
    },
    /// Phase-2a: the proposer of `ballot` asks acceptors to accept
    /// `value`.
    P2a {
        /// The ballot.
        ballot: u64,
        /// The (possibly forced) value.
        value: Value,
    },
    /// Phase-2b: an acceptor accepted `value` at `ballot`.
    P2b {
        /// The ballot.
        ballot: u64,
        /// The accepted value.
        value: Value,
    },
    /// A learner observed a chosen value (lets stragglers and recovered
    /// processes decide without running a ballot of their own).
    Decided {
        /// The ballot whose phase-2 quorum chose the value.
        ballot: u64,
        /// The chosen value.
        value: Value,
    },
}

/// The proposer's progress through its current ballot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProposerPhase {
    /// Not currently leading a ballot.
    Idle,
    /// Collecting `P1b` promises.
    Phase1,
    /// Collecting `P2b` accepts (value already sent in `P2a`).
    Phase2,
}

/// The state of one Paxos participant (proposer + acceptor + learner).
#[derive(Debug, Clone)]
pub struct PaxosState {
    id: ProcId,
    n: usize,
    input: Value,
    // --- acceptor state: the durable fraction ---
    /// Highest ballot promised (0 = none).
    promised: u64,
    /// Highest ballot accepted in (0 = none).
    acc_ballot: u64,
    /// Value accepted at `acc_ballot`.
    acc_value: Option<Value>,
    // --- proposer state: volatile ---
    my_ballot: u64,
    phase: ProposerPhase,
    /// `P1b` votes for `my_ballot`: src → (acc_ballot, acc_value).
    promises: BTreeMap<ProcId, (u64, Option<Value>)>,
    // --- learner state: volatile ---
    /// `P2b` votes per ballot: ballot → (value, voters).
    accepts: BTreeMap<u64, (Value, BTreeSet<ProcId>)>,
    decided: Option<Value>,
    decided_ballot: Option<u64>,
}

impl PaxosState {
    /// A fresh participant proposing `input` when free to choose.
    pub fn new(id: ProcId, n: usize, input: Value) -> Self {
        PaxosState {
            id,
            n,
            input,
            promised: 0,
            acc_ballot: 0,
            acc_value: None,
            my_ballot: 0,
            phase: ProposerPhase::Idle,
            promises: BTreeMap::new(),
            accepts: BTreeMap::new(),
            decided: None,
            decided_ballot: None,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The ballot whose quorum produced this process's decision, if any.
    pub fn decided_ballot(&self) -> Option<u64> {
        self.decided_ballot
    }

    /// Highest ballot promised so far (0 = none) — acceptor state.
    pub fn promised(&self) -> u64 {
        self.promised
    }

    /// A majority quorum: any two intersect.
    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Appends a canonical encoding of the *behaviorally live* local
    /// state (volatile proposer/learner fractions included, unlike
    /// [`PaxosState::durable_words`]) — the model checker's
    /// state-fingerprint contribution. Paxos has no internal randomness,
    /// so unlike Ben-Or this is always available. Voter sets are encoded
    /// as bitmasks (`n ≤ 64`).
    ///
    /// Dead state is canonicalized away so the checker merges states
    /// that cannot behave differently: `decided_ballot` is never read
    /// after the decision broadcast, the phase-1 `promises` tally is
    /// cleared unread by the next `PaxosState::open_ballot` unless the
    /// proposer is actually in phase 1, and the learner's `accepts`
    /// tallies are only ever consulted by the decision rule, which is a
    /// no-op once `decided` is set. (A crash wipes every volatile field
    /// either way, so recovery cannot tell canonicalized states apart.)
    pub fn state_words(&self, out: &mut Vec<u64>) {
        debug_assert!(self.n <= 64, "voter bitmask encoding needs n <= 64");
        out.push(self.promised);
        out.push(self.acc_ballot);
        out.push(u64::from(self.acc_value.is_some()));
        out.push(self.acc_value.unwrap_or(0));
        out.push(self.my_ballot);
        out.push(match self.phase {
            ProposerPhase::Idle => 0,
            ProposerPhase::Phase1 => 1,
            ProposerPhase::Phase2 => 2,
        });
        out.push(u64::from(self.decided.is_some()));
        out.push(self.decided.unwrap_or(0));
        if self.phase == ProposerPhase::Phase1 {
            out.push(self.promises.len() as u64);
            for (&src, &(acc_ballot, acc_value)) in &self.promises {
                out.push(src as u64);
                out.push(acc_ballot);
                out.push(u64::from(acc_value.is_some()));
                out.push(acc_value.unwrap_or(0));
            }
        } else {
            out.push(0);
        }
        if self.decided.is_none() {
            out.push(self.accepts.len() as u64);
            for (&ballot, (value, voters)) in &self.accepts {
                let mut mask = 0u64;
                for &p in voters {
                    mask |= 1 << p;
                }
                out.push(ballot);
                out.push(*value);
                out.push(mask);
            }
        } else {
            out.push(0);
        }
    }

    /// Whether handling `msg` from `src` is a behavioral no-op that will
    /// stay one for the rest of this incarnation: no response, no state
    /// change visible in [`PaxosState::state_words`]. Every condition is
    /// monotone while the process stays up — `promised`, `my_ballot` and
    /// the tallies only grow, a ballot's phase-1 window never reopens
    /// (reopening means a *higher* ballot), and a decision is final.
    /// A crash-*recovery* resets the volatile fields, reviving e.g. the
    /// learner's appetite for `Decided`, so callers draining absorbed
    /// messages must not do so past a possible recovery (the model
    /// checker runs crash-stop faults only).
    pub fn absorbs(&self, src: ProcId, msg: &PaxosMsg) -> bool {
        match *msg {
            // promises are strictly increasing
            PaxosMsg::P1a { ballot } => ballot <= self.promised,
            // a P1b matters only to the proposer still in phase 1 of
            // exactly that ballot, and only once per acceptor
            PaxosMsg::P1b { ballot, .. } => {
                ballot < self.my_ballot
                    || (ballot == self.my_ballot
                        && (self.phase != ProposerPhase::Phase1
                            || self.promises.contains_key(&src)))
            }
            // an old-ballot P2a is refused without a response; at the
            // promised ballot it (re-)accepts and re-sends P2b, so it is
            // never a no-op
            PaxosMsg::P2a { ballot, .. } => ballot < self.promised,
            // the decision rule is one-shot, and voter sets dedupe
            PaxosMsg::P2b { ballot, .. } => {
                self.decided.is_some()
                    || self
                        .accepts
                        .get(&ballot)
                        .is_some_and(|(_, voters)| voters.contains(&src))
            }
            PaxosMsg::Decided { .. } => self.decided.is_some(),
        }
    }

    /// The smallest ballot strictly above `above` that this process
    /// owns (`(b − 1) mod n == id`).
    fn next_own_ballot(&self, above: u64) -> u64 {
        let base = self.id as u64 + 1;
        if above < base {
            base
        } else {
            base + ((above - base) / self.n as u64 + 1) * self.n as u64
        }
    }

    /// The opening move: process 0 (owner of ballot 1) starts the first
    /// ballot; everyone else waits for traffic or a timeout.
    pub fn start(&mut self) -> Vec<PaxosMsg> {
        if self.id == 0 {
            self.open_ballot()
        } else {
            Vec::new()
        }
    }

    /// Leader failover: abandon any ballot in flight and open a fresh
    /// own ballot above everything seen. The `bne-net` shell calls this
    /// from its retry timer; an undecided process whose proposer went
    /// quiet thereby becomes the proposer itself.
    pub fn on_timeout(&mut self) -> Vec<PaxosMsg> {
        if self.decided.is_some() {
            return Vec::new();
        }
        self.open_ballot()
    }

    /// Opens the next own ballot above `max(promised, my_ballot)`.
    fn open_ballot(&mut self) -> Vec<PaxosMsg> {
        self.my_ballot = self.next_own_ballot(self.promised.max(self.my_ballot));
        self.phase = ProposerPhase::Phase1;
        self.promises.clear();
        vec![PaxosMsg::P1a {
            ballot: self.my_ballot,
        }]
    }

    /// Handles one incoming message, returning the messages to multicast
    /// to all `n` processes (a process's own multicasts loop back and
    /// count toward its quorums like anyone else's).
    pub fn handle(&mut self, src: ProcId, msg: &PaxosMsg) -> Vec<PaxosMsg> {
        let mut out = Vec::new();
        match *msg {
            PaxosMsg::P1a { ballot } => {
                // acceptor: promise strictly increasing ballots, reveal
                // the highest accepted pair (the forced-value input)
                if ballot > self.promised {
                    self.promised = ballot;
                    out.push(PaxosMsg::P1b {
                        ballot,
                        acc_ballot: self.acc_ballot,
                        acc_value: self.acc_value,
                    });
                }
            }
            PaxosMsg::P1b {
                ballot,
                acc_ballot,
                acc_value,
            } => {
                // proposer: collect promises for the ballot in flight
                if ballot == self.my_ballot && self.phase == ProposerPhase::Phase1 {
                    self.promises.entry(src).or_insert((acc_ballot, acc_value));
                    if self.promises.len() >= self.majority() {
                        // the forced value: highest acc_ballot in the
                        // quorum wins; free choice only if none accepted
                        let forced = self
                            .promises
                            .values()
                            .filter(|(b, _)| *b > 0)
                            .max_by_key(|(b, _)| *b)
                            .and_then(|(_, v)| *v);
                        let value = forced.unwrap_or(self.input);
                        self.phase = ProposerPhase::Phase2;
                        out.push(PaxosMsg::P2a {
                            ballot: self.my_ballot,
                            value,
                        });
                    }
                }
            }
            PaxosMsg::P2a { ballot, value } => {
                // acceptor: accept unless promised away to a higher ballot
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.acc_ballot = ballot;
                    self.acc_value = Some(value);
                    out.push(PaxosMsg::P2b { ballot, value });
                }
            }
            PaxosMsg::P2b { ballot, value } => {
                // learner: a majority of accepts at one ballot = chosen
                let (_, voters) = self
                    .accepts
                    .entry(ballot)
                    .or_insert_with(|| (value, BTreeSet::new()));
                voters.insert(src);
                if self.accepts[&ballot].1.len() >= self.majority() && self.decided.is_none() {
                    self.decided = Some(value);
                    self.decided_ballot = Some(ballot);
                    out.push(PaxosMsg::Decided { ballot, value });
                }
            }
            PaxosMsg::Decided { ballot, value } => {
                if self.decided.is_none() {
                    self.decided = Some(value);
                    self.decided_ballot = Some(ballot);
                    out.push(PaxosMsg::Decided { ballot, value });
                }
            }
        }
        out
    }

    /// The acceptor state that must survive a crash, encoded as words:
    /// `[promised, acc_ballot, has_acc_value, acc_value]`.
    pub fn durable_words(&self) -> Vec<u64> {
        vec![
            self.promised,
            self.acc_ballot,
            u64::from(self.acc_value.is_some()),
            self.acc_value.unwrap_or(0),
        ]
    }

    /// Restores [`PaxosState::durable_words`] after a crash, wiping every
    /// volatile field: in-flight ballots, tallies and even the learned
    /// decision are lost and must be re-learned through a fresh ballot.
    pub fn restore_durable(&mut self, words: &[u64]) {
        self.promised = words.first().copied().unwrap_or(0);
        self.acc_ballot = words.get(1).copied().unwrap_or(0);
        self.acc_value = if words.get(2).copied().unwrap_or(0) == 1 {
            Some(words.get(3).copied().unwrap_or(0))
        } else {
            None
        };
        self.my_ballot = 0;
        self.phase = ProposerPhase::Idle;
        self.promises.clear();
        self.accepts.clear();
        self.decided = None;
        self.decided_ballot = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Drives a full network of `PaxosState`s by a FIFO queue until
    /// quiescence (every returned message multicast to all `n`).
    fn run_lockstep(inputs: &[Value]) -> Vec<PaxosState> {
        let n = inputs.len();
        let mut procs: Vec<PaxosState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| PaxosState::new(i, n, v))
            .collect();
        let mut queue: VecDeque<(ProcId, ProcId, PaxosMsg)> = VecDeque::new();
        for (src, proc) in procs.iter_mut().enumerate() {
            for m in proc.start() {
                for dst in 0..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        while let Some((src, dst, msg)) = queue.pop_front() {
            for m in procs[dst].handle(src, &msg) {
                for d in 0..n {
                    queue.push_back((dst, d, m));
                }
            }
        }
        procs
    }

    #[test]
    fn clean_run_chooses_the_initial_proposers_input() {
        for n in [3usize, 4, 5, 7] {
            let inputs: Vec<Value> = (0..n as u64).map(|i| i + 10).collect();
            let procs = run_lockstep(&inputs);
            for p in &procs {
                assert_eq!(p.decided(), Some(10), "n={n}: proposer 0's input wins");
                assert_eq!(p.decided_ballot(), Some(1));
            }
        }
    }

    #[test]
    fn ballot_ownership_partitions_the_ballot_space() {
        let n = 5;
        for id in 0..n {
            let s = PaxosState::new(id, n, 0);
            let mut b = 0;
            for _ in 0..4 {
                b = s.next_own_ballot(b);
                assert_eq!((b as usize - 1) % n, id, "ballot {b} owned by {id}");
            }
        }
        // distinct processes never share a ballot
        let a = PaxosState::new(1, 5, 0).next_own_ballot(7);
        let b = PaxosState::new(2, 5, 0).next_own_ballot(7);
        assert_ne!(a, b);
    }

    #[test]
    fn forced_value_rule_reproposes_the_accepted_value() {
        // acceptor 2 already accepted (ballot 1, value 9); proposer 1
        // opens ballot 2 and must propose 9, not its own input 5
        let n = 3;
        let mut p1 = PaxosState::new(1, n, 5);
        let out = p1.on_timeout();
        assert_eq!(out, vec![PaxosMsg::P1a { ballot: 2 }]);
        // promises: from 0 (nothing accepted) and from 2 (accepted 9@1)
        let _ = p1.handle(1, &PaxosMsg::P1a { ballot: 2 }); // own loopback
        let own = p1.handle(
            1,
            &PaxosMsg::P1b {
                ballot: 2,
                acc_ballot: 0,
                acc_value: None,
            },
        );
        assert!(own.is_empty(), "one promise is not a majority");
        let out = p1.handle(
            2,
            &PaxosMsg::P1b {
                ballot: 2,
                acc_ballot: 1,
                acc_value: Some(9),
            },
        );
        assert_eq!(
            out,
            vec![PaxosMsg::P2a {
                ballot: 2,
                value: 9
            }]
        );
    }

    #[test]
    fn acceptors_refuse_ballots_below_their_promise() {
        let mut a = PaxosState::new(2, 3, 0);
        assert!(!a.handle(0, &PaxosMsg::P1a { ballot: 4 }).is_empty());
        assert_eq!(a.promised(), 4);
        // stale ballot: no promise, no accept
        assert!(a.handle(1, &PaxosMsg::P1a { ballot: 2 }).is_empty());
        assert!(a
            .handle(
                1,
                &PaxosMsg::P2a {
                    ballot: 2,
                    value: 7
                }
            )
            .is_empty());
        // the promised ballot itself is accepted
        assert!(!a
            .handle(
                0,
                &PaxosMsg::P2a {
                    ballot: 4,
                    value: 7
                }
            )
            .is_empty());
    }

    #[test]
    fn competing_proposers_agree_on_one_value() {
        // both 0 and 1 propose concurrently (timeout-style), messages
        // interleaved FIFO: safety must hold regardless of who wins
        let n = 5;
        let mut procs: Vec<PaxosState> = (0..n).map(|i| PaxosState::new(i, n, i as u64)).collect();
        let mut queue: VecDeque<(ProcId, ProcId, PaxosMsg)> = VecDeque::new();
        for (src, p) in procs.iter_mut().enumerate().take(2) {
            for m in p.on_timeout() {
                for dst in 0..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        while let Some((src, dst, msg)) = queue.pop_front() {
            for m in procs[dst].handle(src, &msg) {
                for d in 0..n {
                    queue.push_back((dst, d, m));
                }
            }
        }
        let decided: Vec<Value> = procs.iter().filter_map(|p| p.decided()).collect();
        assert!(!decided.is_empty(), "someone decides");
        assert!(
            decided.iter().all(|&v| v == decided[0]),
            "single decided value: {decided:?}"
        );
    }

    #[test]
    fn durable_round_trip_preserves_the_acceptor_and_wipes_the_rest() {
        let mut s = PaxosState::new(1, 3, 5);
        let _ = s.handle(0, &PaxosMsg::P1a { ballot: 1 });
        let _ = s.handle(
            0,
            &PaxosMsg::P2a {
                ballot: 1,
                value: 8,
            },
        );
        let _ = s.on_timeout(); // volatile proposer state in flight
        let words = s.durable_words();
        let mut r = PaxosState::new(1, 3, 5);
        r.restore_durable(&words);
        assert_eq!(r.promised(), s.promised());
        assert_eq!(r.acc_ballot, 1);
        assert_eq!(r.acc_value, Some(8));
        assert_eq!(r.phase, ProposerPhase::Idle);
        assert_eq!(r.decided(), None);
        // the restored acceptor still forces the accepted value
        let out = r.handle(2, &PaxosMsg::P1a { ballot: 3 });
        assert_eq!(
            out,
            vec![PaxosMsg::P1b {
                ballot: 3,
                acc_ballot: 1,
                acc_value: Some(8)
            }]
        );
    }

    #[test]
    fn recovered_process_relearns_the_chosen_value_via_a_fresh_ballot() {
        // run to a decision, crash-and-restore process 2 (losing its
        // decision), then let it run a recovery ballot: quorum
        // intersection forces the already-chosen value
        let mut procs = run_lockstep(&[40, 41, 42]);
        let chosen = procs[0].decided().expect("decided");
        let words = procs[2].durable_words();
        procs[2].restore_durable(&words);
        assert_eq!(procs[2].decided(), None, "decision was volatile");
        let mut queue: VecDeque<(ProcId, ProcId, PaxosMsg)> = VecDeque::new();
        for m in procs[2].on_timeout() {
            for dst in 0..3 {
                queue.push_back((2, dst, m));
            }
        }
        while let Some((src, dst, msg)) = queue.pop_front() {
            for m in procs[dst].handle(src, &msg) {
                for d in 0..3 {
                    queue.push_back((dst, d, m));
                }
            }
        }
        assert_eq!(procs[2].decided(), Some(chosen), "safety across recovery");
    }
}
