//! HSUC-style leader-driven consensus (rotating coordinator), as a
//! runtime-agnostic state machine.
//!
//! Where [`crate::paxos`] lets *any* process open a ballot, this module
//! follows the leader-driven shape of the HSUC consensus module: rounds
//! `r = 1, 2, …` each have a **predetermined leader** `(r − 1) mod n`,
//! and only the leader of a round may propose in it. A round runs:
//!
//! 1. every process entering round `r` multicasts `Estimate(r, est,
//!    est_round)` — its current estimate and the round that estimate
//!    was last locked in (`0` = still the initial input);
//! 2. the leader of `r` collects estimates from a **majority**, adopts
//!    the estimate with the highest `est_round` (its own input only if
//!    nothing was ever locked), and multicasts `Propose(r, v)`;
//! 3. a process receiving the leader's proposal locks it — `est = v`,
//!    `est_round = r` — and multicasts `Ack(r)`;
//! 4. the leader counts a majority of acks, decides `v`, and
//!    multicasts `Decide(v, r)`.
//!
//! Safety is the same quorum-intersection induction as Paxos: a decided
//! value was locked by a majority at round `r`, every later leader reads
//! a majority that intersects it, and the highest-`est_round` rule makes
//! the locked value win — so no later round can propose anything else.
//! Liveness comes from the rotating leader: an undecided process times
//! out ([`HsucState::on_timeout`]), advances one round, and round entry
//! is *contagious* (any message from a higher round pulls a process
//! forward), so eventually a live leader gets a live majority. The
//! protocol tolerates `f < n/2` crash faults — strictly better than the
//! `t < n/3` Byzantine protocols in this crate, because crashed
//! processes never lie.
//!
//! Crash-recovery: the locked pair `(est, est_round)` and the current
//! round are the durable fraction ([`HsucState::durable_words`]); the
//! per-round tallies and the decision are volatile. A recovered process
//! re-learns the decision because decided processes answer higher-round
//! `Estimate`s with a `Decide` rebroadcast (once per round, so traffic
//! stays bounded).

use crate::network::ProcId;
use crate::Value;
use std::collections::{BTreeMap, BTreeSet};

/// One message of the leader-driven protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsucMsg {
    /// A process entered `round` and reports its locked estimate.
    Estimate {
        /// The round being entered.
        round: u64,
        /// The sender's current estimate.
        est: Value,
        /// The round that estimate was locked in (0 = initial input).
        est_round: u64,
    },
    /// The leader of `round` proposes `value`.
    Propose {
        /// The round.
        round: u64,
        /// The proposed value (forced by the highest-`est_round` rule).
        value: Value,
    },
    /// The sender locked the leader's proposal for `round`.
    Ack {
        /// The round being acknowledged.
        round: u64,
    },
    /// A decision: `value` was acked by a majority at `round`.
    Decide {
        /// The deciding round.
        round: u64,
        /// The decided value.
        value: Value,
    },
}

/// The state of one participant in the leader-driven protocol.
#[derive(Debug, Clone)]
pub struct HsucState {
    id: ProcId,
    n: usize,
    // --- durable fraction ---
    /// Current estimate (starts as the input).
    est: Value,
    /// Round the estimate was locked in (0 = never locked).
    est_round: u64,
    /// Current round (0 = not started).
    round: u64,
    // --- volatile leader bookkeeping ---
    /// Estimates gathered per led round: round → src → (est_round, est).
    estimates: BTreeMap<u64, BTreeMap<ProcId, (u64, Value)>>,
    /// The value this process proposed per led round.
    proposals: BTreeMap<u64, Value>,
    /// Ack voters per led round.
    acks: BTreeMap<u64, BTreeSet<ProcId>>,
    // --- volatile learner state ---
    decided: Option<Value>,
    decided_round: Option<u64>,
    /// Rounds for which a decided process already rebroadcast `Decide`.
    rebroadcasts: BTreeSet<u64>,
}

impl HsucState {
    /// A fresh participant whose initial estimate is `input`.
    pub fn new(id: ProcId, n: usize, input: Value) -> Self {
        HsucState {
            id,
            n,
            est: input,
            est_round: 0,
            round: 0,
            estimates: BTreeMap::new(),
            proposals: BTreeMap::new(),
            acks: BTreeMap::new(),
            decided: None,
            decided_round: None,
            rebroadcasts: BTreeSet::new(),
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The round whose ack quorum produced the decision, if any.
    pub fn decided_round(&self) -> Option<u64> {
        self.decided_round
    }

    /// The round this process is currently in (0 = not started).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The leader of round `r`: the coordinator rotates through all
    /// processes so every process eventually leads.
    pub fn leader_of(&self, r: u64) -> ProcId {
        ((r - 1) % self.n as u64) as usize
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Everyone enters round 1 at start by multicasting its estimate
    /// (process 0 leads round 1 and will gather them).
    pub fn start(&mut self) -> Vec<HsucMsg> {
        let mut out = Vec::new();
        self.advance_to(1, &mut out);
        out
    }

    /// Leader failover: an undecided process gives up on the current
    /// round and enters the next one, whose (rotated) leader takes over.
    /// The `bne-net` shell calls this from its retry timer.
    pub fn on_timeout(&mut self) -> Vec<HsucMsg> {
        let mut out = Vec::new();
        if self.decided.is_none() {
            let next = self.round + 1;
            self.advance_to(next, &mut out);
        }
        out
    }

    /// Enters round `r` (if ahead of the current one) and announces the
    /// locked estimate to its leader. Round entry is contagious: higher
    /// round numbers observed in any message funnel through here.
    fn advance_to(&mut self, r: u64, out: &mut Vec<HsucMsg>) {
        if r > self.round {
            self.round = r;
            out.push(HsucMsg::Estimate {
                round: r,
                est: self.est,
                est_round: self.est_round,
            });
        }
    }

    /// Handles one incoming message, returning messages to multicast to
    /// all `n` processes (own multicasts loop back and count toward
    /// quorums).
    pub fn handle(&mut self, src: ProcId, msg: &HsucMsg) -> Vec<HsucMsg> {
        let mut out = Vec::new();
        match *msg {
            HsucMsg::Estimate {
                round,
                est,
                est_round,
            } => {
                if let Some(value) = self.decided {
                    // help recovered/straggling processes: answer each
                    // round's estimates with the decision, once per round
                    self.round = self.round.max(round);
                    if self.rebroadcasts.insert(round) {
                        out.push(HsucMsg::Decide {
                            round: self.decided_round.unwrap_or(round),
                            value,
                        });
                    }
                    return out;
                }
                self.advance_to(round, &mut out);
                if self.leader_of(round) == self.id && round == self.round {
                    let majority = self.majority();
                    let tally = self.estimates.entry(round).or_default();
                    tally.entry(src).or_insert((est_round, est));
                    if tally.len() >= majority && !self.proposals.contains_key(&round) {
                        // the forced value: highest est_round in the
                        // majority wins (ties broken by smallest value
                        // for determinism; est_round 0 means free input)
                        let (_, value) = *tally
                            .values()
                            .max_by_key(|(er, v)| (*er, std::cmp::Reverse(*v)))
                            .expect("non-empty tally");
                        self.proposals.insert(round, value);
                        out.push(HsucMsg::Propose { round, value });
                    }
                }
            }
            HsucMsg::Propose { round, value } => {
                if src == self.leader_of(round) && round >= self.round {
                    self.advance_to(round, &mut out);
                    // lock the proposal: this is what quorum
                    // intersection reads in later rounds
                    self.est = value;
                    self.est_round = round;
                    out.push(HsucMsg::Ack { round });
                }
            }
            HsucMsg::Ack { round } => {
                if self.leader_of(round) == self.id {
                    if let Some(&value) = self.proposals.get(&round) {
                        let voters = self.acks.entry(round).or_default();
                        voters.insert(src);
                        if voters.len() >= self.majority() && self.decided.is_none() {
                            self.decided = Some(value);
                            self.decided_round = Some(round);
                            out.push(HsucMsg::Decide { round, value });
                        }
                    }
                }
            }
            HsucMsg::Decide { round, value } => {
                if self.decided.is_none() {
                    self.decided = Some(value);
                    self.decided_round = Some(round);
                    out.push(HsucMsg::Decide { round, value });
                }
            }
        }
        out
    }

    /// The state that must survive a crash, encoded as words:
    /// `[est, est_round, round]` — the locked pair plus the round
    /// counter (so a recovered process never re-enters an old round).
    pub fn durable_words(&self) -> Vec<u64> {
        vec![self.est, self.est_round, self.round]
    }

    /// Restores [`HsucState::durable_words`] after a crash, wiping the
    /// volatile fields: tallies, proposals and the learned decision are
    /// lost; the decision is re-learned from decided peers' `Decide`
    /// rebroadcasts after the next timeout-driven round entry.
    pub fn restore_durable(&mut self, words: &[u64]) {
        self.est = words.first().copied().unwrap_or(0);
        self.est_round = words.get(1).copied().unwrap_or(0);
        self.round = words.get(2).copied().unwrap_or(0);
        self.estimates.clear();
        self.proposals.clear();
        self.acks.clear();
        self.decided = None;
        self.decided_round = None;
        self.rebroadcasts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn drain(procs: &mut [HsucState], queue: &mut VecDeque<(ProcId, ProcId, HsucMsg)>) {
        let n = procs.len();
        while let Some((src, dst, msg)) = queue.pop_front() {
            for m in procs[dst].handle(src, &msg) {
                for d in 0..n {
                    queue.push_back((dst, d, m));
                }
            }
        }
    }

    fn run_lockstep(inputs: &[Value]) -> Vec<HsucState> {
        let n = inputs.len();
        let mut procs: Vec<HsucState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| HsucState::new(i, n, v))
            .collect();
        let mut queue: VecDeque<(ProcId, ProcId, HsucMsg)> = VecDeque::new();
        for (src, proc) in procs.iter_mut().enumerate() {
            for m in proc.start() {
                for dst in 0..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        drain(&mut procs, &mut queue);
        procs
    }

    #[test]
    fn clean_run_decides_round_one_on_the_leaders_input() {
        for n in [3usize, 4, 5, 7] {
            let inputs: Vec<Value> = (0..n as u64).map(|i| i + 20).collect();
            let procs = run_lockstep(&inputs);
            for p in &procs {
                assert_eq!(p.decided(), Some(20), "n={n}: leader 0's input wins");
                assert_eq!(p.decided_round(), Some(1));
            }
        }
    }

    #[test]
    fn leadership_rotates_through_all_processes() {
        let s = HsucState::new(0, 4, 0);
        let leaders: Vec<ProcId> = (1..=8).map(|r| s.leader_of(r)).collect();
        assert_eq!(leaders, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn locked_estimate_wins_in_later_rounds() {
        // process 1 locked value 9 at round 1; when process 2 leads
        // round 3 it must propose 9, not its own input 5
        let n = 3;
        let mut leader = HsucState::new(2, n, 5);
        let _ = leader.start();
        // an unlocked estimate pulls the leader into round 3 (it leads:
        // leader_of(3) = 2) and opens its tally with one vote
        let out = leader.handle(
            0,
            &HsucMsg::Estimate {
                round: 3,
                est: 7,
                est_round: 0,
            },
        );
        assert!(out
            .iter()
            .any(|m| matches!(m, HsucMsg::Estimate { round: 3, .. })));
        // the locked estimate completes the majority (2 of 3) and must
        // win the highest-est_round rule despite value 9 > value 7
        let out = leader.handle(
            1,
            &HsucMsg::Estimate {
                round: 3,
                est: 9,
                est_round: 1,
            },
        );
        assert!(
            out.contains(&HsucMsg::Propose { round: 3, value: 9 }),
            "locked value forced: {out:?}"
        );
    }

    #[test]
    fn proposals_from_non_leaders_are_ignored() {
        let mut p = HsucState::new(0, 3, 4);
        let _ = p.start();
        // round 2's leader is process 1; an imposter proposal from 2
        let out = p.handle(2, &HsucMsg::Propose { round: 2, value: 8 });
        assert!(out.is_empty(), "imposter ignored: {out:?}");
        let out = p.handle(1, &HsucMsg::Propose { round: 2, value: 8 });
        assert!(out.contains(&HsucMsg::Ack { round: 2 }));
        assert_eq!(p.est_round, 2);
    }

    #[test]
    fn timeout_rotates_to_a_live_leader_and_still_decides() {
        // leader 0 is absent (never starts): the others time out into
        // round 2, whose leader is process 1
        let n = 3;
        let mut procs: Vec<HsucState> = (0..n)
            .map(|i| HsucState::new(i, n, 30 + i as u64))
            .collect();
        let mut queue: VecDeque<(ProcId, ProcId, HsucMsg)> = VecDeque::new();
        for (src, p) in procs.iter_mut().enumerate().skip(1) {
            for m in p.start() {
                for dst in 1..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        drain3_live(&mut procs, &mut queue);
        assert_eq!(procs[1].decided(), None, "round 1 leader is dead");
        for (src, p) in procs.iter_mut().enumerate().skip(1) {
            for m in p.on_timeout() {
                for dst in 1..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        drain3_live(&mut procs, &mut queue);
        for p in &procs[1..] {
            assert!(p.decided().is_some(), "round 2 decides without leader 0");
        }
        assert_eq!(procs[1].decided(), procs[2].decided());
        assert_eq!(procs[1].decided_round(), Some(2));
    }

    /// Drains delivering only among processes 1..n (0 is crashed).
    fn drain3_live(procs: &mut [HsucState], queue: &mut VecDeque<(ProcId, ProcId, HsucMsg)>) {
        let n = procs.len();
        while let Some((src, dst, msg)) = queue.pop_front() {
            for m in procs[dst].handle(src, &msg) {
                for d in 1..n {
                    queue.push_back((dst, d, m));
                }
            }
        }
    }

    #[test]
    fn durable_round_trip_keeps_the_lock_and_wipes_the_decision() {
        let mut procs = run_lockstep(&[50, 51, 52]);
        let chosen = procs[1].decided().expect("decided");
        let words = procs[1].durable_words();
        procs[1].restore_durable(&words);
        assert_eq!(procs[1].decided(), None);
        assert_eq!(procs[1].est, chosen, "lock survives the crash");
        assert!(procs[1].est_round >= 1);
        // recovery: time out into a fresh round; decided peers answer
        // the new round's estimate with a Decide rebroadcast
        let n = 3;
        let mut queue: VecDeque<(ProcId, ProcId, HsucMsg)> = VecDeque::new();
        for m in procs[1].on_timeout() {
            for dst in 0..n {
                queue.push_back((1, dst, m));
            }
        }
        drain(&mut procs, &mut queue);
        assert_eq!(procs[1].decided(), Some(chosen), "re-learned decision");
    }

    #[test]
    fn competing_round_entries_agree_on_one_value() {
        // everyone times out at staggered moments, interleaved FIFO
        let n = 5;
        let mut procs: Vec<HsucState> = (0..n).map(|i| HsucState::new(i, n, i as u64)).collect();
        let mut queue: VecDeque<(ProcId, ProcId, HsucMsg)> = VecDeque::new();
        for (src, proc) in procs.iter_mut().enumerate() {
            for m in proc.start() {
                for dst in 0..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        // inject extra timeouts before draining: rounds 2 and 3 compete
        for src in [1usize, 2] {
            for m in procs[src].on_timeout() {
                for dst in 0..n {
                    queue.push_back((src, dst, m));
                }
            }
        }
        drain(&mut procs, &mut queue);
        let decided: Vec<Value> = procs.iter().filter_map(|p| p.decided()).collect();
        assert!(!decided.is_empty());
        assert!(
            decided.iter().all(|&v| v == decided[0]),
            "single decided value: {decided:?}"
        );
    }
}
