//! Bracha's reliable broadcast: the echo/ready quorum protocol, as a
//! runtime-agnostic state machine.
//!
//! This is the first *event-driven* protocol in the workspace: unlike OM,
//! phase king and Dolev–Strong it has no notion of a global round — every
//! transition is triggered by a message arrival, so it runs directly on
//! the `bne-net` event runtime with no round adapter, and its running time
//! is a property of the schedule, not of a fixed round count.
//!
//! The protocol (Aspnes, *Notes on Theory of Distributed Systems*,
//! ch. "Byzantine broadcast"; originally Bracha 1987), correct for
//! `n > 3t`:
//!
//! 1. the designated broadcaster multicasts `Init(v)`;
//! 2. on the broadcaster's `Init(v)`, a process multicasts `Echo(v)`
//!    (once);
//! 3. on more than `(n + t) / 2` `Echo(v)` — a quorum two of which must
//!    intersect in an honest process — or on `t + 1` `Ready(v)` (at least
//!    one honest witness), a process multicasts `Ready(v)` (once);
//! 4. on `2t + 1` `Ready(v)` (a majority of them honest), it **delivers**
//!    `v`.
//!
//! The guarantees checked by [`crate::properties::rb_report`]:
//! **validity** (an honest broadcaster's value is delivered), **agreement**
//! (no two honest processes deliver different values) and **totality** (if
//! any honest process delivers, every honest process delivers — the ready
//! amplification in step 3 is what buys this).
//!
//! [`BrachaState`] is pure state: feed it messages, multicast whatever it
//! returns. `bne_net::protocols::BrachaProcess` is a thin `AsyncProcess`
//! wrapper doing exactly that; the unit tests here drive the machine by
//! hand.

use crate::network::ProcId;
use crate::Value;
use std::collections::{BTreeMap, BTreeSet};

/// One reliable-broadcast message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BrachaMsg {
    /// The broadcaster's initial value.
    Init(Value),
    /// "I have seen the broadcaster claim `v`."
    Echo(Value),
    /// "I am ready to deliver `v`."
    Ready(Value),
}

/// The quorum-tracking state of one Bracha participant.
///
/// Every method that can make progress returns the messages this process
/// must now multicast to **all** `n` processes (itself included — a
/// process's own echo and ready count toward its quorums, delivered
/// through the same channel as everyone else's).
#[derive(Debug, Clone)]
pub struct BrachaState {
    id: ProcId,
    n: usize,
    t: usize,
    broadcaster: ProcId,
    echoed: bool,
    readied: bool,
    echoes: BTreeMap<Value, BTreeSet<ProcId>>,
    readies: BTreeMap<Value, BTreeSet<ProcId>>,
    delivered: Option<Value>,
    /// Ready votes required to join the ready wave (amplification).
    /// `t + 1` in the real protocol; overridable via
    /// [`BrachaState::with_thresholds`] so the model checker can verify
    /// that planted off-by-one quorum bugs are actually caught.
    amp_quorum: usize,
    /// Ready votes required to deliver. `2t + 1` in the real protocol.
    deliver_quorum: usize,
}

impl BrachaState {
    /// A fresh participant. `t` is the fault budget shaping the quorum
    /// sizes; the classical guarantee needs `n > 3t`.
    pub fn new(id: ProcId, n: usize, t: usize, broadcaster: ProcId) -> Self {
        BrachaState {
            id,
            n,
            t,
            broadcaster,
            echoed: false,
            readied: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
            delivered: None,
            amp_quorum: t + 1,
            deliver_quorum: 2 * t + 1,
        }
    }

    /// Overrides the ready-amplification and delivery quorums — the
    /// *mutation hook* for model-checker self-tests. The real protocol
    /// uses `(t + 1, 2t + 1)`; a checker that cannot find a violation
    /// after planting, say, `(t, 2t + 1)` here is not exhausting the
    /// schedule space. Production code has no reason to call this.
    pub fn with_thresholds(mut self, amp_quorum: usize, deliver_quorum: usize) -> Self {
        self.amp_quorum = amp_quorum;
        self.deliver_quorum = deliver_quorum;
        self
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The delivered value, if the `2t + 1` ready quorum has been reached.
    pub fn delivered(&self) -> Option<Value> {
        self.delivered
    }

    /// Whether this participant can never act again: it has echoed,
    /// joined the ready wave and delivered, so [`BrachaState::handle`]
    /// can only record further votes (commutative set inserts) — every
    /// send and the delivery are behind one-shot flags that are all
    /// already set. The model checker relies on this to linearize
    /// late-arriving traffic to finished processes.
    pub fn is_quiescent(&self) -> bool {
        self.echoed && self.readied && self.delivered.is_some()
    }

    /// The broadcaster's opening move: multicast `Init(value)` to everyone
    /// (returns the empty set for non-broadcasters).
    pub fn start(&mut self, value: Value) -> Vec<BrachaMsg> {
        if self.id == self.broadcaster {
            vec![BrachaMsg::Init(value)]
        } else {
            Vec::new()
        }
    }

    /// Echo quorum: more than `(n + t) / 2` echoes, so any two echo
    /// quorums intersect in an honest process.
    fn echo_quorum(&self) -> usize {
        (self.n + self.t) / 2 + 1
    }

    /// Handles one incoming message, returning the messages to multicast
    /// to all `n` processes in response. Duplicate votes from the same
    /// sender are ignored (first write wins), so Byzantine senders cannot
    /// stuff a quorum.
    pub fn handle(&mut self, src: ProcId, msg: &BrachaMsg) -> Vec<BrachaMsg> {
        let mut out = Vec::new();
        match *msg {
            BrachaMsg::Init(v) => {
                // only the designated broadcaster's first Init triggers an
                // echo; equivocating Inits after the first are ignored
                if src == self.broadcaster && !self.echoed {
                    self.echoed = true;
                    out.push(BrachaMsg::Echo(v));
                }
            }
            BrachaMsg::Echo(v) => {
                let votes = self.echoes.entry(v).or_default();
                votes.insert(src);
                if votes.len() >= self.echo_quorum() && !self.readied {
                    self.readied = true;
                    out.push(BrachaMsg::Ready(v));
                }
            }
            BrachaMsg::Ready(v) => {
                let votes = self.readies.entry(v).or_default();
                votes.insert(src);
                let count = votes.len();
                // amplification: t + 1 readies contain an honest witness,
                // so it is safe (and necessary for totality) to join in
                if count >= self.amp_quorum && !self.readied {
                    self.readied = true;
                    out.push(BrachaMsg::Ready(v));
                }
                // 2t + 1 readies: a majority of them are honest
                if count >= self.deliver_quorum && self.delivered.is_none() {
                    self.delivered = Some(v);
                }
            }
        }
        out
    }

    /// The state that must survive a crash, encoded as words:
    /// `[echoed, readied, has_delivered, delivered]`. The quorum tallies
    /// are deliberately volatile — they are rebuilt from peers'
    /// retransmissions after recovery — but the *sent* flags must
    /// persist so a recovered process never equivocates by echoing or
    /// readying a second time for a different value.
    pub fn durable_words(&self) -> Vec<u64> {
        vec![
            u64::from(self.echoed),
            u64::from(self.readied),
            u64::from(self.delivered.is_some()),
            self.delivered.unwrap_or(0),
        ]
    }

    /// Appends a canonical encoding of the local state (volatile tallies
    /// included, unlike [`BrachaState::durable_words`]) — the model
    /// checker's state-fingerprint contribution. The encoding is
    /// *behavioral*: state that can no longer influence any future
    /// transition is canonicalized away, so states differing only in
    /// dead bookkeeping collapse. Echo tallies feed exactly the
    /// echo-quorum → ready rule, dead once `readied`; ready tallies feed
    /// amplification (dead once `readied`) and delivery (dead once
    /// `delivered`). Voter sets are encoded as bitmasks, so this
    /// supports `n ≤ 64`.
    pub fn state_words(&self, out: &mut Vec<u64>) {
        debug_assert!(self.n <= 64, "voter bitmask encoding needs n <= 64");
        out.push(u64::from(self.echoed));
        out.push(u64::from(self.readied));
        out.push(u64::from(self.delivered.is_some()));
        out.push(self.delivered.unwrap_or(0));
        let echoes_live = !self.readied;
        let readies_live = !(self.readied && self.delivered.is_some());
        for (live, tally) in [(echoes_live, &self.echoes), (readies_live, &self.readies)] {
            if !live {
                out.push(0);
                continue;
            }
            out.push(tally.len() as u64);
            for (v, votes) in tally {
                let mut mask = 0u64;
                for &p in votes {
                    mask |= 1 << p;
                }
                out.push(*v);
                out.push(mask);
            }
        }
    }

    /// Whether delivering `msg` from `src` to this participant — now or
    /// after any further events — is a behavioral no-op: no sends, no
    /// delivery, no change to [`BrachaState::state_words`]. The one-shot
    /// flags (`echoed`, `readied`, `delivered`) are monotone and the
    /// tallies are first-write-wins sets, so every clause here is stable
    /// once true. The model checker uses this to dispatch inert
    /// stragglers (duplicate votes, echoes to a process already past the
    /// echo rule, anything late) as forced moves instead of exploring
    /// their interleavings.
    pub fn absorbs(&self, src: ProcId, msg: &BrachaMsg) -> bool {
        match *msg {
            // only the broadcaster's first Init triggers anything
            BrachaMsg::Init(_) => src != self.broadcaster || self.echoed,
            // echo tallies only feed the (dead once readied) ready rule;
            // a duplicate echo is a no-op set insert
            BrachaMsg::Echo(v) => {
                self.readied
                    || self
                        .echoes
                        .get(&v)
                        .is_some_and(|votes| votes.contains(&src))
            }
            // ready tallies feed amplification (dead once readied) and
            // delivery (dead once delivered); duplicates are no-ops
            BrachaMsg::Ready(v) => {
                (self.readied && self.delivered.is_some())
                    || self
                        .readies
                        .get(&v)
                        .is_some_and(|votes| votes.contains(&src))
            }
        }
    }

    /// Restores [`BrachaState::durable_words`] after a crash, wiping the
    /// volatile echo/ready tallies. An undelivered recovered process
    /// re-accumulates quorums from retransmitted traffic (e.g. under
    /// `bne_net::RetryAdapter`); without retransmission it simply stays
    /// undelivered — Bracha has no leader to pull it forward.
    pub fn restore_durable(&mut self, words: &[u64]) {
        self.echoed = words.first().copied().unwrap_or(0) == 1;
        self.readied = words.get(1).copied().unwrap_or(0) == 1;
        self.delivered = if words.get(2).copied().unwrap_or(0) == 1 {
            Some(words.get(3).copied().unwrap_or(0))
        } else {
            None
        };
        self.echoes.clear();
        self.readies.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full network of `BrachaState`s to quiescence by hand:
    /// a FIFO queue of (src, dst, msg) with every returned message
    /// multicast to all processes.
    fn run_lockstep(n: usize, t: usize, value: Value) -> Vec<Option<Value>> {
        let mut procs: Vec<BrachaState> = (0..n).map(|i| BrachaState::new(i, n, t, 0)).collect();
        let mut queue: Vec<(ProcId, ProcId, BrachaMsg)> = Vec::new();
        for m in procs[0].start(value) {
            for dst in 0..n {
                queue.push((0, dst, m));
            }
        }
        while let Some((src, dst, msg)) = queue.pop() {
            for m in procs[dst].handle(src, &msg) {
                for d in 0..n {
                    queue.push((dst, d, m));
                }
            }
        }
        procs.iter().map(|p| p.delivered()).collect()
    }

    #[test]
    fn all_honest_deliver_the_broadcast_value() {
        for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
            let delivered = run_lockstep(n, t, 1);
            assert!(
                delivered.iter().all(|d| *d == Some(1)),
                "(n={n}, t={t}): {delivered:?}"
            );
        }
    }

    #[test]
    fn quorum_sizes_match_the_protocol() {
        let s = BrachaState::new(0, 7, 2, 0);
        assert_eq!(s.echo_quorum(), 5); // > (7 + 2) / 2
    }

    #[test]
    fn non_broadcasters_start_silent() {
        let mut s = BrachaState::new(3, 7, 2, 0);
        assert!(s.start(1).is_empty());
    }

    #[test]
    fn equivocating_second_init_is_ignored() {
        let mut s = BrachaState::new(1, 4, 1, 0);
        assert_eq!(s.handle(0, &BrachaMsg::Init(1)), vec![BrachaMsg::Echo(1)]);
        assert!(s.handle(0, &BrachaMsg::Init(0)).is_empty());
    }

    #[test]
    fn init_from_non_broadcaster_is_ignored() {
        let mut s = BrachaState::new(1, 4, 1, 0);
        assert!(s.handle(2, &BrachaMsg::Init(1)).is_empty());
        assert!(!s.echoed);
    }

    #[test]
    fn duplicate_votes_from_one_sender_do_not_stuff_quorums() {
        let mut s = BrachaState::new(0, 4, 1, 1);
        // 2t + 1 = 3 readies needed; one sender repeating does not count
        for _ in 0..5 {
            s.handle(2, &BrachaMsg::Ready(1));
        }
        assert_eq!(s.delivered(), None);
        s.handle(3, &BrachaMsg::Ready(1));
        s.handle(1, &BrachaMsg::Ready(1));
        assert_eq!(s.delivered(), Some(1));
    }

    #[test]
    fn ready_amplification_fires_at_t_plus_one() {
        let mut s = BrachaState::new(0, 7, 2, 1);
        assert!(s.handle(2, &BrachaMsg::Ready(1)).is_empty());
        assert!(s.handle(3, &BrachaMsg::Ready(1)).is_empty());
        // third ready = t + 1: join the ready wave without any echo quorum
        assert_eq!(s.handle(4, &BrachaMsg::Ready(1)), vec![BrachaMsg::Ready(1)]);
        // ...but only once
        assert!(s.handle(5, &BrachaMsg::Ready(1)).is_empty());
    }

    #[test]
    fn durable_round_trip_keeps_sent_flags_and_replay_reconverges() {
        // a process that echoed and readied, then crashed: the flags
        // survive (no equivocation on replay) but tallies are rebuilt
        let mut s = BrachaState::new(0, 4, 1, 1);
        let _ = s.handle(1, &BrachaMsg::Init(1));
        for src in 1..4 {
            s.handle(src, &BrachaMsg::Echo(1));
        }
        assert!(s.echoed && s.readied);
        let words = s.durable_words();
        let mut r = BrachaState::new(0, 4, 1, 1);
        r.restore_durable(&words);
        assert!(r.echoed && r.readied, "sent flags survive");
        assert_eq!(r.delivered(), None);
        assert!(r.echoes.is_empty() && r.readies.is_empty());
        // replayed Init produces no second echo (no equivocation)...
        assert!(r.handle(1, &BrachaMsg::Init(1)).is_empty());
        // ...and replayed readies rebuild the quorum to the same value
        for src in 1..4 {
            r.handle(src, &BrachaMsg::Ready(1));
        }
        assert_eq!(r.delivered(), Some(1));
    }

    #[test]
    fn delivery_needs_two_t_plus_one_readies() {
        let mut s = BrachaState::new(0, 7, 2, 1);
        for src in 2..6 {
            s.handle(src, &BrachaMsg::Ready(1));
        }
        assert_eq!(s.delivered(), None, "4 readies < 2t + 1 = 5");
        s.handle(6, &BrachaMsg::Ready(1));
        assert_eq!(s.delivered(), Some(1));
    }
}
