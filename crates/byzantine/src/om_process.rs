//! The Oral Messages algorithm as a *message-passing process* (the
//! exponential-information-gathering formulation).
//!
//! [`crate::om`] simulates OM(m) as a recursive function — convenient for
//! counting and correctness, but not something a network can execute. This
//! module provides the same protocol as [`Process`] implementations
//! exchanging [`OmMsg`]s on a network simulator, so OM runs on the
//! lockstep [`crate::network::SyncNetwork`] *and* (through `bne-net`'s
//! round adapter) on the asynchronous discrete-event runtime, where
//! message loss and adversarial timing degrade it measurably.
//!
//! The EIG formulation: in round 0 the commander (process 0) sends its
//! order to every lieutenant; in round `r ≤ m` every lieutenant relays
//! each value it learned along a path of `r` distinct relays to everyone
//! not yet on that path. After `m + 1` relay levels each lieutenant holds
//! an information tree whose recursive majority (ties and missing values
//! fall to the default) is its decision — correct whenever `n > 3t` and
//! `m ≥ t`, like the recursive version.

use crate::network::{ProcId, Process, RoundStats, SyncNetwork};
use crate::om::{majority, OmConfig, TraitorStrategy};
use crate::Value;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// One oral message: the claimed value and the relay path it travelled
/// (starting at the commander, ending at the sender).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmMsg {
    /// Relay path: `path[0]` is the commander, `path.last()` the sender.
    pub path: Vec<ProcId>,
    /// The relayed value.
    pub value: Value,
}

/// Shared EIG bookkeeping of honest and traitorous participants.
#[derive(Debug, Clone)]
struct EigState {
    id: ProcId,
    n: usize,
    m: usize,
    default: Value,
    vals: BTreeMap<Vec<ProcId>, Value>,
}

impl EigState {
    fn new(m: usize, default: Value) -> Self {
        EigState {
            id: 0,
            n: 0,
            m,
            default,
            vals: BTreeMap::new(),
        }
    }

    /// Validates an incoming message for round `round` and stores it
    /// (first write wins). Returns the accepted path, if any.
    fn absorb(&mut self, src: ProcId, msg: &OmMsg, round: usize) -> Option<Vec<ProcId>> {
        let path = &msg.path;
        if path.len() != round || round == 0 || round > self.m + 1 {
            return None;
        }
        if path[0] != 0 || path.last() != Some(&src) || path.contains(&self.id) {
            return None;
        }
        // all relays distinct and real
        for (i, p) in path.iter().enumerate() {
            if *p >= self.n || path[..i].contains(p) {
                return None;
            }
        }
        if self.vals.contains_key(path) {
            return None; // duplicates (only traitors produce them) ignored
        }
        self.vals.insert(path.clone(), msg.value);
        Some(path.clone())
    }

    /// Recipients of the relay of `path`: everyone not already on it and
    /// not this process.
    fn relay_targets(&self, path: &[ProcId]) -> Vec<ProcId> {
        (0..self.n)
            .filter(|q| *q != self.id && !path.contains(q))
            .collect()
    }

    /// The recursive EIG majority: leaves report their stored value; an
    /// internal node takes the majority over its own directly-received
    /// value plus the resolved relays of every other participant (this
    /// mirrors `attributed[i][i]` in the recursive [`crate::om`] — the
    /// process's own receipt votes alongside the relays). Ties and
    /// missing values fall to the default.
    fn resolve(&self, path: &mut Vec<ProcId>) -> Value {
        if path.len() == self.m + 1 {
            return self.vals.get(path).copied().unwrap_or(self.default);
        }
        let mut votes = vec![self.vals.get(path).copied().unwrap_or(self.default)];
        for q in 0..self.n {
            if q != self.id && !path.contains(&q) {
                path.push(q);
                votes.push(self.resolve(path));
                path.pop();
            }
        }
        majority(&votes, self.default)
    }
}

/// An honest OM(m) participant. Process 0 is the commander by protocol
/// convention; every other process is a lieutenant.
#[derive(Debug, Clone)]
pub struct OmProcess {
    state: EigState,
    /// The commander's order (ignored by lieutenants).
    input: Value,
    decided: Option<Value>,
}

impl OmProcess {
    /// Creates an honest participant. `input` is only used when this
    /// process ends up as the commander (id 0).
    pub fn new(input: Value, m: usize, default: Value) -> Self {
        OmProcess {
            state: EigState::new(m, default),
            input,
            decided: None,
        }
    }

    /// Network rounds needed for recursion depth `m`: the commander's
    /// round, `m` relay rounds, and the final absorb-and-decide round.
    pub fn rounds_needed(m: usize) -> usize {
        m + 2
    }
}

impl Process for OmProcess {
    type Msg = OmMsg;

    fn init(&mut self, id: ProcId, n: usize) {
        self.state.id = id;
        self.state.n = n;
    }

    fn round(&mut self, round: usize, inbox: &[(ProcId, OmMsg)]) -> Vec<(ProcId, OmMsg)> {
        let mut out = Vec::new();
        if round == 0 {
            if self.state.id == 0 {
                // the commander sends its order and obeys it itself
                for dst in 1..self.state.n {
                    out.push((
                        dst,
                        OmMsg {
                            path: vec![0],
                            value: self.input,
                        },
                    ));
                }
                self.decided = Some(self.input);
            }
            return out;
        }
        for (src, msg) in inbox {
            let Some(path) = self.state.absorb(*src, msg, round) else {
                continue;
            };
            if round <= self.state.m {
                let mut relayed = path.clone();
                relayed.push(self.state.id);
                for dst in self.state.relay_targets(&path) {
                    out.push((
                        dst,
                        OmMsg {
                            path: relayed.clone(),
                            value: msg.value,
                        },
                    ));
                }
            }
        }
        if round == self.state.m + 1 && self.state.id != 0 {
            self.decided = Some(self.state.resolve(&mut vec![0]));
        }
        out
    }

    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

/// A traitorous OM(m) participant lying per a [`TraitorStrategy`]. It
/// follows the protocol's message schedule but replaces every value it
/// sends (as commander or relay) with the strategy's lie; it never
/// decides.
#[derive(Debug, Clone)]
pub struct OmTraitorProcess {
    state: EigState,
    /// The order this process would have sent if honest (commander only).
    input: Value,
    strategy: TraitorStrategy,
}

impl OmTraitorProcess {
    /// Creates a traitor. `input` matters only when it is the commander.
    pub fn new(input: Value, m: usize, default: Value, strategy: TraitorStrategy) -> Self {
        OmTraitorProcess {
            state: EigState::new(m, default),
            input,
            strategy,
        }
    }

    fn lie(&self, honest_value: Value, dst: ProcId) -> Option<Value> {
        match self.strategy {
            TraitorStrategy::Flip => Some(if honest_value == 0 { 1 } else { 0 }),
            TraitorStrategy::SplitByParity => Some((dst % 2) as Value),
            TraitorStrategy::Fixed(v) => Some(v),
            TraitorStrategy::Silent => None,
        }
    }
}

impl Process for OmTraitorProcess {
    type Msg = OmMsg;

    fn init(&mut self, id: ProcId, n: usize) {
        self.state.id = id;
        self.state.n = n;
    }

    fn round(&mut self, round: usize, inbox: &[(ProcId, OmMsg)]) -> Vec<(ProcId, OmMsg)> {
        let mut out = Vec::new();
        if round == 0 {
            if self.state.id == 0 {
                for dst in 1..self.state.n {
                    if let Some(v) = self.lie(self.input, dst) {
                        out.push((
                            dst,
                            OmMsg {
                                path: vec![0],
                                value: v,
                            },
                        ));
                    }
                }
            }
            return out;
        }
        for (src, msg) in inbox {
            let Some(path) = self.state.absorb(*src, msg, round) else {
                continue;
            };
            if round <= self.state.m {
                let mut relayed = path.clone();
                relayed.push(self.state.id);
                for dst in self.state.relay_targets(&path) {
                    if let Some(v) = self.lie(msg.value, dst) {
                        out.push((
                            dst,
                            OmMsg {
                                path: relayed.clone(),
                                value: v,
                            },
                        ));
                    }
                }
            }
        }
        out
    }

    fn decision(&self) -> Option<u64> {
        None
    }
}

/// Shared adversary state for **colluding** OM traitors: a ledger mapping
/// each honest lieutenant to the camp (0 or 1) every traitor consistently
/// tells it, assigned lazily in a seeded random order while keeping the
/// two camps balanced over the honest lieutenants actually targeted.
///
/// The stateless [`TraitorStrategy`]s lie per message with no memory: the
/// parity split, for example, partitions *all* process ids, so the honest
/// lieutenants may land lopsidedly in one camp, and `Flip` tells everyone
/// the same story. A colluding coalition instead agrees on one balanced
/// partition of the honest lieutenants and has **every traitor tell every
/// camp member the same value at every relay level** — consistent lies are
/// strictly harder for the recursive EIG majority to outvote, which is
/// what pushes sub-bound failure rates toward the adversarial optimum
/// (the e17 colluding arm measures the gap).
#[derive(Debug)]
pub struct OmCollusion {
    /// The coalition — fellow traitors never occupy a camp slot, so the
    /// balance is genuinely over the honest lieutenants.
    traitors: BTreeSet<usize>,
    camps: std::cell::RefCell<BTreeMap<ProcId, Value>>,
    rng: std::cell::RefCell<rand::rngs::StdRng>,
}

impl OmCollusion {
    /// A fresh ledger for the given coalition; seed it per replica (via
    /// `bne_sim::derive_seed`) so the camp assignment varies across
    /// replicas.
    pub fn new(seed: u64, traitors: BTreeSet<usize>) -> Rc<Self> {
        Rc::new(OmCollusion {
            traitors,
            camps: std::cell::RefCell::new(BTreeMap::new()),
            rng: std::cell::RefCell::new(rand::rngs::StdRng::seed_from_u64(seed)),
        })
    }

    /// The coordinated lie for destination `dst`: every traitor always
    /// tells `dst` the same value. New **honest** destinations join
    /// whichever camp is smaller (ties broken by a seeded coin), keeping
    /// the split of targeted honest lieutenants balanced; messages to
    /// fellow traitors carry a fixed filler value and never occupy a camp
    /// slot (the coalition does not need to lie to itself, and letting it
    /// eat camp capacity would unbalance the real split).
    pub fn lie_for(&self, dst: ProcId) -> Value {
        if self.traitors.contains(&dst) {
            return 0;
        }
        let mut camps = self.camps.borrow_mut();
        if let Some(&v) = camps.get(&dst) {
            return v;
        }
        let zeros = camps.values().filter(|&&v| v == 0).count();
        let ones = camps.len() - zeros;
        let v = match zeros.cmp(&ones) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Equal => self.rng.borrow_mut().random_range(0..2u64),
        };
        camps.insert(dst, v);
        v
    }
}

/// A traitorous OM(m) participant drawing its lies from a shared
/// [`OmCollusion`] ledger, so the whole coalition tells each honest
/// lieutenant one consistent story. Follows the honest message schedule
/// (same paths, same recipients) and never decides.
#[derive(Debug)]
pub struct OmColludingTraitorProcess {
    state: EigState,
    collusion: Rc<OmCollusion>,
}

impl OmColludingTraitorProcess {
    /// Creates a colluding traitor sharing the given ledger.
    pub fn new(m: usize, default: Value, collusion: Rc<OmCollusion>) -> Self {
        OmColludingTraitorProcess {
            state: EigState::new(m, default),
            collusion,
        }
    }
}

impl Process for OmColludingTraitorProcess {
    type Msg = OmMsg;

    fn init(&mut self, id: ProcId, n: usize) {
        self.state.id = id;
        self.state.n = n;
    }

    fn round(&mut self, round: usize, inbox: &[(ProcId, OmMsg)]) -> Vec<(ProcId, OmMsg)> {
        let mut out = Vec::new();
        if round == 0 {
            if self.state.id == 0 {
                for dst in 1..self.state.n {
                    out.push((
                        dst,
                        OmMsg {
                            path: vec![0],
                            value: self.collusion.lie_for(dst),
                        },
                    ));
                }
            }
            return out;
        }
        for (src, msg) in inbox {
            let Some(path) = self.state.absorb(*src, msg, round) else {
                continue;
            };
            if round <= self.state.m {
                let mut relayed = path.clone();
                relayed.push(self.state.id);
                for dst in self.state.relay_targets(&path) {
                    out.push((
                        dst,
                        OmMsg {
                            path: relayed.clone(),
                            value: self.collusion.lie_for(dst),
                        },
                    ));
                }
            }
        }
        out
    }

    fn decision(&self) -> Option<u64> {
        None
    }
}

/// Builds the full process set (honest and traitorous) for `config`,
/// ready to run on any network runtime.
pub fn om_process_set(config: &OmConfig) -> Vec<Box<dyn Process<Msg = OmMsg>>> {
    (0..config.n)
        .map(|id| {
            if config.traitors.contains(&id) {
                Box::new(OmTraitorProcess::new(
                    config.commander_value,
                    config.m,
                    config.default_value,
                    config.strategy,
                )) as Box<dyn Process<Msg = OmMsg>>
            } else {
                Box::new(OmProcess::new(
                    config.commander_value,
                    config.m,
                    config.default_value,
                )) as Box<dyn Process<Msg = OmMsg>>
            }
        })
        .collect()
}

/// Builds the process set for `config` with **colluding** traitors: all
/// traitors share one [`OmCollusion`] ledger seeded with `collusion_seed`
/// (the [`OmConfig::strategy`] field is ignored — the ledger *is* the
/// strategy). Honest processes are identical to [`om_process_set`]'s.
pub fn om_colluding_process_set(
    config: &OmConfig,
    collusion_seed: u64,
) -> Vec<Box<dyn Process<Msg = OmMsg>>> {
    let collusion = OmCollusion::new(collusion_seed, config.traitors.clone());
    (0..config.n)
        .map(|id| {
            if config.traitors.contains(&id) {
                Box::new(OmColludingTraitorProcess::new(
                    config.m,
                    config.default_value,
                    Rc::clone(&collusion),
                )) as Box<dyn Process<Msg = OmMsg>>
            } else {
                Box::new(OmProcess::new(
                    config.commander_value,
                    config.m,
                    config.default_value,
                )) as Box<dyn Process<Msg = OmMsg>>
            }
        })
        .collect()
}

/// Runs the EIG process formulation on the lockstep [`SyncNetwork`],
/// returning the decision vector and network statistics.
pub fn run_om_process(config: &OmConfig) -> (Vec<Option<Value>>, RoundStats) {
    let mut net = SyncNetwork::new(om_process_set(config));
    net.run(OmProcess::rounds_needed(config.m));
    (net.decisions(), net.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn config(n: usize, m: usize, traitors: &[usize], strategy: TraitorStrategy) -> OmConfig {
        OmConfig {
            n,
            m,
            commander_value: 1,
            traitors: traitors.iter().copied().collect(),
            strategy,
            default_value: 0,
        }
    }

    fn honest_decisions(decisions: &[Option<Value>], traitors: &BTreeSet<usize>) -> Vec<Value> {
        decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| !traitors.contains(i) && *i != 0)
            .map(|(i, d)| d.unwrap_or_else(|| panic!("lieutenant {i} must decide")))
            .collect()
    }

    #[test]
    fn no_traitors_everyone_obeys() {
        let cfg = config(4, 1, &[], TraitorStrategy::Flip);
        let (decisions, stats) = run_om_process(&cfg);
        assert!(decisions.iter().all(|d| *d == Some(1)));
        // round 1: 3 commander msgs; round 2: each lieutenant relays to
        // the other two
        assert_eq!(stats.messages_sent, 3 + 3 * 2);
    }

    #[test]
    fn one_traitor_lieutenant_with_four_generals() {
        for strategy in [
            TraitorStrategy::Flip,
            TraitorStrategy::SplitByParity,
            TraitorStrategy::Fixed(0),
            TraitorStrategy::Silent,
        ] {
            let cfg = config(4, 1, &[3], strategy);
            let (decisions, _) = run_om_process(&cfg);
            let values = honest_decisions(&decisions, &cfg.traitors);
            assert_eq!(values.len(), 2);
            assert!(
                values.iter().all(|&v| v == 1),
                "validity violated for {strategy:?}: {values:?}"
            );
        }
    }

    #[test]
    fn traitorous_commander_still_yields_agreement() {
        for strategy in [
            TraitorStrategy::Flip,
            TraitorStrategy::SplitByParity,
            TraitorStrategy::Fixed(1),
            TraitorStrategy::Silent,
        ] {
            let cfg = config(4, 1, &[0], strategy);
            let (decisions, _) = run_om_process(&cfg);
            let values = honest_decisions(&decisions, &cfg.traitors);
            assert_eq!(values.len(), 3);
            assert!(
                values.windows(2).all(|w| w[0] == w[1]),
                "agreement violated for {strategy:?}: {values:?}"
            );
        }
    }

    #[test]
    fn seven_processes_tolerate_two_traitors() {
        for strategy in [TraitorStrategy::Flip, TraitorStrategy::SplitByParity] {
            let cfg = config(7, 2, &[2, 5], strategy);
            let (decisions, _) = run_om_process(&cfg);
            let values = honest_decisions(&decisions, &cfg.traitors);
            assert_eq!(values.len(), 4);
            assert!(values.windows(2).all(|w| w[0] == w[1]), "agreement");
            assert!(values.iter().all(|&v| v == 1), "validity ({strategy:?})");
        }
    }

    #[test]
    fn three_processes_cannot_tolerate_one_traitor() {
        // n = 3, t = 1 violates n > 3t: the flipping traitor breaks
        // validity for the lone honest lieutenant.
        let cfg = config(3, 1, &[2], TraitorStrategy::Flip);
        let (decisions, _) = run_om_process(&cfg);
        assert_ne!(decisions[1], Some(1), "validity must fail when n ≤ 3t");
    }

    #[test]
    fn rounds_needed_formula() {
        assert_eq!(OmProcess::rounds_needed(0), 2);
        assert_eq!(OmProcess::rounds_needed(2), 4);
    }

    #[test]
    fn message_counts_match_the_eig_schedule() {
        // n = 7, m = 2, honest: round 1 = 6, round 2 = 6·5, round 3 = 6·5·4
        let cfg = config(7, 2, &[], TraitorStrategy::Flip);
        let (_, stats) = run_om_process(&cfg);
        assert_eq!(stats.messages_sent, 6 + 30 + 120);
    }

    #[test]
    fn colluding_traitors_tell_each_destination_one_story() {
        let ledger = OmCollusion::new(7, [3usize].into_iter().collect());
        let first: Vec<Value> = (1..6).map(|d| ledger.lie_for(d)).collect();
        let again: Vec<Value> = (1..6).map(|d| ledger.lie_for(d)).collect();
        assert_eq!(first, again, "the ledger never changes its story");
        // camps stay balanced over the targeted HONEST destinations
        // ({1, 2, 4, 5}; the fellow traitor 3 occupies no camp slot)
        let honest_values: Vec<Value> = [1usize, 2, 4, 5].map(|d| ledger.lie_for(d)).to_vec();
        let zeros = honest_values.iter().filter(|&&v| v == 0).count();
        assert_eq!(zeros, 2, "honest split must be exactly 2/2");
    }

    #[test]
    fn colluding_camps_ignore_fellow_traitors_in_every_interleaving() {
        // whatever order destinations are first targeted in — including
        // traitors interleaved between honest lieutenants — the honest
        // camps end up exactly balanced
        for seed in 0..8u64 {
            let traitors: BTreeSet<usize> = [2usize, 5].into_iter().collect();
            let ledger = OmCollusion::new(seed, traitors.clone());
            for dst in [5usize, 1, 2, 3, 4, 6] {
                let _ = ledger.lie_for(dst);
            }
            let honest: Vec<Value> = [1usize, 3, 4, 6]
                .iter()
                .map(|&d| ledger.lie_for(d))
                .collect();
            let zeros = honest.iter().filter(|&&v| v == 0).count();
            assert_eq!(zeros, 2, "seed {seed}: honest split {zeros}/4");
        }
    }

    #[test]
    fn colluding_traitors_respect_the_bound_and_break_below_it() {
        // within n > 3t the protocol shrugs collusion off like any lie
        let cfg = config(7, 2, &[2, 5], TraitorStrategy::Flip);
        let mut net = SyncNetwork::new(om_colluding_process_set(&cfg, 42));
        net.run(OmProcess::rounds_needed(cfg.m));
        let values = honest_decisions(&net.decisions(), &cfg.traitors);
        assert!(values.iter().all(|&v| v == 1), "validity within the bound");
        // below the bound (n = 6 ≤ 3t with t = 2) the balanced consistent
        // split must break agreement for some collusion seed
        let cfg = config(6, 2, &[2, 5], TraitorStrategy::Flip);
        let broke = (0..16u64).any(|seed| {
            let mut net = SyncNetwork::new(om_colluding_process_set(&cfg, seed));
            net.run(OmProcess::rounds_needed(cfg.m));
            let values = honest_decisions(&net.decisions(), &cfg.traitors);
            !values.windows(2).all(|w| w[0] == w[1]) || values.iter().any(|&v| v != 1)
        });
        assert!(broke, "sub-bound collusion should break correctness");
    }

    #[test]
    fn forged_paths_are_rejected() {
        // a message whose path does not end at its sender must be ignored
        let mut p = OmProcess::new(0, 1, 0);
        p.init(1, 4);
        let bogus = OmMsg {
            path: vec![0, 3],
            value: 1,
        };
        // claimed sender 2, path ends at 3
        let out = p.round(2, &[(2, bogus)]);
        assert!(out.is_empty());
        assert_eq!(p.state.vals.len(), 0);
    }
}
