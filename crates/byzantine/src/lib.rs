//! # bne-byzantine
//!
//! The distributed-computing substrate behind Section 2 of the paper.
//! Halpern's mediator-implementation results (Abraham–Dolev–Gonen–Halpern)
//! are proved by reduction to and from Byzantine agreement: mediators can be
//! implemented by cheap talk when Byzantine agreement is solvable for the
//! corresponding fault budget, and the impossibility bounds reuse the
//! classical `t < n/3` lower bound of Pease, Shostak and Lamport. This crate
//! builds that substrate from scratch:
//!
//! * [`network`] — a deterministic synchronous round-based message-passing
//!   simulator with a [`network::Process`] trait and pluggable Byzantine
//!   behaviors;
//! * [`adversary`] — canned faulty behaviors (crash, silent, random,
//!   equivocating, value-flipping);
//! * [`om`] — the recursive Oral Messages algorithm OM(m) of Lamport,
//!   Shostak and Pease, correct for `n > 3t`;
//! * [`om_process`] — the same protocol as message-passing processes (the
//!   EIG formulation), runnable on [`network::SyncNetwork`] and on the
//!   async `bne-net` runtime;
//! * [`phase_king`] — the Berman–Garay–Perry phase-king consensus protocol
//!   running on the network simulator, correct for `n > 4t`;
//! * [`broadcast`] — Dolev–Strong authenticated broadcast on top of the
//!   simulated PKI of `bne-crypto`, correct for any `t < n`;
//! * [`bracha`] — Bracha's echo/ready reliable broadcast as an
//!   **event-driven** quorum state machine (no rounds; runs directly on
//!   the `bne-net` event runtime), correct for `n > 3t`;
//! * [`ben_or`] — Ben-Or's randomized binary consensus with a seeded
//!   per-process coin: the first protocol here whose running time is a
//!   random variable rather than a fixed round count;
//! * [`choice`] — scripted nondeterminism taps ([`choice::ChoiceTap`])
//!   replacing coins and Byzantine lie draws when the `bne-mc` model
//!   checker enumerates them instead of sampling;
//! * [`paxos`] — single-decree Paxos as a ballot/quorum-intersection
//!   state machine, correct for any crash pattern and tolerant of
//!   `f < n/2` crash-recovery faults (no Byzantine behavior);
//! * [`hsuc`] — leader-driven (rotating-coordinator) consensus in the
//!   HSUC style, the `f < n/2` crash-fault counterpart to Paxos with a
//!   predetermined leader per round;
//! * [`mediator_ba`] — the trivial mediator-based solution the paper uses as
//!   the specification ("the general simply sends the mediator his
//!   preference, and the mediator sends it to all the soldiers");
//! * [`properties`] — agreement/validity checking used by the experiment
//!   harnesses (E4 in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod ben_or;
pub mod bracha;
pub mod broadcast;
pub mod choice;
pub mod hsuc;
pub mod mediator_ba;
pub mod network;
pub mod om;
pub mod om_process;
pub mod paxos;
pub mod phase_king;
pub mod properties;
pub mod scenario;

pub use adversary::FaultyBehavior;
pub use ben_or::{BenOrMsg, BenOrState};
pub use bracha::{BrachaMsg, BrachaState};
pub use choice::{shared_tap, ChoiceTap, SharedTap};
pub use hsuc::{HsucMsg, HsucState};
pub use mediator_ba::mediator_byzantine_agreement;
pub use network::{ProcId, Process, RoundStats, SyncNetwork};
pub use om::{om_byzantine_generals, OmConfig, OmOutcome};
pub use om_process::{
    om_colluding_process_set, om_process_set, run_om_process, OmColludingTraitorProcess,
    OmCollusion, OmMsg, OmProcess, OmTraitorProcess,
};
pub use paxos::{PaxosMsg, PaxosState};
pub use phase_king::{run_phase_king, PhaseKingProcess};
pub use properties::{check_agreement, check_validity, rb_report, AgreementReport, RbReport};
pub use scenario::{BroadcastScenario, OmScenario, PhaseKingScenario, ProtocolStats};

/// A binary value agreed upon (attack = 1, retreat = 0 in the paper's
/// Byzantine agreement story).
pub type Value = u64;
