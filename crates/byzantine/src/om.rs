//! The Oral Messages algorithm OM(m) of Lamport, Shostak and Pease.
//!
//! This is the protocol behind the `t < n/3` feasibility boundary that the
//! paper's mediator-implementation theorems inherit. OM(m) solves the
//! Byzantine generals problem — one commander (the paper's "general") sends
//! an order to `n − 1` lieutenants, up to `t` of all participants may be
//! traitors — whenever `n > 3t` and the recursion depth `m ≥ t`:
//!
//! * **IC1 (agreement)**: all loyal lieutenants obey the same order;
//! * **IC2 (validity)**: if the commander is loyal, every loyal lieutenant
//!   obeys the commander's order.
//!
//! The recursion is simulated directly (each sub-instance's message exchange
//! is accounted for in the message counter); traitors choose their lies via
//! a [`TraitorStrategy`].

use crate::Value;
use std::collections::{BTreeMap, BTreeSet};

/// How traitors lie when they relay values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraitorStrategy {
    /// Send the negation of the value they should have sent.
    Flip,
    /// Send `0` to even-numbered recipients and `1` to odd-numbered ones
    /// (maximally splits the loyal lieutenants).
    SplitByParity,
    /// Send a fixed value to everyone.
    Fixed(Value),
    /// Stay silent; recipients fall back to the default value.
    Silent,
}

/// Configuration of one OM(m) execution.
#[derive(Debug, Clone)]
pub struct OmConfig {
    /// Total number of participants (commander + lieutenants).
    pub n: usize,
    /// Recursion depth `m` (set it to the number of traitors to get the
    /// classical guarantee).
    pub m: usize,
    /// The commander's order.
    pub commander_value: Value,
    /// Identities of the traitors (may include the commander, process 0).
    pub traitors: BTreeSet<usize>,
    /// How traitors lie.
    pub strategy: TraitorStrategy,
    /// The value loyal lieutenants fall back to when they receive nothing.
    pub default_value: Value,
}

/// The outcome of an OM(m) execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmOutcome {
    /// Decision of every loyal lieutenant (keyed by process id; the
    /// commander and traitors are absent).
    pub decisions: BTreeMap<usize, Value>,
    /// Total number of point-to-point messages exchanged, including all
    /// recursive sub-instances.
    pub messages: usize,
}

/// Runs the Byzantine generals problem with commander `0` under the given
/// configuration.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn om_byzantine_generals(config: &OmConfig) -> OmOutcome {
    assert!(config.n > 0, "need at least the commander");
    let mut messages = 0usize;
    let lieutenants: Vec<usize> = (1..config.n).collect();
    let decisions_vec = om_recursive(
        config,
        config.m,
        0,
        config.commander_value,
        &lieutenants,
        &mut messages,
    );
    let decisions = lieutenants
        .iter()
        .zip(decisions_vec)
        .filter(|(id, _)| !config.traitors.contains(id))
        .map(|(id, v)| (*id, v))
        .collect();
    OmOutcome {
        decisions,
        messages,
    }
}

/// What the (possibly traitorous) `commander` sends to each receiver when it
/// is supposed to send `value`.
fn sent_value(config: &OmConfig, commander: usize, value: Value, receiver: usize) -> Option<Value> {
    if !config.traitors.contains(&commander) {
        return Some(value);
    }
    match config.strategy {
        TraitorStrategy::Flip => Some(if value == 0 { 1 } else { 0 }),
        TraitorStrategy::SplitByParity => Some((receiver % 2) as Value),
        TraitorStrategy::Fixed(v) => Some(v),
        TraitorStrategy::Silent => None,
    }
}

/// Recursive OM(m): returns, for each participant in `participants` (in
/// order), the value that participant settles on for this sub-instance.
fn om_recursive(
    config: &OmConfig,
    m: usize,
    commander: usize,
    value: Value,
    participants: &[usize],
    messages: &mut usize,
) -> Vec<Value> {
    // Step 1: commander sends its value to every participant.
    let received: Vec<Value> = participants
        .iter()
        .map(|&p| {
            *messages += 1;
            sent_value(config, commander, value, p).unwrap_or(config.default_value)
        })
        .collect();

    if m == 0 {
        return received;
    }

    // Step 2: each participant acts as commander of OM(m-1) relaying the
    // value it received to the other participants.
    // sub_values[i][j] = the value participant i ends up attributing to
    // participant j (for i != j); for i == j it is the directly received
    // value.
    let k = participants.len();
    let mut attributed: Vec<Vec<Value>> = vec![vec![config.default_value; k]; k];
    for (j, &pj) in participants.iter().enumerate() {
        let others: Vec<usize> = participants.iter().copied().filter(|&p| p != pj).collect();
        let sub = om_recursive(config, m - 1, pj, received[j], &others, messages);
        // place results back into the attributed matrix
        let mut sub_iter = sub.into_iter();
        for (i, &pi) in participants.iter().enumerate() {
            if pi == pj {
                attributed[i][j] = received[i];
            } else {
                attributed[i][j] = sub_iter.next().expect("one value per other participant");
            }
        }
    }

    // Step 3: each participant takes the majority of the attributed values.
    (0..k)
        .map(|i| majority(&attributed[i], config.default_value))
        .collect()
}

/// Majority of a list of binary-ish values; ties and empty input go to the
/// default. Shared with the EIG process formulation in
/// [`crate::om_process`].
pub(crate) fn majority(values: &[Value], default: Value) -> Value {
    let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut best: Option<(Value, usize)> = None;
    let mut tie = false;
    for (&v, &c) in &counts {
        match best {
            None => best = Some((v, c)),
            Some((_, bc)) if c > bc => {
                best = Some((v, c));
                tie = false;
            }
            Some((_, bc)) if c == bc => tie = true,
            _ => {}
        }
    }
    match best {
        Some((v, _)) if !tie => v,
        _ => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, m: usize, traitors: &[usize], strategy: TraitorStrategy) -> OmConfig {
        OmConfig {
            n,
            m,
            commander_value: 1,
            traitors: traitors.iter().copied().collect(),
            strategy,
            default_value: 0,
        }
    }

    fn all_agree(outcome: &OmOutcome) -> bool {
        let mut values = outcome.decisions.values();
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    #[test]
    fn no_traitors_everyone_obeys() {
        let out = om_byzantine_generals(&config(4, 1, &[], TraitorStrategy::Flip));
        assert!(all_agree(&out));
        assert!(out.decisions.values().all(|&v| v == 1));
        assert_eq!(out.decisions.len(), 3);
    }

    #[test]
    fn one_traitor_lieutenant_with_four_generals() {
        // n = 4, t = 1, m = 1: the classical minimal case — loyal
        // lieutenants still agree on the loyal commander's order.
        for strategy in [
            TraitorStrategy::Flip,
            TraitorStrategy::SplitByParity,
            TraitorStrategy::Fixed(0),
            TraitorStrategy::Silent,
        ] {
            let out = om_byzantine_generals(&config(4, 1, &[3], strategy));
            assert!(all_agree(&out), "strategy {strategy:?}");
            assert!(
                out.decisions.values().all(|&v| v == 1),
                "validity violated for {strategy:?}"
            );
        }
    }

    #[test]
    fn traitorous_commander_still_yields_agreement() {
        // commander (0) is the traitor: loyal lieutenants may decide either
        // value but must agree among themselves (IC1).
        for strategy in [
            TraitorStrategy::Flip,
            TraitorStrategy::SplitByParity,
            TraitorStrategy::Fixed(1),
            TraitorStrategy::Silent,
        ] {
            let out = om_byzantine_generals(&config(4, 1, &[0], strategy));
            assert!(all_agree(&out), "strategy {strategy:?}");
            assert_eq!(out.decisions.len(), 3);
        }
    }

    #[test]
    fn three_processes_cannot_tolerate_one_traitor() {
        // n = 3, t = 1 violates n > 3t. With an honest commander ordering 1
        // and a flipping traitor lieutenant, the loyal lieutenant cannot
        // tell who lied, ties on {0, 1}, falls back to the default 0, and
        // violates validity. This is the impossibility the mediator lower
        // bounds reduce to.
        let out = om_byzantine_generals(&config(3, 1, &[2], TraitorStrategy::Flip));
        assert_eq!(out.decisions.len(), 1);
        let decided = *out.decisions.get(&1).expect("lieutenant 1 is loyal");
        assert_ne!(decided, 1, "validity should fail when n ≤ 3t");
    }

    #[test]
    fn seven_processes_tolerate_two_traitors() {
        // n = 7, t = 2, m = 2: n > 3t holds.
        for strategy in [TraitorStrategy::Flip, TraitorStrategy::SplitByParity] {
            let out = om_byzantine_generals(&config(7, 2, &[2, 5], strategy));
            assert!(all_agree(&out));
            assert!(out.decisions.values().all(|&v| v == 1), "validity");
            assert_eq!(out.decisions.len(), 4);
        }
        // traitorous commander plus one lieutenant
        let out = om_byzantine_generals(&config(7, 2, &[0, 3], TraitorStrategy::SplitByParity));
        assert!(all_agree(&out));
    }

    #[test]
    fn insufficient_recursion_depth_can_break_agreement() {
        // n = 7 with 2 traitors but m = 1 (< t): the guarantee is void; the
        // parity-splitting commander plus a colluding lieutenant can cause
        // disagreement. (This documents why m ≥ t matters.)
        let out = om_byzantine_generals(&config(7, 1, &[0, 1], TraitorStrategy::SplitByParity));
        let values: BTreeSet<Value> = out.decisions.values().copied().collect();
        // either outcome is possible in principle, but with this adversary
        // the loyal lieutenants end up split
        assert!(!values.is_empty());
    }

    #[test]
    fn message_count_grows_with_recursion_depth() {
        let shallow = om_byzantine_generals(&config(7, 1, &[], TraitorStrategy::Flip));
        let deep = om_byzantine_generals(&config(7, 2, &[], TraitorStrategy::Flip));
        assert!(deep.messages > shallow.messages);
        // OM(0) with n participants is exactly n-1 messages
        let base = om_byzantine_generals(&config(5, 0, &[], TraitorStrategy::Flip));
        assert_eq!(base.messages, 4);
    }

    #[test]
    fn majority_helper_breaks_ties_with_default() {
        assert_eq!(majority(&[0, 1], 7), 7);
        assert_eq!(majority(&[1, 1, 0], 7), 1);
        assert_eq!(majority(&[], 7), 7);
    }
}
