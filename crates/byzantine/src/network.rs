//! A deterministic synchronous round-based message-passing simulator.
//!
//! Every round, each process inspects the messages delivered to it in the
//! previous round and emits messages for the next one. Byzantine processes
//! are ordinary [`Process`] implementations that happen to misbehave — they
//! can send different messages to different recipients (equivocation), stay
//! silent, or send garbage; the network itself is reliable and synchronous,
//! matching the model of the Abraham et al. results ("all the results ...
//! depend on the system being synchronous").

use std::collections::BTreeMap;

/// Index of a process in the network (0-based).
pub type ProcId = usize;

/// A protocol participant. The message type is chosen per protocol.
pub trait Process {
    /// The message type exchanged by this protocol.
    type Msg: Clone;

    /// Called once before round 0 with this process's own id and the number
    /// of processes.
    fn init(&mut self, id: ProcId, n: usize);

    /// Executes one round: receives the messages delivered this round
    /// (sender, payload) and returns the messages to deliver next round.
    fn round(&mut self, round: usize, inbox: &[(ProcId, Self::Msg)]) -> Vec<(ProcId, Self::Msg)>;

    /// The process's decision, if it has decided.
    fn decision(&self) -> Option<u64>;
}

/// Per-round message statistics, useful for comparing protocol costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Total number of point-to-point messages sent over the execution.
    pub messages_sent: usize,
    /// Number of rounds executed.
    pub rounds: usize,
}

/// The synchronous network simulator.
///
/// Generic over the message type; every process in one network must use the
/// same message type.
pub struct SyncNetwork<M: Clone> {
    processes: Vec<Box<dyn Process<Msg = M>>>,
    /// messages to be delivered at the start of the next round, keyed by
    /// recipient
    pending: BTreeMap<ProcId, Vec<(ProcId, M)>>,
    stats: RoundStats,
    round: usize,
}

impl<M: Clone> SyncNetwork<M> {
    /// Creates a network from the given processes and initializes them.
    pub fn new(mut processes: Vec<Box<dyn Process<Msg = M>>>) -> Self {
        let n = processes.len();
        for (id, p) in processes.iter_mut().enumerate() {
            p.init(id, n);
        }
        SyncNetwork {
            processes,
            pending: BTreeMap::new(),
            stats: RoundStats::default(),
            round: 0,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Executes a single round: delivers pending messages, collects new
    /// ones.
    pub fn step(&mut self) {
        let n = self.processes.len();
        let mut outboxes: Vec<Vec<(ProcId, M)>> = Vec::with_capacity(n);
        for (id, process) in self.processes.iter_mut().enumerate() {
            let inbox = self.pending.remove(&id).unwrap_or_default();
            let out = process.round(self.round, &inbox);
            outboxes.push(out);
        }
        self.pending.clear();
        for (sender, out) in outboxes.into_iter().enumerate() {
            for (dest, msg) in out {
                if dest >= n {
                    continue; // drop messages to non-existent processes
                }
                self.stats.messages_sent += 1;
                self.pending.entry(dest).or_default().push((sender, msg));
            }
        }
        // deterministic delivery order: sort each inbox by sender
        for inbox in self.pending.values_mut() {
            inbox.sort_by_key(|(sender, _)| *sender);
        }
        self.round += 1;
        self.stats.rounds = self.round;
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until every process has decided or `max_rounds` is reached.
    /// Returns `true` if everyone decided.
    pub fn run_until_decided(&mut self, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            if self.decisions().iter().all(|d| d.is_some()) {
                return true;
            }
            self.step();
        }
        self.decisions().iter().all(|d| d.is_some())
    }

    /// The decisions of every process (in process-id order).
    pub fn decisions(&self) -> Vec<Option<u64>> {
        self.processes.iter().map(|p| p.decision()).collect()
    }

    /// Message and round statistics so far.
    pub fn stats(&self) -> RoundStats {
        self.stats
    }

    /// The current round number (number of completed rounds).
    pub fn current_round(&self) -> usize {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that floods its own id to everyone each round and decides
    /// on the count of distinct senders it has heard from.
    struct Flooder {
        id: ProcId,
        n: usize,
        heard: std::collections::BTreeSet<ProcId>,
        decided: Option<u64>,
    }

    impl Flooder {
        fn new() -> Self {
            Flooder {
                id: 0,
                n: 0,
                heard: Default::default(),
                decided: None,
            }
        }
    }

    impl Process for Flooder {
        type Msg = u64;

        fn init(&mut self, id: ProcId, n: usize) {
            self.id = id;
            self.n = n;
        }

        fn round(&mut self, round: usize, inbox: &[(ProcId, u64)]) -> Vec<(ProcId, u64)> {
            for (sender, _) in inbox {
                self.heard.insert(*sender);
            }
            if round >= 2 {
                self.decided = Some(self.heard.len() as u64);
                return Vec::new();
            }
            (0..self.n).map(|d| (d, self.id as u64)).collect()
        }

        fn decision(&self) -> Option<u64> {
            self.decided
        }
    }

    #[test]
    fn flooding_reaches_everyone() {
        let processes: Vec<Box<dyn Process<Msg = u64>>> =
            (0..5).map(|_| Box::new(Flooder::new()) as _).collect();
        let mut net = SyncNetwork::new(processes);
        assert!(net.run_until_decided(10));
        // everyone hears from all 5 processes (including themselves)
        assert_eq!(net.decisions(), vec![Some(5); 5]);
        // two rounds of 5*5 messages each
        assert_eq!(net.stats().messages_sent, 50);
    }

    #[test]
    fn messages_to_invalid_destinations_are_dropped() {
        struct BadSender;
        impl Process for BadSender {
            type Msg = u64;
            fn init(&mut self, _id: ProcId, _n: usize) {}
            fn round(&mut self, _round: usize, _inbox: &[(ProcId, u64)]) -> Vec<(ProcId, u64)> {
                vec![(99, 1)]
            }
            fn decision(&self) -> Option<u64> {
                Some(0)
            }
        }
        let mut net = SyncNetwork::new(vec![Box::new(BadSender) as Box<dyn Process<Msg = u64>>]);
        net.run(3);
        assert_eq!(net.stats().messages_sent, 0);
        assert_eq!(net.current_round(), 3);
    }

    #[test]
    fn inboxes_are_sorted_by_sender() {
        struct Recorder {
            id: ProcId,
            n: usize,
            seen: Vec<ProcId>,
        }
        impl Process for Recorder {
            type Msg = u64;
            fn init(&mut self, id: ProcId, n: usize) {
                self.id = id;
                self.n = n;
            }
            fn round(&mut self, _round: usize, inbox: &[(ProcId, u64)]) -> Vec<(ProcId, u64)> {
                self.seen.extend(inbox.iter().map(|(s, _)| *s));
                // everyone sends to process 0 in reverse-ish order
                vec![(0, self.id as u64)]
            }
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let processes: Vec<Box<dyn Process<Msg = u64>>> = (0..4)
            .map(|_| {
                Box::new(Recorder {
                    id: 0,
                    n: 0,
                    seen: Vec::new(),
                }) as _
            })
            .collect();
        let mut net = SyncNetwork::new(processes);
        net.run(2);
        // process 0's inbox in round 1 should be sorted 0,1,2,3 — we can't
        // reach inside, but the simulation must at least have delivered 4
        // messages per round after the first
        assert_eq!(net.stats().messages_sent, 8);
    }
}
