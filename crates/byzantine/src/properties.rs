//! Agreement and validity checking for Byzantine agreement executions, plus
//! the sweep helper used by experiment E4 (the t < n/3 boundary table).

use crate::om::{om_byzantine_generals, OmConfig, TraitorStrategy};
use crate::Value;
use std::collections::BTreeSet;

/// The classical correctness conditions of Byzantine agreement, evaluated on
/// the decisions of the honest processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementReport {
    /// All honest processes decided.
    pub all_decided: bool,
    /// All honest decisions are equal (IC1).
    pub agreement: bool,
    /// If the source/general is honest, every honest decision equals its
    /// preference (IC2). Vacuously true when the general is faulty.
    pub validity: bool,
}

impl AgreementReport {
    /// Whether the execution satisfies all conditions.
    pub fn correct(&self) -> bool {
        self.all_decided && self.agreement && self.validity
    }
}

/// Checks agreement over a slice of optional decisions, where `honest[i]`
/// says whether process `i` is honest. Faulty processes' entries are
/// ignored.
pub fn check_agreement(decisions: &[Option<Value>], honest: &[bool]) -> bool {
    let honest_values: Vec<Value> = decisions
        .iter()
        .zip(honest.iter())
        .filter(|(_, &h)| h)
        .filter_map(|(d, _)| *d)
        .collect();
    honest_values.windows(2).all(|w| w[0] == w[1])
}

/// Checks validity: every honest decision equals `expected` (use only when
/// the source is honest).
pub fn check_validity(decisions: &[Option<Value>], honest: &[bool], expected: Value) -> bool {
    decisions
        .iter()
        .zip(honest.iter())
        .filter(|(_, &h)| h)
        .all(|(d, _)| *d == Some(expected))
}

/// Builds the full [`AgreementReport`] from decisions and the honesty mask.
pub fn report(
    decisions: &[Option<Value>],
    honest: &[bool],
    general_honest: bool,
    general_preference: Value,
) -> AgreementReport {
    let all_decided = decisions
        .iter()
        .zip(honest.iter())
        .filter(|(_, &h)| h)
        .all(|(d, _)| d.is_some());
    let agreement = check_agreement(decisions, honest);
    let validity = if general_honest {
        check_validity(decisions, honest, general_preference)
    } else {
        true
    };
    AgreementReport {
        all_decided,
        agreement,
        validity,
    }
}

/// The correctness conditions of **reliable broadcast** (Bracha), evaluated
/// on the honest processes' delivered values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbReport {
    /// Validity: the honest broadcaster's value was delivered by every
    /// honest process (vacuously true when the broadcaster is faulty).
    pub validity: bool,
    /// Agreement: no two honest processes delivered different values.
    pub agreement: bool,
    /// Totality: if any honest process delivered, every honest process
    /// delivered.
    pub totality: bool,
}

impl RbReport {
    /// Whether all three conditions hold.
    pub fn correct(&self) -> bool {
        self.validity && self.agreement && self.totality
    }
}

/// Builds the [`RbReport`] of one reliable-broadcast execution.
/// `delivered[i]` is process `i`'s delivered value (if any), `honest[i]`
/// its honesty; `broadcaster_value` is `Some(v)` when the broadcaster is
/// honest and broadcast `v`.
pub fn rb_report(
    delivered: &[Option<Value>],
    honest: &[bool],
    broadcaster_value: Option<Value>,
) -> RbReport {
    let honest_deliveries: Vec<Option<Value>> = delivered
        .iter()
        .zip(honest.iter())
        .filter(|(_, &h)| h)
        .map(|(d, _)| *d)
        .collect();
    let validity = match broadcaster_value {
        Some(v) => honest_deliveries.iter().all(|d| *d == Some(v)),
        None => true,
    };
    let agreement = check_agreement(delivered, honest);
    let any = honest_deliveries.iter().any(|d| d.is_some());
    let totality = !any || honest_deliveries.iter().all(|d| d.is_some());
    RbReport {
        validity,
        agreement,
        totality,
    }
}

/// One row of the E4 sweep: for a given `(n, t)`, whether OM(t) with the
/// worst adversary we implement preserved agreement and validity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundarySweepRow {
    /// Number of processes.
    pub n: usize,
    /// Number of traitors.
    pub t: usize,
    /// Whether `n > 3t` (the theoretical feasibility condition).
    pub theoretically_possible: bool,
    /// Whether agreement held in the simulated execution.
    pub agreement: bool,
    /// Whether validity held (general honest case).
    pub validity: bool,
    /// Messages used by OM(t).
    pub messages: usize,
}

/// Runs the OM(t) boundary sweep used by experiment E4: for each `(n, t)`,
/// places the traitors adversarially (commander first when `commander_faulty`
/// is set) and uses the parity-splitting lie.
pub fn om_boundary_sweep(
    max_n: usize,
    max_t: usize,
    commander_faulty: bool,
) -> Vec<BoundarySweepRow> {
    let mut rows = Vec::new();
    for n in 2..=max_n {
        for t in 0..=max_t.min(n - 1) {
            let traitors: BTreeSet<usize> = if commander_faulty {
                (0..t).collect()
            } else {
                (1..=t).collect()
            };
            let config = OmConfig {
                n,
                m: t,
                commander_value: 1,
                traitors: traitors.clone(),
                strategy: TraitorStrategy::SplitByParity,
                default_value: 0,
            };
            let outcome = om_byzantine_generals(&config);
            let values: Vec<Value> = outcome.decisions.values().copied().collect();
            let agreement = values.windows(2).all(|w| w[0] == w[1]);
            let validity = if traitors.contains(&0) {
                true
            } else {
                values.iter().all(|&v| v == 1)
            };
            rows.push(BoundarySweepRow {
                n,
                t,
                theoretically_possible: n > 3 * t,
                agreement,
                validity,
                messages: outcome.messages,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_and_validity_helpers() {
        let decisions = vec![Some(1), Some(1), None, Some(1)];
        let honest = vec![true, true, false, true];
        assert!(check_agreement(&decisions, &honest));
        assert!(check_validity(&decisions, &honest, 1));
        assert!(!check_validity(&decisions, &honest, 0));

        let decisions = vec![Some(1), Some(0), Some(1)];
        let honest = vec![true, true, true];
        assert!(!check_agreement(&decisions, &honest));
    }

    #[test]
    fn faulty_entries_are_ignored() {
        let decisions = vec![Some(1), Some(0)];
        let honest = vec![true, false];
        assert!(check_agreement(&decisions, &honest));
        let r = report(&decisions, &honest, true, 1);
        assert!(r.correct());
    }

    #[test]
    fn report_flags_missing_decisions() {
        let decisions = vec![Some(1), None];
        let honest = vec![true, true];
        let r = report(&decisions, &honest, true, 1);
        assert!(!r.all_decided);
        assert!(!r.correct());
    }

    #[test]
    fn rb_report_covers_the_three_conditions() {
        let honest = vec![true, true, true, false];
        // all honest delivered the broadcast value: fully correct
        let r = rb_report(&[Some(1), Some(1), Some(1), None], &honest, Some(1));
        assert!(r.correct());
        // one honest delivery missing: totality (and validity) broken
        let r = rb_report(&[Some(1), None, Some(1), None], &honest, Some(1));
        assert!(!r.totality);
        assert!(!r.validity);
        assert!(r.agreement, "agreement only constrains actual deliveries");
        // split deliveries: agreement broken, totality fine
        let r = rb_report(&[Some(1), Some(0), Some(1), None], &honest, None);
        assert!(!r.agreement);
        assert!(r.totality);
        assert!(r.validity, "vacuous under a faulty broadcaster");
        // nobody delivered anything: totality vacuous, validity not
        let r = rb_report(&[None, None, None, None], &honest, Some(1));
        assert!(r.totality);
        assert!(!r.validity);
    }

    #[test]
    fn boundary_sweep_matches_theory_when_feasible() {
        // whenever n > 3t the simulated OM(t) run must be correct
        for row in om_boundary_sweep(8, 2, false) {
            if row.theoretically_possible {
                assert!(
                    row.agreement && row.validity,
                    "n = {}, t = {} should succeed",
                    row.n,
                    row.t
                );
            }
        }
    }

    #[test]
    fn boundary_sweep_shows_failures_below_the_bound() {
        // the classic n = 3, t = 1 case with an honest commander and one
        // traitorous lieutenant must violate validity
        let rows = om_boundary_sweep(4, 1, false);
        let bad = rows
            .iter()
            .find(|r| r.n == 3 && r.t == 1)
            .expect("row exists");
        assert!(!bad.theoretically_possible);
        assert!(
            !(bad.agreement && bad.validity),
            "correctness should fail when n ≤ 3t"
        );
    }
}
