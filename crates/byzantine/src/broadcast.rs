//! Dolev–Strong authenticated broadcast.
//!
//! With a public-key infrastructure (the assumption behind the paper's
//! strongest positive result, `n > k + t`), a designated sender can
//! broadcast a value such that all honest processes agree on it even when
//! any number `t < n` of processes — possibly including the sender — are
//! Byzantine. The protocol runs for `t + 1` rounds; a value is *extracted*
//! by an honest process in round `r` only if it arrives carrying `r` valid
//! signatures from distinct processes starting with the sender's.

use crate::network::{ProcId, Process, SyncNetwork};
use crate::Value;
use bne_crypto::pki::{KeyPair, PublicKeyInfrastructure, Signature};
use std::collections::BTreeSet;

/// A message of the Dolev–Strong protocol: a value and its signature chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedMessage {
    /// The broadcast value.
    pub value: Value,
    /// Signature chain: `(signer, signature)` pairs, the first of which must
    /// be the designated sender's.
    pub chain: Vec<(ProcId, Signature)>,
}

/// An honest Dolev–Strong participant.
pub struct DolevStrongProcess {
    id: ProcId,
    n: usize,
    t: usize,
    sender: ProcId,
    /// The sender's input (ignored by non-senders).
    input: Value,
    pki: PublicKeyInfrastructure,
    key: KeyPair,
    extracted: BTreeSet<Value>,
    decided: Option<Value>,
    default_value: Value,
}

impl DolevStrongProcess {
    /// Creates an honest participant.
    ///
    /// `sender` is the designated broadcaster; `input` is only used when
    /// this process *is* the sender.
    pub fn new(
        sender: ProcId,
        input: Value,
        t: usize,
        pki: PublicKeyInfrastructure,
        key: KeyPair,
        default_value: Value,
    ) -> Self {
        DolevStrongProcess {
            id: 0,
            n: 0,
            t,
            sender,
            input,
            pki,
            key,
            extracted: BTreeSet::new(),
            decided: None,
            default_value,
        }
    }

    /// Number of network rounds needed: the sender's initial round, `t`
    /// relay rounds, and a final decision round.
    pub fn rounds_needed(t: usize) -> usize {
        t + 2
    }

    /// Validates a signature chain for `value` carrying signatures from
    /// `expected_len` distinct signers, the first being the sender.
    fn chain_is_valid(&self, msg: &SignedMessage, expected_len: usize) -> bool {
        if msg.chain.len() < expected_len {
            return false;
        }
        if msg.chain.first().map(|(s, _)| *s) != Some(self.sender) {
            return false;
        }
        let mut seen = BTreeSet::new();
        for (signer, sig) in &msg.chain {
            if !seen.insert(*signer) {
                return false;
            }
            if self.pki.verify(*signer, &[msg.value], sig).is_err() {
                return false;
            }
        }
        true
    }
}

impl Process for DolevStrongProcess {
    type Msg = SignedMessage;

    fn init(&mut self, id: ProcId, n: usize) {
        self.id = id;
        self.n = n;
    }

    fn round(
        &mut self,
        round: usize,
        inbox: &[(ProcId, SignedMessage)],
    ) -> Vec<(ProcId, SignedMessage)> {
        if self.decided.is_some() {
            return Vec::new();
        }
        let mut out = Vec::new();
        if round == 0 {
            if self.id == self.sender {
                let sig = self.key.sign(&[self.input]);
                let msg = SignedMessage {
                    value: self.input,
                    chain: vec![(self.id, sig)],
                };
                self.extracted.insert(self.input);
                for d in 0..self.n {
                    if d != self.id {
                        out.push((d, msg.clone()));
                    }
                }
            }
            return out;
        }
        // rounds 1..=t+1: process messages that carry `round` signatures
        for (_, msg) in inbox {
            if self.extracted.contains(&msg.value) {
                continue;
            }
            if !self.chain_is_valid(msg, round) {
                continue;
            }
            self.extracted.insert(msg.value);
            if round <= self.t {
                // append own signature and relay
                let mut chain = msg.chain.clone();
                chain.push((self.id, self.key.sign(&[msg.value])));
                let relay = SignedMessage {
                    value: msg.value,
                    chain,
                };
                for d in 0..self.n {
                    if d != self.id {
                        out.push((d, relay.clone()));
                    }
                }
            }
        }
        if round == self.t + 1 {
            // decision: a single extracted value is adopted; zero or more
            // than one falls back to the default.
            self.decided = Some(if self.extracted.len() == 1 {
                *self.extracted.iter().next().expect("non-empty")
            } else {
                self.default_value
            });
        }
        out
    }

    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

/// A Byzantine sender that equivocates: signs and sends value 0 to the first
/// half of the processes and value 1 to the rest, then stays silent.
pub struct EquivocatingSender {
    id: ProcId,
    n: usize,
    key: KeyPair,
}

impl EquivocatingSender {
    /// Creates the equivocating sender with its (legitimate) signing key.
    pub fn new(key: KeyPair) -> Self {
        EquivocatingSender { id: 0, n: 0, key }
    }
}

impl Process for EquivocatingSender {
    type Msg = SignedMessage;

    fn init(&mut self, id: ProcId, n: usize) {
        self.id = id;
        self.n = n;
    }

    fn round(
        &mut self,
        round: usize,
        _inbox: &[(ProcId, SignedMessage)],
    ) -> Vec<(ProcId, SignedMessage)> {
        if round > 0 {
            return Vec::new();
        }
        (0..self.n)
            .filter(|&d| d != self.id)
            .map(|d| {
                let value = if d < self.n / 2 { 0 } else { 1 };
                let sig = self.key.sign(&[value]);
                (
                    d,
                    SignedMessage {
                        value,
                        chain: vec![(self.id, sig)],
                    },
                )
            })
            .collect()
    }

    fn decision(&self) -> Option<u64> {
        None
    }
}

/// Runs Dolev–Strong broadcast with the given processes and fault budget,
/// returning the decision vector and network statistics.
pub fn run_dolev_strong(
    processes: Vec<Box<dyn Process<Msg = SignedMessage>>>,
    t: usize,
) -> (Vec<Option<Value>>, crate::network::RoundStats) {
    let mut net = SyncNetwork::new(processes);
    net.run(DolevStrongProcess::rounds_needed(t));
    (net.decisions(), net.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(n: usize) -> (PublicKeyInfrastructure, Vec<KeyPair>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        PublicKeyInfrastructure::setup(n, &mut rng)
    }

    fn honest(
        sender: ProcId,
        input: Value,
        t: usize,
        pki: &PublicKeyInfrastructure,
        key: KeyPair,
    ) -> Box<dyn Process<Msg = SignedMessage>> {
        Box::new(DolevStrongProcess::new(
            sender,
            input,
            t,
            pki.clone(),
            key,
            0,
        ))
    }

    #[test]
    fn honest_sender_delivers_value_to_everyone() {
        let n = 5;
        let t = 2;
        let (pki, keys) = setup(n);
        let procs: Vec<_> = (0..n).map(|i| honest(0, 1, t, &pki, keys[i])).collect();
        let (decisions, stats) = run_dolev_strong(procs, t);
        assert!(decisions.iter().all(|d| *d == Some(1)));
        assert!(stats.messages_sent >= n - 1);
    }

    #[test]
    fn equivocating_sender_detected_and_default_adopted() {
        let n = 6;
        let t = 2;
        let (pki, keys) = setup(n);
        let mut procs: Vec<Box<dyn Process<Msg = SignedMessage>>> =
            vec![Box::new(EquivocatingSender::new(keys[0]))];
        for &key in &keys[1..] {
            procs.push(honest(0, 7, t, &pki, key));
        }
        let (decisions, _) = run_dolev_strong(procs, t);
        let honest_decisions: Vec<_> = decisions[1..].iter().map(|d| d.unwrap()).collect();
        // all honest processes agree...
        assert!(honest_decisions.windows(2).all(|w| w[0] == w[1]));
        // ...on the default, because two signed values circulate
        assert!(honest_decisions.iter().all(|&v| v == 0));
    }

    #[test]
    fn tolerates_a_silent_relay() {
        // the sender is honest; one relay does nothing (it simply never
        // relays). Honest processes still all decide the sender's value.
        struct SilentRelay;
        impl Process for SilentRelay {
            type Msg = SignedMessage;
            fn init(&mut self, _id: ProcId, _n: usize) {}
            fn round(
                &mut self,
                _round: usize,
                _inbox: &[(ProcId, SignedMessage)],
            ) -> Vec<(ProcId, SignedMessage)> {
                Vec::new()
            }
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let n = 5;
        let t = 1;
        let (pki, keys) = setup(n);
        let mut procs: Vec<Box<dyn Process<Msg = SignedMessage>>> = Vec::new();
        for &key in &keys[..n - 1] {
            procs.push(honest(0, 3, t, &pki, key));
        }
        procs.push(Box::new(SilentRelay));
        let (decisions, _) = run_dolev_strong(procs, t);
        assert!(decisions[..n - 1].iter().all(|d| *d == Some(3)));
    }

    #[test]
    fn forged_chains_are_ignored() {
        // a malicious relay injects a value with a chain not rooted at the
        // sender; honest processes ignore it and stick with the real value.
        struct Forger {
            key: KeyPair,
            n: usize,
        }
        impl Process for Forger {
            type Msg = SignedMessage;
            fn init(&mut self, _id: ProcId, n: usize) {
                self.n = n;
            }
            fn round(
                &mut self,
                round: usize,
                _inbox: &[(ProcId, SignedMessage)],
            ) -> Vec<(ProcId, SignedMessage)> {
                if round != 1 {
                    return Vec::new();
                }
                let sig = self.key.sign(&[9]);
                (0..self.n)
                    .map(|d| {
                        (
                            d,
                            SignedMessage {
                                value: 9,
                                chain: vec![(self.key.owner, sig)],
                            },
                        )
                    })
                    .collect()
            }
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let n = 5;
        let t = 1;
        let (pki, keys) = setup(n);
        let mut procs: Vec<Box<dyn Process<Msg = SignedMessage>>> = Vec::new();
        for &key in &keys[..n - 1] {
            procs.push(honest(0, 4, t, &pki, key));
        }
        procs.push(Box::new(Forger {
            key: keys[n - 1],
            n,
        }));
        let (decisions, _) = run_dolev_strong(procs, t);
        assert!(decisions[..n - 1].iter().all(|d| *d == Some(4)));
    }

    #[test]
    fn rounds_needed_formula() {
        assert_eq!(DolevStrongProcess::rounds_needed(0), 2);
        assert_eq!(DolevStrongProcess::rounds_needed(3), 5);
    }
}
