//! The phase-king consensus protocol (Berman–Garay–Perry) on the synchronous
//! network simulator.
//!
//! Every process starts with a binary preference; after `t + 1` phases of
//! two rounds each, all honest processes decide the same value, and if all
//! honest processes started with the same value they decide that value. The
//! simple version implemented here is safe when `n > 4t`. It complements
//! [`crate::om`]: OM(m) gives the tight `n > 3t` bound with exponential
//! messages, phase-king gives polynomial messages at a weaker resilience —
//! the trade-off is benchmarked in `bne-bench`.

use crate::network::{ProcId, Process, SyncNetwork};
use crate::Value;

/// An honest phase-king participant.
#[derive(Debug, Clone)]
pub struct PhaseKingProcess {
    id: ProcId,
    n: usize,
    t: usize,
    value: Value,
    majority_count: usize,
    decided: Option<Value>,
}

impl PhaseKingProcess {
    /// Creates an honest participant with the given initial preference and
    /// fault budget `t`.
    pub fn new(initial: Value, t: usize) -> Self {
        PhaseKingProcess {
            id: 0,
            n: 0,
            t,
            value: initial,
            majority_count: 0,
            decided: None,
        }
    }

    /// Number of network rounds the protocol needs for fault budget `t`:
    /// `t + 1` phases of two rounds each, plus the final processing round.
    pub fn rounds_needed(t: usize) -> usize {
        2 * (t + 1) + 1
    }

    /// The current working value (mostly useful in tests).
    pub fn current_value(&self) -> Value {
        self.value
    }
}

impl Process for PhaseKingProcess {
    type Msg = Value;

    fn init(&mut self, id: ProcId, n: usize) {
        self.id = id;
        self.n = n;
    }

    fn round(&mut self, round: usize, inbox: &[(ProcId, Value)]) -> Vec<(ProcId, Value)> {
        if self.decided.is_some() {
            return Vec::new();
        }
        let phase = round / 2;
        if round.is_multiple_of(2) {
            // Proposal round. First absorb the king's message from the
            // previous king round (if any).
            if round > 0 {
                let king = phase - 1; // king of the previous phase
                let king_value = inbox
                    .iter()
                    .find(|(sender, _)| *sender == king)
                    .map(|(_, v)| *v);
                let threshold = self.n / 2 + self.t;
                if self.majority_count <= threshold {
                    // not enough support for my own value: adopt the king's
                    if let Some(kv) = king_value {
                        self.value = if kv > 0 { 1 } else { 0 };
                    }
                }
            }
            if phase == self.t + 1 {
                // all phases complete: decide
                self.decided = Some(self.value);
                return Vec::new();
            }
            // broadcast my current value
            (0..self.n).map(|d| (d, self.value)).collect()
        } else {
            // King round: tally the proposals received this round.
            let ones = inbox.iter().filter(|(_, v)| *v == 1).count();
            let zeros = inbox.iter().filter(|(_, v)| *v == 0).count();
            if ones >= zeros {
                self.value = 1;
                self.majority_count = ones;
            } else {
                self.value = 0;
                self.majority_count = zeros;
            }
            if self.id == phase {
                // I am this phase's king: broadcast my value as tiebreak.
                (0..self.n).map(|d| (d, self.value)).collect()
            } else {
                Vec::new()
            }
        }
    }

    fn decision(&self) -> Option<u64> {
        self.decided
    }
}

/// Convenience runner: builds a network from the given processes (honest
/// phase-king participants and/or faulty processes), runs the required
/// number of rounds for fault budget `t`, and returns the decision vector.
pub fn run_phase_king(
    processes: Vec<Box<dyn Process<Msg = Value>>>,
    t: usize,
) -> (Vec<Option<Value>>, crate::network::RoundStats) {
    let mut net = SyncNetwork::new(processes);
    net.run(PhaseKingProcess::rounds_needed(t));
    (net.decisions(), net.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FaultyBehavior, FaultyProcess};

    fn honest(initial: Value, t: usize) -> Box<dyn Process<Msg = Value>> {
        Box::new(PhaseKingProcess::new(initial, t))
    }

    fn faulty(behavior: FaultyBehavior) -> Box<dyn Process<Msg = Value>> {
        Box::new(FaultyProcess::new(behavior))
    }

    fn honest_decisions(decisions: &[Option<Value>], faulty: &[usize]) -> Vec<Value> {
        decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| !faulty.contains(i))
            .map(|(_, d)| d.expect("honest processes decide"))
            .collect()
    }

    #[test]
    fn unanimous_start_decides_that_value_without_faults() {
        for v in [0u64, 1] {
            let procs: Vec<_> = (0..5).map(|_| honest(v, 1)).collect();
            let (decisions, _) = run_phase_king(procs, 1);
            let values = honest_decisions(&decisions, &[]);
            assert!(values.iter().all(|&d| d == v));
        }
    }

    #[test]
    fn mixed_start_still_agrees() {
        let procs: Vec<_> = (0..6).map(|i| honest((i % 2) as u64, 1)).collect();
        let (decisions, _) = run_phase_king(procs, 1);
        let values = honest_decisions(&decisions, &[]);
        assert!(values.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn tolerates_one_equivocating_fault_with_five_honest() {
        // n = 6, t = 1 (n > 4t): the faulty process is id 5 (never a king
        // during phases 0..=1).
        let mut procs: Vec<_> = (0..5).map(|_| honest(1, 1)).collect();
        procs.push(faulty(FaultyBehavior::Equivocate { seed: 21 }));
        let (decisions, _) = run_phase_king(procs, 1);
        let values = honest_decisions(&decisions, &[5]);
        assert_eq!(values.len(), 5);
        assert!(values.windows(2).all(|w| w[0] == w[1]), "agreement");
        assert!(values.iter().all(|&v| v == 1), "validity");
    }

    #[test]
    fn tolerates_silent_and_random_faults() {
        for behavior in [
            FaultyBehavior::Silent,
            FaultyBehavior::RandomNoise { seed: 3 },
            FaultyBehavior::Garbage { seed: 3 },
            FaultyBehavior::FixedValue(0),
            FaultyBehavior::Crash { after: 1, value: 0 },
        ] {
            // n = 9, t = 2 (n > 4t); faulty ids 7 and 8 are never kings.
            let mut procs: Vec<_> = (0..7).map(|_| honest(1, 2)).collect();
            procs.push(faulty(behavior.clone()));
            procs.push(faulty(behavior.clone()));
            let (decisions, _) = run_phase_king(procs, 2);
            let values = honest_decisions(&decisions, &[7, 8]);
            assert!(
                values.windows(2).all(|w| w[0] == w[1]),
                "agreement under {behavior:?}"
            );
            assert!(
                values.iter().all(|&v| v == 1),
                "validity under {behavior:?}"
            );
        }
    }

    #[test]
    fn too_many_faults_can_break_validity_or_agreement() {
        // n = 4, t = 1 violates n > 4t. A faulty king can push the honest
        // processes around; we only assert the protocol completes and
        // documents the degradation (decisions exist).
        let mut procs: Vec<_> = (0..3).map(|i| honest((i % 2) as u64, 1)).collect();
        procs.push(faulty(FaultyBehavior::Equivocate { seed: 5 }));
        let (decisions, _) = run_phase_king(procs, 1);
        assert!(decisions[..3].iter().all(|d| d.is_some()));
    }

    #[test]
    fn rounds_needed_formula() {
        assert_eq!(PhaseKingProcess::rounds_needed(0), 3);
        assert_eq!(PhaseKingProcess::rounds_needed(2), 7);
    }

    #[test]
    fn message_complexity_is_quadratic_per_round() {
        let n = 8;
        let procs: Vec<_> = (0..n).map(|_| honest(1, 1)).collect();
        let (_, stats) = run_phase_king(procs, 1);
        // each proposal round costs n^2 messages; king rounds cost n.
        assert!(stats.messages_sent >= n * n);
        assert!(stats.messages_sent <= (stats.rounds) * n * n);
    }
}
