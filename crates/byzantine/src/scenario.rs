//! Byzantine protocol runs as [`bne_sim::Scenario`]s: agreement/validity
//! rates over adversary strategies × fault ratios, estimated from ensembles
//! of seeded executions instead of single hand-picked runs.
//!
//! Three protocols are covered — OM(t) ([`OmScenario`]), phase king
//! ([`PhaseKingScenario`]) and Dolev–Strong signed broadcast
//! ([`BroadcastScenario`]) — all reporting into the shared
//! [`ProtocolStats`] aggregate, so grids across protocols are directly
//! comparable.

use crate::adversary::{FaultyBehavior, FaultyProcess};
use crate::broadcast::{run_dolev_strong, DolevStrongProcess, EquivocatingSender, SignedMessage};
use crate::network::Process;
use crate::om::{om_byzantine_generals, OmConfig, TraitorStrategy};
use crate::phase_king::{run_phase_king, PhaseKingProcess};
use crate::properties::{check_agreement, check_validity};
use crate::Value;
use bne_crypto::pki::PublicKeyInfrastructure;
use bne_sim::{Merge, Scenario, StreamingStats};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Streaming aggregate of protocol executions (one grid cell). All rates
/// are 0/1 per replica, so `mean()` is the empirical probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolStats {
    /// Did every honest process decide?
    pub decided: StreamingStats,
    /// Did all honest decisions agree (IC1)?
    pub agreement: StreamingStats,
    /// Did honest decisions match the honest source / unanimous input
    /// (IC2; vacuously satisfied when there is no honest reference value)?
    pub validity: StreamingStats,
    /// Point-to-point messages used by the execution.
    pub messages: StreamingStats,
}

impl ProtocolStats {
    /// Summarizes one execution.
    pub fn of_run(decided: bool, agreement: bool, validity: bool, messages: usize) -> Self {
        ProtocolStats {
            decided: StreamingStats::of(f64::from(decided)),
            agreement: StreamingStats::of(f64::from(agreement)),
            validity: StreamingStats::of(f64::from(validity)),
            messages: StreamingStats::of(messages as f64),
        }
    }

    /// Empirical probability that an execution was fully correct is at
    /// most `min` of the three component rates; this reports the rate of
    /// executions satisfying agreement **and** validity **and** decision.
    pub fn agreement_rate(&self) -> f64 {
        self.agreement.mean()
    }
}

impl Merge for ProtocolStats {
    fn merge(&mut self, other: &Self) {
        self.decided.merge(&other.decided);
        self.agreement.merge(&other.agreement);
        self.validity.merge(&other.validity);
        self.messages.merge(&other.messages);
    }
}

// ---------------------------------------------------------------------------
// OM(t)
// ---------------------------------------------------------------------------

/// One grid cell of the OM sweep: `(n, t)` plus the adversary.
#[derive(Debug, Clone)]
pub struct OmCell {
    /// Total number of participants (commander + lieutenants).
    pub n: usize,
    /// Number of traitors (also the recursion depth `m`).
    pub t: usize,
    /// How traitors lie.
    pub strategy: TraitorStrategy,
    /// Whether the commander is one of the traitors.
    pub commander_faulty: bool,
}

/// Oral-messages Byzantine generals, with the commander's order drawn from
/// the replica seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct OmScenario;

impl Scenario for OmScenario {
    type Config = OmCell;
    type Outcome = ProtocolStats;

    fn run(&self, cell: &OmCell, seed: u64) -> ProtocolStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let commander_value: Value = rng.random_range(0..2u64);
        let traitors: BTreeSet<usize> = if cell.commander_faulty {
            (0..cell.t).collect()
        } else {
            (1..=cell.t).collect()
        };
        let config = OmConfig {
            n: cell.n,
            m: cell.t,
            commander_value,
            traitors: traitors.clone(),
            strategy: cell.strategy,
            default_value: 0,
        };
        let outcome = om_byzantine_generals(&config);
        let values: Vec<Value> = outcome.decisions.values().copied().collect();
        let agreement = values.windows(2).all(|w| w[0] == w[1]);
        let validity = traitors.contains(&0) || values.iter().all(|&v| v == commander_value);
        // every loyal lieutenant appears in `decisions` by construction
        ProtocolStats::of_run(true, agreement, validity, outcome.messages)
    }
}

/// OM grid over fault ratios × adversary strategies.
pub fn om_grid(
    cells: &[(usize, usize)],
    strategies: &[TraitorStrategy],
    commander_faulty: bool,
) -> Vec<OmCell> {
    let mut grid = Vec::new();
    for &strategy in strategies {
        for &(n, t) in cells {
            grid.push(OmCell {
                n,
                t,
                strategy,
                commander_faulty,
            });
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Phase king
// ---------------------------------------------------------------------------

/// One grid cell of the phase-king sweep.
#[derive(Debug, Clone)]
pub struct PhaseKingCell {
    /// Total number of processes (honest + faulty).
    pub n: usize,
    /// Fault budget; the last `t` process ids are faulty. Since kings are
    /// ids `0..=t`, every king is honest under this placement — the regime
    /// the simple `n > 4t` protocol actually supports (a faulty king is
    /// where its guarantees stop, not an adversary this grid stresses).
    pub t: usize,
    /// The faulty behavior (RNG-based behaviors are re-seeded per replica).
    pub behavior: FaultyBehavior,
    /// `true`: all honest processes start with the same seed-drawn bit
    /// (validity is checkable); `false`: independent random preferences
    /// (validity is vacuous, agreement still must hold).
    pub unanimous_start: bool,
}

/// Phase-king consensus under a configurable adversary, with honest inputs
/// drawn from the replica seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseKingScenario;

impl Scenario for PhaseKingScenario {
    type Config = PhaseKingCell;
    type Outcome = ProtocolStats;

    fn run(&self, cell: &PhaseKingCell, seed: u64) -> ProtocolStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let honest_count = cell.n - cell.t;
        let common: Value = rng.random_range(0..2u64);
        let initials: Vec<Value> = (0..honest_count)
            .map(|_| {
                if cell.unanimous_start {
                    common
                } else {
                    rng.random_range(0..2u64)
                }
            })
            .collect();
        let mut processes: Vec<Box<dyn Process<Msg = Value>>> = initials
            .iter()
            .map(|&v| Box::new(PhaseKingProcess::new(v, cell.t)) as Box<dyn Process<Msg = Value>>)
            .collect();
        for _ in 0..cell.t {
            // re-seed stochastic adversaries from the replica seed so
            // replicas see independent noise (deterministic behaviors are
            // unchanged; the draw keeps the stream layout uniform)
            let behavior = cell.behavior.with_seed(rng.random::<u64>());
            processes.push(Box::new(FaultyProcess::new(behavior)));
        }
        let (decisions, stats) = run_phase_king(processes, cell.t);
        let honest: Vec<bool> = (0..cell.n).map(|i| i < honest_count).collect();
        let decided = decisions
            .iter()
            .zip(honest.iter())
            .filter(|(_, &h)| h)
            .all(|(d, _)| d.is_some());
        let agreement = check_agreement(&decisions, &honest);
        let validity = if cell.unanimous_start {
            check_validity(&decisions, &honest, common)
        } else {
            true
        };
        ProtocolStats::of_run(decided, agreement, validity, stats.messages_sent)
    }
}

/// Phase-king grid over fault ratios × adversary strategies.
pub fn phase_king_grid(
    cells: &[(usize, usize)],
    behaviors: &[FaultyBehavior],
    unanimous_start: bool,
) -> Vec<PhaseKingCell> {
    let mut grid = Vec::new();
    for behavior in behaviors {
        for &(n, t) in cells {
            grid.push(PhaseKingCell {
                n,
                t,
                behavior: behavior.clone(),
                unanimous_start,
            });
        }
    }
    grid
}

// ---------------------------------------------------------------------------
// Dolev–Strong signed broadcast
// ---------------------------------------------------------------------------

/// One grid cell of the signed-broadcast sweep.
#[derive(Debug, Clone)]
pub struct BroadcastCell {
    /// Total number of processes.
    pub n: usize,
    /// Fault budget (protocol runs `t + 1` rounds).
    pub t: usize,
    /// Whether the designated sender (process 0) equivocates.
    pub equivocating_sender: bool,
}

/// Dolev–Strong authenticated broadcast over a per-replica simulated PKI,
/// with the sender's input drawn from the replica seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastScenario;

impl Scenario for BroadcastScenario {
    type Config = BroadcastCell;
    type Outcome = ProtocolStats;

    fn run(&self, cell: &BroadcastCell, seed: u64) -> ProtocolStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let (pki, keys) = PublicKeyInfrastructure::setup(cell.n, &mut rng);
        let input: Value = rng.random_range(0..2u64);
        let mut processes: Vec<Box<dyn Process<Msg = SignedMessage>>> = Vec::new();
        for i in 0..cell.n {
            if i == 0 && cell.equivocating_sender {
                processes.push(Box::new(EquivocatingSender::new(keys[0])));
            } else {
                processes.push(Box::new(DolevStrongProcess::new(
                    0,
                    input,
                    cell.t,
                    pki.clone(),
                    keys[i],
                    0,
                )));
            }
        }
        let (decisions, stats) = run_dolev_strong(processes, cell.t);
        let honest: Vec<bool> = (0..cell.n)
            .map(|i| i != 0 || !cell.equivocating_sender)
            .collect();
        let decided = decisions
            .iter()
            .zip(honest.iter())
            .filter(|(_, &h)| h)
            .all(|(d, _)| d.is_some());
        let agreement = check_agreement(&decisions, &honest);
        let validity = if cell.equivocating_sender {
            true
        } else {
            check_validity(&decisions, &honest, input)
        };
        ProtocolStats::of_run(decided, agreement, validity, stats.messages_sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_sim::SimRunner;

    #[test]
    fn om_within_the_bound_is_always_correct() {
        let grid = om_grid(
            &[(4, 1), (7, 2)],
            &[TraitorStrategy::Flip, TraitorStrategy::SplitByParity],
            false,
        );
        for cell in SimRunner::new(12, 1).run_sequential(&OmScenario, &grid) {
            assert_eq!(cell.outcome.agreement.mean(), 1.0, "cell {}", cell.cell);
            assert_eq!(cell.outcome.validity.mean(), 1.0, "cell {}", cell.cell);
        }
    }

    #[test]
    fn om_beyond_the_bound_fails_sometimes() {
        // n = 3, t = 1: the classical impossible configuration.
        let grid = om_grid(&[(3, 1)], &[TraitorStrategy::SplitByParity], false);
        let results = SimRunner::new(16, 2).run_sequential(&OmScenario, &grid);
        let correct = results[0]
            .outcome
            .agreement
            .mean()
            .min(results[0].outcome.validity.mean());
        assert!(correct < 1.0, "n=3,t=1 should not be reliably correct");
    }

    #[test]
    fn phase_king_tolerates_its_budget_and_reports_full_agreement() {
        let grid = phase_king_grid(
            &[(6, 1), (9, 2)],
            &[
                FaultyBehavior::Equivocate { seed: 7 },
                FaultyBehavior::RandomNoise { seed: 7 },
                FaultyBehavior::Garbage { seed: 7 },
            ],
            true,
        );
        for cell in SimRunner::new(10, 3).run_sequential(&PhaseKingScenario, &grid) {
            assert_eq!(cell.outcome.decided.mean(), 1.0);
            assert_eq!(cell.outcome.agreement.mean(), 1.0);
            assert_eq!(cell.outcome.validity.mean(), 1.0);
        }
    }

    #[test]
    fn phase_king_mixed_starts_still_agree() {
        let grid = phase_king_grid(&[(9, 2)], &[FaultyBehavior::Equivocate { seed: 4 }], false);
        let results = SimRunner::new(10, 4).run_sequential(&PhaseKingScenario, &grid);
        assert_eq!(results[0].outcome.agreement.mean(), 1.0);
    }

    #[test]
    fn broadcast_honest_sender_delivers_even_with_large_t() {
        let grid = vec![BroadcastCell {
            n: 5,
            t: 3,
            equivocating_sender: false,
        }];
        let results = SimRunner::new(6, 5).run_sequential(&BroadcastScenario, &grid);
        assert_eq!(results[0].outcome.agreement.mean(), 1.0);
        assert_eq!(results[0].outcome.validity.mean(), 1.0);
    }

    #[test]
    fn broadcast_equivocating_sender_still_yields_agreement() {
        let grid = vec![BroadcastCell {
            n: 5,
            t: 1,
            equivocating_sender: true,
        }];
        let results = SimRunner::new(6, 6).run_sequential(&BroadcastScenario, &grid);
        assert_eq!(results[0].outcome.agreement.mean(), 1.0);
    }
}
