//! The trivial mediator-based solution to Byzantine agreement.
//!
//! The paper uses this as the specification the cheap-talk protocols must
//! implement: *"It is trivial to solve Byzantine agreement with a mediator:
//! the general simply sends the mediator his preference, and the mediator
//! sends it to all the soldiers."* The cheap-talk implementations in
//! `bne-mediator` are judged by whether they induce the same decisions.

use crate::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Result of the mediator-based Byzantine agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediatorBaOutcome {
    /// Decision of every non-faulty soldier (keyed by process id; faulty
    /// soldiers are omitted because their behavior is unconstrained).
    pub decisions: BTreeMap<usize, Value>,
    /// Number of messages exchanged (general → mediator, mediator → each
    /// soldier).
    pub messages: usize,
}

/// Solves Byzantine agreement for `n` soldiers (process 0 is the general)
/// using a trusted mediator.
///
/// * If the general is non-faulty, every non-faulty soldier decides the
///   general's preference (validity).
/// * If the general is faulty it may report anything (we model that as
///   `faulty_general_report`); the mediator still relays a single value, so
///   all non-faulty soldiers agree (agreement).
pub fn mediator_byzantine_agreement(
    n: usize,
    general_preference: Value,
    faulty: &BTreeSet<usize>,
    faulty_general_report: Value,
) -> MediatorBaOutcome {
    assert!(n > 0, "need at least the general");
    let reported = if faulty.contains(&0) {
        faulty_general_report
    } else {
        general_preference
    };
    let mut decisions = BTreeMap::new();
    for soldier in 0..n {
        if faulty.contains(&soldier) {
            continue;
        }
        decisions.insert(soldier, reported);
    }
    MediatorBaOutcome {
        decisions,
        // general → mediator, then mediator → every soldier
        messages: 1 + n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_general_validity_and_agreement() {
        let out = mediator_byzantine_agreement(5, 1, &BTreeSet::new(), 0);
        assert_eq!(out.decisions.len(), 5);
        assert!(out.decisions.values().all(|&v| v == 1));
        assert_eq!(out.messages, 6);
    }

    #[test]
    fn faulty_soldiers_are_ignored_but_rest_agree() {
        let faulty: BTreeSet<usize> = [2, 4].into_iter().collect();
        let out = mediator_byzantine_agreement(6, 0, &faulty, 1);
        assert_eq!(out.decisions.len(), 4);
        assert!(out.decisions.values().all(|&v| v == 0));
        assert!(!out.decisions.contains_key(&2));
    }

    #[test]
    fn faulty_general_still_gives_agreement() {
        let faulty: BTreeSet<usize> = [0].into_iter().collect();
        let out = mediator_byzantine_agreement(4, 1, &faulty, 0);
        // the general lied, but everyone (honest) still agrees on the lie
        assert_eq!(out.decisions.len(), 3);
        assert!(out.decisions.values().all(|&v| v == 0));
    }

    #[test]
    fn works_even_with_majority_faulty() {
        // the whole point of the mediator: no n > 3t requirement at all
        let faulty: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
        let out = mediator_byzantine_agreement(5, 1, &faulty, 0);
        assert_eq!(out.decisions.len(), 2);
        assert!(out.decisions.values().all(|&v| v == 1));
    }
}
