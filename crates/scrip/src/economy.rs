//! The scaled scrip economy: an index-based engine whose hot loop is O(1)
//! per round and allocation-free in steady state, built for 10^6+ agents.
//!
//! The legacy [`crate::simulate`] scans the whole population every round to
//! collect volunteers — O(n) work and a fresh `Vec` per round, fine for
//! thousands of agents and hopeless for millions. The [`Economy`] engine
//! keeps the *willing-to-volunteer* sets incrementally instead:
//!
//! * agent state lives in flat arrays (`u32` holdings and thresholds, `u8`
//!   class tags, `f64` utilities) — about 30 bytes per agent, so a million
//!   agents fit in ~30 MB;
//! * the **paid pool** holds every agent who would volunteer *for payment*
//!   (rational agents strictly below their threshold, hoarders always),
//!   maintained by O(1) swap-remove with a position index; altruists form
//!   a static second pool since they serve regardless of payment;
//! * a round is: draw requester, draw volunteer uniformly from the union
//!   of the eligible pools (rejecting the requester, who appears at most
//!   once), transfer one scrip, update pool membership — all O(1);
//! * **churn** models arrivals/departures: each round, with the configured
//!   probability, one uniformly chosen agent leaves (taking its scrip out
//!   of circulation) and a newcomer takes over the slot with fresh scrip,
//!   keeping the slot's class and strategy. With churn disabled the RNG
//!   stream is untouched, so zero-churn configs reproduce byte-for-byte;
//! * results are **streaming aggregates only** (per-class mean utilities,
//!   holdings histogram, pool-size stats) — the engine never materializes
//!   per-agent output vectors, and [`Economy::resident_bytes`] exposes the
//!   capacity high-water mark so tests can assert the steady state
//!   allocates nothing.
//!
//! Per-slot utilities remain readable *on the engine* after a run (see
//! [`Economy::average_utility`]); the sampled-audit backend in
//! [`crate::audit`] uses them as payoffs without ever copying them out.

use bne_sim::{Histogram, StreamingStats};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Class tag: rational threshold agent.
const RATIONAL: u8 = 0;
/// Class tag: hoarder (volunteers for payment no matter its holdings).
const HOARDER: u8 = 1;
/// Class tag: altruist (serves for free, never takes payment).
const ALTRUIST: u8 = 2;

/// Sentinel for "not in the paid pool".
const NOT_POOLED: u32 = u32::MAX;

/// Configuration of a scaled scrip economy.
///
/// Slots are laid out hoarders first, then altruists, then rational
/// agents — the same convention as [`crate::mix_sweep`] — so the rational
/// block is contiguous and the audit backend can address it directly.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyConfig {
    /// Number of rational threshold agents.
    pub rational: usize,
    /// Number of hoarders (Byzantine scrip accumulators).
    pub hoarders: usize,
    /// Number of altruists.
    pub altruists: usize,
    /// Common threshold of the rational agents (audits override per slot).
    pub threshold: u32,
    /// Initial scrip per agent — the money supply knob.
    pub initial_scrip: u32,
    /// Scrip a newcomer brings when churn replaces a departing agent.
    pub newcomer_scrip: u32,
    /// Utility a requester gains when served.
    pub benefit: f64,
    /// Utility a volunteer loses performing the work.
    pub cost: f64,
    /// Per-round probability that one agent departs and is replaced.
    pub churn: f64,
    /// Rounds to simulate.
    pub rounds: u64,
}

impl EconomyConfig {
    /// A homogeneous population of `n` rational agents at `threshold`,
    /// with the legacy simulator's benefit/cost and money supply.
    pub fn homogeneous(n: usize, threshold: u32, rounds: u64) -> Self {
        EconomyConfig {
            rational: n,
            hoarders: 0,
            altruists: 0,
            threshold,
            initial_scrip: threshold / 2 + 1,
            newcomer_scrip: threshold / 2 + 1,
            benefit: 1.0,
            cost: 0.2,
            churn: 0.0,
            rounds,
        }
    }

    /// Total number of agent slots.
    pub fn total_agents(&self) -> usize {
        self.rational + self.hoarders + self.altruists
    }

    /// First slot of the contiguous rational block.
    pub fn rational_base(&self) -> usize {
        self.hoarders + self.altruists
    }
}

/// Aggregates of one economy run. Everything here is O(1) in the number
/// of agents — per-agent data stays inside the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyOutcome {
    /// Fraction of requests served.
    pub efficiency: f64,
    /// Requests that found no volunteer.
    pub unserved: u64,
    /// Rounds simulated.
    pub rounds: u64,
    /// Departures processed by churn.
    pub departures: u64,
    /// Mean per-round utility of the rational agents.
    pub rational_utility: f64,
    /// Mean per-round utility of the hoarders.
    pub hoarder_utility: f64,
    /// Mean per-round utility of the altruists.
    pub altruist_utility: f64,
    /// Scrip in circulation after the final round (churn moves this).
    pub money_supply: u64,
    /// Per-round size of the paid volunteer pool.
    pub pool_size: StreamingStats,
    /// Final holdings distribution (overflow bucket catches hoarders).
    pub holdings_hist: Histogram,
    /// Capacity high-water mark of the engine's allocations, in bytes.
    pub resident_bytes: usize,
}

/// The scaled scrip economy engine. Construct once, [`Economy::run`] as
/// many times as needed — every run re-seeds and re-initializes in place,
/// so repeated runs never allocate.
#[derive(Debug, Clone)]
pub struct Economy {
    config: EconomyConfig,
    holdings: Vec<u32>,
    thresholds: Vec<u32>,
    class: Vec<u8>,
    utility: Vec<f64>,
    /// Agents who would volunteer for payment right now.
    paid_pool: Vec<u32>,
    /// `paid_pos[slot]` is the slot's index in `paid_pool`, or [`NOT_POOLED`].
    paid_pos: Vec<u32>,
    /// Altruist slots (static: churn keeps each slot's class).
    altruist_pool: Vec<u32>,
    rounds_run: u64,
}

impl Economy {
    /// Allocates an engine for `config`. All allocation happens here; the
    /// round loop and later runs reuse these buffers.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two agents or more than `u32::MAX - 1` slots.
    pub fn new(config: &EconomyConfig) -> Self {
        let n = config.total_agents();
        assert!(n >= 2, "the scrip economy needs at least two agents");
        assert!(n < u32::MAX as usize, "slot indices are u32");
        let mut economy = Economy {
            config: config.clone(),
            holdings: vec![0; n],
            thresholds: vec![0; n],
            class: vec![0; n],
            utility: vec![0.0; n],
            paid_pool: Vec::with_capacity(n),
            paid_pos: vec![NOT_POOLED; n],
            altruist_pool: Vec::with_capacity(config.altruists),
            rounds_run: 0,
        };
        for slot in 0..n {
            economy.class[slot] = if slot < config.hoarders {
                HOARDER
            } else if slot < config.rational_base() {
                ALTRUIST
            } else {
                RATIONAL
            };
        }
        economy.reset();
        economy
    }

    /// Re-initializes holdings, utilities and pools in place (no
    /// allocation). Thresholds return to the config's common threshold.
    pub fn reset(&mut self) {
        let n = self.holdings.len();
        self.holdings.fill(self.config.initial_scrip);
        self.thresholds.fill(self.config.threshold);
        self.utility.fill(0.0);
        self.paid_pool.clear();
        self.altruist_pool.clear();
        self.paid_pos.fill(NOT_POOLED);
        self.rounds_run = 0;
        for slot in 0..n {
            match self.class[slot] {
                ALTRUIST => self.altruist_pool.push(slot as u32),
                _ => self.sync_membership(slot),
            }
        }
    }

    /// Overrides one slot's threshold (audits deviate rational slots this
    /// way before running). Pool membership is kept consistent.
    pub fn set_threshold(&mut self, slot: usize, threshold: u32) {
        self.thresholds[slot] = threshold;
        if self.class[slot] == RATIONAL {
            self.sync_membership(slot);
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EconomyConfig {
        &self.config
    }

    /// Per-round average utility of `slot` over the last run. Churn keeps
    /// utilities attached to the *slot* (the strategy seat), so this is
    /// the long-run per-round value of playing the slot's strategy.
    pub fn average_utility(&self, slot: usize) -> f64 {
        if self.rounds_run == 0 {
            0.0
        } else {
            self.utility[slot] / self.rounds_run as f64
        }
    }

    /// Sum of the capacities of every buffer the engine owns, in bytes —
    /// the arena high-water mark. Steady-state rounds must not move it.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.holdings.capacity() * size_of::<u32>()
            + self.thresholds.capacity() * size_of::<u32>()
            + self.class.capacity() * size_of::<u8>()
            + self.utility.capacity() * size_of::<f64>()
            + self.paid_pool.capacity() * size_of::<u32>()
            + self.paid_pos.capacity() * size_of::<u32>()
            + self.altruist_pool.capacity() * size_of::<u32>()
    }

    /// Inserts or removes `slot` from the paid pool to match its state.
    fn sync_membership(&mut self, slot: usize) {
        let eligible = match self.class[slot] {
            HOARDER => true,
            RATIONAL => self.holdings[slot] < self.thresholds[slot],
            _ => false,
        };
        let pos = self.paid_pos[slot];
        if eligible && pos == NOT_POOLED {
            self.paid_pos[slot] = self.paid_pool.len() as u32;
            self.paid_pool.push(slot as u32);
        } else if !eligible && pos != NOT_POOLED {
            let last = *self.paid_pool.last().expect("pool has the member");
            self.paid_pool.swap_remove(pos as usize);
            if last as usize != slot {
                self.paid_pos[last as usize] = pos;
            }
            self.paid_pos[slot] = NOT_POOLED;
        }
    }

    /// Runs `config.rounds` rounds from a fresh initial state seeded by
    /// `seed`, returning aggregates. Per-slot utilities stay readable via
    /// [`Economy::average_utility`] until the next run.
    pub fn run(&mut self, seed: u64) -> EconomyOutcome {
        self.run_with_thresholds(&[], seed)
    }

    /// Like [`Economy::run`], but with per-slot threshold overrides
    /// applied after the reset — the audit backend's deviation hook.
    pub fn run_with_thresholds(&mut self, overrides: &[(usize, u32)], seed: u64) -> EconomyOutcome {
        self.reset();
        for &(slot, threshold) in overrides {
            self.set_threshold(slot, threshold);
        }
        self.simulate_rounds(seed)
    }

    /// The round loop proper: simulates `config.rounds` rounds from the
    /// engine's current state. Allocation-free.
    fn simulate_rounds(&mut self, seed: u64) -> EconomyOutcome {
        let n = self.holdings.len();
        let config = self.config.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut unserved = 0u64;
        let mut departures = 0u64;
        let mut money: u64 = self.holdings.iter().map(|&h| h as u64).sum();
        let mut pool_size = StreamingStats::new();
        for _ in 0..config.rounds {
            pool_size.push(self.paid_pool.len() as f64);
            let requester = rng.random_range(0..n);
            let can_pay = self.holdings[requester] > 0;
            let paid_len = if can_pay { self.paid_pool.len() } else { 0 };
            let total = paid_len + self.altruist_pool.len();
            let requester_in_union = (can_pay && self.paid_pos[requester] != NOT_POOLED)
                || self.class[requester] == ALTRUIST;
            if total == 0 || (total == 1 && requester_in_union) {
                unserved += 1;
            } else {
                let volunteer = loop {
                    let idx = rng.random_range(0..total);
                    let v = if idx < paid_len {
                        self.paid_pool[idx] as usize
                    } else {
                        self.altruist_pool[idx - paid_len] as usize
                    };
                    if v != requester {
                        break v;
                    }
                };
                self.utility[requester] += config.benefit;
                self.utility[volunteer] -= config.cost;
                if self.class[volunteer] != ALTRUIST {
                    // the requester pays one scrip for the service
                    self.holdings[requester] -= 1;
                    self.holdings[volunteer] += 1;
                    if self.class[requester] == RATIONAL {
                        self.sync_membership(requester);
                    }
                    if self.class[volunteer] == RATIONAL {
                        self.sync_membership(volunteer);
                    }
                }
            }
            // churn draws nothing when disabled, so zero-churn streams
            // match configs that never had the feature
            if config.churn > 0.0 && rng.random_bool(config.churn) {
                let slot = rng.random_range(0..n);
                money -= self.holdings[slot] as u64;
                money += config.newcomer_scrip as u64;
                self.holdings[slot] = config.newcomer_scrip;
                departures += 1;
                if self.class[slot] == RATIONAL {
                    self.sync_membership(slot);
                }
            }
        }
        self.rounds_run = config.rounds;
        self.summarize(unserved, departures, money, pool_size)
    }

    /// Folds the per-slot state into the aggregate outcome.
    fn summarize(
        &self,
        unserved: u64,
        departures: u64,
        money: u64,
        pool_size: StreamingStats,
    ) -> EconomyOutcome {
        let config = &self.config;
        let rounds = config.rounds.max(1) as f64;
        let mut class_total = [0.0f64; 3];
        let hist_hi = f64::from(config.threshold.max(config.initial_scrip) * 2 + 2);
        let mut hist = Histogram::new(0.0, hist_hi, 20);
        for slot in 0..self.holdings.len() {
            class_total[self.class[slot] as usize] += self.utility[slot];
            hist.record(f64::from(self.holdings[slot]));
        }
        let mean = |total: f64, count: usize| {
            if count == 0 {
                0.0
            } else {
                total / count as f64 / rounds
            }
        };
        EconomyOutcome {
            efficiency: 1.0 - unserved as f64 / rounds,
            unserved,
            rounds: config.rounds,
            departures,
            rational_utility: mean(class_total[RATIONAL as usize], config.rational),
            hoarder_utility: mean(class_total[HOARDER as usize], config.hoarders),
            altruist_utility: mean(class_total[ALTRUIST as usize], config.altruists),
            money_supply: money,
            pool_size,
            holdings_hist: hist,
            resident_bytes: self.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, ScripConfig};

    #[test]
    fn engine_matches_legacy_qualitatively() {
        // same economy parameters, same qualitative regime: a healthy
        // homogeneous threshold economy serves nearly every request
        let legacy = simulate(&ScripConfig::homogeneous(200, 10, 50_000), 7);
        let mut engine = Economy::new(&EconomyConfig::homogeneous(200, 10, 50_000));
        let outcome = engine.run(7);
        assert!(legacy.efficiency > 0.9);
        assert!(outcome.efficiency > 0.9, "engine {}", outcome.efficiency);
        assert!((outcome.efficiency - legacy.efficiency).abs() < 0.05);
    }

    #[test]
    fn scrip_is_conserved_without_churn() {
        let config = EconomyConfig {
            hoarders: 10,
            altruists: 5,
            ..EconomyConfig::homogeneous(100, 8, 20_000)
        };
        let mut engine = Economy::new(&config);
        let outcome = engine.run(3);
        let expected = config.total_agents() as u64 * config.initial_scrip as u64;
        assert_eq!(outcome.money_supply, expected);
        assert_eq!(outcome.departures, 0);
        // the histogram saw every agent
        assert_eq!(outcome.holdings_hist.total(), config.total_agents() as u64);
    }

    #[test]
    fn churn_moves_the_money_supply_and_counts_departures() {
        let config = EconomyConfig {
            churn: 0.05,
            newcomer_scrip: 1,
            ..EconomyConfig::homogeneous(100, 8, 20_000)
        };
        let mut engine = Economy::new(&config);
        let outcome = engine.run(11);
        assert!(outcome.departures > 0);
        // newcomers bring less than the initial supply, so money drains
        let initial = config.total_agents() as u64 * config.initial_scrip as u64;
        assert!(outcome.money_supply < initial);
    }

    #[test]
    fn zero_churn_stream_matches_runs_without_the_feature() {
        // churn == 0.0 must not consume RNG draws: the outcome equals a
        // config that differs only in churn-related knobs
        let a = Economy::new(&EconomyConfig::homogeneous(60, 6, 5_000)).run(21);
        let b = Economy::new(&EconomyConfig {
            newcomer_scrip: 999,
            ..EconomyConfig::homogeneous(60, 6, 5_000)
        })
        .run(21);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_deterministic_and_reusable() {
        let config = EconomyConfig {
            hoarders: 7,
            churn: 0.01,
            ..EconomyConfig::homogeneous(80, 5, 10_000)
        };
        let mut engine = Economy::new(&config);
        let first = engine.run(5);
        let again = engine.run(5);
        assert_eq!(first, again);
        let other = engine.run(6);
        assert_ne!(first, other);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let config = EconomyConfig {
            hoarders: 20,
            altruists: 10,
            churn: 0.02,
            ..EconomyConfig::homogeneous(500, 8, 30_000)
        };
        let mut engine = Economy::new(&config);
        let before = engine.resident_bytes();
        let outcome = engine.run(9);
        assert_eq!(
            engine.resident_bytes(),
            before,
            "the round loop must reuse construction-time buffers"
        );
        assert_eq!(outcome.resident_bytes, before);
        engine.run(10);
        assert_eq!(engine.resident_bytes(), before);
    }

    #[test]
    fn zero_threshold_economy_collapses() {
        let mut engine = Economy::new(&EconomyConfig::homogeneous(50, 0, 2_000));
        let outcome = engine.run(3);
        assert_eq!(outcome.efficiency, 0.0);
        assert_eq!(outcome.unserved, 2_000);
    }

    #[test]
    fn altruists_serve_even_a_broke_economy() {
        let config = EconomyConfig {
            altruists: 10,
            initial_scrip: 0,
            newcomer_scrip: 0,
            ..EconomyConfig::homogeneous(40, 0, 5_000)
        };
        let mut engine = Economy::new(&config);
        let outcome = engine.run(13);
        // altruists serve everyone for free; nobody ever pays
        assert!(outcome.efficiency > 0.99, "got {}", outcome.efficiency);
        assert_eq!(outcome.money_supply, 0);
        assert!(outcome.altruist_utility < 0.0);
    }

    #[test]
    fn set_threshold_deviates_one_slot() {
        let config = EconomyConfig::homogeneous(50, 8, 20_000);
        let mut engine = Economy::new(&config);
        let base = engine.run(17);
        // a zero-threshold deviator never volunteers, never earns scrip,
        // and ends up served less often than conformers
        let deviant = config.rational_base(); // first rational slot
        let outcome = engine.run_with_thresholds(&[(deviant, 0)], 17);
        assert!(outcome.efficiency <= base.efficiency + 0.05);
        let dev_utility = engine.average_utility(deviant);
        let conformer = engine.average_utility(deviant + 1);
        assert!(
            conformer > dev_utility,
            "conformer {conformer} vs deviant {dev_utility}"
        );
    }

    #[test]
    fn hoarders_accumulate_scrip() {
        let config = EconomyConfig {
            hoarders: 5,
            ..EconomyConfig::homogeneous(60, 6, 40_000)
        };
        let mut engine = Economy::new(&config);
        engine.run(23);
        // hoarder slots are 0..5; they volunteer forever and never spend
        // their way back down, so they hold more than rational agents
        let hoard: u32 = (0..5).map(|s| engine.holdings[s]).sum();
        let rational: u32 = (5..10).map(|s| engine.holdings[s]).sum();
        assert!(hoard > rational, "hoard {hoard} vs rational {rational}");
    }
}
