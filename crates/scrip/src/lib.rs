//! # bne-scrip
//!
//! A scrip-system economy simulator, reproducing the discussion in the
//! paper's conclusions (Kash, Friedman and Halpern, *Optimizing scrip
//! systems: efficiency, crashes, hoarders, and altruists*, EC 2007).
//!
//! Agents perform work for one another in exchange for scrip. Each round a
//! random agent needs a service worth `benefit`; one of the agents willing
//! to volunteer (chosen uniformly) performs it at cost `cost` and receives
//! one unit of scrip from the requester. Agents follow **threshold
//! strategies**: volunteer exactly when their scrip holdings are below their
//! threshold. Two kinds of "standardly irrational" agents from the paper are
//! modelled:
//!
//! * **hoarders** — volunteer no matter how much scrip they already have
//!   (they accumulate scrip and drain it from circulation);
//! * **altruists** — provide the service for free (the requester keeps her
//!   scrip), the analogue of posting music on Kazaa.
//!
//! The simulator measures *efficiency* — the fraction of requests that get
//! satisfied — and lets the experiments show how thresholds, hoarders and
//! altruists move it, plus a best-response check that a common threshold is
//! an (approximate) equilibrium.
//!
//! Two generations of simulator coexist:
//!
//! * [`simulate`] — the legacy O(n)-per-round reference loop, kept for the
//!   small-population experiments and as the behavioural baseline;
//! * [`economy`] — the scaled [`Economy`] engine: flat index-based agent
//!   state, O(1) rounds via incrementally maintained volunteer pools,
//!   arrival/departure churn, streaming aggregates, built for 10^6+
//!   agents. [`audit`] exposes it as a `bne-games` payoff backend so the
//!   sampled deviation oracle can audit its equilibrium claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod economy;
pub mod scenario;

pub use audit::ThresholdAuditBackend;
pub use economy::{Economy, EconomyConfig, EconomyOutcome};
pub use scenario::{economy_grid, EconomyScenario, EconomyStats};

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// How an agent behaves in the scrip economy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgentKind {
    /// Rational threshold agent: volunteers only while her scrip holdings
    /// are strictly below the threshold.
    Threshold {
        /// The scrip level at which the agent stops volunteering.
        threshold: u64,
    },
    /// Volunteers regardless of holdings (accumulates scrip forever).
    Hoarder,
    /// Provides service for free: volunteers always and never takes payment.
    Altruist,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct ScripConfig {
    /// Behaviour of every agent.
    pub agents: Vec<AgentKind>,
    /// Initial scrip per agent.
    pub initial_scrip: u64,
    /// Utility gained by a requester whose request is served.
    pub benefit: f64,
    /// Utility lost by the volunteer who performs the work.
    pub cost: f64,
    /// Number of rounds to simulate.
    pub rounds: usize,
}

impl ScripConfig {
    /// A homogeneous population of `n` threshold agents.
    pub fn homogeneous(n: usize, threshold: u64, rounds: usize) -> Self {
        ScripConfig {
            agents: vec![AgentKind::Threshold { threshold }; n],
            initial_scrip: threshold / 2 + 1,
            benefit: 1.0,
            cost: 0.2,
            rounds,
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScripOutcome {
    /// Fraction of requests that found a volunteer.
    pub efficiency: f64,
    /// Total utility accumulated by each agent.
    pub utilities: Vec<f64>,
    /// Final scrip holdings of each agent.
    pub holdings: Vec<u64>,
    /// Number of requests that went unserved.
    pub unserved: usize,
    /// Number of rounds simulated.
    pub rounds: usize,
}

impl ScripOutcome {
    /// Average utility of the agents for which `filter` returns true.
    pub fn average_utility<F: Fn(usize) -> bool>(&self, filter: F) -> f64 {
        let selected: Vec<f64> = self
            .utilities
            .iter()
            .enumerate()
            .filter(|(i, _)| filter(*i))
            .map(|(_, u)| *u)
            .collect();
        if selected.is_empty() {
            0.0
        } else {
            selected.iter().sum::<f64>() / selected.len() as f64
        }
    }
}

/// Runs the scrip economy simulation. The RNG stream is fully determined
/// by `seed`, so independently seeded calls are independent replicas (the
/// seed used to live inside [`ScripConfig`], which silently reused one
/// stream across runs of the same configuration).
///
/// # Panics
///
/// Panics if there are fewer than two agents.
pub fn simulate(config: &ScripConfig, seed: u64) -> ScripOutcome {
    let n = config.agents.len();
    assert!(n >= 2, "the scrip economy needs at least two agents");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut holdings = vec![config.initial_scrip; n];
    let mut utilities = vec![0.0; n];
    let mut unserved = 0usize;
    for _ in 0..config.rounds {
        let requester = rng.random_range(0..n);
        // a requester must have scrip to pay, unless an altruist serves her
        let volunteers: Vec<usize> = (0..n)
            .filter(|&i| i != requester)
            .filter(|&i| match config.agents[i] {
                AgentKind::Threshold { threshold } => {
                    holdings[i] < threshold && holdings[requester] > 0
                }
                AgentKind::Hoarder => holdings[requester] > 0,
                AgentKind::Altruist => true,
            })
            .collect();
        if volunteers.is_empty() {
            unserved += 1;
            continue;
        }
        let volunteer = volunteers[rng.random_range(0..volunteers.len())];
        utilities[requester] += config.benefit;
        utilities[volunteer] -= config.cost;
        match config.agents[volunteer] {
            AgentKind::Altruist => {}
            _ => {
                holdings[requester] -= 1;
                holdings[volunteer] += 1;
            }
        }
    }
    ScripOutcome {
        efficiency: 1.0 - unserved as f64 / config.rounds as f64,
        utilities,
        holdings,
        unserved,
        rounds: config.rounds,
    }
}

/// Estimates whether the common threshold `threshold` is a best response for
/// agent 0 when everyone else uses it: compares agent 0's utility at the
/// common threshold against the candidate deviations in `alternatives`,
/// averaging over `trials` runs seeded `seed, seed + 1, …` (the same seeds
/// for every candidate — common random numbers). Returns
/// `(best_threshold, utilities)` with one utility entry per candidate (the
/// common threshold is evaluated too).
pub fn threshold_best_response(
    n: usize,
    threshold: u64,
    alternatives: &[u64],
    rounds: usize,
    trials: usize,
    seed: u64,
) -> (u64, Vec<(u64, f64)>) {
    let mut results = Vec::new();
    let mut candidates = vec![threshold];
    candidates.extend_from_slice(alternatives);
    for &candidate in &candidates {
        let mut total = 0.0;
        for trial in 0..trials {
            let mut config = ScripConfig::homogeneous(n, threshold, rounds);
            config.agents[0] = AgentKind::Threshold {
                threshold: candidate,
            };
            total += simulate(&config, seed.wrapping_add(trial as u64)).utilities[0];
        }
        results.push((candidate, total / trials as f64));
    }
    let best = results
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("utilities are finite"))
        .expect("at least one candidate")
        .0;
    (best, results)
}

/// One row of the E11 sweep: efficiency as the population mix changes.
#[derive(Debug, Clone, PartialEq)]
pub struct MixRow {
    /// Number of hoarders in the population.
    pub hoarders: usize,
    /// Number of altruists in the population.
    pub altruists: usize,
    /// Measured efficiency.
    pub efficiency: f64,
    /// Average utility of the rational threshold agents.
    pub rational_utility: f64,
}

/// Sweeps the number of hoarders and altruists in an otherwise homogeneous
/// threshold population (experiment E11).
pub fn mix_sweep(
    n: usize,
    threshold: u64,
    hoarder_counts: &[usize],
    altruist_counts: &[usize],
    rounds: usize,
    seed: u64,
) -> Vec<MixRow> {
    let mut rows = Vec::new();
    for &hoarders in hoarder_counts {
        for &altruists in altruist_counts {
            if hoarders + altruists >= n {
                continue;
            }
            let mut agents = vec![AgentKind::Threshold { threshold }; n];
            for a in agents.iter_mut().take(hoarders) {
                *a = AgentKind::Hoarder;
            }
            for a in agents.iter_mut().skip(hoarders).take(altruists) {
                *a = AgentKind::Altruist;
            }
            let config = ScripConfig {
                agents,
                initial_scrip: threshold / 2 + 1,
                benefit: 1.0,
                cost: 0.2,
                rounds,
            };
            let outcome = simulate(&config, seed);
            let rational_utility = outcome.average_utility(|i| i >= hoarders + altruists);
            rows.push(MixRow {
                hoarders,
                altruists,
                efficiency: outcome.efficiency,
                rational_utility,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_threshold_population_is_efficient() {
        let config = ScripConfig::homogeneous(50, 10, 20_000);
        let outcome = simulate(&config, 7);
        assert!(
            outcome.efficiency > 0.9,
            "efficiency {}",
            outcome.efficiency
        );
        // scrip is conserved (no altruists in the mix)
        let total: u64 = outcome.holdings.iter().sum();
        assert_eq!(total, 50 * config.initial_scrip);
    }

    #[test]
    fn zero_threshold_population_collapses() {
        // nobody ever volunteers: every request goes unserved
        let config = ScripConfig::homogeneous(20, 0, 2_000);
        let outcome = simulate(&config, 3);
        assert_eq!(outcome.efficiency, 0.0);
        assert_eq!(outcome.unserved, 2_000);
    }

    #[test]
    fn hoarders_drain_scrip_and_hurt_efficiency() {
        let rounds = 30_000;
        let baseline = simulate(&ScripConfig::homogeneous(40, 5, rounds), 11);
        let rows = mix_sweep(40, 5, &[0, 15], &[0], rounds, 11);
        let with_hoarders = rows.iter().find(|r| r.hoarders == 15).expect("row exists");
        // hoarders soak up scrip, so rational agents increasingly cannot pay
        assert!(
            with_hoarders.efficiency < baseline.efficiency,
            "hoarders {} vs baseline {}",
            with_hoarders.efficiency,
            baseline.efficiency
        );
    }

    #[test]
    fn altruists_prop_up_efficiency_even_when_scrip_runs_out() {
        // with a tiny threshold the pure-threshold economy is inefficient;
        // adding altruists (who serve for free) repairs it
        let rounds = 20_000;
        let rows = mix_sweep(30, 1, &[0], &[0, 10], rounds, 13);
        let without = rows.iter().find(|r| r.altruists == 0).unwrap();
        let with = rows.iter().find(|r| r.altruists == 10).unwrap();
        assert!(with.efficiency > without.efficiency);
    }

    #[test]
    fn moderate_threshold_beats_degenerate_ones_as_a_response() {
        // when everyone uses threshold 8, responding with threshold 0 (never
        // volunteer → never earn scrip → can rarely buy service) is worse
        let (_, results) = threshold_best_response(25, 8, &[0], 8_000, 3, 1_000);
        let common = results.iter().find(|(t, _)| *t == 8).unwrap().1;
        let zero = results.iter().find(|(t, _)| *t == 0).unwrap().1;
        assert!(common > zero, "common {common} vs zero {zero}");
    }

    #[test]
    fn average_utility_filter_works() {
        let outcome = ScripOutcome {
            efficiency: 1.0,
            utilities: vec![1.0, 3.0, 5.0],
            holdings: vec![0, 0, 0],
            unserved: 0,
            rounds: 1,
        };
        assert_eq!(outcome.average_utility(|i| i > 0), 4.0);
        assert_eq!(outcome.average_utility(|_| false), 0.0);
    }
}
