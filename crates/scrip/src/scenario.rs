//! The scrip economy as a [`bne_sim::Scenario`]: grid sweeps of seeded
//! replicas with streaming aggregation, replacing ad-hoc loops around
//! [`crate::simulate`]. The scaled engine gets its own scenario
//! ([`EconomyScenario`]) so million-agent sweeps run through the same
//! runner with bit-identical sequential/parallel aggregates.

use crate::economy::{Economy, EconomyConfig, EconomyOutcome};
use crate::{simulate, AgentKind, ScripConfig};
use bne_sim::{Histogram, Merge, Scenario, StreamingStats};

/// Streaming aggregate of scrip replicas (one grid cell).
#[derive(Debug, Clone, PartialEq)]
pub struct ScripStats {
    /// Fraction of requests served.
    pub efficiency: StreamingStats,
    /// Average utility of the rational threshold agents.
    pub rational_utility: StreamingStats,
    /// Requests that went unserved.
    pub unserved: StreamingStats,
    /// Distribution of per-replica efficiency over `[0, 1)` (20 buckets;
    /// an all-served replica lands in the overflow counter).
    pub efficiency_hist: Histogram,
}

impl ScripStats {
    /// Summarizes one replica.
    pub fn of_outcome(config: &ScripConfig, outcome: &crate::ScripOutcome) -> Self {
        let rational =
            outcome.average_utility(|i| matches!(config.agents[i], AgentKind::Threshold { .. }));
        let mut hist = Histogram::new(0.0, 1.0, 20);
        hist.record(outcome.efficiency);
        ScripStats {
            efficiency: StreamingStats::of(outcome.efficiency),
            rational_utility: StreamingStats::of(rational),
            unserved: StreamingStats::of(outcome.unserved as f64),
            efficiency_hist: hist,
        }
    }
}

impl Merge for ScripStats {
    fn merge(&mut self, other: &Self) {
        self.efficiency.merge(&other.efficiency);
        self.rational_utility.merge(&other.rational_utility);
        self.unserved.merge(&other.unserved);
        self.efficiency_hist.merge(&other.efficiency_hist);
    }
}

/// The scrip economy scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScripScenario;

impl Scenario for ScripScenario {
    type Config = ScripConfig;
    type Outcome = ScripStats;

    fn run(&self, config: &ScripConfig, seed: u64) -> ScripStats {
        ScripStats::of_outcome(config, &simulate(config, seed))
    }
}

/// Grid varying the money supply (initial scrip per agent) in an otherwise
/// homogeneous threshold economy — the paper's "how much money should the
/// system print" question.
pub fn money_supply_grid(
    n: usize,
    threshold: u64,
    supplies: &[u64],
    rounds: usize,
) -> Vec<ScripConfig> {
    supplies
        .iter()
        .map(|&initial_scrip| {
            let mut config = ScripConfig::homogeneous(n, threshold, rounds);
            config.initial_scrip = initial_scrip;
            config
        })
        .collect()
}

/// Grid varying the population size of a homogeneous threshold economy
/// (replica sweeps along this grid give the money-supply curve over `n`).
pub fn population_grid(ns: &[usize], threshold: u64, rounds: usize) -> Vec<ScripConfig> {
    ns.iter()
        .map(|&n| ScripConfig::homogeneous(n, threshold, rounds))
        .collect()
}

/// Streaming aggregate of scaled-economy replicas (one grid cell).
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyStats {
    /// Fraction of requests served.
    pub efficiency: StreamingStats,
    /// Mean per-round utility of the rational agents.
    pub rational_utility: StreamingStats,
    /// Mean per-round utility of the hoarders.
    pub hoarder_utility: StreamingStats,
    /// Final scrip in circulation (churn moves it between replicas' ends).
    pub money_supply: StreamingStats,
    /// Churn departures per replica.
    pub departures: StreamingStats,
    /// Paid-pool size over rounds, pooled across replicas.
    pub pool_size: StreamingStats,
    /// Final holdings distribution pooled across replicas.
    pub holdings_hist: Histogram,
    /// Largest engine footprint seen across replicas, in bytes.
    pub resident_bytes: usize,
}

impl EconomyStats {
    /// Summarizes one replica.
    pub fn of_outcome(outcome: &EconomyOutcome) -> Self {
        EconomyStats {
            efficiency: StreamingStats::of(outcome.efficiency),
            rational_utility: StreamingStats::of(outcome.rational_utility),
            hoarder_utility: StreamingStats::of(outcome.hoarder_utility),
            money_supply: StreamingStats::of(outcome.money_supply as f64),
            departures: StreamingStats::of(outcome.departures as f64),
            pool_size: outcome.pool_size.clone(),
            holdings_hist: outcome.holdings_hist.clone(),
            resident_bytes: outcome.resident_bytes,
        }
    }
}

impl Merge for EconomyStats {
    fn merge(&mut self, other: &Self) {
        self.efficiency.merge(&other.efficiency);
        self.rational_utility.merge(&other.rational_utility);
        self.hoarder_utility.merge(&other.hoarder_utility);
        self.money_supply.merge(&other.money_supply);
        self.departures.merge(&other.departures);
        self.pool_size.merge(&other.pool_size);
        self.holdings_hist.merge(&other.holdings_hist);
        self.resident_bytes = self.resident_bytes.max(other.resident_bytes);
    }
}

/// The scaled scrip economy as a long-lived service-style scenario: each
/// replica boots an engine, runs the configured horizon, and reports
/// streaming aggregates only.
#[derive(Debug, Clone, Copy, Default)]
pub struct EconomyScenario;

impl Scenario for EconomyScenario {
    type Config = EconomyConfig;
    type Outcome = EconomyStats;

    fn run(&self, config: &EconomyConfig, seed: u64) -> EconomyStats {
        EconomyStats::of_outcome(&Economy::new(config).run(seed))
    }
}

/// The e24 grid: money supply × churn rate × hoarder fraction over a
/// population of `n` agents at the common `threshold`. Hoarders replace
/// rational agents, keeping the population size fixed.
pub fn economy_grid(
    n: usize,
    threshold: u32,
    supplies: &[u32],
    churns: &[f64],
    hoarder_fracs: &[f64],
    rounds: u64,
) -> Vec<EconomyConfig> {
    let mut grid = Vec::new();
    for &initial_scrip in supplies {
        for &churn in churns {
            for &frac in hoarder_fracs {
                let hoarders = ((n as f64 * frac).round() as usize).min(n.saturating_sub(2));
                grid.push(EconomyConfig {
                    rational: n - hoarders,
                    hoarders,
                    altruists: 0,
                    threshold,
                    initial_scrip,
                    newcomer_scrip: initial_scrip,
                    benefit: 1.0,
                    cost: 0.2,
                    churn,
                    rounds,
                });
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_sim::{canonical_fold, derive_seed, SimRunner};

    #[test]
    fn scenario_replica_matches_direct_simulate() {
        let config = ScripConfig::homogeneous(20, 6, 2_000);
        let stats = ScripScenario.run(&config, 77);
        let outcome = simulate(&config, 77);
        assert_eq!(stats.efficiency.mean(), outcome.efficiency);
        assert_eq!(stats.unserved.mean(), outcome.unserved as f64);
        assert_eq!(stats.efficiency.count(), 1);
    }

    #[test]
    fn engine_aggregate_is_bit_identical_to_legacy_loop() {
        let grid = money_supply_grid(16, 6, &[1, 3, 6], 1_000);
        let runner = SimRunner::new(20, 5);
        let engine = runner.run_sequential(&ScripScenario, &grid);
        for (cell, config) in grid.iter().enumerate() {
            let legacy = canonical_fold((0..20).map(|r| {
                ScripStats::of_outcome(config, &simulate(config, derive_seed(5, cell as u64, r)))
            }))
            .expect("non-empty");
            assert_eq!(engine[cell].outcome, legacy);
        }
    }

    #[test]
    fn economy_scenario_replica_matches_direct_run() {
        let config = EconomyConfig::homogeneous(100, 6, 5_000);
        let stats = EconomyScenario.run(&config, 31);
        let direct = Economy::new(&config).run(31);
        assert_eq!(stats.efficiency.mean(), direct.efficiency);
        assert_eq!(stats.resident_bytes, direct.resident_bytes);
        assert_eq!(stats.holdings_hist, direct.holdings_hist);
    }

    #[test]
    fn economy_grid_covers_the_full_product() {
        let grid = economy_grid(100, 8, &[2, 5], &[0.0, 0.01], &[0.0, 0.1], 1_000);
        assert_eq!(grid.len(), 8);
        assert!(grid.iter().all(|c| c.total_agents() == 100));
        let hoarded = grid.iter().filter(|c| c.hoarders == 10).count();
        assert_eq!(hoarded, 4);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn economy_sweep_is_bit_identical_seq_vs_par() {
        let grid = economy_grid(60, 6, &[3], &[0.0, 0.02], &[0.0, 0.1], 2_000);
        let runner = SimRunner::new(6, 41);
        let seq = runner.run_sequential(&EconomyScenario, &grid);
        for workers in [2, 3] {
            let par = runner.run_parallel_with(workers, &EconomyScenario, &grid);
            assert_eq!(seq, par, "workers {workers}");
        }
    }

    #[test]
    fn money_supply_moves_efficiency() {
        // Too little scrip starves the economy relative to a moderate
        // supply; far above the threshold everyone stops volunteering.
        let grid = money_supply_grid(30, 8, &[0, 5, 30], 8_000);
        let results = SimRunner::new(8, 11).run_sequential(&ScripScenario, &grid);
        let starved = results[0].outcome.efficiency.mean();
        let healthy = results[1].outcome.efficiency.mean();
        let flooded = results[2].outcome.efficiency.mean();
        assert!(healthy > starved, "healthy {healthy} vs starved {starved}");
        assert!(healthy > flooded, "healthy {healthy} vs flooded {flooded}");
    }
}
