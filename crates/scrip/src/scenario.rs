//! The scrip economy as a [`bne_sim::Scenario`]: grid sweeps of seeded
//! replicas with streaming aggregation, replacing ad-hoc loops around
//! [`crate::simulate`].

use crate::{simulate, AgentKind, ScripConfig};
use bne_sim::{Histogram, Merge, Scenario, StreamingStats};

/// Streaming aggregate of scrip replicas (one grid cell).
#[derive(Debug, Clone, PartialEq)]
pub struct ScripStats {
    /// Fraction of requests served.
    pub efficiency: StreamingStats,
    /// Average utility of the rational threshold agents.
    pub rational_utility: StreamingStats,
    /// Requests that went unserved.
    pub unserved: StreamingStats,
    /// Distribution of per-replica efficiency over `[0, 1)` (20 buckets;
    /// an all-served replica lands in the overflow counter).
    pub efficiency_hist: Histogram,
}

impl ScripStats {
    /// Summarizes one replica.
    pub fn of_outcome(config: &ScripConfig, outcome: &crate::ScripOutcome) -> Self {
        let rational =
            outcome.average_utility(|i| matches!(config.agents[i], AgentKind::Threshold { .. }));
        let mut hist = Histogram::new(0.0, 1.0, 20);
        hist.record(outcome.efficiency);
        ScripStats {
            efficiency: StreamingStats::of(outcome.efficiency),
            rational_utility: StreamingStats::of(rational),
            unserved: StreamingStats::of(outcome.unserved as f64),
            efficiency_hist: hist,
        }
    }
}

impl Merge for ScripStats {
    fn merge(&mut self, other: &Self) {
        self.efficiency.merge(&other.efficiency);
        self.rational_utility.merge(&other.rational_utility);
        self.unserved.merge(&other.unserved);
        self.efficiency_hist.merge(&other.efficiency_hist);
    }
}

/// The scrip economy scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScripScenario;

impl Scenario for ScripScenario {
    type Config = ScripConfig;
    type Outcome = ScripStats;

    fn run(&self, config: &ScripConfig, seed: u64) -> ScripStats {
        ScripStats::of_outcome(config, &simulate(config, seed))
    }
}

/// Grid varying the money supply (initial scrip per agent) in an otherwise
/// homogeneous threshold economy — the paper's "how much money should the
/// system print" question.
pub fn money_supply_grid(
    n: usize,
    threshold: u64,
    supplies: &[u64],
    rounds: usize,
) -> Vec<ScripConfig> {
    supplies
        .iter()
        .map(|&initial_scrip| {
            let mut config = ScripConfig::homogeneous(n, threshold, rounds);
            config.initial_scrip = initial_scrip;
            config
        })
        .collect()
}

/// Grid varying the population size of a homogeneous threshold economy
/// (replica sweeps along this grid give the money-supply curve over `n`).
pub fn population_grid(ns: &[usize], threshold: u64, rounds: usize) -> Vec<ScripConfig> {
    ns.iter()
        .map(|&n| ScripConfig::homogeneous(n, threshold, rounds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_sim::{canonical_fold, derive_seed, SimRunner};

    #[test]
    fn scenario_replica_matches_direct_simulate() {
        let config = ScripConfig::homogeneous(20, 6, 2_000);
        let stats = ScripScenario.run(&config, 77);
        let outcome = simulate(&config, 77);
        assert_eq!(stats.efficiency.mean(), outcome.efficiency);
        assert_eq!(stats.unserved.mean(), outcome.unserved as f64);
        assert_eq!(stats.efficiency.count(), 1);
    }

    #[test]
    fn engine_aggregate_is_bit_identical_to_legacy_loop() {
        let grid = money_supply_grid(16, 6, &[1, 3, 6], 1_000);
        let runner = SimRunner::new(20, 5);
        let engine = runner.run_sequential(&ScripScenario, &grid);
        for (cell, config) in grid.iter().enumerate() {
            let legacy = canonical_fold((0..20).map(|r| {
                ScripStats::of_outcome(config, &simulate(config, derive_seed(5, cell as u64, r)))
            }))
            .expect("non-empty");
            assert_eq!(engine[cell].outcome, legacy);
        }
    }

    #[test]
    fn money_supply_moves_efficiency() {
        // Too little scrip starves the economy relative to a moderate
        // supply; far above the threshold everyone stops volunteering.
        let grid = money_supply_grid(30, 8, &[0, 5, 30], 8_000);
        let results = SimRunner::new(8, 11).run_sequential(&ScripScenario, &grid);
        let starved = results[0].outcome.efficiency.mean();
        let healthy = results[1].outcome.efficiency.mean();
        let flooded = results[2].outcome.efficiency.mean();
        assert!(healthy > starved, "healthy {healthy} vs starved {starved}");
        assert!(healthy > flooded, "healthy {healthy} vs flooded {flooded}");
    }
}
