//! The scrip economy as a [`PayoffBackend`]: threshold strategies as
//! actions, per-round average utility as payoff, so the sampled oracle
//! can audit "the common threshold is an ε-equilibrium" at any scale.
//!
//! The induced game has one player per **rational** slot of the economy
//! (hoarders and altruists are environment, not players — they are the
//! paper's "standardly irrational" agents), and one action per candidate
//! threshold. A payoff query runs the full economy with the queried
//! threshold assignment and reads the player's per-round average utility,
//! averaged over a fixed set of seeded trials — **common random numbers**,
//! so two queries that differ only in the deviation see identical request
//! arrivals and the gain estimate is low-variance. Queries are therefore
//! deterministic, as the [`PayoffBackend`] contract requires.
//!
//! Per-round utilities are bounded a priori — a slot can at best be served
//! every round (`benefit`) and at worst volunteer every round (`-cost`) —
//! which gives the sampled oracle's Hoeffding bound a tight payoff range
//! without scanning anything.
//!
//! Cost model: one payoff query is `trials` full economy runs, so audits
//! should batch with [`PayoffBackend::payoffs_into`] (one set of runs
//! yields *every* player's base payoff; the
//! [`SampledOracle`](bne_games::sampled::SampledOracle) does this for the
//! base profile automatically).

use crate::economy::{Economy, EconomyConfig};
use bne_games::backend::{PayoffBackend, ProfileView};
use bne_games::{ActionId, PlayerId, Utility};

/// The threshold-strategy audit game over a scrip economy.
#[derive(Debug, Clone)]
pub struct ThresholdAuditBackend {
    config: EconomyConfig,
    candidates: Vec<u32>,
    trials: usize,
    sim_seed: u64,
}

impl ThresholdAuditBackend {
    /// Builds the audit game: `candidates` is the action set (candidate
    /// thresholds, must contain the config's common threshold so the
    /// base profile exists), `trials` runs are averaged per query with
    /// seeds `sim_seed, sim_seed + 1, …` shared across queries.
    ///
    /// # Panics
    ///
    /// Panics if there are no rational agents, no candidates, zero
    /// trials, or the common threshold is not a candidate.
    pub fn new(config: EconomyConfig, candidates: Vec<u32>, trials: usize, sim_seed: u64) -> Self {
        assert!(config.rational > 0, "the audit game needs rational players");
        assert!(
            !candidates.is_empty(),
            "need at least one candidate threshold"
        );
        assert!(trials > 0, "need at least one trial per query");
        assert!(
            candidates.contains(&config.threshold),
            "the common threshold {} must be a candidate",
            config.threshold
        );
        ThresholdAuditBackend {
            config,
            candidates,
            trials,
            sim_seed,
        }
    }

    /// The base profile: every rational player at the common threshold.
    pub fn base_profile(&self) -> Vec<ActionId> {
        let common = self
            .candidates
            .iter()
            .position(|&t| t == self.config.threshold)
            .expect("checked at construction");
        vec![common; self.config.rational]
    }

    /// The candidate threshold set (the action labels).
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// The audited economy configuration.
    pub fn config(&self) -> &EconomyConfig {
        &self.config
    }

    /// Runs the economy under `view`'s threshold assignment, accumulating
    /// each trial's per-slot average utilities through `sink(player,
    /// per-round utility)` — the shared core of both query paths. Only
    /// deviations from the common threshold are materialized as engine
    /// overrides, so the override list stays as small as the coalition.
    fn run_view<F: FnMut(PlayerId, f64)>(&self, view: &ProfileView<'_>, mut sink: F) {
        let base = self.config.rational_base();
        let mut overrides: Vec<(usize, u32)> = Vec::with_capacity(view.overrides().len());
        for p in 0..self.config.rational {
            let t = self.candidates[view.action(p)];
            if t != self.config.threshold {
                overrides.push((base + p, t));
            }
        }
        let mut economy = Economy::new(&self.config);
        for trial in 0..self.trials {
            economy.run_with_thresholds(&overrides, self.sim_seed.wrapping_add(trial as u64));
            for p in 0..self.config.rational {
                sink(p, economy.average_utility(base + p));
            }
        }
    }
}

impl PayoffBackend for ThresholdAuditBackend {
    fn num_players(&self) -> usize {
        self.config.rational
    }

    fn num_actions(&self, _player: PlayerId) -> usize {
        self.candidates.len()
    }

    fn payoff(&self, player: PlayerId, view: &ProfileView<'_>) -> Utility {
        let mut total = 0.0;
        self.run_view(view, |p, u| {
            if p == player {
                total += u;
            }
        });
        total / self.trials as f64
    }

    fn payoffs_into(&self, view: &ProfileView<'_>, out: &mut [Utility]) {
        out.fill(0.0);
        self.run_view(view, |p, u| out[p] += u);
        for u in out.iter_mut() {
            *u /= self.trials as f64;
        }
    }

    fn payoff_bounds(&self) -> (Utility, Utility) {
        // a slot can at best be served every round, at worst work for
        // free every round
        (-self.config.cost, self.config.benefit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::sampled::{AuditSpec, SampledOracle};

    fn small_config() -> EconomyConfig {
        EconomyConfig::homogeneous(30, 8, 6_000)
    }

    #[test]
    fn base_profile_points_at_the_common_threshold() {
        let backend = ThresholdAuditBackend::new(small_config(), vec![0, 4, 8, 16], 2, 90);
        assert_eq!(backend.base_profile(), vec![2; 30]);
        assert_eq!(backend.num_players(), 30);
        assert_eq!(backend.num_actions(0), 4);
        assert_eq!(backend.payoff_bounds(), (-0.2, 1.0));
    }

    #[test]
    fn queries_are_deterministic_and_batched_reads_match() {
        let backend = ThresholdAuditBackend::new(small_config(), vec![0, 8], 2, 90);
        let base = backend.base_profile();
        let view = ProfileView::of_base(&base);
        let mut batch = vec![0.0; 30];
        backend.payoffs_into(&view, &mut batch);
        for p in [0usize, 7, 29] {
            assert_eq!(backend.payoff(p, &view), batch[p], "player {p}");
        }
        // deterministic: a second read is bit-identical
        let mut again = vec![0.0; 30];
        backend.payoffs_into(&view, &mut again);
        assert_eq!(batch, again);
    }

    #[test]
    fn never_volunteering_is_a_bad_deviation() {
        // threshold 0 ⇒ never volunteer ⇒ never earn scrip ⇒ rarely
        // served: the deviation payoff drops below the common payoff
        let backend = ThresholdAuditBackend::new(small_config(), vec![0, 8], 3, 90);
        let base = backend.base_profile();
        let deviation = [(4usize, 0usize)];
        let view = ProfileView::new(&base, &deviation);
        let conform = backend.payoff(4, &ProfileView::of_base(&base));
        let deviate = backend.payoff(4, &view);
        assert!(deviate < conform, "deviate {deviate} vs conform {conform}");
    }

    #[test]
    fn sampled_oracle_audits_the_economy_end_to_end() {
        let backend = ThresholdAuditBackend::new(small_config(), vec![0, 8], 2, 90);
        let oracle = SampledOracle::new(&backend);
        let base = backend.base_profile();
        // with a generous epsilon the common threshold passes a small
        // unilateral audit; the certificate carries real bounds
        let spec = AuditSpec::unilateral(0.5, 0.05, 16, 7);
        let audit = oracle.audit(&base, &spec);
        assert!(audit.accepted, "audit {:?}", audit.certificates[0]);
        let cert = &audit.certificates[0];
        assert_eq!(cert.samples, 16);
        assert!(cert.miss_mass > 0.0 && cert.miss_mass <= 1.0);
        assert!(cert.hoeffding_radius > 0.0);
    }
}
