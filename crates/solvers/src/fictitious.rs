//! Fictitious play.
//!
//! Each player repeatedly best-responds to the empirical distribution of the
//! opponents' past play. For two-player zero-sum games the empirical
//! distributions converge to a Nash equilibrium (Robinson 1951); the paper's
//! roshambo example (Example 3.3) is exactly such a game, and fictitious
//! play recovers its uniform equilibrium.

use bne_games::{ActionId, MixedProfile, MixedStrategy, NormalFormGame, PlayerId};

/// Configuration and state for fictitious play on an n-player game.
#[derive(Debug, Clone)]
pub struct FictitiousPlay {
    /// Count of how many times each player has played each action.
    counts: Vec<Vec<f64>>,
    /// Current pure action of each player (last best response).
    current: Vec<ActionId>,
    iterations: usize,
}

/// Result of running fictitious play for a number of iterations.
#[derive(Debug, Clone)]
pub struct FictitiousPlayResult {
    /// The empirical mixed strategy profile.
    pub empirical: MixedProfile,
    /// Maximum gain any player could obtain by deviating from the empirical
    /// profile (the profile is an ε-equilibrium for this ε).
    pub epsilon: f64,
    /// Number of iterations performed.
    pub iterations: usize,
}

impl FictitiousPlay {
    /// Initializes fictitious play with every player starting at action 0.
    pub fn new(game: &NormalFormGame) -> Self {
        let counts = (0..game.num_players())
            .map(|p| vec![0.0; game.num_actions(p)])
            .collect();
        FictitiousPlay {
            counts,
            current: vec![0; game.num_players()],
            iterations: 0,
        }
    }

    /// Initializes fictitious play from a specific starting profile: the
    /// starting actions are recorded as the first observation in every
    /// player's empirical distribution.
    pub fn with_start(game: &NormalFormGame, start: &[ActionId]) -> Self {
        let mut fp = Self::new(game);
        fp.current = start.to_vec();
        for (p, &a) in start.iter().enumerate() {
            fp.counts[p][a] += 1.0;
        }
        fp
    }

    /// The empirical mixed strategy of `player` so far (uniform if no play
    /// has been recorded yet).
    pub fn empirical_strategy(&self, player: PlayerId) -> MixedStrategy {
        let total: f64 = self.counts[player].iter().sum();
        if total <= 0.0 {
            return MixedStrategy::uniform(self.counts[player].len());
        }
        let probs: Vec<f64> = self.counts[player].iter().map(|c| c / total).collect();
        MixedStrategy::new(probs).expect("empirical counts form a distribution")
    }

    /// The empirical mixed profile so far.
    pub fn empirical_profile(&self, game: &NormalFormGame) -> MixedProfile {
        let strategies = (0..game.num_players())
            .map(|p| self.empirical_strategy(p))
            .collect();
        MixedProfile::new(game, strategies).expect("shapes match the game")
    }

    /// Performs one round: every player simultaneously best-responds to the
    /// opponents' empirical distributions, then the played actions are added
    /// to the counts.
    pub fn step(&mut self, game: &NormalFormGame) {
        let profile = self.empirical_profile(game);
        let mut next = Vec::with_capacity(game.num_players());
        for p in 0..game.num_players() {
            let (a, _) = profile.best_response_value(game, p);
            next.push(a);
        }
        for (p, &a) in next.iter().enumerate() {
            self.counts[p][a] += 1.0;
        }
        self.current = next;
        self.iterations += 1;
    }

    /// Runs `iterations` rounds and returns the empirical profile and its
    /// ε-equilibrium quality.
    pub fn run(mut self, game: &NormalFormGame, iterations: usize) -> FictitiousPlayResult {
        for _ in 0..iterations {
            self.step(game);
        }
        let empirical = self.empirical_profile(game);
        let epsilon = empirical.max_regret(game);
        FictitiousPlayResult {
            empirical,
            epsilon,
            iterations: self.iterations,
        }
    }
}

/// Convenience wrapper: run fictitious play from the all-zeros start for the
/// given number of iterations.
pub fn fictitious_play(game: &NormalFormGame, iterations: usize) -> FictitiousPlayResult {
    FictitiousPlay::new(game).run(game, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;

    #[test]
    fn converges_to_uniform_in_roshambo() {
        let g = classic::roshambo();
        let result = fictitious_play(&g, 5_000);
        for p in 0..2 {
            for a in 0..3 {
                let prob = result.empirical.strategy(p).prob(a);
                assert!(
                    (prob - 1.0 / 3.0).abs() < 0.05,
                    "player {p} action {a} has empirical prob {prob}"
                );
            }
        }
        assert!(result.epsilon < 0.05, "epsilon = {}", result.epsilon);
    }

    #[test]
    fn converges_in_matching_pennies() {
        let g = classic::matching_pennies();
        let result = fictitious_play(&g, 5_000);
        assert!(result.epsilon < 0.05);
        let p = result.empirical.strategy(0).prob(0);
        assert!((p - 0.5).abs() < 0.05);
    }

    #[test]
    fn absorbs_into_pure_equilibrium_in_pd() {
        let g = classic::prisoners_dilemma();
        let result = fictitious_play(&g, 200);
        // defect is strictly dominant, so play locks onto it immediately
        assert!(result.empirical.strategy(0).prob(1) > 0.99);
        assert!(result.empirical.strategy(1).prob(1) > 0.99);
        assert!(result.epsilon < 1e-6);
    }

    #[test]
    fn iteration_count_reported() {
        let g = classic::matching_pennies();
        let result = fictitious_play(&g, 17);
        assert_eq!(result.iterations, 17);
    }

    #[test]
    fn custom_start_profile_respected() {
        let g = classic::battle_of_the_sexes();
        let fp = FictitiousPlay::with_start(&g, &[1, 1]);
        let result = fp.run(&g, 500);
        // starting in the (Football, Football) equilibrium keeps play there
        assert!(result.empirical.strategy(0).prob(1) > 0.9);
        assert!(result.epsilon < 0.05);
    }

    #[test]
    fn empirical_strategy_uniform_before_play() {
        let g = classic::roshambo();
        let fp = FictitiousPlay::new(&g);
        let s = fp.empirical_strategy(0);
        assert!((s.prob(0) - 1.0 / 3.0).abs() < 1e-12);
    }
}
