//! Support enumeration for two-player games.
//!
//! For every pair of equal-sized supports, solve the indifference conditions
//! (a small linear system) and keep solutions that are valid probability
//! distributions and best responses. For nondegenerate games this finds all
//! mixed Nash equilibria; the paper's roshambo game yields its unique
//! uniform equilibrium this way.

use crate::linalg::solve_linear_system;
use bne_games::profile::for_each_subset_of_size;
use bne_games::{MixedProfile, MixedStrategy, NormalFormGame};

/// Finds mixed Nash equilibria of a two-player game by support enumeration.
///
/// Returns every equilibrium found (one per support pair that admits a valid
/// solution); duplicates arising from degenerate games are filtered by L1
/// distance.
///
/// # Panics
///
/// Panics if the game does not have exactly two players.
pub fn support_enumeration(game: &NormalFormGame) -> Vec<MixedProfile> {
    assert_eq!(
        game.num_players(),
        2,
        "support enumeration is implemented for two-player games"
    );
    let m = game.num_actions(0);
    let n = game.num_actions(1);
    let mut equilibria: Vec<MixedProfile> = Vec::new();

    for size in 1..=m.min(n) {
        let mut row_supports = Vec::new();
        for_each_subset_of_size(m, size, |s| row_supports.push(s.to_vec()));
        let mut col_supports = Vec::new();
        for_each_subset_of_size(n, size, |s| col_supports.push(s.to_vec()));

        for s1 in &row_supports {
            for s2 in &col_supports {
                if let Some(profile) = solve_support_pair(game, s1, s2) {
                    if profile.is_epsilon_nash(game, 1e-6)
                        && !equilibria.iter().any(|e| close(e, &profile))
                    {
                        equilibria.push(profile);
                    }
                }
            }
        }
    }
    equilibria
}

fn close(a: &MixedProfile, b: &MixedProfile) -> bool {
    a.strategy(0).l1_distance(b.strategy(0)) < 1e-6
        && a.strategy(1).l1_distance(b.strategy(1)) < 1e-6
}

/// Solves the indifference conditions for a specific support pair. Returns
/// `None` if the system is singular, the solution is not a distribution, or
/// an unsupported action would be strictly better.
fn solve_support_pair(game: &NormalFormGame, s1: &[usize], s2: &[usize]) -> Option<MixedProfile> {
    let k = s1.len();
    debug_assert_eq!(k, s2.len());
    let m = game.num_actions(0);
    let n = game.num_actions(1);

    // Solve for player 2's mixture y over s2 making player 1 indifferent on
    // s1: for all i in s1, sum_j y_j A[i][j] - v1 = 0 ; sum_j y_j = 1.
    let mut a = Vec::with_capacity(k + 1);
    let mut b = vec![0.0; k + 1];
    for &i in s1 {
        let mut row = Vec::with_capacity(k + 1);
        for &j in s2 {
            row.push(game.payoff(0, &[i, j]));
        }
        row.push(-1.0); // -v1
        a.push(row);
    }
    let mut last = vec![1.0; k];
    last.push(0.0);
    a.push(last);
    b[k] = 1.0;
    let sol_y = solve_linear_system(&a, &b)?;
    let y = &sol_y[..k];
    let v1 = sol_y[k];
    if y.iter().any(|p| *p < -1e-9) {
        return None;
    }

    // Solve for player 1's mixture x over s1 making player 2 indifferent on
    // s2.
    let mut a = Vec::with_capacity(k + 1);
    let mut b = vec![0.0; k + 1];
    for &j in s2 {
        let mut row = Vec::with_capacity(k + 1);
        for &i in s1 {
            row.push(game.payoff(1, &[i, j]));
        }
        row.push(-1.0); // -v2
        a.push(row);
    }
    let mut last = vec![1.0; k];
    last.push(0.0);
    a.push(last);
    b[k] = 1.0;
    let sol_x = solve_linear_system(&a, &b)?;
    let x = &sol_x[..k];
    let v2 = sol_x[k];
    if x.iter().any(|p| *p < -1e-9) {
        return None;
    }

    // Assemble full-length strategies.
    let mut full_x = vec![0.0; m];
    for (idx, &i) in s1.iter().enumerate() {
        full_x[i] = x[idx].max(0.0);
    }
    let mut full_y = vec![0.0; n];
    for (idx, &j) in s2.iter().enumerate() {
        full_y[j] = y[idx].max(0.0);
    }
    // renormalize tiny numerical drift
    let sx: f64 = full_x.iter().sum();
    let sy: f64 = full_y.iter().sum();
    if sx <= 0.0 || sy <= 0.0 {
        return None;
    }
    for p in &mut full_x {
        *p /= sx;
    }
    for p in &mut full_y {
        *p /= sy;
    }

    // Check that actions outside the supports are not profitable.
    for i in 0..m {
        if s1.contains(&i) {
            continue;
        }
        let u: f64 = s2
            .iter()
            .enumerate()
            .map(|(idx, &j)| y[idx] * game.payoff(0, &[i, j]))
            .sum();
        if u > v1 + 1e-9 {
            return None;
        }
    }
    for j in 0..n {
        if s2.contains(&j) {
            continue;
        }
        let u: f64 = s1
            .iter()
            .enumerate()
            .map(|(idx, &i)| x[idx] * game.payoff(1, &[i, j]))
            .sum();
        if u > v2 + 1e-9 {
            return None;
        }
    }

    let sx = MixedStrategy::new(full_x).ok()?;
    let sy = MixedStrategy::new(full_y).ok()?;
    MixedProfile::new(game, vec![sx, sy]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;

    #[test]
    fn finds_uniform_equilibrium_of_roshambo() {
        let g = classic::roshambo();
        let eqs = support_enumeration(&g);
        assert!(!eqs.is_empty());
        let full_support: Vec<_> = eqs
            .iter()
            .filter(|e| e.strategy(0).support().len() == 3)
            .collect();
        assert_eq!(full_support.len(), 1);
        for a in 0..3 {
            assert!((full_support[0].strategy(0).prob(a) - 1.0 / 3.0).abs() < 1e-6);
            assert!((full_support[0].strategy(1).prob(a) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn finds_mixed_equilibrium_of_matching_pennies() {
        let g = classic::matching_pennies();
        let eqs = support_enumeration(&g);
        assert_eq!(eqs.len(), 1);
        assert!((eqs[0].strategy(0).prob(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finds_pure_and_mixed_equilibria_of_battle_of_sexes() {
        let g = classic::battle_of_the_sexes();
        let eqs = support_enumeration(&g);
        // two pure + one mixed
        assert_eq!(eqs.len(), 3);
        let pure_count = eqs
            .iter()
            .filter(|e| e.strategy(0).is_pure() && e.strategy(1).is_pure())
            .count();
        assert_eq!(pure_count, 2);
        let mixed = eqs
            .iter()
            .find(|e| !e.strategy(0).is_pure())
            .expect("mixed equilibrium exists");
        // mixed equilibrium: P1 plays Ballet with prob 2/3, P2 with 1/3
        assert!((mixed.strategy(0).prob(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((mixed.strategy(1).prob(0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn pd_yields_only_mutual_defection() {
        let g = classic::prisoners_dilemma();
        let eqs = support_enumeration(&g);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].strategy(0).as_pure(), Some(1));
        assert_eq!(eqs[0].strategy(1).as_pure(), Some(1));
    }

    #[test]
    fn all_returned_profiles_are_nash() {
        for game in [
            classic::prisoners_dilemma(),
            classic::matching_pennies(),
            classic::battle_of_the_sexes(),
            classic::roshambo(),
            classic::weighted_roshambo(),
        ] {
            for eq in support_enumeration(&game) {
                assert!(eq.is_epsilon_nash(&game, 1e-6), "game {}", game.name());
            }
        }
    }

    #[test]
    fn weighted_roshambo_equilibrium_shifts_away_from_uniform() {
        let g = classic::weighted_roshambo();
        let eqs = support_enumeration(&g);
        let full = eqs
            .iter()
            .find(|e| e.strategy(0).support().len() == 3)
            .expect("full-support equilibrium exists");
        // with rock wins worth double, the equilibrium is no longer uniform
        assert!((full.strategy(0).prob(0) - 1.0 / 3.0).abs() > 0.01);
    }
}
