//! Regret matching (Hart & Mas-Colell).
//!
//! Every player keeps cumulative regrets for each action and plays actions
//! with probability proportional to positive regret. The empirical joint
//! distribution of play converges to the set of coarse correlated
//! equilibria; in two-player zero-sum games the marginals converge to Nash
//! equilibrium. This provides an alternative baseline dynamic to fictitious
//! play, and is also the standard tool for the "can we reach equilibrium by
//! simple adaptive procedures?" question the paper raises about large games.

use bne_games::profile::ActionProfile;
use bne_games::{ActionId, MixedProfile, MixedStrategy, NormalFormGame, PlayerId};
use rand::Rng;

/// State of the regret-matching dynamic.
#[derive(Debug, Clone)]
pub struct RegretMatching {
    regrets: Vec<Vec<f64>>,
    action_counts: Vec<Vec<f64>>,
    joint_counts: std::collections::HashMap<ActionProfile, f64>,
    iterations: usize,
}

impl RegretMatching {
    /// Initializes regret matching for the given game.
    pub fn new(game: &NormalFormGame) -> Self {
        RegretMatching {
            regrets: (0..game.num_players())
                .map(|p| vec![0.0; game.num_actions(p)])
                .collect(),
            action_counts: (0..game.num_players())
                .map(|p| vec![0.0; game.num_actions(p)])
                .collect(),
            joint_counts: std::collections::HashMap::new(),
            iterations: 0,
        }
    }

    /// Number of iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The current play distribution of `player`: proportional to positive
    /// regrets, uniform when no regret is positive.
    pub fn play_distribution(&self, player: PlayerId) -> MixedStrategy {
        let positive: Vec<f64> = self.regrets[player].iter().map(|r| r.max(0.0)).collect();
        let total: f64 = positive.iter().sum();
        if total <= 1e-12 {
            MixedStrategy::uniform(positive.len())
        } else {
            MixedStrategy::new(positive.iter().map(|r| r / total).collect())
                .expect("positive regrets normalize to a distribution")
        }
    }

    /// Empirical marginal strategy of `player` over all past play.
    pub fn empirical_strategy(&self, player: PlayerId) -> MixedStrategy {
        let total: f64 = self.action_counts[player].iter().sum();
        if total <= 0.0 {
            return MixedStrategy::uniform(self.action_counts[player].len());
        }
        MixedStrategy::new(
            self.action_counts[player]
                .iter()
                .map(|c| c / total)
                .collect(),
        )
        .expect("counts normalize to a distribution")
    }

    /// Empirical marginal profile over all past play.
    pub fn empirical_profile(&self, game: &NormalFormGame) -> MixedProfile {
        MixedProfile::new(
            game,
            (0..game.num_players())
                .map(|p| self.empirical_strategy(p))
                .collect(),
        )
        .expect("shapes match")
    }

    /// The empirical joint distribution over action profiles (the candidate
    /// coarse correlated equilibrium).
    pub fn empirical_joint(&self) -> Vec<(ActionProfile, f64)> {
        let total: f64 = self.joint_counts.values().sum();
        let mut v: Vec<_> = self
            .joint_counts
            .iter()
            .map(|(k, c)| (k.clone(), c / total))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Performs one iteration: sample actions from the play distributions,
    /// observe payoffs, update regrets.
    pub fn step<R: Rng + ?Sized>(&mut self, game: &NormalFormGame, rng: &mut R) {
        let played: Vec<ActionId> = (0..game.num_players())
            .map(|p| self.play_distribution(p).sample(rng))
            .collect();
        for (p, &a) in played.iter().enumerate() {
            self.action_counts[p][a] += 1.0;
        }
        *self.joint_counts.entry(played.clone()).or_insert(0.0) += 1.0;
        // regret update: what would I have gotten with each fixed action?
        for p in 0..game.num_players() {
            let actual = game.payoff(p, &played);
            let mut alt = played.clone();
            for a in 0..game.num_actions(p) {
                alt[p] = a;
                self.regrets[p][a] += game.payoff(p, &alt) - actual;
            }
        }
        self.iterations += 1;
    }

    /// Runs the dynamic for `iterations` steps.
    pub fn run<R: Rng + ?Sized>(
        mut self,
        game: &NormalFormGame,
        iterations: usize,
        rng: &mut R,
    ) -> Self {
        for _ in 0..iterations {
            self.step(game, rng);
        }
        self
    }

    /// Maximum average positive regret across players — converges to zero
    /// when the empirical joint distribution approaches a coarse correlated
    /// equilibrium.
    pub fn max_average_regret(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.regrets
            .iter()
            .flat_map(|r| r.iter())
            .map(|r| r.max(0.0) / self.iterations as f64)
            .fold(0.0, f64::max)
    }

    /// Checks the coarse-correlated-equilibrium condition of the empirical
    /// joint distribution: no player can gain more than `epsilon` in
    /// expectation by committing to a fixed action before the draw.
    pub fn joint_is_epsilon_cce(&self, game: &NormalFormGame, epsilon: f64) -> bool {
        let joint = self.empirical_joint();
        for p in 0..game.num_players() {
            let current: f64 = joint
                .iter()
                .map(|(profile, pr)| pr * game.payoff(p, profile))
                .sum();
            for a in 0..game.num_actions(p) {
                let deviated: f64 = joint
                    .iter()
                    .map(|(profile, pr)| {
                        let mut alt = profile.clone();
                        alt[p] = a;
                        pr * game.payoff(p, &alt)
                    })
                    .sum();
                if deviated > current + epsilon {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    #[test]
    fn regret_vanishes_in_matching_pennies() {
        let g = classic::matching_pennies();
        let rm = RegretMatching::new(&g).run(&g, 20_000, &mut rng());
        assert!(rm.max_average_regret() < 0.05);
        let p = rm.empirical_strategy(0).prob(0);
        assert!((p - 0.5).abs() < 0.05, "empirical prob {p}");
    }

    #[test]
    fn pd_converges_to_defection() {
        let g = classic::prisoners_dilemma();
        let rm = RegretMatching::new(&g).run(&g, 5_000, &mut rng());
        assert!(rm.empirical_strategy(0).prob(1) > 0.95);
        assert!(rm.joint_is_epsilon_cce(&g, 0.05));
    }

    #[test]
    fn roshambo_empirical_marginals_near_uniform() {
        let g = classic::roshambo();
        let rm = RegretMatching::new(&g).run(&g, 30_000, &mut rng());
        for a in 0..3 {
            let p = rm.empirical_strategy(0).prob(a);
            assert!((p - 1.0 / 3.0).abs() < 0.06, "prob {p}");
        }
        assert!(rm.joint_is_epsilon_cce(&g, 0.05));
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let g = classic::battle_of_the_sexes();
        let rm = RegretMatching::new(&g).run(&g, 2_000, &mut rng());
        let total: f64 = rm.empirical_joint().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(rm.iterations(), 2_000);
    }

    #[test]
    fn play_distribution_uniform_initially() {
        let g = classic::roshambo();
        let rm = RegretMatching::new(&g);
        let d = rm.play_distribution(0);
        assert!((d.prob(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(rm.max_average_regret(), 0.0);
    }
}
