//! # bne-solvers
//!
//! Baseline equilibrium computation for finite games. The paper's new
//! solution concepts (robustness, computational equilibrium, awareness) are
//! all judged relative to classical Nash equilibrium; this crate provides
//! that baseline:
//!
//! * [`pure`] — exhaustive pure Nash equilibrium enumeration and dominance
//!   analysis (strict/weak dominance, iterated elimination);
//! * [`fictitious`] — fictitious play, which converges in beliefs for
//!   two-player zero-sum games and many potential-like games;
//! * [`replicator`] — discrete-time replicator dynamics for symmetric
//!   two-player games;
//! * [`support`] — exact mixed equilibria of two-player games by support
//!   enumeration (solving the indifference conditions with a small
//!   in-crate linear solver, [`linalg`]);
//! * [`regret`] — regret matching, whose empirical play converges to the
//!   set of coarse correlated equilibria;
//! * [`correlated`] — correlated and coarse-correlated equilibrium checks
//!   for explicit joint distributions (the simplest mediator);
//! * [`bayes`] — pure Bayes–Nash equilibrium search for finite Bayesian
//!   games;
//! * [`zero_sum`] — maximin analysis and game values for two-player
//!   zero-sum games.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayes;
pub mod correlated;
pub mod fictitious;
pub mod linalg;
pub mod pure;
pub mod regret;
pub mod replicator;
pub mod support;
pub mod zero_sum;

pub use bayes::find_pure_bayes_nash;
pub use correlated::{
    is_coarse_correlated_equilibrium, is_correlated_equilibrium, JointDistribution,
};
pub use fictitious::{FictitiousPlay, FictitiousPlayResult};
pub use pure::{
    best_response_table, first_pure_nash, iterated_elimination, pure_nash_equilibria,
    pure_nash_equilibria_with_strategy, strictly_dominant_profile, DominanceKind,
};
#[cfg(feature = "parallel")]
pub use pure::{
    best_response_table_parallel, first_pure_nash_parallel, pure_nash_equilibria_parallel,
};
pub use regret::RegretMatching;
pub use replicator::ReplicatorDynamics;
pub use support::support_enumeration;
pub use zero_sum::{maximin_pure, zero_sum_value};
