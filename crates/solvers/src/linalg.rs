//! A small dense linear-algebra helper: Gaussian elimination with partial
//! pivoting, used by support enumeration to solve the indifference
//! conditions of candidate equilibrium supports.
//!
//! The matrices involved are tiny (at most the number of actions of one
//! player plus one), so a straightforward `O(n³)` elimination is more than
//! adequate and avoids pulling in an external linear-algebra dependency.

/// Solves the linear system `a · x = b` by Gaussian elimination with partial
/// pivoting.
///
/// `a` is given in row-major order as a slice of rows. Returns `None` when
/// the system is (numerically) singular.
///
/// # Panics
///
/// Panics if the rows of `a` are not all the same length as `b`.
pub fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix must be square");
    for row in a {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    // augmented matrix
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b.iter())
        .map(|(row, rhs)| {
            let mut r = row.clone();
            r.push(*rhs);
            r
        })
        .collect();

    for col in 0..n {
        // find pivot
        let pivot = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        // eliminate below
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            // indexing two rows of the same matrix — iterator form would
            // need split_at_mut gymnastics for no clarity gain
            #[allow(clippy::needless_range_loop)]
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for col in row + 1..n {
            acc -= m[row][col] * x[col];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Multiplies an `m × n` matrix (row-major slice of rows) by a length-`n`
/// vector.
pub fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| row.iter().zip(x.iter()).map(|(r, v)| r * v).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let b = vec![3.0, 1.0];
        let x = solve_linear_system(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detects_singular_system() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve_linear_system(&a, &b).is_none());
    }

    #[test]
    fn solves_3x3_with_pivoting() {
        let a = vec![
            vec![0.0, 2.0, 1.0],
            vec![1.0, -2.0, -3.0],
            vec![-1.0, 1.0, 2.0],
        ];
        let b = vec![-8.0, 0.0, 3.0];
        let x = solve_linear_system(&a, &b).unwrap();
        let recovered = mat_vec(&a, &x);
        for (r, expected) in recovered.iter().zip(b.iter()) {
            assert!((r - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn mat_vec_multiplies() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(mat_vec(&a, &[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
