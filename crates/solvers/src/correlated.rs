//! Correlated equilibrium.
//!
//! A mediator that privately recommends actions is the simplest example of
//! the "trusted third parties" of Section 2 of the paper, and correlated
//! equilibrium is the classical solution concept describing when following
//! such recommendations is rational. This module checks the correlated- and
//! coarse-correlated-equilibrium conditions for an explicit joint
//! distribution over action profiles, complementing the regret-matching
//! dynamic in [`crate::regret`] (whose empirical play converges to the
//! coarse correlated set).

use bne_games::profile::{profile_to_index, ActionProfile};
use bne_games::{NormalFormGame, EPSILON};

/// A joint distribution over pure action profiles of a game.
#[derive(Debug, Clone, PartialEq)]
pub struct JointDistribution {
    probs: Vec<(ActionProfile, f64)>,
}

impl JointDistribution {
    /// Creates a distribution from `(profile, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a probability is negative, the probabilities do not sum to
    /// one (within `1e-6`), or a profile is invalid for the game.
    pub fn new(game: &NormalFormGame, probs: Vec<(ActionProfile, f64)>) -> Self {
        let mut total = 0.0;
        for (profile, p) in &probs {
            game.validate_profile(profile)
                .expect("profile must be valid for the game");
            assert!(*p >= -1e-12, "negative probability");
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-6, "probabilities sum to {total}");
        JointDistribution { probs }
    }

    /// The distribution putting probability one on a single profile.
    pub fn point(game: &NormalFormGame, profile: &[usize]) -> Self {
        JointDistribution::new(game, vec![(profile.to_vec(), 1.0)])
    }

    /// The uniform distribution over the given profiles.
    pub fn uniform_over(game: &NormalFormGame, profiles: &[ActionProfile]) -> Self {
        let p = 1.0 / profiles.len() as f64;
        JointDistribution::new(game, profiles.iter().map(|pr| (pr.clone(), p)).collect())
    }

    /// The `(profile, probability)` pairs.
    pub fn entries(&self) -> &[(ActionProfile, f64)] {
        &self.probs
    }

    /// Expected payoff of `player` under the distribution.
    pub fn expected_payoff(&self, game: &NormalFormGame, player: usize) -> f64 {
        self.probs
            .iter()
            .map(|(profile, p)| p * game.payoff(player, profile))
            .sum()
    }

    /// Probability of a specific profile (0 if absent).
    pub fn prob(&self, game: &NormalFormGame, profile: &[usize]) -> f64 {
        let idx = profile_to_index(profile, game.action_counts());
        self.probs
            .iter()
            .filter(|(pr, _)| profile_to_index(pr, game.action_counts()) == idx)
            .map(|(_, p)| *p)
            .sum()
    }
}

/// Whether the distribution is an ε-correlated equilibrium: for every player
/// and every recommended action `a` with positive probability, obeying the
/// recommendation is (within ε) at least as good as any fixed deviation
/// `a'`, conditional on having been recommended `a`.
pub fn is_correlated_equilibrium(
    game: &NormalFormGame,
    dist: &JointDistribution,
    epsilon: f64,
) -> bool {
    for player in 0..game.num_players() {
        for recommended in 0..game.num_actions(player) {
            for alternative in 0..game.num_actions(player) {
                if recommended == alternative {
                    continue;
                }
                // sum over profiles where `player` is recommended `recommended`
                let mut obey = 0.0;
                let mut deviate = 0.0;
                for (profile, p) in dist.entries() {
                    if profile[player] != recommended {
                        continue;
                    }
                    obey += p * game.payoff(player, profile);
                    let mut alt = profile.clone();
                    alt[player] = alternative;
                    deviate += p * game.payoff(player, &alt);
                }
                if deviate > obey + epsilon + EPSILON {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether the distribution is an ε-coarse-correlated equilibrium: no player
/// can gain more than ε by committing to a fixed action *before* seeing her
/// recommendation. Every correlated equilibrium is coarse correlated.
pub fn is_coarse_correlated_equilibrium(
    game: &NormalFormGame,
    dist: &JointDistribution,
    epsilon: f64,
) -> bool {
    for player in 0..game.num_players() {
        let current = dist.expected_payoff(game, player);
        for alternative in 0..game.num_actions(player) {
            let deviated: f64 = dist
                .entries()
                .iter()
                .map(|(profile, p)| {
                    let mut alt = profile.clone();
                    alt[player] = alternative;
                    p * game.payoff(player, &alt)
                })
                .sum();
            if deviated > current + epsilon + EPSILON {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;
    use bne_games::NormalFormBuilder;

    /// The classic "traffic light" game of chicken: two pure equilibria, and
    /// a correlated equilibrium (the traffic light) that mixes them and
    /// beats the symmetric mixed equilibrium.
    fn chicken() -> bne_games::NormalFormGame {
        NormalFormBuilder::new("chicken")
            .player("Row", &["Stop", "Go"])
            .player("Column", &["Stop", "Go"])
            .payoff(&[0, 0], &[4.0, 4.0])
            .payoff(&[0, 1], &[1.0, 5.0])
            .payoff(&[1, 0], &[5.0, 1.0])
            .payoff(&[1, 1], &[0.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn nash_equilibria_are_correlated_equilibria() {
        let pd = classic::prisoners_dilemma();
        let dd = JointDistribution::point(&pd, &[1, 1]);
        assert!(is_correlated_equilibrium(&pd, &dd, 0.0));
        assert!(is_coarse_correlated_equilibrium(&pd, &dd, 0.0));
        // mutual cooperation is not
        let cc = JointDistribution::point(&pd, &[0, 0]);
        assert!(!is_correlated_equilibrium(&pd, &cc, 0.0));
    }

    #[test]
    fn traffic_light_is_a_correlated_equilibrium_of_chicken() {
        let game = chicken();
        let light = JointDistribution::uniform_over(&game, &[vec![0, 1], vec![1, 0]]);
        assert!(is_correlated_equilibrium(&game, &light, 0.0));
        // the three-outcome distribution (both stop with prob 1/3 too) is
        // the famous CE with welfare above any Nash payoff pair's average
        let better = JointDistribution::uniform_over(&game, &[vec![0, 0], vec![0, 1], vec![1, 0]]);
        assert!(is_correlated_equilibrium(&game, &better, 0.0));
        assert!(better.expected_payoff(&game, 0) > 3.0);
    }

    #[test]
    fn correlated_implies_coarse_correlated_but_not_conversely() {
        let game = chicken();
        let light = JointDistribution::uniform_over(&game, &[vec![0, 1], vec![1, 0]]);
        assert!(is_coarse_correlated_equilibrium(&game, &light, 0.0));
        // In 2x2 games the CE and CCE constraint sets coincide, so chicken
        // cannot separate the two concepts; the four-cell uniform mixture is
        // in fact both (all conditional deviation gains are exactly zero).
        let mixed = JointDistribution::uniform_over(
            &game,
            &[vec![0, 0], vec![1, 1], vec![0, 1], vec![1, 0]],
        );
        assert!(is_correlated_equilibrium(&game, &mixed, 0.0));
        assert!(is_coarse_correlated_equilibrium(&game, &mixed, 0.0));
        // The classical separation witness needs three actions: in
        // rock-paper-scissors the uniform distribution over the three ties
        // is coarse correlated (committing to any fixed action still earns
        // 0 against the uniform marginal) but not correlated (conditional
        // on a tie recommendation, playing the beating action gains 1).
        let rps = classic::roshambo();
        let ties = JointDistribution::uniform_over(&rps, &[vec![0, 0], vec![1, 1], vec![2, 2]]);
        assert!(is_coarse_correlated_equilibrium(&rps, &ties, 0.0));
        assert!(!is_correlated_equilibrium(&rps, &ties, 0.0));
    }

    #[test]
    fn regret_matching_empirical_joint_is_an_approximate_cce() {
        use crate::regret::RegretMatching;
        use rand::SeedableRng;
        let game = chicken();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rm = RegretMatching::new(&game).run(&game, 20_000, &mut rng);
        let dist = JointDistribution::new(&game, rm.empirical_joint());
        assert!(is_coarse_correlated_equilibrium(&game, &dist, 0.05));
    }

    #[test]
    fn distribution_validation_and_queries() {
        let pd = classic::prisoners_dilemma();
        let d = JointDistribution::uniform_over(&pd, &[vec![0, 0], vec![1, 1]]);
        assert!((d.prob(&pd, &[0, 0]) - 0.5).abs() < 1e-12);
        assert_eq!(d.prob(&pd, &[0, 1]), 0.0);
        assert!((d.expected_payoff(&pd, 0) - 0.0).abs() < 1e-12);
    }
}
