//! Pure Bayes–Nash equilibrium search for finite Bayesian games.
//!
//! Two procedures are provided:
//!
//! * [`find_pure_bayes_nash`] — exhaustive search over all pure Bayesian
//!   strategy profiles (exponential; fine for the small games in the
//!   paper's examples);
//! * [`best_response_dynamics`] — iterated best response in the agent-form
//!   game, which is fast and finds an equilibrium whenever the dynamics
//!   happen to converge (it may cycle in games without pure equilibria).

use bne_games::profile::visit_mixed_radix;
use bne_games::{BayesianGame, BayesianStrategy};

/// Exhaustively searches for pure Bayes–Nash equilibria. Returns all of
/// them, as one strategy per player.
///
/// The search space is the product over players of
/// `num_actions ^ num_types`, so this is only suitable for small games. The
/// sweep walks the strategy-combination space with the same flat-index
/// cursor the normal-form searches use, rebuilding a single working
/// profile in place (`clone_from` reuses its allocations) instead of
/// materializing a fresh profile per combination.
pub fn find_pure_bayes_nash(game: &BayesianGame) -> Vec<Vec<BayesianStrategy>> {
    let per_player: Vec<Vec<BayesianStrategy>> = (0..game.num_players())
        .map(|p| BayesianStrategy::enumerate_all(game.num_types(p), game.num_actions(p)))
        .collect();
    let radices: Vec<usize> = per_player.iter().map(|s| s.len()).collect();
    let mut work: Vec<BayesianStrategy> = per_player.iter().map(|s| s[0].clone()).collect();
    let mut out = Vec::new();
    visit_mixed_radix(&radices, |combo, _flat| {
        for (p, &i) in combo.iter().enumerate() {
            work[p].clone_from(&per_player[p][i]);
        }
        if game.is_bayes_nash(&work) {
            out.push(work.clone());
        }
    });
    out
}

/// Iterated best-response dynamics on pure Bayesian strategies.
///
/// Starting from everyone playing action 0 for every type, repeatedly lets
/// each player in turn switch every type to its interim best response.
/// Returns `Some(profile)` if a fixed point (a pure Bayes–Nash equilibrium)
/// is reached within `max_sweeps` sweeps, `None` otherwise.
pub fn best_response_dynamics(
    game: &BayesianGame,
    max_sweeps: usize,
) -> Option<Vec<BayesianStrategy>> {
    let mut profile: Vec<BayesianStrategy> = (0..game.num_players())
        .map(|p| BayesianStrategy::constant(0, game.num_types(p)))
        .collect();
    for _ in 0..max_sweeps {
        let mut changed = false;
        for p in 0..game.num_players() {
            for ty in 0..game.num_types(p) {
                let mut best_action = profile[p].action(ty);
                let mut best_value = {
                    let mut s = profile[p].clone();
                    s.set_action(ty, best_action);
                    game.interim_utility(p, ty, &s, &profile)
                };
                for a in 0..game.num_actions(p) {
                    let mut s = profile[p].clone();
                    s.set_action(ty, a);
                    let u = game.interim_utility(p, ty, &s, &profile);
                    if u > best_value + 1e-9 {
                        best_value = u;
                        best_action = a;
                    }
                }
                if best_action != profile[p].action(ty) {
                    profile[p].set_action(ty, best_action);
                    changed = true;
                }
            }
        }
        if !changed {
            return if game.is_bayes_nash(&profile) {
                Some(profile)
            } else {
                None
            };
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::bayesian::TypeDistribution;
    use bne_games::BayesianGame;

    /// The Byzantine-agreement-flavoured Bayesian game: player 0 is the
    /// general with two equally likely types (prefer attack / prefer
    /// retreat); everyone (including the general) picks attack (0) or
    /// retreat (1). All players get 1 if everyone matches the general's
    /// preference, otherwise 0.
    fn general_game(n: usize) -> BayesianGame {
        let mut marginals = vec![vec![0.5, 0.5]];
        marginals.extend(std::iter::repeat_n(vec![1.0], n - 1));
        let prior = TypeDistribution::independent(&marginals).unwrap();
        BayesianGame::new(
            format!("general coordination (n = {n})"),
            vec![2; n],
            prior,
            |_p, types, actions| {
                let pref = types[0];
                if actions.iter().all(|&a| a == pref) {
                    1.0
                } else {
                    0.0
                }
            },
        )
        .unwrap()
    }

    #[test]
    fn exhaustive_search_finds_follow_the_general_profile() {
        let g = general_game(2);
        let eqs = find_pure_bayes_nash(&g);
        assert!(!eqs.is_empty());
        // the "general plays her preference, the other matches expectation"
        // profile can't exist without communication (the other player can't
        // see the type), but "general plays constant 0, other plays 0" is an
        // equilibrium; check that every returned profile verifies.
        for eq in &eqs {
            assert!(g.is_bayes_nash(eq));
        }
        // truthful general + other playing 0 is also an equilibrium
        // (the other player cannot do better without information).
        let truthful = vec![
            BayesianStrategy::new(vec![0, 1]),
            BayesianStrategy::constant(0, 1),
        ];
        assert!(eqs.contains(&truthful));
    }

    #[test]
    fn best_response_dynamics_converges_on_general_game() {
        let g = general_game(3);
        let eq = best_response_dynamics(&g, 100).expect("dynamics converge");
        assert!(g.is_bayes_nash(&eq));
    }

    #[test]
    fn dynamics_may_fail_on_cyclic_games() {
        // matching pennies as a trivial Bayesian game has no pure
        // equilibrium, so the dynamics cannot converge to one.
        let prior = TypeDistribution::trivial(2);
        let g = BayesianGame::new("pennies", vec![2, 2], prior, |p, _t, a| {
            let matched = a[0] == a[1];
            if (p == 0) == matched {
                1.0
            } else {
                -1.0
            }
        })
        .unwrap();
        assert!(best_response_dynamics(&g, 50).is_none());
        assert!(find_pure_bayes_nash(&g).is_empty());
    }

    #[test]
    fn exhaustive_and_dynamics_agree_when_both_succeed() {
        let g = general_game(2);
        let all = find_pure_bayes_nash(&g);
        if let Some(found) = best_response_dynamics(&g, 100) {
            assert!(all.contains(&found));
        }
    }
}
