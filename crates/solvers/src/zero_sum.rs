//! Two-player zero-sum analysis: pure maximin/minimax and the mixed game
//! value (computed via fictitious play, which converges for zero-sum games).

use crate::fictitious::fictitious_play;
use bne_games::{ActionId, NormalFormGame, Utility};

/// The pure maximin action and value for `player` (the action maximizing the
/// worst-case payoff over the opponents' pure responses).
pub fn maximin_pure(game: &NormalFormGame, player: usize) -> (ActionId, Utility) {
    assert!(player < game.num_players());
    let mut best: Option<(ActionId, Utility)> = None;
    for a in 0..game.num_actions(player) {
        let mut worst = f64::INFINITY;
        for profile in game.profiles() {
            if profile[player] != a {
                continue;
            }
            worst = worst.min(game.payoff(player, &profile));
        }
        if best.map(|(_, v)| worst > v).unwrap_or(true) {
            best = Some((a, worst));
        }
    }
    best.expect("player has at least one action")
}

/// Result of the zero-sum value computation.
#[derive(Debug, Clone, Copy)]
pub struct ZeroSumValue {
    /// Approximate value of the game to player 0.
    pub value: Utility,
    /// Quality of the approximation: the empirical profile used to estimate
    /// the value is an `epsilon`-equilibrium.
    pub epsilon: f64,
    /// Lower bound from player 0's pure maximin.
    pub pure_maximin: Utility,
    /// Upper bound from player 1's pure maximin (negated).
    pub pure_minimax: Utility,
}

/// Approximates the mixed value of a two-player zero-sum game using
/// fictitious play.
///
/// # Panics
///
/// Panics if the game has a different number of players than two or is not
/// zero-sum.
pub fn zero_sum_value(game: &NormalFormGame, iterations: usize) -> ZeroSumValue {
    assert_eq!(game.num_players(), 2, "zero-sum value needs two players");
    assert!(game.is_zero_sum(), "game is not zero-sum");
    let result = fictitious_play(game, iterations);
    let value = result.empirical.expected_payoff(game, 0);
    let (_, pure_maximin) = maximin_pure(game, 0);
    let (_, opp) = maximin_pure(game, 1);
    ZeroSumValue {
        value,
        epsilon: result.epsilon,
        pure_maximin,
        pure_minimax: -opp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;

    #[test]
    fn roshambo_value_is_zero() {
        let v = zero_sum_value(&classic::roshambo(), 4_000);
        assert!(v.value.abs() < 0.02, "value = {}", v.value);
        assert!(v.epsilon < 0.05);
        // pure maximin of roshambo is -1 (any pure action can lose)
        assert_eq!(v.pure_maximin, -1.0);
        assert_eq!(v.pure_minimax, 1.0);
        // mixed value sits between the pure bounds
        assert!(v.pure_maximin <= v.value && v.value <= v.pure_minimax);
    }

    #[test]
    fn matching_pennies_value_is_zero() {
        let v = zero_sum_value(&classic::matching_pennies(), 4_000);
        assert!(v.value.abs() < 0.02);
    }

    #[test]
    fn maximin_of_pd_is_defection() {
        let (a, value) = maximin_pure(&classic::prisoners_dilemma(), 0);
        assert_eq!(a, 1);
        assert_eq!(value, -3.0);
    }

    #[test]
    #[should_panic(expected = "not zero-sum")]
    fn non_zero_sum_rejected() {
        let _ = zero_sum_value(&classic::prisoners_dilemma(), 10);
    }
}
