//! Discrete-time replicator dynamics for symmetric two-player games.
//!
//! The population state is a mixed strategy over the (shared) action set;
//! the share of an action grows in proportion to how much better than
//! average it performs against the current population. Rest points of the
//! dynamics that are stable correspond to symmetric Nash equilibria.

use bne_games::{MixedProfile, MixedStrategy, NormalFormGame};

/// Replicator dynamics state for a symmetric two-player game.
#[derive(Debug, Clone)]
pub struct ReplicatorDynamics {
    state: Vec<f64>,
    step_count: usize,
}

impl ReplicatorDynamics {
    /// Starts the dynamics at the uniform population state.
    ///
    /// # Panics
    ///
    /// Panics if the game is not a two-player game in which both players
    /// have the same number of actions (the symmetric-game requirement).
    pub fn new(game: &NormalFormGame) -> Self {
        Self::with_state(
            game,
            vec![1.0 / game.num_actions(0) as f64; game.num_actions(0)],
        )
    }

    /// Starts the dynamics at a specific population state.
    ///
    /// # Panics
    ///
    /// Panics if the game is not symmetric two-player or the state's length
    /// does not match the action count.
    pub fn with_state(game: &NormalFormGame, state: Vec<f64>) -> Self {
        assert_eq!(game.num_players(), 2, "replicator dynamics needs 2 players");
        assert_eq!(
            game.num_actions(0),
            game.num_actions(1),
            "replicator dynamics needs a symmetric action set"
        );
        assert_eq!(state.len(), game.num_actions(0), "state length mismatch");
        ReplicatorDynamics {
            state,
            step_count: 0,
        }
    }

    /// Current population state.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.step_count
    }

    /// Fitness (expected payoff) of each pure action against the current
    /// population, and the population-average fitness.
    pub fn fitness(&self, game: &NormalFormGame) -> (Vec<f64>, f64) {
        let n = self.state.len();
        let mut fitness = vec![0.0; n];
        for (a, f) in fitness.iter_mut().enumerate() {
            for b in 0..n {
                *f += self.state[b] * game.payoff(0, &[a, b]);
            }
        }
        let avg: f64 = fitness
            .iter()
            .zip(self.state.iter())
            .map(|(f, x)| f * x)
            .sum();
        (fitness, avg)
    }

    /// Performs one discrete replicator step with the given step size
    /// (`dt` in `(0, 1]`; payoffs are shifted to be positive internally so
    /// shares stay non-negative).
    pub fn step(&mut self, game: &NormalFormGame, dt: f64) {
        let (fitness, avg) = self.fitness(game);
        // shift so that all fitness values are positive
        let min = fitness.iter().cloned().fold(f64::INFINITY, f64::min);
        let shift = if min < 1e-9 { -min + 1.0 } else { 0.0 };
        let avg_shifted = avg + shift;
        let mut next: Vec<f64> = self
            .state
            .iter()
            .zip(fitness.iter())
            .map(|(x, f)| {
                let growth = (f + shift) / avg_shifted;
                x * (1.0 - dt + dt * growth)
            })
            .collect();
        let total: f64 = next.iter().sum();
        for x in &mut next {
            *x /= total;
        }
        self.state = next;
        self.step_count += 1;
    }

    /// Runs the dynamics until the state changes by less than `tol` in L1
    /// norm between steps, or `max_steps` is reached. Returns the final
    /// state as a [`MixedStrategy`].
    pub fn run(
        mut self,
        game: &NormalFormGame,
        dt: f64,
        tol: f64,
        max_steps: usize,
    ) -> MixedStrategy {
        for _ in 0..max_steps {
            let prev = self.state.clone();
            self.step(game, dt);
            let delta: f64 = prev
                .iter()
                .zip(self.state.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            if delta < tol {
                break;
            }
        }
        MixedStrategy::new(self.state).expect("replicator state is a distribution")
    }
}

/// Runs replicator dynamics from the uniform state and reports whether the
/// rest point it reaches is (approximately) a symmetric Nash equilibrium.
pub fn replicator_equilibrium(game: &NormalFormGame, max_steps: usize) -> (MixedStrategy, bool) {
    let strategy = ReplicatorDynamics::new(game).run(game, 0.5, 1e-12, max_steps);
    let profile = MixedProfile::new(game, vec![strategy.clone(), strategy.clone()])
        .expect("symmetric profile");
    let is_nash = profile.is_epsilon_nash(game, 1e-3);
    (strategy, is_nash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;

    #[test]
    fn pd_population_converges_to_all_defect() {
        let g = classic::prisoners_dilemma();
        let (s, is_nash) = replicator_equilibrium(&g, 10_000);
        assert!(s.prob(1) > 0.99, "defect share = {}", s.prob(1));
        assert!(is_nash);
    }

    #[test]
    fn roshambo_interior_uniform_is_a_rest_point() {
        let g = classic::roshambo();
        // start exactly at uniform: it is a rest point of the dynamics
        let mut rd = ReplicatorDynamics::new(&g);
        rd.step(&g, 0.5);
        for a in 0..3 {
            assert!((rd.state()[a] - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fitness_computation_matches_expected_payoffs() {
        let g = classic::prisoners_dilemma();
        let rd = ReplicatorDynamics::with_state(&g, vec![0.5, 0.5]);
        let (fitness, avg) = rd.fitness(&g);
        // cooperate vs 50/50: 0.5*3 + 0.5*(-5) = -1
        assert!((fitness[0] + 1.0).abs() < 1e-12);
        // defect vs 50/50: 0.5*5 + 0.5*(-3) = 1
        assert!((fitness[1] - 1.0).abs() < 1e-12);
        assert!(avg.abs() < 1e-12);
    }

    #[test]
    fn state_remains_a_distribution() {
        let g = classic::battle_of_the_sexes();
        let mut rd = ReplicatorDynamics::with_state(&g, vec![0.7, 0.3]);
        for _ in 0..100 {
            rd.step(&g, 0.3);
            let sum: f64 = rd.state().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(rd.state().iter().all(|x| *x >= -1e-12));
        }
        assert_eq!(rd.steps(), 100);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_action_sets_rejected() {
        let g = bne_games::NormalFormBuilder::new("asym")
            .player("A", &["x", "y"])
            .player("B", &["l", "m", "r"])
            .build()
            .unwrap();
        let _ = ReplicatorDynamics::new(&g);
    }
}
