//! Pure-strategy analysis: Nash equilibrium enumeration, dominant
//! strategies, and iterated elimination of dominated strategies.

use bne_games::profile::ActionProfile;
use bne_games::{ActionId, DeviationOracle, NormalFormGame, PlayerId, SearchStrategy};

/// Which notion of dominance to use during iterated elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceKind {
    /// Strict dominance: strictly better against every opponent profile.
    /// Iterated elimination of strictly dominated strategies is order
    /// independent.
    Strict,
    /// Weak dominance: never worse and sometimes strictly better. Iterated
    /// elimination of weakly dominated strategies is order dependent; this
    /// crate eliminates lowest-indexed dominated actions first.
    Weak,
}

/// Enumerates every pure Nash equilibrium of the game. Runs on the shared
/// [`DeviationOracle`]: best-response payoff tables decide each profile in
/// `O(n)` lookups and iterated never-best-response elimination skips
/// profiles that cannot be equilibria; the result is bit-identical to the
/// exhaustive flat-index sweep (see
/// [`pure_nash_equilibria_with_strategy`]).
pub fn pure_nash_equilibria(game: &NormalFormGame) -> Vec<ActionProfile> {
    DeviationOracle::new(game).nash_profiles()
}

/// [`pure_nash_equilibria`] with an explicit [`SearchStrategy`]
/// ([`SearchStrategy::Exhaustive`] is the unpruned escape hatch used as
/// the property-test equality gate).
pub fn pure_nash_equilibria_with_strategy(
    game: &NormalFormGame,
    strategy: SearchStrategy,
) -> Vec<ActionProfile> {
    DeviationOracle::with_strategy(game, strategy).nash_profiles()
}

/// Parallel form of [`pure_nash_equilibria`]: the flat profile space is
/// chunked across threads; results are concatenated in chunk order, so the
/// output is bit-identical to the sequential sweep.
#[cfg(feature = "parallel")]
pub fn pure_nash_equilibria_parallel(game: &NormalFormGame) -> Vec<ActionProfile> {
    // The per-profile Nash check is cheap, so apply the spawn heuristic.
    pure_nash_equilibria_with_workers(
        game,
        bne_games::parallel::cheap_workers(game.num_profiles()),
    )
}

/// [`pure_nash_equilibria_parallel`] with an explicit worker count (lets
/// tests force real threads regardless of machine or space size).
#[cfg(feature = "parallel")]
pub fn pure_nash_equilibria_with_workers(
    game: &NormalFormGame,
    workers: usize,
) -> Vec<ActionProfile> {
    DeviationOracle::new(game).nash_profiles_with_workers(workers)
}

/// The pure Nash equilibrium with the lowest flat index, if any — the
/// deterministic witness used when only existence matters.
pub fn first_pure_nash(game: &NormalFormGame) -> Option<ActionProfile> {
    DeviationOracle::new(game).first_nash()
}

/// Parallel form of [`first_pure_nash`] with deterministic
/// lowest-flat-index-wins semantics.
#[cfg(feature = "parallel")]
pub fn first_pure_nash_parallel(game: &NormalFormGame) -> Option<ActionProfile> {
    DeviationOracle::new(game)
        .first_nash_with_workers(bne_games::parallel::cheap_workers(game.num_profiles()))
}

/// The best-response table of one player: entry `flat` is the
/// lowest-indexed action maximizing the player's payoff against the
/// opponents' actions in the profile with flat index `flat` (the player's
/// own entry is ignored). Entries are therefore constant along the
/// player's own stride.
pub fn best_response_table(game: &NormalFormGame, player: PlayerId) -> Vec<ActionId> {
    (0..game.num_profiles())
        .map(|flat| game.best_unilateral_deviation_by_index(player, flat).0)
        .collect()
}

/// Parallel form of [`best_response_table`]; bit-identical output.
#[cfg(feature = "parallel")]
pub fn best_response_table_parallel(game: &NormalFormGame, player: PlayerId) -> Vec<ActionId> {
    bne_games::parallel::collect_chunked(game.num_profiles(), |range| {
        range
            .map(|flat| game.best_unilateral_deviation_by_index(player, flat).0)
            .collect()
    })
}

/// If every player has a strictly dominant action, returns that profile.
pub fn strictly_dominant_profile(game: &NormalFormGame) -> Option<ActionProfile> {
    let mut profile = Vec::with_capacity(game.num_players());
    for p in 0..game.num_players() {
        let mut dominant = None;
        'candidate: for a in 0..game.num_actions(p) {
            for b in 0..game.num_actions(p) {
                if a != b && !game.strictly_dominates(p, a, b) {
                    continue 'candidate;
                }
            }
            dominant = Some(a);
            break;
        }
        profile.push(dominant?);
    }
    Some(profile)
}

/// Actions of `player` that are dominated (by some other surviving action)
/// under the given dominance notion.
fn dominated_actions(
    game: &NormalFormGame,
    player: PlayerId,
    kind: DominanceKind,
) -> Vec<ActionId> {
    let mut out = Vec::new();
    for b in 0..game.num_actions(player) {
        let dominated = (0..game.num_actions(player)).any(|a| match kind {
            DominanceKind::Strict => game.strictly_dominates(player, a, b),
            DominanceKind::Weak => game.weakly_dominates(player, a, b),
        });
        if dominated {
            out.push(b);
        }
    }
    out
}

/// The result of iterated elimination of dominated strategies.
#[derive(Debug, Clone)]
pub struct EliminationResult {
    /// The reduced game after elimination stabilizes.
    pub reduced: NormalFormGame,
    /// For each player, the surviving actions expressed as indices into the
    /// **original** game's action sets.
    pub surviving: Vec<Vec<ActionId>>,
    /// Number of elimination rounds performed.
    pub rounds: usize,
}

/// Performs iterated elimination of dominated strategies until no player has
/// a dominated action left.
///
/// With [`DominanceKind::Weak`], at most one action per player is removed
/// per round (the lowest-indexed dominated one) to keep the procedure
/// deterministic; with [`DominanceKind::Strict`], all dominated actions are
/// removed each round (the result is order independent).
pub fn iterated_elimination(game: &NormalFormGame, kind: DominanceKind) -> EliminationResult {
    let mut surviving: Vec<Vec<ActionId>> = (0..game.num_players())
        .map(|p| (0..game.num_actions(p)).collect())
        .collect();
    let mut current = game.clone();
    let mut rounds = 0;
    loop {
        let mut changed = false;
        let mut keep: Vec<Vec<ActionId>> = Vec::with_capacity(current.num_players());
        for p in 0..current.num_players() {
            let dominated = dominated_actions(&current, p, kind);
            let to_remove: Vec<ActionId> = match kind {
                DominanceKind::Strict => dominated,
                DominanceKind::Weak => dominated.into_iter().take(1).collect(),
            };
            let kept: Vec<ActionId> = (0..current.num_actions(p))
                .filter(|a| !to_remove.contains(a))
                .collect();
            // never eliminate a player's last action
            let kept = if kept.is_empty() { vec![0] } else { kept };
            if kept.len() != current.num_actions(p) {
                changed = true;
            }
            keep.push(kept);
        }
        if !changed {
            break;
        }
        rounds += 1;
        // map survivors back to original indices
        for (p, kept) in keep.iter().enumerate() {
            surviving[p] = kept.iter().map(|&a| surviving[p][a]).collect();
        }
        current = current
            .restrict(&keep)
            .expect("restriction of surviving actions is well-formed");
    }
    EliminationResult {
        reduced: current,
        surviving,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_games::classic;

    #[test]
    fn pd_unique_equilibrium_is_mutual_defection() {
        let pd = classic::prisoners_dilemma();
        let eq = pure_nash_equilibria(&pd);
        assert_eq!(eq, vec![vec![1, 1]]);
        assert_eq!(strictly_dominant_profile(&pd), Some(vec![1, 1]));
        assert_eq!(first_pure_nash(&pd), Some(vec![1, 1]));
    }

    #[test]
    fn best_response_table_is_consistent() {
        let g = bne_games::random::random_game(31, &[3, 2, 4]);
        for player in 0..g.num_players() {
            let table = best_response_table(&g, player);
            assert_eq!(table.len(), g.num_profiles());
            for (flat, profile) in g.profiles().enumerate() {
                assert_eq!(table[flat], g.best_unilateral_deviation(player, &profile).0);
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_solvers_are_bit_identical() {
        for seed in 40..44 {
            let g = bne_games::random::random_game(seed, &[3, 3, 2, 2]);
            assert_eq!(pure_nash_equilibria(&g), pure_nash_equilibria_parallel(&g));
            assert_eq!(first_pure_nash(&g), first_pure_nash_parallel(&g));
            // force real threads: the public entry points fall back to one
            // worker on small spaces / small machines
            for workers in [2, 5] {
                assert_eq!(
                    pure_nash_equilibria(&g),
                    pure_nash_equilibria_with_workers(&g, workers)
                );
            }
            for player in 0..g.num_players() {
                assert_eq!(
                    best_response_table(&g, player),
                    best_response_table_parallel(&g, player)
                );
            }
        }
    }

    #[test]
    fn roshambo_has_no_pure_equilibrium() {
        assert!(pure_nash_equilibria(&classic::roshambo()).is_empty());
        assert!(strictly_dominant_profile(&classic::roshambo()).is_none());
    }

    #[test]
    fn coordination_game_equilibria_include_all_zero() {
        let g = classic::coordination_game(4);
        let eq = pure_nash_equilibria(&g);
        assert!(eq.contains(&vec![0, 0, 0, 0]));
    }

    #[test]
    fn battle_of_sexes_two_equilibria() {
        let eq = pure_nash_equilibria(&classic::battle_of_the_sexes());
        assert_eq!(eq.len(), 2);
        assert!(eq.contains(&vec![0, 0]));
        assert!(eq.contains(&vec![1, 1]));
    }

    #[test]
    fn strict_elimination_solves_pd() {
        let pd = classic::prisoners_dilemma();
        let result = iterated_elimination(&pd, DominanceKind::Strict);
        assert_eq!(result.surviving, vec![vec![1], vec![1]]);
        assert_eq!(result.reduced.num_profiles(), 1);
        assert!(result.rounds >= 1);
    }

    #[test]
    fn elimination_keeps_undominated_games_unchanged() {
        let g = classic::matching_pennies();
        let result = iterated_elimination(&g, DominanceKind::Strict);
        assert_eq!(result.rounds, 0);
        assert_eq!(result.surviving, vec![vec![0, 1], vec![0, 1]]);
    }

    #[test]
    fn weak_elimination_is_conservative_one_per_round() {
        // Player 0 has three actions; action 2 is weakly dominated by 0 and
        // 1 is weakly dominated by 0 too. Weak elimination removes one per
        // round per player.
        let g = bne_games::NormalFormBuilder::new("weak chain")
            .player("A", &["a0", "a1", "a2"])
            .player("B", &["b0", "b1"])
            .payoff(&[0, 0], &[3.0, 1.0])
            .payoff(&[0, 1], &[3.0, 1.0])
            .payoff(&[1, 0], &[2.0, 1.0])
            .payoff(&[1, 1], &[3.0, 1.0])
            .payoff(&[2, 0], &[1.0, 1.0])
            .payoff(&[2, 1], &[2.0, 1.0])
            .build()
            .unwrap();
        let result = iterated_elimination(&g, DominanceKind::Weak);
        assert!(result.surviving[0].len() < 3);
        // player 0's best action a0 always survives
        assert!(result.surviving[0].contains(&0));
    }

    #[test]
    fn last_action_never_eliminated() {
        let pd = classic::prisoners_dilemma();
        let result = iterated_elimination(&pd, DominanceKind::Weak);
        for p in 0..2 {
            assert!(!result.surviving[p].is_empty());
        }
    }

    #[test]
    fn equilibria_of_reduced_game_are_equilibria_of_original() {
        let g = classic::prisoners_dilemma();
        let res = iterated_elimination(&g, DominanceKind::Strict);
        for eq in pure_nash_equilibria(&res.reduced) {
            // map back to original indices
            let original: Vec<ActionId> = eq
                .iter()
                .enumerate()
                .map(|(p, &a)| res.surviving[p][a])
                .collect();
            assert!(g.is_pure_nash(&original));
        }
    }
}
