use bne_mc::{ben_or_net, bracha_net, paxos_net, BenOrParams, BrachaParams, Explorer, PaxosParams};

fn show(label: &str, report: bne_mc::ExploreReport, t0: std::time::Instant) {
    println!(
        "{label}: verdict={:?} states={} transitions={} terminals={} depth={} vecs={} in {:?}",
        match &report.verdict {
            bne_mc::Verdict::Proven => "Proven".to_string(),
            bne_mc::Verdict::Violated(t) => format!("Violated({} choices)", t.len()),
            bne_mc::Verdict::Truncated(w) => format!("Truncated({w})"),
        },
        report.states,
        report.transitions,
        report.terminals,
        report.max_depth_seen,
        report.decision_vectors.len(),
        t0.elapsed()
    );
}

fn cap() -> u64 {
    std::env::var("BNE_PROBE_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000)
}

fn main() {
    let arg: Vec<String> = std::env::args().collect();
    let which = arg.get(1).map(|s| s.as_str()).unwrap_or("bracha");
    match which {
        "bracha" => {
            let p = BrachaParams::new(4, 1, 1);
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "honest n=4 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "bracha-nc" => {
            let p = BrachaParams::new(4, 1, 1);
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.confluent = false;
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "honest n=4 POR no-confluent",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "liar" => {
            let p = BrachaParams::new(4, 1, 1).with_liar();
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "liar n=4 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "planted" => {
            let p = BrachaParams::new(4, 1, 1).with_liar().with_thresholds(1, 3);
            let (net, tap) = bracha_net(&p);
            let t0 = std::time::Instant::now();
            show(
                "planted POR",
                Explorer::new(net, tap, p.properties(), p.explore_config()).run(),
                t0,
            );
        }
        "planted-naive" => {
            let p = BrachaParams::new(4, 1, 1).with_liar().with_thresholds(1, 3);
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.por = false;
            if let Ok(cap) = std::env::var("BNE_PROBE_CAP") {
                cfg.max_states = cap.parse().unwrap();
            }
            let t0 = std::time::Instant::now();
            show(
                "planted naive",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "liar-naive" => {
            let p = BrachaParams::new(4, 1, 1).with_liar();
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.por = false;
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "liar n=4 naive",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "benor" => {
            let p = BenOrParams::new(1, vec![1, 0, 1, 0], 2);
            let (net, tap) = ben_or_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "ben-or n=4 t=1 r<=2 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "benor31" => {
            let p = BenOrParams::new(1, vec![1, 1, 1, 0], 1);
            let (net, tap) = ben_or_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "ben-or n=4 t=1 [1,1,1,0] r<=1 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "benor-u" => {
            let p = BenOrParams::new(1, vec![1, 1, 1, 1], 1);
            let (net, tap) = ben_or_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "ben-or n=4 t=1 unanimous r<=1 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "benor3" => {
            let p = BenOrParams::new(0, vec![1, 0, 1], 1);
            let (net, tap) = ben_or_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "ben-or n=3 t=0 [1,0,1] r<=1 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "benor31r2" => {
            let p = BenOrParams::new(1, vec![1, 1, 1, 0], 2);
            let (net, tap) = ben_or_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "ben-or n=4 t=1 [1,1,1,0] r<=2 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos3" => {
            let p = PaxosParams::new(vec![0, 1, 1], 8, 1).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=3 f=1 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos-l" => {
            let p = PaxosParams::new(vec![0, 1, 1, 0], 8, 1).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.crashable = vec![0];
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=4 f=1 leader-only POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos3-l" => {
            let p = PaxosParams::new(vec![0, 1, 1], 8, 1).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.crashable = vec![0];
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=3 f=1 leader-only POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos-nr" => {
            let p = PaxosParams::new(vec![0, 1, 1, 0], 8, 0).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=4 f=1 no-retry POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos-nr-l" => {
            let p = PaxosParams::new(vec![0, 1, 1, 0], 8, 0).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.crashable = vec![0];
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=4 f=1 no-retry leader-only POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos3-nr" => {
            let p = PaxosParams::new(vec![0, 1, 1], 8, 0).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=3 f=1 no-retry POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos3-nr-l" => {
            let p = PaxosParams::new(vec![0, 1, 1], 8, 0).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.crashable = vec![0];
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=3 f=1 no-retry leader-only POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos0" => {
            let p = PaxosParams::new(vec![0, 1, 1, 0], 8, 1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=4 f=0 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "paxos" => {
            let p = PaxosParams::new(vec![0, 1, 1, 0], 8, 1).with_crash_budget(1);
            let (net, tap) = paxos_net(&p);
            let mut cfg = p.explore_config();
            cfg.max_states = cap();
            let t0 = std::time::Instant::now();
            show(
                "paxos n=4 f=1 POR",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        "liar3" => {
            let p = BrachaParams::new(3, 1, 1).with_liar();
            let (net, tap) = bracha_net(&p);
            let t0 = std::time::Instant::now();
            show(
                "liar n=3 POR",
                Explorer::new(net, tap, p.properties(), p.explore_config()).run(),
                t0,
            );
            let p = BrachaParams::new(3, 1, 1).with_liar();
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.por = false;
            let t0 = std::time::Instant::now();
            show(
                "liar n=3 naive",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
            let p = BrachaParams::new(3, 1, 1).with_liar().with_thresholds(1, 3);
            let (net, tap) = bracha_net(&p);
            let t0 = std::time::Instant::now();
            show(
                "planted n=3 POR",
                Explorer::new(net, tap, p.properties(), p.explore_config()).run(),
                t0,
            );
            let p = BrachaParams::new(3, 1, 1).with_liar().with_thresholds(1, 3);
            let (net, tap) = bracha_net(&p);
            let mut cfg = p.explore_config();
            cfg.por = false;
            let t0 = std::time::Instant::now();
            show(
                "planted n=3 naive",
                Explorer::new(net, tap, p.properties(), cfg).run(),
                t0,
            );
        }
        _ => eprintln!("unknown probe {which}"),
    }
}
