//! Regenerates the counterexample regression corpus under
//! `tests/corpus/`.
//!
//! Each corpus file is a real checker artifact, not a hand-written
//! fixture: this example re-runs the planted-bug searches and prints the
//! serialized [`bne_mc::CounterexampleTrace`] JSON to stdout. Redirect
//! it over the corpus file when the trace format or the search order
//! changes intentionally:
//!
//! ```text
//! cargo run --release -p bne-mc --example gen_corpus > tests/corpus/bracha_amp_quorum.json
//! ```

use bne_mc::{bracha_net, BrachaParams, Explorer, Verdict};

fn main() {
    // Bracha with the ready-amplification quorum lowered from t+1 to t:
    // one forged Ready converts an honest process and the honest
    // amplification chain delivers the forged value.
    let params = BrachaParams::new(4, 1, 1).with_liar().with_thresholds(1, 3);
    let (net, tap) = bracha_net(&params);
    let report = Explorer::new(net, tap, params.properties(), params.explore_config()).run();
    match report.verdict {
        Verdict::Violated(trace) => println!("{}", trace.to_json()),
        other => {
            eprintln!("expected a violation, got {other:?}");
            std::process::exit(1);
        }
    }
}
