//! Replayable counterexample traces.
//!
//! When the explorer finds a violation, the path that reached it — the
//! chosen event sequence numbers plus the full choice-tap script — is
//! enough to re-execute the violation **deterministically on the
//! production runtime**: sequence numbers are assigned in dispatch
//! order, so replaying the same choices from the same initial network
//! reproduces the same sequence numbers, the same deliveries and the
//! same quorum arithmetic, with no model-checker machinery in the loop.
//! That is what makes the JSON files under `tests/corpus/` regression
//! tests rather than logs: `tests/tests/mc_regressions.rs` replays them
//! against the real [`bne_net::EventNet`] every CI run (see
//! [`crate::scenario::replay_trace`]).

use crate::explorer::Choice;
use crate::json::Json;
use bne_net::EnabledKind;

/// A serialized schedule-space counterexample (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterexampleTrace {
    /// Which [`crate::scenario`] registry entry rebuilds the network.
    pub scenario: String,
    /// The scenario's parameters, in canonical order.
    pub params: Vec<(String, u64)>,
    /// The full choice-tap script (coins and lies, in draw order).
    pub script: Vec<u64>,
    /// The schedule: one [`Choice`] per transition, in order.
    pub choices: Vec<Choice>,
    /// Name of the violated property.
    pub property: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl CounterexampleTrace {
    /// Number of replayed transitions (events + crashes) — the trace
    /// length the acceptance bound "counterexample ≤ 30 events" talks
    /// about.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the trace has no transitions at all (a violation at the
    /// initial state; does not occur for well-formed scenarios).
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Serializes to the corpus JSON layout.
    pub fn to_json(&self) -> String {
        let choices: Vec<Json> = self
            .choices
            .iter()
            .map(|c| match c {
                Choice::Event { seq, kind } => {
                    let mut fields = vec![("seq".to_string(), Json::U64(*seq))];
                    match kind {
                        EnabledKind::Deliver { src, dst } => {
                            fields.push(("kind".to_string(), Json::Str("deliver".into())));
                            fields.push(("src".to_string(), Json::U64(*src as u64)));
                            fields.push(("dst".to_string(), Json::U64(*dst as u64)));
                        }
                        EnabledKind::Timer { proc, timer } => {
                            fields.push(("kind".to_string(), Json::Str("timer".into())));
                            fields.push(("proc".to_string(), Json::U64(*proc as u64)));
                            fields.push(("timer".to_string(), Json::U64(*timer)));
                        }
                        EnabledKind::Crash { proc } => {
                            fields.push(("kind".to_string(), Json::Str("planned-crash".into())));
                            fields.push(("proc".to_string(), Json::U64(*proc as u64)));
                        }
                        EnabledKind::Recover { proc } => {
                            fields.push(("kind".to_string(), Json::Str("recover".into())));
                            fields.push(("proc".to_string(), Json::U64(*proc as u64)));
                        }
                    }
                    Json::Obj(fields)
                }
                Choice::Crash { proc } => Json::Obj(vec![
                    ("kind".to_string(), Json::Str("crash".into())),
                    ("proc".to_string(), Json::U64(*proc as u64)),
                ]),
            })
            .collect();
        Json::Obj(vec![
            ("scenario".to_string(), Json::Str(self.scenario.clone())),
            (
                "params".to_string(),
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "script".to_string(),
                Json::Arr(self.script.iter().map(|&v| Json::U64(v)).collect()),
            ),
            ("choices".to_string(), Json::Arr(choices)),
            ("property".to_string(), Json::Str(self.property.clone())),
            ("detail".to_string(), Json::Str(self.detail.clone())),
        ])
        .to_string()
    }

    /// Parses a corpus JSON document.
    pub fn from_json(text: &str) -> Result<CounterexampleTrace, String> {
        let doc = Json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let params = match doc.get("params") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("param {k:?} is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing object field \"params\"".to_string()),
        };
        let script = doc
            .get("script")
            .and_then(Json::as_arr)
            .ok_or("missing array field \"script\"")?
            .iter()
            .map(|v| v.as_u64().ok_or("non-integer script entry".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let choices = doc
            .get("choices")
            .and_then(Json::as_arr)
            .ok_or("missing array field \"choices\"")?
            .iter()
            .map(parse_choice)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CounterexampleTrace {
            scenario: str_field("scenario")?,
            params,
            script,
            choices,
            property: str_field("property")?,
            detail: str_field("detail")?,
        })
    }
}

fn parse_choice(c: &Json) -> Result<Choice, String> {
    let kind = c
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("choice without \"kind\"")?;
    let num = |key: &str| -> Result<u64, String> {
        c.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("choice missing integer field {key:?}"))
    };
    let kind = match kind {
        "deliver" => EnabledKind::Deliver {
            src: num("src")? as usize,
            dst: num("dst")? as usize,
        },
        "timer" => EnabledKind::Timer {
            proc: num("proc")? as usize,
            timer: num("timer")?,
        },
        "planned-crash" => EnabledKind::Crash {
            proc: num("proc")? as usize,
        },
        "recover" => EnabledKind::Recover {
            proc: num("proc")? as usize,
        },
        "crash" => {
            return Ok(Choice::Crash {
                proc: num("proc")? as usize,
            })
        }
        other => return Err(format!("unknown choice kind {other:?}")),
    };
    Ok(Choice::Event {
        seq: num("seq")?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_through_json() {
        let trace = CounterexampleTrace {
            scenario: "bracha".to_string(),
            params: vec![("n".to_string(), 4), ("t".to_string(), 1)],
            script: vec![3, 0, 3],
            choices: vec![
                Choice::Event {
                    seq: 2,
                    kind: EnabledKind::Deliver { src: 0, dst: 3 },
                },
                Choice::Crash { proc: 1 },
                Choice::Event {
                    seq: 9,
                    kind: EnabledKind::Timer { proc: 2, timer: 0 },
                },
            ],
            property: "validity".to_string(),
            detail: "process 1 decided 0, outside the valid set {1}".to_string(),
        };
        let text = trace.to_json();
        assert_eq!(CounterexampleTrace::from_json(&text).unwrap(), trace);
    }
}
