//! The named scenario registry: checkable models, and the bridge from a
//! serialized [`CounterexampleTrace`] back to a runnable network.
//!
//! A trace names its scenario (`"bracha"`, `"ben_or"`, `"paxos"`) and
//! carries its parameters as integers; [`replay_trace`] rebuilds exactly
//! the network the explorer searched and re-executes the recorded
//! choices on the **production** runtime. The constructors here are also
//! the stock models the tests, benches and e25 check — they all share
//! the model-checking substrate configuration: [`LatencyModel::Constant`]
//! latency, FIFO scheduling and no link faults, the deterministic regime
//! under which the explorer's snapshot/restore forking is exact (no RNG
//! stream is consumed by routing, so transitions commute with restore).
//!
//! [`LatencyModel::Constant`]: bne_net::LatencyModel::Constant

use crate::explorer::{Choice, ExploreConfig};
use crate::liar::BrachaLiar;
use crate::property::{Agreement, Property, StateView, Validity, Violation};
use crate::trace::CounterexampleTrace;
use crate::words::McWords;
use bne_byzantine::ben_or::BenOrMsg;
use bne_byzantine::bracha::BrachaMsg;
use bne_byzantine::choice::{shared_tap, ChoiceTap, SharedTap};
use bne_byzantine::paxos::PaxosMsg;
use bne_byzantine::{ProcId, Value};
use bne_net::{
    AsyncProcess, BenOrProcess, BrachaProcess, EventNet, LatencyModel, NetConfig, PaxosProcess,
};
use std::rc::Rc;

/// The deterministic substrate every checkable model runs on (see the
/// module docs).
pub fn mc_config() -> NetConfig {
    let mut cfg = NetConfig::lockstep(0);
    cfg.latency = LatencyModel::Constant(1);
    cfg
}

// ---------------------------------------------------------------------
// Bracha reliable broadcast
// ---------------------------------------------------------------------

/// Parameters of the checkable Bracha model: `n` participants, fault
/// budget `t`, process 0 broadcasting `input`, optionally with process
/// `n - 1` replaced by a tap-driven [`BrachaLiar`], and optionally with
/// the quorum thresholds overridden (the planted-bug hook).
#[derive(Debug, Clone)]
pub struct BrachaParams {
    /// Number of processes.
    pub n: usize,
    /// Fault budget the honest participants assume.
    pub t: usize,
    /// The broadcaster's input (process 0 broadcasts).
    pub input: Value,
    /// Replace process `n - 1` with a tap-driven liar.
    pub liar: bool,
    /// Ready-amplification quorum override (default `t + 1`).
    pub amp_quorum: usize,
    /// Delivery quorum override (default `2t + 1`).
    pub deliver_quorum: usize,
}

impl BrachaParams {
    /// The honest protocol at its standard quorums.
    pub fn new(n: usize, t: usize, input: Value) -> Self {
        BrachaParams {
            n,
            t,
            input,
            liar: false,
            amp_quorum: t + 1,
            deliver_quorum: 2 * t + 1,
        }
    }

    /// Replaces process `n - 1` with a tap-driven [`BrachaLiar`].
    pub fn with_liar(mut self) -> Self {
        self.liar = true;
        self
    }

    /// Overrides the quorum thresholds (the mutation hook: lowering the
    /// amplification quorum to `t` plants the forged-`Ready` bug the
    /// regression corpus replays).
    pub fn with_thresholds(mut self, amp_quorum: usize, deliver_quorum: usize) -> Self {
        self.amp_quorum = amp_quorum;
        self.deliver_quorum = deliver_quorum;
        self
    }

    /// The honest participants (everyone, minus the liar if present).
    pub fn honest(&self) -> Vec<ProcId> {
        (0..self.n - usize::from(self.liar)).collect()
    }

    /// RB agreement + validity over the honest participants. Validity is
    /// against the broadcaster's input — the broadcaster is honest in
    /// this model (the liar, when present, is process `n - 1`).
    pub fn properties(&self) -> Vec<Box<dyn Property>> {
        vec![
            Box::new(Agreement::new(self.honest())),
            Box::new(Validity::new(self.honest(), [self.input])),
        ]
    }

    /// The exploration configuration binding traces back to this
    /// scenario.
    pub fn explore_config(&self) -> ExploreConfig {
        ExploreConfig {
            // with every participant honest only the broadcaster's value
            // circulates and each handler is a threshold test over its
            // receipt *set*, so same-target deliveries commute — the
            // liar breaks that (a forged Echo(0) racing the third
            // Echo(1) decides which value gets amplified)
            confluent: !self.liar,
            scenario: "bracha".to_string(),
            params: self.to_params(),
            ..ExploreConfig::default()
        }
    }

    fn to_params(&self) -> Vec<(String, u64)> {
        vec![
            ("n".to_string(), self.n as u64),
            ("t".to_string(), self.t as u64),
            ("input".to_string(), self.input),
            ("liar".to_string(), u64::from(self.liar)),
            ("amp_quorum".to_string(), self.amp_quorum as u64),
            ("deliver_quorum".to_string(), self.deliver_quorum as u64),
        ]
    }

    fn from_params(params: &[(String, u64)]) -> Result<Self, String> {
        let get = |key: &str| param(params, key);
        Ok(BrachaParams {
            n: get("n")? as usize,
            t: get("t")? as usize,
            input: get("input")?,
            liar: get("liar")? != 0,
            amp_quorum: get("amp_quorum")? as usize,
            deliver_quorum: get("deliver_quorum")? as usize,
        })
    }
}

/// Builds the Bracha model network plus its shared choice tap.
pub fn bracha_net(params: &BrachaParams) -> (EventNet<BrachaMsg>, SharedTap) {
    let tap = shared_tap();
    let procs: Vec<Box<dyn AsyncProcess<Msg = BrachaMsg>>> = (0..params.n)
        .map(|id| -> Box<dyn AsyncProcess<Msg = BrachaMsg>> {
            if params.liar && id == params.n - 1 {
                Box::new(BrachaLiar::scripted(Rc::clone(&tap)))
            } else {
                Box::new(
                    BrachaProcess::new(params.t, 0, params.input)
                        .with_thresholds(params.amp_quorum, params.deliver_quorum),
                )
            }
        })
        .collect();
    (EventNet::new(procs, mc_config()), tap)
}

// ---------------------------------------------------------------------
// Ben-Or randomized consensus (tap coins)
// ---------------------------------------------------------------------

/// Parameters of the checkable Ben-Or model: `n` honest participants
/// with fault budget `t`, per-process binary preferences, and a round
/// cap bounding the coin space. Every coin flip routes through the
/// shared tap, so the explorer enumerates coin outcomes instead of
/// sampling them.
#[derive(Debug, Clone)]
pub struct BenOrParams {
    /// Number of processes (all honest in this model).
    pub n: usize,
    /// Fault budget the quorum arithmetic assumes.
    pub t: usize,
    /// Initial binary preference of each process.
    pub prefs: Vec<Value>,
    /// Round cap (processes halt undecided beyond it, bounding the
    /// search space).
    pub max_rounds: u32,
}

impl BenOrParams {
    /// `prefs[i]` is process `i`'s initial preference (must be binary).
    pub fn new(t: usize, prefs: Vec<Value>, max_rounds: u32) -> Self {
        assert!(prefs.iter().all(|&p| p <= 1), "Ben-Or is binary");
        BenOrParams {
            n: prefs.len(),
            t,
            prefs,
            max_rounds,
        }
    }

    /// Consensus agreement + validity (decide only values that were
    /// somebody's input) over all processes.
    pub fn properties(&self) -> Vec<Box<dyn Property>> {
        let all: Vec<ProcId> = (0..self.n).collect();
        vec![
            Box::new(Agreement::new(all.clone())),
            Box::new(Validity::new(all, self.prefs.iter().copied())),
        ]
    }

    /// The exploration configuration binding traces back to this
    /// scenario.
    pub fn explore_config(&self) -> ExploreConfig {
        ExploreConfig {
            scenario: "ben_or".to_string(),
            params: self.to_params(),
            ..ExploreConfig::default()
        }
    }

    fn to_params(&self) -> Vec<(String, u64)> {
        let mask = self
            .prefs
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &p)| m | (p << i));
        vec![
            ("n".to_string(), self.n as u64),
            ("t".to_string(), self.t as u64),
            ("prefs".to_string(), mask),
            ("max_rounds".to_string(), u64::from(self.max_rounds)),
        ]
    }

    fn from_params(params: &[(String, u64)]) -> Result<Self, String> {
        let n = param(params, "n")? as usize;
        let mask = param(params, "prefs")?;
        Ok(BenOrParams {
            n,
            t: param(params, "t")? as usize,
            prefs: (0..n).map(|i| (mask >> i) & 1).collect(),
            max_rounds: param(params, "max_rounds")? as u32,
        })
    }
}

/// Builds the Ben-Or model network plus the shared coin tap.
pub fn ben_or_net(params: &BenOrParams) -> (EventNet<BenOrMsg>, SharedTap) {
    let tap = shared_tap();
    let procs: Vec<Box<dyn AsyncProcess<Msg = BenOrMsg>>> = params
        .prefs
        .iter()
        .enumerate()
        .map(|(id, &pref)| -> Box<dyn AsyncProcess<Msg = BenOrMsg>> {
            // the coin seed is irrelevant: every flip is drawn from the
            // tap, which is what makes the coin space enumerable
            Box::new(
                BenOrProcess::new(params.t, pref, params.max_rounds, id as u64)
                    .with_coin_tap(Rc::clone(&tap)),
            )
        })
        .collect();
    (EventNet::new(procs, mc_config()), tap)
}

// ---------------------------------------------------------------------
// Paxos under a crash budget
// ---------------------------------------------------------------------

/// Parameters of the checkable Paxos model: `n` participants proposing
/// binary inputs, timeout-driven ballot escalation bounded by
/// `max_timeouts`, and a schedule adversary allowed to crash-stop up to
/// `crash_budget` processes at any point.
#[derive(Debug, Clone)]
pub struct PaxosParams {
    /// Number of processes.
    pub n: usize,
    /// Initial proposal of each process (binary, packed like Ben-Or
    /// preferences).
    pub inputs: Vec<Value>,
    /// Base retry-timer interval (staggered by process id).
    pub timeout_ticks: u64,
    /// Escalation cap per process, bounding the ballot space.
    pub max_timeouts: u32,
    /// How many crash-stop faults the explorer may inject (`f`).
    pub crash_budget: usize,
}

impl PaxosParams {
    /// `inputs[i]` is process `i`'s proposal (binary).
    pub fn new(inputs: Vec<Value>, timeout_ticks: u64, max_timeouts: u32) -> Self {
        assert!(inputs.iter().all(|&p| p <= 1), "keep the model binary");
        PaxosParams {
            n: inputs.len(),
            inputs,
            timeout_ticks,
            max_timeouts,
            crash_budget: 0,
        }
    }

    /// Allows the explorer to crash-stop up to `f` processes.
    pub fn with_crash_budget(mut self, f: usize) -> Self {
        self.crash_budget = f;
        self
    }

    /// Uniform agreement + validity over **all** processes: even a
    /// process that decides and then crashes binds the others.
    pub fn properties(&self) -> Vec<Box<dyn Property>> {
        let all: Vec<ProcId> = (0..self.n).collect();
        vec![
            Box::new(Agreement::new(all.clone())),
            Box::new(Validity::new(all, self.inputs.iter().copied())),
        ]
    }

    /// The exploration configuration binding traces back to this
    /// scenario (crash budget and crashable set included).
    pub fn explore_config(&self) -> ExploreConfig {
        ExploreConfig {
            crash_budget: self.crash_budget,
            crashable: (0..self.n).collect(),
            scenario: "paxos".to_string(),
            params: self.to_params(),
            ..ExploreConfig::default()
        }
    }

    fn to_params(&self) -> Vec<(String, u64)> {
        let mask = self
            .inputs
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &p)| m | (p << i));
        vec![
            ("n".to_string(), self.n as u64),
            ("inputs".to_string(), mask),
            ("timeout_ticks".to_string(), self.timeout_ticks),
            ("max_timeouts".to_string(), u64::from(self.max_timeouts)),
            ("crash_budget".to_string(), self.crash_budget as u64),
        ]
    }

    fn from_params(params: &[(String, u64)]) -> Result<Self, String> {
        let n = param(params, "n")? as usize;
        let mask = param(params, "inputs")?;
        Ok(PaxosParams {
            n,
            inputs: (0..n).map(|i| (mask >> i) & 1).collect(),
            timeout_ticks: param(params, "timeout_ticks")?,
            max_timeouts: param(params, "max_timeouts")? as u32,
            crash_budget: param(params, "crash_budget")? as usize,
        })
    }
}

/// Builds the Paxos model network plus a (never-drawn-from) tap, so the
/// replay plumbing is uniform across scenarios.
pub fn paxos_net(params: &PaxosParams) -> (EventNet<PaxosMsg>, SharedTap) {
    let procs: Vec<Box<dyn AsyncProcess<Msg = PaxosMsg>>> = params
        .inputs
        .iter()
        .map(|&input| -> Box<dyn AsyncProcess<Msg = PaxosMsg>> {
            Box::new(PaxosProcess::new(
                input,
                params.timeout_ticks,
                params.max_timeouts,
            ))
        })
        .collect();
    (EventNet::new(procs, mc_config()), shared_tap())
}

// ---------------------------------------------------------------------
// Trace replay
// ---------------------------------------------------------------------

/// What replaying a trace on the production runtime observed.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The violation re-observed at the end of the replay (`None` means
    /// the trace did **not** reproduce — a regression test failure).
    pub violation: Option<Violation>,
    /// Transitions replayed.
    pub events: usize,
}

/// Replays a serialized counterexample on the production [`EventNet`]:
/// rebuilds the named scenario, primes the choice tap with the recorded
/// script, re-executes the recorded choices, and re-checks the
/// scenario's properties on the final state.
pub fn replay_trace(trace: &CounterexampleTrace) -> Result<ReplayReport, String> {
    match trace.scenario.as_str() {
        "bracha" => {
            let params = BrachaParams::from_params(&trace.params)?;
            let (net, tap) = bracha_net(&params);
            replay_on(net, tap, trace, params.properties())
        }
        "ben_or" => {
            let params = BenOrParams::from_params(&trace.params)?;
            let (net, tap) = ben_or_net(&params);
            replay_on(net, tap, trace, params.properties())
        }
        "paxos" => {
            let params = PaxosParams::from_params(&trace.params)?;
            let (net, tap) = paxos_net(&params);
            replay_on(net, tap, trace, params.properties())
        }
        other => Err(format!("unknown scenario {other:?}")),
    }
}

fn replay_on<M: Clone + McWords>(
    mut net: EventNet<M>,
    tap: SharedTap,
    trace: &CounterexampleTrace,
    properties: Vec<Box<dyn Property>>,
) -> Result<ReplayReport, String> {
    tap.borrow_mut()
        .restore(&ChoiceTap::scripted(trace.script.clone()));
    for (i, choice) in trace.choices.iter().enumerate() {
        match choice {
            Choice::Event { seq, kind } => {
                let events = net.enabled_events();
                let ev = events
                    .iter()
                    .find(|e| e.seq == *seq)
                    .ok_or_else(|| format!("step {i}: no pending event with seq {seq}"))?;
                if ev.kind != *kind {
                    return Err(format!(
                        "step {i}: seq {seq} is {:?}, trace says {:?}",
                        ev.kind, kind
                    ));
                }
                if !net.step_chosen(ev) {
                    return Err(format!("step {i}: event seq {seq} refused to dispatch"));
                }
            }
            Choice::Crash { proc } => net.inject_crash(*proc),
        }
    }
    if !tap.borrow().demands().is_empty() {
        return Err("script too short: replay drew past its end".to_string());
    }
    let decisions = net.decisions();
    let crashed: Vec<bool> = (0..net.num_processes())
        .map(|p| net.is_crashed(p))
        .collect();
    let view = StateView {
        decisions: &decisions,
        crashed: &crashed,
    };
    let violation = properties.iter().find_map(|p| {
        p.check(&view).map(|detail| Violation {
            property: p.name().to_string(),
            detail,
        })
    });
    Ok(ReplayReport {
        violation,
        events: trace.choices.len(),
    })
}

fn param(params: &[(String, u64)], key: &str) -> Result<u64, String> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing scenario parameter {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, Verdict};

    #[test]
    fn params_round_trip_through_their_integer_encoding() {
        let b = BrachaParams::new(4, 1, 1).with_liar().with_thresholds(1, 3);
        let b2 = BrachaParams::from_params(&b.to_params()).unwrap();
        assert_eq!(b2.to_params(), b.to_params());

        let o = BenOrParams::new(1, vec![1, 0, 1, 0], 2);
        let o2 = BenOrParams::from_params(&o.to_params()).unwrap();
        assert_eq!(o2.to_params(), o.to_params());
        assert_eq!(o2.prefs, o.prefs);

        let p = PaxosParams::new(vec![0, 1, 1], 8, 1).with_crash_budget(1);
        let p2 = PaxosParams::from_params(&p.to_params()).unwrap();
        assert_eq!(p2.to_params(), p.to_params());
    }

    #[test]
    fn planted_amp_bug_is_found_and_replays_on_the_production_net() {
        // amplification quorum lowered from t+1 = 2 to t = 1: one forged
        // Ready(0) converts an honest process, and honest amplification
        // snowballs to a delivery of 0 against the broadcaster's 1
        let params = BrachaParams::new(4, 1, 1).with_liar().with_thresholds(1, 3);
        let (net, tap) = bracha_net(&params);
        let report = Explorer::new(net, tap, params.properties(), params.explore_config()).run();
        let Verdict::Violated(trace) = report.verdict else {
            panic!("expected a violation, got {:?}", report.verdict);
        };
        assert_eq!(trace.property, "validity");
        let replay = replay_trace(&trace).unwrap();
        assert!(
            replay.violation.is_some(),
            "trace must reproduce on the production runtime"
        );
        // serialization round-trip preserves replayability
        let back = CounterexampleTrace::from_json(&trace.to_json()).unwrap();
        assert!(replay_trace(&back).unwrap().violation.is_some());
    }
}
