//! Canonical word encodings for fingerprinting.
//!
//! The explorer's visited-state set stores **exact** `Vec<u64>` keys:
//! two states share a key iff their canonical encodings are equal
//! word-for-word. Hashes are deliberately not used as keys — a collision
//! would silently merge two distinct states, prune a reachable
//! successor, and turn a "proven" verdict into wishful thinking.
//!
//! Process state is encoded by [`bne_net::AsyncProcess::state_words`];
//! this module supplies the matching encoding for the *pending messages*
//! still in flight, which are just as much a part of the state as any
//! tally (two runs with identical process states but different queues
//! have different futures).

use bne_byzantine::ben_or::BenOrMsg;
use bne_byzantine::bracha::BrachaMsg;
use bne_byzantine::paxos::PaxosMsg;

/// A message with an exact, canonical `u64`-word encoding.
///
/// Requirements: equal messages produce equal word sequences, distinct
/// messages produce distinct ones (the encodings below prefix a variant
/// tag and lay fields out positionally, so both hold by construction).
pub trait McWords {
    /// Appends this message's canonical words to `out`.
    fn words(&self, out: &mut Vec<u64>);
}

impl McWords for BrachaMsg {
    fn words(&self, out: &mut Vec<u64>) {
        match self {
            BrachaMsg::Init(v) => out.extend([0, *v]),
            BrachaMsg::Echo(v) => out.extend([1, *v]),
            BrachaMsg::Ready(v) => out.extend([2, *v]),
        }
    }
}

impl McWords for BenOrMsg {
    fn words(&self, out: &mut Vec<u64>) {
        match self {
            BenOrMsg::Report { round, value } => out.extend([0, u64::from(*round), *value]),
            BenOrMsg::Proposal { round, value } => out.extend([
                1,
                u64::from(*round),
                u64::from(value.is_some()),
                value.unwrap_or(0),
            ]),
            BenOrMsg::Decided { value } => out.extend([2, *value]),
        }
    }
}

impl McWords for PaxosMsg {
    fn words(&self, out: &mut Vec<u64>) {
        match self {
            PaxosMsg::P1a { ballot } => out.extend([0, *ballot]),
            PaxosMsg::P1b {
                ballot,
                acc_ballot,
                acc_value,
            } => out.extend([
                1,
                *ballot,
                *acc_ballot,
                u64::from(acc_value.is_some()),
                acc_value.unwrap_or(0),
            ]),
            PaxosMsg::P2a { ballot, value } => out.extend([2, *ballot, *value]),
            PaxosMsg::P2b { ballot, value } => out.extend([3, *ballot, *value]),
            PaxosMsg::Decided { ballot, value } => out.extend([4, *ballot, *value]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<M: McWords>(m: &M) -> Vec<u64> {
        let mut out = Vec::new();
        m.words(&mut out);
        out
    }

    #[test]
    fn distinct_messages_encode_distinctly() {
        let msgs = [
            BrachaMsg::Init(0),
            BrachaMsg::Init(1),
            BrachaMsg::Echo(0),
            BrachaMsg::Echo(1),
            BrachaMsg::Ready(0),
            BrachaMsg::Ready(1),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for (j, b) in msgs.iter().enumerate() {
                assert_eq!(enc(a) == enc(b), i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn option_fields_cannot_alias() {
        // None and Some(0) must not encode identically.
        let none = BenOrMsg::Proposal {
            round: 1,
            value: None,
        };
        let zero = BenOrMsg::Proposal {
            round: 1,
            value: Some(0),
        };
        assert_ne!(enc(&none), enc(&zero));
    }
}
