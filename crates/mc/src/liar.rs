//! A tap-driven Byzantine reliable-broadcast participant.
//!
//! e17 fixed its Byzantine strategy **up front** (a colluding ledger of
//! canned lies); the model checker instead *searches* the lie space:
//! [`BrachaLiar`] draws each lie through the shared
//! [`ChoiceTap`](bne_byzantine::choice::ChoiceTap), so the explorer
//! forks on every possible lie exactly as it forks on every possible
//! delivery order. A verdict therefore quantifies over the product
//! space schedule × lies.
//!
//! The lie space is the per-target one-shot menu (`Lie`): on the first
//! event the liar receives (for a non-broadcaster liar that is the
//! broadcaster's `Init`), it draws one lie per other process — stay
//! silent, or send a forged `Echo`/`Ready` for either binary value —
//! and then goes quiet. One forged quorum message per target is exactly
//! the power needed to exercise Bracha's quorum arithmetic: with honest
//! thresholds the explorer proves (exhaustively, at n = 3 — the n = 4
//! lie-schedule product is out of exact-dedup range) that no lie
//! combination breaks agreement or validity, and with the
//! ready-amplification quorum lowered from `t + 1` to `t` it finds the
//! forged-`Ready` amplification chain as a counterexample at n = 4.

use bne_byzantine::bracha::BrachaMsg;
use bne_byzantine::choice::SharedTap;
use bne_byzantine::ProcId;
use bne_net::{AsyncProcess, NetCtx};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// One drawn lie, targeted at a single process.
///
/// Domain size 5 — the explorer enumerates it, the seeded variant
/// samples it uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lie {
    Silent,
    Echo(u64),
    Ready(u64),
}

impl Lie {
    const DOMAIN: u64 = 5;

    fn decode(v: u64) -> Lie {
        match v {
            0 => Lie::Silent,
            1 => Lie::Echo(0),
            2 => Lie::Echo(1),
            3 => Lie::Ready(0),
            _ => Lie::Ready(1),
        }
    }

    fn message(self) -> Option<BrachaMsg> {
        match self {
            Lie::Silent => None,
            Lie::Echo(v) => Some(BrachaMsg::Echo(v)),
            Lie::Ready(v) => Some(BrachaMsg::Ready(v)),
        }
    }
}

/// Where the liar's lies come from.
enum LieSource {
    /// Drawn through the shared choice tap — the explorer enumerates
    /// them (and they become part of the counterexample script).
    Tap(SharedTap),
    /// Drawn from a seeded RNG — the production / sampling configuration
    /// the checker-vs-sampling comparison runs.
    Seeded(StdRng),
}

/// A Byzantine Bracha participant whose lies are search choices.
///
/// See the module docs for the lie model. The tap-driven form supports
/// [`AsyncProcess::fork`] and [`AsyncProcess::state_words`] (its only
/// hidden state is the "already lied" flag — the drawn lies live in the
/// event queue and the tap script, both fingerprinted elsewhere), so it
/// is usable under exhaustive exploration; the seeded form carries an
/// RNG, which has no canonical encoding, and is meant for sampled runs.
pub struct BrachaLiar {
    source: LieSource,
    lied: bool,
}

impl BrachaLiar {
    /// A liar drawing lies from the shared `tap` (exhaustive search).
    pub fn scripted(tap: SharedTap) -> Self {
        BrachaLiar {
            source: LieSource::Tap(tap),
            lied: false,
        }
    }

    /// A liar drawing lies from a seeded RNG (sampled runs). Derive the
    /// seed per replica via [`bne_sim::derive_seed`] like any other
    /// stream.
    pub fn seeded(seed: u64) -> Self {
        BrachaLiar {
            source: LieSource::Seeded(StdRng::seed_from_u64(seed)),
            lied: false,
        }
    }

    fn draw(&mut self) -> u64 {
        match &mut self.source {
            LieSource::Tap(tap) => tap.borrow_mut().draw(Lie::DOMAIN),
            LieSource::Seeded(rng) => rng.random_range(0..Lie::DOMAIN),
        }
    }
}

impl AsyncProcess for BrachaLiar {
    type Msg = BrachaMsg;

    fn on_start(&mut self, _ctx: &mut NetCtx<BrachaMsg>) {
        // lies are drawn on the first *event*, not at startup: startup
        // runs during network construction, before the explorer can
        // snapshot, so choices made there could not be forked on
    }

    fn on_message(&mut self, _src: ProcId, _msg: BrachaMsg, ctx: &mut NetCtx<BrachaMsg>) {
        if self.lied {
            return; // one salvo of lies, then silence
        }
        self.lied = true;
        let me = ctx.id();
        for dst in 0..ctx.n() {
            if dst == me {
                continue;
            }
            if let Some(m) = Lie::decode(self.draw()).message() {
                ctx.send(dst, m);
            }
        }
    }

    fn decision(&self) -> Option<u64> {
        None // a liar's "decision" is meaningless; properties skip it
    }

    fn fork(&self) -> Option<Box<dyn AsyncProcess<Msg = BrachaMsg>>> {
        let source = match &self.source {
            LieSource::Tap(tap) => LieSource::Tap(Rc::clone(tap)),
            LieSource::Seeded(rng) => LieSource::Seeded(rng.clone()),
        };
        Some(Box::new(BrachaLiar {
            source,
            lied: self.lied,
        }))
    }

    fn state_words(&self) -> Option<Vec<u64>> {
        match self.source {
            // the drawn lies are visible in the queue and the tap script;
            // the only residual state is whether the salvo happened
            LieSource::Tap(_) => Some(vec![u64::from(self.lied)]),
            // an RNG's future draws cannot be canonically encoded
            LieSource::Seeded(_) => None,
        }
    }

    fn quiescent(&self) -> bool {
        self.lied // one salvo, then every further message is ignored
    }

    fn absorbs(&self, _src: ProcId, _msg: &BrachaMsg) -> bool {
        self.lied // ditto, per delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bne_byzantine::choice::ChoiceTap;
    use std::cell::RefCell;

    #[test]
    fn lie_menu_covers_silence_and_both_forged_quorum_messages() {
        let menu: Vec<Option<BrachaMsg>> =
            (0..Lie::DOMAIN).map(|v| Lie::decode(v).message()).collect();
        assert_eq!(menu[0], None);
        assert!(menu.contains(&Some(BrachaMsg::Echo(0))));
        assert!(menu.contains(&Some(BrachaMsg::Echo(1))));
        assert!(menu.contains(&Some(BrachaMsg::Ready(0))));
        assert!(menu.contains(&Some(BrachaMsg::Ready(1))));
    }

    /// Pokes the liar (process 2) with one `Init` at start, so its lie
    /// salvo is observable through the event queue.
    struct Kick;

    impl AsyncProcess for Kick {
        type Msg = BrachaMsg;
        fn on_start(&mut self, ctx: &mut NetCtx<BrachaMsg>) {
            ctx.send(2, BrachaMsg::Init(1));
        }
        fn on_message(&mut self, _src: ProcId, _msg: BrachaMsg, _ctx: &mut NetCtx<BrachaMsg>) {}
        fn decision(&self) -> Option<u64> {
            None
        }
    }

    #[test]
    fn scripted_liar_sends_exactly_the_scripted_salvo_once() {
        use bne_net::{EnabledKind, EventNet, IdleProcess, NetConfig};

        // script: Ready(0) to proc 0, silence to proc 1 (self is 2),
        // Echo(1) to proc 3
        let tap: SharedTap = Rc::new(RefCell::new(ChoiceTap::scripted(vec![3, 0, 2])));
        let procs: Vec<Box<dyn AsyncProcess<Msg = BrachaMsg>>> = vec![
            Box::new(Kick),
            Box::new(IdleProcess::new()),
            Box::new(BrachaLiar::scripted(Rc::clone(&tap))),
            Box::new(IdleProcess::new()),
        ];
        let mut net = EventNet::new(procs, NetConfig::lockstep(0));
        assert!(net.step(), "deliver the Init poke to the liar");
        let mut sent: Vec<(ProcId, BrachaMsg)> = net
            .enabled_events()
            .iter()
            .map(|ev| match ev.kind {
                EnabledKind::Deliver { src, dst } => {
                    assert_eq!(src, 2);
                    (dst, *net.event_msg(ev).unwrap())
                }
                ref k => panic!("unexpected pending event {k:?}"),
            })
            .collect();
        sent.sort();
        assert_eq!(
            sent,
            vec![(0, BrachaMsg::Ready(0)), (3, BrachaMsg::Echo(1))]
        );
        assert!(tap.borrow().demands().is_empty());
        // the salvo is one-shot: draining the rest produces no new lies
        net.run(100);
        assert_eq!(net.pending_events(), 0);
    }
}
