//! Safety properties checked at every explored state.
//!
//! A [`Property`] looks at a [`StateView`] — the per-process decision
//! vector plus crash flags — and reports a violation description, or
//! `None` if the state is fine. The explorer evaluates every property at
//! every state it visits, so the first violation found sits at minimal
//! depth along the search order (short counterexamples by construction).
//!
//! All stock properties here are **stable**: once decisions are made
//! they are never retracted by any protocol in this workspace, so a
//! violated state stays violated along every extension. Stability is
//! what makes checking under partial-order reduction sound — a deferred
//! independent event can never un-violate agreement (see
//! [`crate::explorer`]).

use bne_byzantine::{ProcId, Value};
use std::collections::BTreeSet;

/// The slice of runtime state a property may look at.
pub struct StateView<'a> {
    /// Each process's decision, `None` while undecided
    /// ([`bne_net::EventNet::decisions`]).
    pub decisions: &'a [Option<Value>],
    /// Which processes are currently crashed
    /// ([`bne_net::EventNet::is_crashed`]).
    pub crashed: &'a [bool],
}

/// A property violation: which property, and a human-readable witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated property ([`Property::name`]).
    pub property: String,
    /// What went wrong, naming the offending processes and values.
    pub detail: String,
}

/// A safety property evaluated at every explored state.
///
/// Implementations must be **stable** (violations persist along every
/// extension of the run) for exploration under partial-order reduction
/// to be sound; both stock properties qualify because decisions are
/// irrevocable.
pub trait Property {
    /// Short stable name, recorded in counterexample traces.
    fn name(&self) -> &'static str;
    /// `Some(detail)` iff the state violates the property.
    fn check(&self, view: &StateView<'_>) -> Option<String>;
}

/// Agreement: no two of the listed processes decide different values.
///
/// For Byzantine models list only the honest processes (a liar's
/// "decision" is meaningless); for crash models list everyone — decided
/// values of processes that later crash still count, which makes this
/// **uniform** agreement, the stronger property Paxos actually provides.
#[derive(Debug, Clone)]
pub struct Agreement {
    /// The processes whose decisions must agree.
    pub procs: Vec<ProcId>,
}

impl Agreement {
    /// Agreement among `procs`.
    pub fn new(procs: Vec<ProcId>) -> Self {
        Agreement { procs }
    }
}

impl Property for Agreement {
    fn name(&self) -> &'static str {
        "agreement"
    }

    fn check(&self, view: &StateView<'_>) -> Option<String> {
        let mut first: Option<(ProcId, Value)> = None;
        for &p in &self.procs {
            let Some(v) = view.decisions.get(p).copied().flatten() else {
                continue;
            };
            match first {
                None => first = Some((p, v)),
                Some((q, w)) if w != v => {
                    return Some(format!(
                        "process {q} decided {w} but process {p} decided {v}"
                    ))
                }
                Some(_) => {}
            }
        }
        None
    }
}

/// Validity: every decided value of the listed processes lies in the
/// allowed set.
///
/// Instances cover the classical validity conditions at once:
///
/// * **RB validity** — the broadcaster is honest with input `v`, so
///   `allowed = {v}`: an honest process delivering anything else is the
///   witness the planted-quorum-bug corpus replays;
/// * **consensus validity** — `allowed` = the set of honest inputs;
/// * **OM validity (IC2)** — the general is honest with order `v`, so
///   `allowed = {v}` for every honest lieutenant.
#[derive(Debug, Clone)]
pub struct Validity {
    /// The processes whose decisions are constrained.
    pub procs: Vec<ProcId>,
    /// The set of permissible decision values.
    pub allowed: BTreeSet<Value>,
}

impl Validity {
    /// Validity of `procs`' decisions against `allowed`.
    pub fn new(procs: Vec<ProcId>, allowed: impl IntoIterator<Item = Value>) -> Self {
        Validity {
            procs,
            allowed: allowed.into_iter().collect(),
        }
    }
}

impl Property for Validity {
    fn name(&self) -> &'static str {
        "validity"
    }

    fn check(&self, view: &StateView<'_>) -> Option<String> {
        for &p in &self.procs {
            if let Some(v) = view.decisions.get(p).copied().flatten() {
                if !self.allowed.contains(&v) {
                    return Some(format!(
                        "process {p} decided {v}, outside the valid set {:?}",
                        self.allowed
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_flags_split_decisions_and_ignores_unlisted() {
        let prop = Agreement::new(vec![0, 1, 2]);
        let crashed = [false; 4];
        let ok = [Some(1), None, Some(1), Some(0)];
        assert!(prop
            .check(&StateView {
                decisions: &ok,
                crashed: &crashed,
            })
            .is_none());
        let bad = [Some(1), Some(0), None, None];
        assert!(prop
            .check(&StateView {
                decisions: &bad,
                crashed: &crashed,
            })
            .is_some());
    }

    #[test]
    fn validity_flags_out_of_set_decisions() {
        let prop = Validity::new(vec![0, 1], [1]);
        let crashed = [false; 2];
        assert!(prop
            .check(&StateView {
                decisions: &[Some(1), None],
                crashed: &crashed,
            })
            .is_none());
        let v = prop
            .check(&StateView {
                decisions: &[Some(1), Some(0)],
                crashed: &crashed,
            })
            .unwrap();
        assert!(v.contains("process 1"), "{v}");
    }
}
