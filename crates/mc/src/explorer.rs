//! The depth-first schedule-space explorer.
//!
//! # Search model
//!
//! A state is the whole runtime: process states, the pending-event
//! multiset, crash flags and the remaining crash budget. Transitions
//! are:
//!
//! * dispatching one pending event ([`bne_net::EventNet::step_chosen`]),
//!   possibly refined by **tap choices** — if the handler drew from the
//!   shared [`ChoiceTap`] past the end
//!   of its script (a coin flip, a Byzantine lie), the transition is
//!   re-run once per candidate value of the first uncovered draw until
//!   every draw is covered ("fork on demand");
//! * crashing one live process ([`bne_net::EventNet::inject_crash`]),
//!   while the crash budget lasts.
//!
//! The explorer requires a deterministic substrate so that transitions
//! commute with snapshot/restore: [`LatencyModel::Constant`] latency,
//! the [`SchedulerPolicy::Fifo`] scheduler and no link faults (none of
//! which draw from an RNG). The [`crate::scenario`] constructors build
//! exactly such configurations.
//!
//! # Exact deduplication
//!
//! Visited states are stored as **exact canonical keys** (`Vec<u64>`):
//! per-process words from [`bne_net::AsyncProcess::state_words`] plus
//! the sorted pending-event multiset encoded via [`crate::words::McWords`]
//! plus the crash state. Equal keys mean equal states — keys are
//! compared in full, so a hash collision costs a probe, never a
//! soundness hole. Virtual times, tiebreaks and sequence numbers are
//! deliberately **excluded**: they affect when the runtime says things
//! happen, not what can happen next, and folding them in would shatter
//! the state space into timestamp-distinct copies. For the same reason
//! two pending events with identical canonical content are
//! *interchangeable*, and the explorer dispatches only one
//! representative per content class.
//!
//! # Partial-order reduction
//!
//! Two pending events targeting *different* processes commute: each
//! mutates only its target's state and appends its own sends, so
//! executing them in either order reaches the same state. The explorer
//! exploits that with two complementary, independently sound devices
//! (both off when [`ExploreConfig::por`] is false):
//!
//! **Sleep sets** (Godefroid), keyed on the `(time, tie, seq)`
//! exploration order. After a transition `t` is explored at a state, the
//! subtrees of `t`'s later siblings carry `t` in their *sleep set*: as
//! long as every transition taken since stays independent of `t`
//! (different target), re-exploring `t` would commute back into `t`'s
//! own subtree, so it is skipped. A transition that *conflicts* with a
//! slept `t` (same target process — this includes a newly created
//! delivery racing `t` for its receiver, the order that breaks quorum
//! protocols) removes `t` from the sleep set, and a transition that
//! *creates* a fresh event with `t`'s exact content does too (the copy
//! is a new transition, not the explored one). Sleep sets prune
//! redundant interleavings but still visit **every reachable state**
//! along some representative ordering, so checking properties at every
//! visited state remains a proof. They interact with deduplication
//! through subset caching: each visited key remembers the sleep sets it
//! was expanded under, and a revisit is pruned only when some remembered
//! sleep set is a subset of the current one (the earlier expansion
//! explored a superset of what this visit would).
//!
//! **Inert-event draining.** A delivery can be *permanently inert*
//! three ways: its target is crashed (the runtime absorbs it), its
//! target reports itself forever quiet
//! ([`bne_net::AsyncProcess::quiescent`] — e.g. a Bracha participant
//! after `echoed && readied && delivered`, whose remaining vote-set
//! inserts commute), or the target declares that specific message a
//! permanent behavioral no-op ([`bne_net::AsyncProcess::absorbs`] —
//! duplicate votes, messages whose rule sits behind an already-set
//! one-shot flag). An inert delivery commutes with *every* other
//! transition, present or future, and is invisible to the properties,
//! so the singleton containing the oldest such delivery is a persistent
//! set: the explorer dispatches it alone instead of interleaving it
//! against live traffic. This is what actually shrinks
//! the visited-state count (sleep sets alone reduce transitions, not
//! states): straggler traffic to finished processes is linearized. The
//! claim a `quiescent` override makes is a soundness obligation; the
//! POR-vs-full property tests in `tests/` compare verdicts and terminal
//! decision vectors against the unreduced search to guard it. Draining
//! is suppressed for processes the crash adversary could still kill
//! (a crash does not commute with deliveries to its victim) and for
//! crashed processes with a pending recovery.
//!
//! **Confluent models.** A scenario may additionally vouch (via
//! [`ExploreConfig::confluent`]) that *any* two deliveries to the same
//! process commute — true for single-valued set-semantics protocols
//! like honest Bracha. Combined with cross-process commutation that
//! makes the oldest pending delivery a singleton persistent set
//! everywhere, collapsing the proof to one representative execution;
//! see the flag's documentation for the soundness argument and its
//! limits.
//!
//! The one liveness-of-the-search caveat is the classical *ignoring
//! problem*: a reduction may starve a class forever around a state-graph
//! cycle. These protocol graphs are acyclic (every transition consumes
//! an event and quorum state only grows), but the explorer does not take
//! that on faith — it tracks the DFS stack, counts any back edge, and
//! degrades the verdict to [`Verdict::Truncated`] if a cycle shows up
//! under POR.
//!
//! [`LatencyModel::Constant`]: bne_net::LatencyModel::Constant
//! [`SchedulerPolicy::Fifo`]: bne_net::SchedulerPolicy::Fifo

use crate::property::{Property, StateView, Violation};
use crate::trace::CounterexampleTrace;
use crate::words::McWords;
use bne_byzantine::choice::{ChoiceTap, SharedTap};
use bne_byzantine::{ProcId, Value};
use bne_net::{EnabledEvent, EnabledKind, EventNet, NetSnapshot};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One choice along an execution path — the replayable unit of a
/// counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Choice {
    /// Dispatch the pending event with this sequence number. The kind is
    /// recorded redundantly so traces are human-readable and replay can
    /// cross-check it.
    Event {
        /// The chosen event's unique sequence number.
        seq: u64,
        /// What the event was (delivery, timer, …).
        kind: EnabledKind,
    },
    /// Crash this process, crash-stop style.
    Crash {
        /// The process to kill.
        proc: ProcId,
    },
}

/// A transition's canonical identity: the content encoding of a pending
/// event (tag, endpoints, message words — exactly the per-event
/// component of the state fingerprint), or `[CRASH_TAG, proc]` for a
/// crash choice. Content-based (not sequence-number-based) so that
/// identities line up across different paths to the same state.
type TransId = Vec<u64>;

/// Tag distinguishing injected-crash transitions from event encodings
/// (whose first word is a small kind tag).
const CRASH_TAG: u64 = u64::MAX;

/// Exploration limits and options.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Enable partial-order reduction (sleep sets + quiescence
    /// draining — see the module docs).
    pub por: bool,
    /// Model-level guarantee that **any two deliveries to the same
    /// process commute**: dispatching them in either order yields the
    /// same process state and the same sends. True for single-valued
    /// set-semantics protocols — honest Bracha is the stock example:
    /// with no Byzantine participant only the broadcaster's value ever
    /// circulates, and every handler rule is a monotone threshold test
    /// over the *set* of receipts, so receipt order is immaterial. Under
    /// this guarantee (plus the always-true cross-process commutation)
    /// the oldest pending delivery is a singleton persistent set and the
    /// explorer drains it as the sole successor, collapsing the
    /// interleaving space to one representative execution; agreement and
    /// validity are stable properties, so any violation reachable by
    /// some order is still reached. The flag is the *scenario's* claim
    /// about its protocol, not something the explorer can check — assert
    /// it only when the argument above applies (never with a liar or
    /// mixed inputs), and keep it covered by POR-vs-full comparison
    /// tests. Draining still defers to pending faults, crash-adversary
    /// targets and pending timers for the same process, which the
    /// guarantee says nothing about.
    pub confluent: bool,
    /// How many crash-stop faults the schedule adversary may inject.
    pub crash_budget: usize,
    /// Which processes the crash adversary may kill (ignored when the
    /// budget is zero).
    pub crashable: Vec<ProcId>,
    /// Abort ([`Verdict::Truncated`]) after visiting this many states.
    pub max_states: u64,
    /// Abort ([`Verdict::Truncated`]) beyond this search depth.
    pub max_depth: usize,
    /// Scenario name recorded into counterexample traces (must name a
    /// [`crate::scenario`] registry entry for replay to work).
    pub scenario: String,
    /// Scenario parameters recorded into counterexample traces.
    pub params: Vec<(String, u64)>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            por: true,
            confluent: false,
            crash_budget: 0,
            crashable: Vec::new(),
            max_states: 4_000_000,
            max_depth: 4_096,
            scenario: String::new(),
            params: Vec::new(),
        }
    }
}

/// The explorer's final answer.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every reachable state satisfies every property: for this model,
    /// the properties are **proved**, not sampled.
    Proven,
    /// A reachable state violates a property; the trace replays the
    /// violation deterministically on a production net.
    Violated(Box<CounterexampleTrace>),
    /// Exploration was cut short (state/depth limit, or a cycle under
    /// POR) — no claim either way beyond the states actually visited.
    Truncated(String),
}

/// Everything the search measured.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The verdict (see [`Verdict`]).
    pub verdict: Verdict,
    /// Distinct states visited.
    pub states: u64,
    /// Transitions executed (including tap-refinement re-runs).
    pub transitions: u64,
    /// Terminal (fully drained) states reached.
    pub terminals: u64,
    /// Deepest point of the search.
    pub max_depth_seen: usize,
    /// Back edges observed on the DFS stack (always 0 for these
    /// protocols; nonzero degrades the verdict under POR).
    pub cycles: u64,
    /// The distinct per-process decision vectors over all terminal
    /// states — the observable outcomes of the model, used by the POR
    /// soundness property tests.
    pub decision_vectors: BTreeSet<Vec<Option<Value>>>,
}

enum Stop {
    Violation(Box<CounterexampleTrace>),
    Limit(String),
}

/// The exhaustive DFS explorer. Build with [`Explorer::new`], consume
/// with [`Explorer::run`].
pub struct Explorer<M: Clone + McWords> {
    net: EventNet<M>,
    tap: SharedTap,
    properties: Vec<Box<dyn Property>>,
    cfg: ExploreConfig,
    /// Visited state keys, each with the sleep sets it has been expanded
    /// under (kept as a minimal antichain; see module docs on subset
    /// caching). Without POR every entry is `[{}]` and this degenerates
    /// to a plain visited set.
    visited: HashMap<Vec<u64>, Vec<BTreeSet<TransId>>>,
    on_stack: HashSet<Vec<u64>>,
    path: Vec<Choice>,
    crash_budget: usize,
    states: u64,
    transitions: u64,
    terminals: u64,
    max_depth_seen: usize,
    cycles: u64,
    decision_vectors: BTreeSet<Vec<Option<Value>>>,
}

impl<M: Clone + McWords> Explorer<M> {
    /// Wraps a freshly built network (its `on_start`s have run, nothing
    /// else) for exploration. `tap` must be the same shared tap the
    /// processes draw from; pass a fresh one for fully deterministic
    /// protocols.
    ///
    /// # Panics
    ///
    /// If the network does not support exploration: a process without
    /// [`bne_net::AsyncProcess::fork`]/`state_words`, or a start-up that
    /// already drew uncovered choices (protocol nondeterminism must be
    /// event-driven so the search can fork on it).
    pub fn new(
        net: EventNet<M>,
        tap: SharedTap,
        properties: Vec<Box<dyn Property>>,
        cfg: ExploreConfig,
    ) -> Self {
        assert!(
            net.snapshot().is_some(),
            "every process must implement fork() to be explorable"
        );
        assert!(
            tap.borrow().demands().is_empty(),
            "tap demands during on_start: draw choices on events, not at startup"
        );
        let crash_budget = cfg.crash_budget;
        let ex = Explorer {
            net,
            tap,
            properties,
            cfg,
            visited: HashMap::new(),
            on_stack: HashSet::new(),
            path: Vec::new(),
            crash_budget,
            states: 0,
            transitions: 0,
            terminals: 0,
            max_depth_seen: 0,
            cycles: 0,
            decision_vectors: BTreeSet::new(),
        };
        // fail fast (with a clear message) if any process lacks a
        // canonical encoding, rather than deep inside the search
        let _ = ex.fingerprint();
        ex
    }

    /// Runs the search to completion and reports.
    pub fn run(mut self) -> ExploreReport {
        let verdict = match self.dfs(0, BTreeSet::new()) {
            Ok(()) => {
                if self.cycles > 0 && self.cfg.por {
                    // a cycle means the reduction could in principle
                    // starve a transition around it (the ignoring
                    // problem); refuse to claim a proof
                    Verdict::Truncated(format!(
                        "{} cycle(s) under partial-order reduction",
                        self.cycles
                    ))
                } else {
                    Verdict::Proven
                }
            }
            Err(Stop::Violation(trace)) => Verdict::Violated(trace),
            Err(Stop::Limit(why)) => Verdict::Truncated(why),
        };
        ExploreReport {
            verdict,
            states: self.states,
            transitions: self.transitions,
            terminals: self.terminals,
            max_depth_seen: self.max_depth_seen,
            cycles: self.cycles,
            decision_vectors: self.decision_vectors,
        }
    }

    /// The canonical content identity of one pending event — also the
    /// per-event component of the state fingerprint.
    fn event_id(&self, ev: &EnabledEvent) -> TransId {
        let mut w = Vec::with_capacity(8);
        match ev.kind {
            EnabledKind::Deliver { src, dst } => {
                w.extend([0, src as u64, dst as u64]);
                self.net
                    .event_msg(ev)
                    .expect("deliver events carry a message")
                    .words(&mut w);
            }
            EnabledKind::Timer { proc, timer } => w.extend([1, proc as u64, timer]),
            EnabledKind::Crash { proc } => w.extend([2, proc as u64]),
            EnabledKind::Recover { proc } => w.extend([3, proc as u64]),
        }
        w
    }

    /// The canonical identity of an injected-crash choice.
    fn crash_id(proc: ProcId) -> TransId {
        vec![CRASH_TAG, proc as u64]
    }

    /// The process a transition acts on — the whole dependence relation:
    /// transitions are independent iff their targets differ.
    fn id_target(id: &[u64]) -> u64 {
        match id[0] {
            0 => id[2], // delivery: dst
            _ => id[1], // timer/crash/recover/injected-crash: the process
        }
    }

    fn independent(a: &[u64], b: &[u64]) -> bool {
        Self::id_target(a) != Self::id_target(b)
    }

    /// The exact canonical key of the current state (see module docs for
    /// what is included and what is deliberately left out).
    fn fingerprint(&self) -> Vec<u64> {
        let n = self.net.num_processes();
        let mut key = Vec::with_capacity(16 * n);
        for id in 0..n {
            let words = self
                .net
                .process_state_words(id)
                .expect("explorable processes have canonical state_words");
            key.push(u64::from(self.net.is_crashed(id)));
            key.push(words.len() as u64);
            key.extend(words);
        }
        let mut pending: Vec<TransId> = self
            .net
            .enabled_events()
            .iter()
            .map(|ev| self.event_id(ev))
            .collect();
        pending.sort_unstable();
        key.push(pending.len() as u64);
        for w in pending {
            key.push(w.len() as u64);
            key.extend(w);
        }
        key.push(self.crash_budget as u64);
        key
    }

    fn check_properties(&self) -> Option<Violation> {
        let decisions = self.net.decisions();
        let crashed: Vec<bool> = (0..self.net.num_processes())
            .map(|p| self.net.is_crashed(p))
            .collect();
        let view = StateView {
            decisions: &decisions,
            crashed: &crashed,
        };
        for p in &self.properties {
            if let Some(detail) = p.check(&view) {
                return Some(Violation {
                    property: p.name().to_string(),
                    detail,
                });
            }
        }
        None
    }

    fn make_trace(&self, violation: Violation) -> Box<CounterexampleTrace> {
        Box::new(CounterexampleTrace {
            scenario: self.cfg.scenario.clone(),
            params: self.cfg.params.clone(),
            script: self.tap.borrow().script().to_vec(),
            choices: self.path.clone(),
            property: violation.property,
            detail: violation.detail,
        })
    }

    /// The oldest pending delivery whose dispatch commutes with every
    /// other transition, present or future: its target is crashed (the
    /// runtime absorbs it) or self-declared quiescent. `None` if no such
    /// delivery exists or draining is unsafe here (crash adversary still
    /// aiming at the target, or a recovery pending for it).
    fn pick_drain(&self, events: &[EnabledEvent]) -> Option<EnabledEvent> {
        events
            .iter()
            .filter(|ev| {
                let target = match ev.kind {
                    EnabledKind::Deliver { dst, .. } => dst,
                    // timers to crashed processes are absorbed, and a
                    // live process can declare a timer a permanent no-op
                    // (an exhausted retry budget); a *live* quiescent
                    // process makes no timer claim, so nothing else drains
                    EnabledKind::Timer { proc, .. } => {
                        return !pending_fault(events, proc)
                            && (self.net.is_crashed(proc) || self.net.event_absorbed(ev));
                    }
                    _ => return false,
                };
                if self.net.is_crashed(target) {
                    // absorbed on dispatch; sound unless a recovery could
                    // race it back to life
                    !pending_fault(events, target)
                } else if pending_fault(events, target) {
                    // a scheduled crash/recovery for the target races
                    // anything addressed to it
                    false
                } else if self.net.event_absorbed(ev) {
                    // a permanent behavioral no-op commutes with every
                    // transition — even an injected crash of its target,
                    // since crash-stop absorption is a no-op too
                    true
                } else if self.crash_budget > 0 && self.cfg.crashable.contains(&target) {
                    // an injected crash of the target does not commute
                    // with a live delivery to it
                    false
                } else if self.cfg.confluent {
                    // the scenario vouches that same-target deliveries
                    // commute; cross-target ones always do, and timers
                    // (which the guarantee says nothing about) must not
                    // race this target
                    !pending_timer(events, target)
                } else {
                    self.net.process_quiescent(target)
                }
            })
            .min_by_key(|ev| (ev.time, ev.tie, ev.seq))
            .cloned()
    }

    fn dfs(&mut self, depth: usize, sleep: BTreeSet<TransId>) -> Result<(), Stop> {
        let key = self.fingerprint();
        let new_state = match self.visited.get(&key) {
            Some(explored) => {
                if explored.iter().any(|z| z.is_subset(&sleep)) {
                    // an earlier expansion under a smaller (or equal)
                    // sleep set explored a superset of what this visit
                    // would
                    if self.on_stack.contains(&key) {
                        self.cycles += 1;
                    }
                    return Ok(());
                }
                false
            }
            None => true,
        };
        if new_state {
            self.states += 1;
            self.max_depth_seen = self.max_depth_seen.max(depth);
            if self.states > self.cfg.max_states {
                return Err(Stop::Limit(format!(
                    "state limit {} exceeded",
                    self.cfg.max_states
                )));
            }
            if depth > self.cfg.max_depth {
                return Err(Stop::Limit(format!(
                    "depth limit {} exceeded",
                    self.cfg.max_depth
                )));
            }
            if let Some(violation) = self.check_properties() {
                return Err(Stop::Violation(self.make_trace(violation)));
            }
        }

        let events = self.net.enabled_events();
        if events.is_empty() {
            // fully drained: a terminal state. Spending leftover crash
            // budget here cannot change anything observable, so the
            // search does not. Nothing can be missed from a terminal, so
            // it is cached under the empty sleep set (prunes every
            // revisit).
            self.terminals += 1;
            self.decision_vectors.insert(self.net.decisions());
            self.visited.insert(key, vec![BTreeSet::new()]);
            return Ok(());
        }

        // record this expansion for the subset cache, keeping the entry
        // a minimal antichain
        let explored = self.visited.entry(key.clone()).or_default();
        explored.retain(|z| !sleep.is_subset(z));
        explored.push(sleep.clone());

        if self.cfg.por {
            if let Some(drain) = self.pick_drain(&events) {
                let id = self.event_id(&drain);
                if sleep.contains(&id) {
                    // the lone successor is covered where this very
                    // transition was explored (everything since has been
                    // independent of it)
                    return Ok(());
                }
                // singleton persistent set: the drain commutes with all
                // other transitions, so the sleep set survives (minus
                // anything sharing its target)
                let child_sleep: BTreeSet<TransId> = sleep
                    .iter()
                    .filter(|z| Self::independent(z, &id))
                    .cloned()
                    .collect();
                let snap = self.net.snapshot().expect("checked at construction");
                let tap_save = self.tap.borrow().save();
                self.on_stack.insert(key.clone());
                let r = self.explore_event(&snap, &tap_save, &drain, depth, &child_sleep);
                self.on_stack.remove(&key);
                return r;
            }
        }

        let snap = self.net.snapshot().expect("checked at construction");
        let tap_save = self.tap.borrow().save();
        self.on_stack.insert(key.clone());
        let result = self.expand(&snap, &tap_save, &events, depth, sleep);
        self.on_stack.remove(&key);
        result
    }

    /// Expands every choice at one state: each pending event (one
    /// representative per content class, with tap refinement) and each
    /// permitted crash, threading the sleep set through in `(time, tie,
    /// seq)` order.
    fn expand(
        &mut self,
        snap: &NetSnapshot<M>,
        tap_save: &ChoiceTap,
        events: &[EnabledEvent],
        depth: usize,
        sleep: BTreeSet<TransId>,
    ) -> Result<(), Stop> {
        // one representative per canonical content id: identical pending
        // events are interchangeable
        let mut reps: Vec<(TransId, &EnabledEvent)> = Vec::new();
        for ev in events {
            let id = self.event_id(ev);
            if !reps.iter().any(|(existing, _)| *existing == id) {
                reps.push((id, ev));
            }
        }
        let mut cur_sleep = sleep;
        for (id, ev) in &reps {
            if cur_sleep.contains(id) {
                continue; // covered by the sibling that explored it
            }
            let child_sleep: BTreeSet<TransId> = cur_sleep
                .iter()
                .filter(|z| Self::independent(z, id))
                .cloned()
                .collect();
            self.explore_event(snap, tap_save, ev, depth, &child_sleep)?;
            if self.cfg.por {
                cur_sleep.insert(id.clone());
            }
        }
        if self.crash_budget > 0 {
            let crashable: Vec<ProcId> = self
                .cfg
                .crashable
                .iter()
                .copied()
                .filter(|&p| !self.net.is_crashed(p))
                .collect();
            for proc in crashable {
                let id = Self::crash_id(proc);
                if cur_sleep.contains(&id) {
                    continue;
                }
                let child_sleep: BTreeSet<TransId> = cur_sleep
                    .iter()
                    .filter(|z| Self::independent(z, &id))
                    .cloned()
                    .collect();
                self.net.restore(snap);
                self.tap.borrow_mut().restore(tap_save);
                self.net.inject_crash(proc);
                self.crash_budget -= 1;
                self.transitions += 1;
                self.path.push(Choice::Crash { proc });
                let r = self.dfs(depth + 1, child_sleep);
                self.path.pop();
                self.crash_budget += 1;
                r?;
                if self.cfg.por {
                    cur_sleep.insert(id);
                }
            }
        }
        Ok(())
    }

    /// Dispatches `ev` from the snapshotted state, forking on every
    /// uncovered tap draw until the transition is fully scripted, and
    /// recurses into each resulting state with `sleep` (minus any slept
    /// id the dispatch re-created — a fresh copy is a new transition).
    fn explore_event(
        &mut self,
        snap: &NetSnapshot<M>,
        tap_save: &ChoiceTap,
        ev: &EnabledEvent,
        depth: usize,
        sleep: &BTreeSet<TransId>,
    ) -> Result<(), Stop> {
        // the net may still hold a sibling's child state; go back to the
        // snapshot before reading anything off it
        self.net.restore(snap);
        // the pending multiset before dispatch, for the created-id purge
        // (only needed when something is asleep)
        let before: Vec<TransId> = if sleep.is_empty() {
            Vec::new()
        } else {
            self.net
                .enabled_events()
                .iter()
                .map(|e| self.event_id(e))
                .collect()
        };
        let dispatched_id = self.event_id(ev);
        // stack of script extensions still to try; empty extension first
        let mut extensions: Vec<Vec<u64>> = vec![Vec::new()];
        while let Some(ext) = extensions.pop() {
            self.net.restore(snap);
            {
                let mut tap = self.tap.borrow_mut();
                tap.restore(tap_save);
                for &v in &ext {
                    tap.push_choice(v);
                }
            }
            let dispatched = self.net.step_chosen(ev);
            debug_assert!(dispatched, "snapshot restore must re-enable the event");
            self.transitions += 1;
            let first_demand = self.tap.borrow().demands().first().copied();
            match first_demand {
                Some(domain) => {
                    // the handler drew past the script: fork this
                    // transition on every candidate value of the first
                    // uncovered draw ((rev) keeps exploration in value
                    // order, matching scripted-replay intuition)
                    for v in (0..domain).rev() {
                        let mut e = ext.clone();
                        e.push(v);
                        extensions.push(e);
                    }
                }
                None => {
                    let mut child_sleep = sleep.clone();
                    if !child_sleep.is_empty() {
                        // multiset difference: ids with more copies
                        // pending now than survived the dispatch were
                        // (re-)created by it and must wake up
                        let mut balance: BTreeMap<TransId, i64> = BTreeMap::new();
                        for id in &before {
                            *balance.entry(id.clone()).or_insert(0) -= 1;
                        }
                        *balance.entry(dispatched_id.clone()).or_insert(0) += 1;
                        for e in self.net.enabled_events() {
                            *balance.entry(self.event_id(&e)).or_insert(0) += 1;
                        }
                        for (id, count) in balance {
                            if count > 0 {
                                child_sleep.remove(&id);
                            }
                        }
                    }
                    self.path.push(Choice::Event {
                        seq: ev.seq,
                        kind: ev.kind,
                    });
                    let r = self.dfs(depth + 1, child_sleep);
                    self.path.pop();
                    r?;
                }
            }
        }
        Ok(())
    }
}

fn pending_timer(events: &[EnabledEvent], target: ProcId) -> bool {
    events
        .iter()
        .any(|e| matches!(e.kind, EnabledKind::Timer { proc, .. } if proc == target))
}

fn pending_fault(events: &[EnabledEvent], target: ProcId) -> bool {
    events.iter().any(|e| {
        matches!(e.kind,
            EnabledKind::Recover { proc } | EnabledKind::Crash { proc } if proc == target)
    })
}
