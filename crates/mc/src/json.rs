//! A minimal JSON reader/writer for counterexample traces.
//!
//! The build environment is offline (no `serde`), and the traces only
//! need unsigned integers, strings, arrays and objects — so this is a
//! deliberately small recursive-descent parser and a matching printer,
//! just enough for `tests/corpus/*.json` round-trips. Unsupported JSON
//! (floats, non-ASCII escapes beyond `\uXXXX`, duplicate keys) is
//! rejected loudly rather than guessed at.

use std::fmt::Write as _;

/// A parsed JSON value (integers only — traces never carry floats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    /// Serializes compactly (no insignificant whitespace).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|&c| c as char),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields: Vec<(String, Json)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key {key:?}"));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            // traces never contain floats or negatives; reject rather
            // than lose precision silently
            if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
                return Err(format!("unsupported non-integer number at byte {start}"));
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Json::U64)
                .ok_or_else(|| format!("invalid integer at byte {start}"))
        }
        Some(&c) => Err(format!(
            "unexpected character '{}' at byte {pos}",
            c as char,
            pos = *pos
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        out.push(
                            char::from_u32(hex)
                                .ok_or_else(|| format!("bad codepoint \\u{hex:04x}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(_) => {
                // multi-byte UTF-8: copy the full scalar
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::Str("planted \"bug\"".to_string())),
            (
                "script".to_string(),
                Json::Arr(vec![Json::U64(3), Json::U64(0)]),
            ),
            ("ok".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_floats_trailing_garbage_and_duplicates() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
    }
}
