//! # bne-mc
//!
//! A schedule-space **model checker** and **adversary synthesizer** over
//! the [`bne_net`] event runtime.
//!
//! The experiments of e20–e22 *sample* the schedule space: they draw
//! random interleavings (or one canned rushing adversary) and report
//! statistics. This crate replaces the scheduler with a **choice-point
//! enumerator**: at every state the explorer asks the runtime for its
//! enabled-event set ([`bne_net::EventNet::enabled_events`]), forks on
//! each choice via whole-runtime snapshots
//! ([`bne_net::EventNet::snapshot`] / [`bne_net::EventNet::restore`]),
//! and walks the *entire* reachable state graph of a small model. The
//! same machinery enumerates bounded nondeterminism inside the protocols
//! — Ben-Or coin flips and Byzantine lies — through the
//! [`bne_byzantine::choice::ChoiceTap`] scripting layer, so a verdict
//! quantifies over schedules × coins × lies, not just schedules.
//!
//! The pieces:
//!
//! * [`words`] — canonical word encodings ([`words::McWords`]) turning
//!   messages into exact fingerprint keys (no hashing: a collision could
//!   silently prune a reachable state and void a "proven" verdict);
//! * [`property`] — the [`property::Property`] trait checked at every
//!   explored state, with the stock agreement / validity instances for
//!   reliable broadcast, consensus and oral-messages runs;
//! * [`explorer`] — the depth-first [`explorer::Explorer`] with exact
//!   visited-state deduplication and a sound per-process **partial-order
//!   reduction** (one ample dependency class per step);
//! * [`liar`] — [`liar::BrachaLiar`], a Byzantine reliable-broadcast
//!   participant whose lies are drawn from the choice tap, so the
//!   explorer searches the lie space instead of fixing one adversary
//!   up front (superseding the colluding-ledger construction of e17);
//! * [`trace`] — replayable [`trace::CounterexampleTrace`]s: a violation
//!   serializes to JSON and re-executes deterministically on the
//!   *production* [`bne_net::EventNet`] (the regression corpus under
//!   `tests/corpus/`);
//! * [`scenario`] — the named scenario registry binding traces back to
//!   runnable networks, plus the stock checkable models (Bracha with and
//!   without a liar, tap-coin Ben-Or, crash-budget Paxos);
//! * [`synth`] — the budgeted worst-case [`synth::Synthesizer`]
//!   searching schedule × lie space for the schedule that maximizes a
//!   badness score (decision time, rounds), seeded with a rush-imitating
//!   rollout so it never scores below the canned
//!   [`bne_net::SchedulerPolicy::AdversarialRush`] heuristic expressed
//!   as a rollout policy.
//!
//! # Why this matters for the paper
//!
//! Halpern's mediator-implementation results are *worst-case* claims:
//! cheap talk implements the mediator **whatever** the adversary and the
//! asynchrony do. Sampling can only ever falsify such a claim; the
//! explorer can also *prove* it for concrete small models (n = 4, t = 1)
//! — and when a protocol is mutated below its quorum bounds, it produces
//! a minimal, replayable witness instead of a statistical regression.
//!
//! # Quick start
//!
//! ```
//! use bne_mc::scenario::{bracha_net, BrachaParams};
//! use bne_mc::explorer::{ExploreConfig, Explorer, Verdict};
//!
//! // Correct Bracha, n = 4, all honest: prove RB agreement + validity
//! // over every delivery schedule. (The honest protocol is confluent,
//! // so the scenario config lets the explorer collapse the schedule
//! // space; with a liar in the model the proof runs at n = 3.)
//! let params = BrachaParams::new(4, 1, 1);
//! let (net, tap) = bracha_net(&params);
//! let report = Explorer::new(net, tap, params.properties(), params.explore_config()).run();
//! assert!(matches!(report.verdict, Verdict::Proven));
//!
//! // The same model with a liar and the ready-amplification quorum
//! // lowered from t+1 to t: the explorer finds a validity violation
//! // and emits a replayable counterexample.
//! let buggy = BrachaParams::new(4, 1, 1).with_liar().with_thresholds(1, 3);
//! let (net, tap) = bracha_net(&buggy);
//! let report = Explorer::new(net, tap, buggy.properties(), buggy.explore_config()).run();
//! assert!(matches!(report.verdict, Verdict::Violated(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod json;
pub mod liar;
pub mod property;
pub mod scenario;
pub mod synth;
pub mod trace;
pub mod words;

pub use explorer::{Choice, ExploreConfig, ExploreReport, Explorer, Verdict};
pub use liar::BrachaLiar;
pub use property::{Agreement, Property, StateView, Validity, Violation};
pub use scenario::{
    ben_or_net, bracha_net, paxos_net, replay_trace, BenOrParams, BrachaParams, PaxosParams,
    ReplayReport,
};
pub use synth::{Badness, SynthConfig, SynthOutcome, Synthesizer};
pub use trace::CounterexampleTrace;
pub use words::McWords;
